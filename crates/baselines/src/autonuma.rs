//! AutoNUMA — Linux automatic NUMA balancing used as a tiering baseline.
//!
//! Reproduced decision rules (paper Table 1, §2.2, §6.2.2):
//!
//! - Rotating-window NUMA-hint faults; the hotness threshold is **one** —
//!   the most recently accessed page is promoted immediately, in the fault
//!   handler (critical-path migration).
//! - **No demotion**: once the fast tier fills, nothing moves out. The paper
//!   notes this ironically helps XSBench at 1:2 (the early-allocated hot
//!   region can never be evicted) and hurts everywhere else.

use memtis_sim::prelude::{PageSize, PolicyDescriptor, PolicyOps, TierId, TieringPolicy, VirtPage};
use memtis_tracking::hintfault::HintFaultSampler;
use std::collections::HashMap;

/// AutoNUMA tunables.
#[derive(Debug, Clone)]
pub struct AutoNumaConfig {
    /// Hint-bit sweep length: one full pass over tracked pages takes
    /// this many ticks (kernel-like constant coverage time).
    pub sweep_rounds: u32,
}

impl Default for AutoNumaConfig {
    fn default() -> Self {
        AutoNumaConfig { sweep_rounds: 192 }
    }
}

/// The AutoNUMA policy.
pub struct AutoNumaPolicy {
    sampler: HintFaultSampler,
    sizes: HashMap<VirtPage, PageSize>,
    /// Promotions performed in the fault handler.
    pub critical_path_promotions: u64,
}

impl AutoNumaPolicy {
    /// Creates the policy.
    pub fn new(cfg: AutoNumaConfig) -> Self {
        AutoNumaPolicy {
            sampler: HintFaultSampler::sweeping(cfg.sweep_rounds),
            sizes: HashMap::new(),
            critical_path_promotions: 0,
        }
    }
}

impl TieringPolicy for AutoNumaPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "AutoNUMA",
            mechanism: "Page fault",
            subpage_tracking: false,
            promotion_metric: "Recency",
            demotion_metric: "-",
            thresholding: "Static access count",
            critical_path_migration: "Promotion",
            page_size_handling: "None",
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        tier: TierId,
    ) {
        self.sizes.insert(vpage, size);
        if tier != TierId::FAST {
            self.sampler.on_alloc(vpage, size);
        }
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        self.sizes.remove(&vpage);
        self.sampler.on_free(vpage);
    }

    fn on_hint_fault(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage) {
        // Threshold of one: promote immediately on the critical path.
        let key = match ops.locate(vpage) {
            Some((_, PageSize::Huge)) => vpage.huge_aligned(),
            _ => vpage,
        };
        let Some(&size) = self.sizes.get(&key) else {
            return;
        };
        match ops.locate(key) {
            Some((t, s)) if t != TierId::FAST && s == size => {}
            _ => return,
        }
        // No demotion exists: promotion succeeds only while the fast tier
        // has free frames.
        if ops.migrate(key, TierId::FAST).is_ok() {
            self.critical_path_promotions += 1;
            self.sampler.on_free(key);
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.sampler.arm_round(ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn single_fault_promotes_until_fast_fills() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE));
        let mut acct = CostAccounting::default();
        let mut p = AutoNumaPolicy::new(AutoNumaConfig::default());
        for i in 0..2u64 {
            m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::CAPACITY)
                .unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(
                &mut ops,
                VirtPage(i * 512),
                PageSize::Huge,
                TierId::CAPACITY,
            );
        }
        // One fault promotes page 0 (threshold = 1).
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_hint_fault(&mut ops, VirtPage(7));
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::FAST);
        // Fast tier is now full and AutoNUMA cannot demote: page 512 stays.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_hint_fault(&mut ops, VirtPage(600));
        }
        assert_eq!(m.locate(VirtPage(512)).unwrap().0, TierId::CAPACITY);
        assert_eq!(p.critical_path_promotions, 1);
    }
}
