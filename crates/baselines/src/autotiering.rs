//! AutoTiering (ATC '21) — page management for multi-tier NUMA systems.
//!
//! Reproduced decision rules (paper Table 1, §2.2, §6.2.6):
//!
//! - NUMA-hint faults drive an N-bit access-history vector per page (one bit
//!   per scan interval).
//! - Promotion uses a static access count (first fault in the current
//!   interval promotes, critical path); when the fast tier is full, the
//!   *demotion victim is chosen by LFU* over the history vectors, and the
//!   pages are effectively exchanged.
//! - A background thread demotes to keep free pages in reserve, but the
//!   reserve is used **only for promotions** — new allocations of
//!   short-lived data go to the capacity tier when the free space is at or
//!   below the reserve, the behaviour that costs it 603.bwaves performance.

use memtis_sim::prelude::{
    DetHashMap, PageSize, PolicyDescriptor, PolicyOps, SimError, TierId, TieringPolicy, VirtPage,
};
use memtis_tracking::hintfault::HintFaultSampler;

/// AutoTiering tunables.
#[derive(Debug, Clone)]
pub struct AutoTieringConfig {
    /// Hint-bit sweep length: one full pass over tracked pages takes
    /// this many ticks (kernel-like constant coverage time).
    pub sweep_rounds: u32,
    /// History-vector shift period, in ticks (one "scan interval").
    pub shift_every_ticks: u32,
    /// Fast-tier reserve kept free by the background demoter (fraction).
    pub reserve_frac: f64,
    /// Demotion budget per tick (bytes).
    pub demote_batch_bytes: u64,
}

impl Default for AutoTieringConfig {
    fn default() -> Self {
        AutoTieringConfig {
            sweep_rounds: 192,
            shift_every_ticks: 8,
            reserve_frac: 0.02,
            demote_batch_bytes: 16 << 20,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Hist {
    bits: u8,
    size_huge: bool,
}

impl Hist {
    fn lfu(&self) -> u32 {
        self.bits.count_ones()
    }
}

/// The AutoTiering policy.
pub struct AutoTieringPolicy {
    cfg: AutoTieringConfig,
    sampler: HintFaultSampler,
    pages: DetHashMap<VirtPage, Hist>,
    /// LFU demotion candidates (fast tier), rebuilt at each history shift:
    /// bucket index = popcount of the history vector.
    lfu_buckets: Vec<Vec<VirtPage>>,
    ticks: u32,
    /// Promotions performed in the fault handler.
    pub critical_path_promotions: u64,
}

impl AutoTieringPolicy {
    /// Creates the policy.
    pub fn new(cfg: AutoTieringConfig) -> Self {
        let sweep = cfg.sweep_rounds;
        AutoTieringPolicy {
            cfg,
            sampler: HintFaultSampler::sweeping(sweep),
            pages: DetHashMap::default(),
            lfu_buckets: vec![Vec::new(); 9],
            ticks: 0,
            critical_path_promotions: 0,
        }
    }

    fn size_of(h: &Hist) -> PageSize {
        if h.size_huge {
            PageSize::Huge
        } else {
            PageSize::Base
        }
    }

    /// Demotes the least-frequently-used fast-tier pages.
    fn demote_lfu(&mut self, ops: &mut PolicyOps<'_>, need: u64, mut budget: u64) -> u64 {
        let start = budget;
        'outer: for b in 0..self.lfu_buckets.len() {
            while let Some(victim) = self.lfu_buckets[b].pop() {
                if ops.free_bytes(TierId::FAST) >= need || budget == 0 {
                    break 'outer;
                }
                let Some(h) = self.pages.get(&victim) else {
                    continue;
                };
                // Stale LFU entries (page got hotter) are skipped.
                if h.lfu() as usize > b {
                    continue;
                }
                let size = Self::size_of(h);
                match ops.locate(victim) {
                    Some((TierId::FAST, s)) if s == size => {}
                    _ => continue,
                }
                match ops.migrate(victim, TierId::CAPACITY) {
                    Ok(_) => {
                        budget = budget.saturating_sub(size.bytes());
                        self.sampler.on_alloc(victim, size);
                    }
                    Err(SimError::OutOfMemory { .. }) => break 'outer,
                    Err(_) => continue,
                }
            }
        }
        start - budget
    }
}

impl TieringPolicy for AutoTieringPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "AutoTiering",
            mechanism: "Page fault",
            subpage_tracking: false,
            promotion_metric: "Recency",
            demotion_metric: "Frequency",
            thresholding: "Static count (promo), LFU (demo)",
            critical_path_migration: "Promotion",
            page_size_handling: "None",
        }
    }

    fn alloc_tier(&mut self, ops: &mut PolicyOps<'_>, _vpage: VirtPage, size: PageSize) -> TierId {
        // The reserve is for promotions only: new data spills to the
        // capacity tier once free space reaches the reserve.
        let reserve = (ops.capacity_bytes(TierId::FAST) as f64 * self.cfg.reserve_frac) as u64;
        if ops.free_bytes(TierId::FAST) >= size.bytes() + reserve {
            TierId::FAST
        } else {
            TierId::CAPACITY
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        tier: TierId,
    ) {
        self.pages.insert(
            vpage,
            Hist {
                bits: 0,
                size_huge: size == PageSize::Huge,
            },
        );
        if tier != TierId::FAST {
            self.sampler.on_alloc(vpage, size);
        }
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        self.pages.remove(&vpage);
        self.sampler.on_free(vpage);
    }

    fn on_hint_fault(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage) {
        let key = match ops.locate(vpage) {
            Some((_, PageSize::Huge)) => vpage.huge_aligned(),
            _ => vpage,
        };
        let Some(h) = self.pages.get_mut(&key) else {
            return;
        };
        h.bits |= 1;
        let size = Self::size_of(h);
        match ops.locate(key) {
            Some((t, s)) if t != TierId::FAST && s == size => {}
            _ => return,
        }
        // Promote on the critical path; make room by LFU demotion.
        if ops.free_bytes(TierId::FAST) < size.bytes() {
            self.demote_lfu(ops, size.bytes(), self.cfg.demote_batch_bytes);
        }
        if ops.migrate(key, TierId::FAST).is_ok() {
            self.critical_path_promotions += 1;
            self.sampler.on_free(key);
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.ticks += 1;
        self.sampler.arm_round(ops);
        if self.ticks.is_multiple_of(self.cfg.shift_every_ticks) {
            // End of a scan interval: shift history vectors and rebuild the
            // LFU buckets over fast-tier residents.
            for b in &mut self.lfu_buckets {
                b.clear();
            }
            let mut entries: Vec<(VirtPage, u32)> = Vec::new();
            for (&v, h) in self.pages.iter_mut() {
                h.bits <<= 1;
                entries.push((v, h.lfu()));
            }
            for (v, lfu) in entries {
                if matches!(ops.locate(v), Some((TierId::FAST, _))) {
                    self.lfu_buckets[lfu as usize].push(v);
                }
            }
        }
        // Background demoter keeps the promotion reserve.
        let reserve = (ops.capacity_bytes(TierId::FAST) as f64 * self.cfg.reserve_frac) as u64;
        if ops.free_bytes(TierId::FAST) < reserve {
            self.demote_lfu(ops, reserve, self.cfg.demote_batch_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn new_allocations_avoid_the_promotion_reserve() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            2 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = AutoTieringPolicy::new(AutoTieringConfig {
            reserve_frac: 0.5,
            ..Default::default()
        });
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
        // First huge page fits above the 50% reserve.
        assert_eq!(
            p.alloc_tier(&mut ops, VirtPage(0), PageSize::Huge),
            TierId::FAST
        );
        let _ = ops;
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        // The second would dip into the reserve: goes to capacity.
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
        assert_eq!(
            p.alloc_tier(&mut ops, VirtPage(512), PageSize::Huge),
            TierId::CAPACITY
        );
    }

    #[test]
    fn fault_promotes_with_lfu_exchange() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE));
        let mut acct = CostAccounting::default();
        let mut p = AutoTieringPolicy::new(AutoTieringConfig {
            shift_every_ticks: 1,
            reserve_frac: 0.0,
            ..Default::default()
        });
        // Cold page fills the fast tier; hot page waits in capacity.
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::FAST);
            p.on_alloc(&mut ops, VirtPage(512), PageSize::Huge, TierId::CAPACITY);
        }
        // Build LFU buckets (page 0 has history 0 → LFU victim).
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.tick(&mut ops);
        }
        // Fault on the capacity page: exchange happens on the critical path.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_hint_fault(&mut ops, VirtPage(512));
        }
        assert_eq!(m.locate(VirtPage(512)).unwrap().0, TierId::FAST);
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
        assert!(acct.app_extra_ns > 0.0);
    }
}
