//! HeMem (SOSP '21) — user-level tiering with PEBS sampling and *static*
//! thresholds.
//!
//! Reproduced decision rules (paper §2.2, §6.2.9, Table 1, Table 3):
//!
//! - PEBS-based frequency tracking with **fixed** sampling periods and a
//!   dedicated busy-polling sampler thread (~100% of one core), modeled via
//!   [`TieringPolicy::dedicated_daemon_cores`].
//! - A page is hot once its access count crosses a **static** hot threshold;
//!   whenever any count reaches the static cooling threshold, *all* counts
//!   are halved.
//! - Anti-thrashing: promotion/demotion halt while the identified hot set
//!   exceeds the fast-tier size (§7 "Anti-thrashing mechanisms").
//! - Small (non-huge-mmap) allocations bypass tiering and are placed
//!   directly in the fast tier — the *over-allocation* the paper measures in
//!   Table 3 and compensates for in its HeMem configuration.

use memtis_sim::prelude::{
    Access, AccessOutcome, DetHashMap, PageSize, PolicyDescriptor, PolicyOps, SimError, TierId,
    TieringPolicy, VirtPage,
};
use memtis_tracking::pebs::PebsSampler;
use std::collections::VecDeque;

/// HeMem tunables.
#[derive(Debug, Clone)]
pub struct HememConfig {
    /// Fixed PEBS load period.
    pub load_period: u64,
    /// Fixed PEBS store period.
    pub store_period: u64,
    /// Static hot threshold on the access count (HeMem default: 8).
    pub hot_threshold: u64,
    /// Static cooling threshold: when any count reaches it, halve all.
    pub cool_threshold: u64,
    /// Place THP-ineligible ("small") allocations in the fast tier
    /// unconditionally (the Table 3 over-allocation behaviour).
    pub pin_small_to_fast: bool,
    /// Migration budget per wakeup (bytes).
    pub migrate_batch_bytes: u64,
    /// CPU cost per processed sample (ns) charged to the daemon budget, in
    /// addition to the dedicated polling core.
    pub sample_cost_ns: f64,
}

impl Default for HememConfig {
    fn default() -> Self {
        HememConfig {
            load_period: 32,
            store_period: 4_000,
            hot_threshold: 8,
            cool_threshold: 18,
            pin_small_to_fast: true,
            migrate_batch_bytes: 16 << 20,
            sample_cost_ns: 4.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Page {
    size: PageSize,
    count: u64,
    in_promo: bool,
}

/// The HeMem policy.
pub struct HememPolicy {
    cfg: HememConfig,
    sampler: PebsSampler,
    pages: DetHashMap<VirtPage, Page>,
    hot_bytes: u64,
    promo: VecDeque<VirtPage>,
    /// Bytes of small allocations pinned to the fast tier (Table 3).
    pub overallocated_bytes: u64,
    /// Hot-set-size timeline samples `(now_ns, hot_bytes)` (Fig. 2).
    pub hot_series: Vec<(f64, u64)>,
    /// Total coolings performed.
    pub coolings: u64,
}

impl HememPolicy {
    /// Creates the policy.
    pub fn new(cfg: HememConfig) -> Self {
        let sampler = PebsSampler::new(cfg.load_period, cfg.store_period);
        HememPolicy {
            cfg,
            sampler,
            pages: DetHashMap::default(),
            hot_bytes: 0,
            promo: VecDeque::new(),
            overallocated_bytes: 0,
            hot_series: Vec::new(),
            coolings: 0,
        }
    }

    /// Current identified hot-set size in bytes.
    pub fn hot_bytes(&self) -> u64 {
        self.hot_bytes
    }

    fn cool_all(&mut self) {
        self.coolings += 1;
        self.hot_bytes = 0;
        for p in self.pages.values_mut() {
            p.count /= 2;
            if p.count >= self.cfg.hot_threshold {
                self.hot_bytes += p.size.bytes();
            }
        }
    }
}

impl TieringPolicy for HememPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "HeMem",
            mechanism: "HW-based sampling",
            subpage_tracking: false,
            promotion_metric: "Recency + Frequency",
            demotion_metric: "Recency + Frequency",
            thresholding: "Static access count",
            critical_path_migration: "None",
            page_size_handling: "None",
        }
    }

    fn alloc_tier(&mut self, ops: &mut PolicyOps<'_>, _vpage: VirtPage, size: PageSize) -> TierId {
        // Small allocations bypass tiering and head for fast memory
        // unconditionally — the Table 3 over-allocation. (The machine falls
        // back to the capacity tier only when no fast frame exists at all.)
        if self.cfg.pin_small_to_fast && size == PageSize::Base {
            self.overallocated_bytes += size.bytes();
            return TierId::FAST;
        }
        if ops.free_bytes(TierId::FAST) >= size.bytes() {
            TierId::FAST
        } else {
            TierId::CAPACITY
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        _tier: TierId,
    ) {
        self.pages.insert(
            vpage,
            Page {
                size,
                count: 0,
                in_promo: false,
            },
        );
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        if let Some(p) = self.pages.remove(&vpage) {
            if p.count >= self.cfg.hot_threshold {
                self.hot_bytes = self.hot_bytes.saturating_sub(p.size.bytes());
            }
        }
    }

    fn on_access(&mut self, ops: &mut PolicyOps<'_>, access: &Access, outcome: &AccessOutcome) {
        let Some(sample) = self.sampler.observe(access, outcome) else {
            return;
        };
        ops.charge(self.cfg.sample_cost_ns);
        let key = match outcome.page_size {
            PageSize::Huge => sample.vaddr.base_page().huge_aligned(),
            PageSize::Base => sample.vaddr.base_page(),
        };
        let (hot_threshold, cool_threshold) = (self.cfg.hot_threshold, self.cfg.cool_threshold);
        let mut needs_cool = false;
        if let Some(p) = self.pages.get_mut(&key) {
            p.count += 1;
            if p.count == hot_threshold {
                self.hot_bytes += p.size.bytes();
                if outcome.tier != TierId::FAST && !p.in_promo {
                    p.in_promo = true;
                    self.promo.push_back(key);
                }
            }
            if p.count >= cool_threshold {
                needs_cool = true;
            }
        }
        if needs_cool {
            // "Whenever the access count of any page reaches the static
            // cooling threshold, the access count of all pages is halved."
            self.cool_all();
            ops.charge(self.pages.len() as f64 * 2.0);
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.hot_series.push((ops.now_ns(), self.hot_bytes));
        // Anti-thrashing: freeze migration while the hot set exceeds the
        // fast tier.
        if self.hot_bytes > ops.capacity_bytes(TierId::FAST) {
            return;
        }
        let mut budget = self.cfg.migrate_batch_bytes;
        while budget > 0 {
            let Some(vpage) = self.promo.pop_front() else {
                break;
            };
            let Some(p) = self.pages.get_mut(&vpage) else {
                continue;
            };
            p.in_promo = false;
            let size = p.size;
            if p.count < self.cfg.hot_threshold {
                continue;
            }
            match ops.locate(vpage) {
                Some((t, s)) if t != TierId::FAST && s == size => {}
                _ => continue,
            }
            // Make room by demoting cold fast-tier pages (static criterion).
            if ops.free_bytes(TierId::FAST) < size.bytes() {
                let victims: Vec<(VirtPage, PageSize)> = self
                    .pages
                    .iter()
                    .filter(|(_, q)| q.count < self.cfg.hot_threshold)
                    .map(|(&v, q)| (v, q.size))
                    .take(64)
                    .collect();
                let mut freed = 0u64;
                for (v, vs) in victims {
                    if ops.free_bytes(TierId::FAST) >= size.bytes() || freed >= budget {
                        break;
                    }
                    if let Some((TierId::FAST, s)) = ops.locate(v) {
                        if s == vs && ops.migrate(v, TierId::CAPACITY).is_ok() {
                            freed += vs.bytes();
                        }
                    }
                }
                budget = budget.saturating_sub(freed);
                if ops.free_bytes(TierId::FAST) < size.bytes() {
                    let p = self.pages.get_mut(&vpage).expect("present");
                    p.in_promo = true;
                    self.promo.push_front(vpage);
                    break;
                }
            }
            match ops.migrate(vpage, TierId::FAST) {
                Ok(_) => budget = budget.saturating_sub(size.bytes()),
                Err(SimError::OutOfMemory { .. }) => break,
                Err(_) => continue,
            }
        }
    }

    fn dedicated_daemon_cores(&self) -> f64 {
        // HeMem's sampling thread busy-polls the PEBS buffers (§6.2.1:
        // "high CPU usage (~100%) of the sampling thread").
        1.0
    }

    fn timeline(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("hot_bytes", self.hot_bytes as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    fn env() -> (Machine, CostAccounting) {
        (
            Machine::new(MachineConfig::dram_nvm(
                4 * HUGE_PAGE_SIZE,
                32 * HUGE_PAGE_SIZE,
            )),
            CostAccounting::default(),
        )
    }

    fn cfg() -> HememConfig {
        HememConfig {
            load_period: 1,
            store_period: 1,
            hot_threshold: 4,
            cool_threshold: 16,
            ..Default::default()
        }
    }

    #[test]
    fn static_threshold_marks_hot_and_promotes() {
        let (mut m, mut acct) = env();
        let mut p = HememPolicy::new(cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        for i in 0..6u64 {
            let a = Access::store(i * 64);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64);
            p.on_access(&mut ops, &a, &out);
        }
        assert_eq!(p.hot_bytes(), HUGE_PAGE_SIZE);
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 100.0);
            p.tick(&mut ops);
        }
        assert_eq!(m.locate(VirtPage(0)), Some((TierId::FAST, PageSize::Huge)));
    }

    #[test]
    fn global_halving_at_cooling_threshold() {
        let (mut m, mut acct) = env();
        let mut p = HememPolicy::new(cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::FAST)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::FAST);
            p.on_alloc(&mut ops, VirtPage(512), PageSize::Huge, TierId::FAST);
        }
        // Drive page 0 to the cooling threshold; page 512 to 6 accesses.
        for i in 0..6u64 {
            let a = Access::store(512 * 4096 + i * 64);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64);
            p.on_access(&mut ops, &a, &out);
        }
        for i in 0..16u64 {
            let a = Access::store(i * 64);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64);
            p.on_access(&mut ops, &a, &out);
        }
        assert_eq!(p.coolings, 1);
        // All counts halved: page 512's 6 accesses became 3 (< threshold 4),
        // so the paper's criticism applies — hotness info was destroyed.
        assert_eq!(p.pages[&VirtPage(512)].count, 3);
        assert_eq!(p.hot_bytes(), HUGE_PAGE_SIZE); // Only page 0 (count 8).
    }

    #[test]
    fn anti_thrashing_freezes_migration() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            2 * HUGE_PAGE_SIZE,
            32 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = HememPolicy::new(cfg());
        // Three hot huge pages in the capacity tier: hot set (6 MiB) exceeds
        // the 4 MiB fast tier.
        for i in 0..3u64 {
            m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::CAPACITY)
                .unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(
                &mut ops,
                VirtPage(i * 512),
                PageSize::Huge,
                TierId::CAPACITY,
            );
        }
        for i in 0..3u64 {
            for k in 0..5u64 {
                let a = Access::store(i * HUGE_PAGE_SIZE + k * 64);
                let out = m.access(a).unwrap();
                let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
                p.on_access(&mut ops, &a, &out);
            }
        }
        assert!(p.hot_bytes() > 2 * HUGE_PAGE_SIZE);
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1.0);
            p.tick(&mut ops);
        }
        // Nothing moved: migration frozen.
        for i in 0..3u64 {
            assert_eq!(
                m.locate(VirtPage(i * 512)),
                Some((TierId::CAPACITY, PageSize::Huge))
            );
        }
    }

    #[test]
    fn small_allocations_overallocate_fast_tier() {
        let (mut m, mut acct) = env();
        let mut p = HememPolicy::new(cfg());
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
        let t = p.alloc_tier(&mut ops, VirtPage(0), PageSize::Base);
        assert_eq!(t, TierId::FAST);
        assert_eq!(p.overallocated_bytes, 4096);
        assert_eq!(p.dedicated_daemon_cores(), 1.0);
    }
}
