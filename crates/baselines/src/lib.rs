//! # memtis-baselines — the comparison tiering systems
//!
//! Policy re-implementations of every system the MEMTIS paper compares
//! against (§6.1) plus the static references, each reproducing the decision
//! rules the paper's Table 1 taxonomy attributes to it:
//!
//! | policy | tracking | promotion rule | demotion rule | critical path |
//! |---|---|---|---|---|
//! | [`StaticPolicy`] | none | — | — | none |
//! | [`AutoNumaPolicy`] | hint faults | 1st fault | none | promotion |
//! | [`AutoTieringPolicy`] | hint faults + history | static count | LFU | promotion |
//! | [`Tiering08Policy`] | hint faults | re-fault interval (rate-adaptive) | recency | promotion |
//! | [`TppPolicy`] | hint faults + 2Q | 2nd fault | inactive LRU | promotion |
//! | [`NimblePolicy`] | PT scan | accessed last scan | not accessed | none |
//! | [`HememPolicy`] | PEBS (static period) | static count | static count | none |
//! | [`MultiClockPolicy`] | PT scan + 2Q | 2nd scan | inactive LRU | none |
//! | [`TmtsPolicy`] | PT scan + HW sampling | 1 sample / 2 scans | adaptive idle age | none |
//!
//! ## Observability
//!
//! Every baseline routes its migrations, splits, and collapses through
//! [`PolicyOps`](memtis_sim::prelude::PolicyOps), which emits the shared
//! trace events (`Promotion`, `Demotion`, `TlbShootdown`, `MigrationFailed`,
//! …) whenever an observer is attached to the simulation. None of the
//! baselines needs policy-specific instrumentation: the default
//! `TieringPolicy` surface (empty `timeline`/`histogram_bins`) plus the
//! `PolicyOps` emission points give them the full event stream and windowed
//! telemetry for free.

pub mod autonuma;
pub mod autotiering;
pub mod hemem;
pub mod multiclock;
pub mod nimble;
pub mod static_;
pub mod tiering08;
pub mod tmts;
pub mod tpp;

pub use autonuma::{AutoNumaConfig, AutoNumaPolicy};
pub use autotiering::{AutoTieringConfig, AutoTieringPolicy};
pub use hemem::{HememConfig, HememPolicy};
pub use multiclock::{MultiClockConfig, MultiClockPolicy};
pub use nimble::{NimbleConfig, NimblePolicy};
pub use static_::StaticPolicy;
pub use tiering08::{Tiering08Config, Tiering08Policy};
pub use tmts::{TmtsConfig, TmtsPolicy};
pub use tpp::{TppConfig, TppPolicy};
