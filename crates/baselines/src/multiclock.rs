//! MULTI-CLOCK (HPCA '22) — CLOCK-based dynamic tiering.
//!
//! Reproduced decision rules (paper Table 1): page-table scanning feeds
//! per-tier active/inactive CLOCK lists; a page is promoted after being
//! found accessed in **two** scan intervals (static threshold 2), demotion
//! takes inactive-tail pages, and all migration happens in the background.

use memtis_sim::prelude::{
    DetHashMap, PageSize, PolicyDescriptor, PolicyOps, SimError, TierId, TieringPolicy, VirtPage,
};
use memtis_tracking::lru2q::{AccessResult, Lru2Q};
use memtis_tracking::ptscan::scan_and_clear;

/// MULTI-CLOCK tunables.
#[derive(Debug, Clone)]
pub struct MultiClockConfig {
    /// Scan period, in ticks.
    pub scan_every_ticks: u32,
    /// Fast-tier free watermark (fraction).
    pub watermark_frac: f64,
    /// Migration budget per scan (bytes).
    pub batch_bytes: u64,
}

impl Default for MultiClockConfig {
    fn default() -> Self {
        MultiClockConfig {
            scan_every_ticks: 8,
            watermark_frac: 0.02,
            batch_bytes: 16 << 20,
        }
    }
}

/// The MULTI-CLOCK policy.
pub struct MultiClockPolicy {
    cfg: MultiClockConfig,
    /// Capacity-tier CLOCK: activation (2nd accessed scan) promotes.
    capacity: Lru2Q,
    /// Fast-tier CLOCK: inactive tail is the demotion victim pool.
    fast: Lru2Q,
    sizes: DetHashMap<VirtPage, PageSize>,
    ticks: u32,
    /// Background promotions performed.
    pub promotions: u64,
}

impl MultiClockPolicy {
    /// Creates the policy.
    pub fn new(cfg: MultiClockConfig) -> Self {
        MultiClockPolicy {
            cfg,
            capacity: Lru2Q::new(),
            fast: Lru2Q::new(),
            sizes: DetHashMap::default(),
            ticks: 0,
            promotions: 0,
        }
    }

    fn demote(&mut self, ops: &mut PolicyOps<'_>, need: u64, budget: &mut u64) {
        while ops.free_bytes(TierId::FAST) < need && *budget > 0 {
            let Some(victim) = self.fast.pop_inactive() else {
                break;
            };
            let Some(&size) = self.sizes.get(&victim) else {
                continue;
            };
            match ops.locate(victim) {
                Some((TierId::FAST, s)) if s == size => {}
                _ => continue,
            }
            match ops.migrate(victim, TierId::CAPACITY) {
                Ok(_) => {
                    *budget = budget.saturating_sub(size.bytes());
                    self.capacity.insert_inactive(victim);
                }
                Err(SimError::OutOfMemory { .. }) => break,
                Err(_) => continue,
            }
        }
    }
}

impl TieringPolicy for MultiClockPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "MULTI-CLOCK",
            mechanism: "PT scanning",
            subpage_tracking: false,
            promotion_metric: "Recency + Frequency",
            demotion_metric: "Recency",
            thresholding: "Static access count",
            critical_path_migration: "None",
            page_size_handling: "None",
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        tier: TierId,
    ) {
        self.sizes.insert(vpage, size);
        if tier == TierId::FAST {
            self.fast.insert_inactive(vpage);
        }
        // Capacity pages enter the CLOCK on their first *accessed* scan, so
        // promotion needs two accessed scan intervals (threshold 2).
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        self.sizes.remove(&vpage);
        self.fast.remove(vpage);
        self.capacity.remove(vpage);
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.cfg.scan_every_ticks) {
            return;
        }
        let mut accessed = Vec::new();
        scan_and_clear(ops, |rec| {
            if rec.accessed {
                accessed.push(rec.vpage);
            }
        });
        let mut budget = self.cfg.batch_bytes;
        for v in accessed {
            match ops.locate(v) {
                Some((TierId::FAST, _)) => {
                    self.fast.on_access(v);
                }
                Some((_, size)) => {
                    if self.capacity.list_of(v).is_none() {
                        // First accessed scan: start tracking.
                        self.capacity.insert_inactive(v);
                        continue;
                    }
                    // Activation == second accessed scan == promote.
                    if self.capacity.on_access(v) == AccessResult::Activated {
                        if ops.free_bytes(TierId::FAST) < size.bytes() {
                            self.demote(ops, size.bytes(), &mut budget);
                        }
                        if budget >= size.bytes() && ops.migrate(v, TierId::FAST).is_ok() {
                            self.promotions += 1;
                            budget -= size.bytes();
                            self.capacity.remove(v);
                            self.fast.insert_inactive(v);
                            self.fast.on_access(v);
                        }
                    }
                }
                None => {}
            }
        }
        // Age the fast-tier active list so the inactive pool refills.
        let target = self.fast.active_len() / 4;
        for _ in 0..target {
            self.fast.deactivate_oldest();
        }
        let watermark = (ops.capacity_bytes(TierId::FAST) as f64 * self.cfg.watermark_frac) as u64;
        if ops.free_bytes(TierId::FAST) < watermark {
            let mut b = self.cfg.batch_bytes;
            self.demote(ops, watermark, &mut b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn two_accessed_scans_promote() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = MultiClockPolicy::new(MultiClockConfig {
            scan_every_ticks: 1,
            ..Default::default()
        });
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        // Scan 1: accessed once — not promoted yet (threshold 2).
        m.access(Access::load(0)).unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.tick(&mut ops);
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
        // Scan 2: accessed again — promoted in the background.
        m.access(Access::load(4096)).unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.tick(&mut ops);
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::FAST);
        assert_eq!(p.promotions, 1);
        // All cost went to the daemon sink: nothing on the critical path.
        assert_eq!(acct.app_extra_ns, 0.0);
    }
}
