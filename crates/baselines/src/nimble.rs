//! Nimble Page Management (ASPLOS '19) as a tiering baseline.
//!
//! Reproduced decision rules (paper Table 1, §2.2, §6.2.4):
//!
//! - Page-table scanning recency: a page is "hot" if its accessed bit was
//!   set during the last scan interval (static threshold of one).
//! - Aggressive background *exchange* migration: every interval, recently
//!   accessed capacity pages are promoted, displacing not-recently-accessed
//!   fast-tier pages — with no frequency information, workloads that touch
//!   many pages per interval (Silo) trigger massive migration churn
//!   (56.43× MEMTIS's traffic in the paper).

use memtis_sim::prelude::{
    PageSize, PolicyDescriptor, PolicyOps, SimError, TierId, TieringPolicy, VirtPage,
};
use memtis_tracking::ptscan::scan_and_clear;

/// Nimble tunables.
#[derive(Debug, Clone)]
pub struct NimbleConfig {
    /// Scan (and migration) period, in ticks.
    pub scan_every_ticks: u32,
    /// Exchange budget per scan (bytes).
    pub exchange_batch_bytes: u64,
}

impl Default for NimbleConfig {
    fn default() -> Self {
        NimbleConfig {
            scan_every_ticks: 8,
            exchange_batch_bytes: 64 << 20,
        }
    }
}

/// The Nimble policy.
pub struct NimblePolicy {
    cfg: NimbleConfig,
    ticks: u32,
    /// Exchange migrations performed.
    pub exchanges: u64,
}

impl NimblePolicy {
    /// Creates the policy.
    pub fn new(cfg: NimbleConfig) -> Self {
        NimblePolicy {
            cfg,
            ticks: 0,
            exchanges: 0,
        }
    }
}

impl TieringPolicy for NimblePolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "Nimble",
            mechanism: "PT scanning",
            subpage_tracking: false,
            promotion_metric: "Recency",
            demotion_metric: "Recency",
            thresholding: "Static access count",
            critical_path_migration: "None",
            page_size_handling: "None",
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.cfg.scan_every_ticks) {
            return;
        }
        // One scan: classify by the single recency bit.
        let mut hot_capacity: Vec<(VirtPage, PageSize)> = Vec::new();
        let mut cold_fast: Vec<(VirtPage, PageSize)> = Vec::new();
        let mut warm_fast: Vec<(VirtPage, PageSize)> = Vec::new();
        let mut records = Vec::new();
        scan_and_clear(ops, |rec| records.push(rec));
        for rec in records {
            match (ops.locate(rec.vpage), rec.accessed) {
                (Some((TierId::FAST, s)), false) => cold_fast.push((rec.vpage, s)),
                // With only one recency bit, accessed fast pages are still
                // exchange victims once the cold pool runs dry — the source
                // of Nimble's migration churn when the touched set exceeds
                // the fast tier (Silo, §6.2.4).
                (Some((TierId::FAST, s)), true) => warm_fast.push((rec.vpage, s)),
                (Some((t, s)), true) if t != TierId::FAST => hot_capacity.push((rec.vpage, s)),
                _ => {}
            }
        }
        // Exchange: promote every hot page, evicting victims as needed.
        let mut budget = self.cfg.exchange_batch_bytes;
        let mut cold = cold_fast.into_iter().chain(warm_fast);
        for (hot, size) in hot_capacity {
            if budget < size.bytes() {
                break;
            }
            while ops.free_bytes(TierId::FAST) < size.bytes() {
                let Some((victim, vsize)) = cold.next() else {
                    break;
                };
                match ops.locate(victim) {
                    Some((TierId::FAST, s)) if s == vsize => {}
                    _ => continue,
                }
                match ops.migrate(victim, TierId::CAPACITY) {
                    Ok(_) => {
                        budget = budget.saturating_sub(vsize.bytes());
                        self.exchanges += 1;
                    }
                    Err(SimError::OutOfMemory { .. }) => break,
                    Err(_) => continue,
                }
            }
            if ops.free_bytes(TierId::FAST) < size.bytes() {
                break;
            }
            if ops.migrate(hot, TierId::FAST).is_ok() {
                budget = budget.saturating_sub(size.bytes());
                self.exchanges += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn exchanges_hot_capacity_with_cold_fast() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE));
        let mut acct = CostAccounting::default();
        let mut p = NimblePolicy::new(NimbleConfig {
            scan_every_ticks: 1,
            ..Default::default()
        });
        // Cold page occupies the fast tier; hot page sits in capacity.
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        // Clear stale accessed bits from mapping, then touch only page 512.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            scan_and_clear(&mut ops, |_| {});
        }
        m.access(Access::load(512 * 4096)).unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.tick(&mut ops);
        }
        assert_eq!(m.locate(VirtPage(512)).unwrap().0, TierId::FAST);
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
        assert_eq!(p.exchanges, 2);
    }

    #[test]
    fn touching_everything_causes_churn() {
        // When the accessed working set exceeds the fast tier every scan,
        // Nimble keeps exchanging pages — the Silo pathology.
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE));
        let mut acct = CostAccounting::default();
        let mut p = NimblePolicy::new(NimbleConfig {
            scan_every_ticks: 1,
            ..Default::default()
        });
        for i in 0..4u64 {
            let tier = if i == 0 {
                TierId::FAST
            } else {
                TierId::CAPACITY
            };
            m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, tier)
                .unwrap();
        }
        let mut total_before = 0;
        for round in 0..4 {
            // Touch all four pages every interval.
            for i in 0..4u64 {
                m.access(Access::load(i * HUGE_PAGE_SIZE)).unwrap();
            }
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, round as f64);
            p.tick(&mut ops);
            total_before = m.stats.migration.traffic_4k();
        }
        assert!(
            total_before >= 2 * 512,
            "sustained exchange traffic expected, got {total_before}"
        );
    }
}
