//! Static placement baselines: all-fast (all-DRAM) and all-slow (all-NVM).
//!
//! The paper normalizes every result to the all-NVM-with-THP case (§6.1);
//! the all-DRAM case (with and without THP) appears as the upper reference
//! line in Fig. 7/8.

use memtis_sim::prelude::{PageSize, PolicyDescriptor, PolicyOps, TierId, TieringPolicy, VirtPage};

/// Pins all allocations to one tier and never migrates.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    tier: TierId,
    name: &'static str,
}

impl StaticPolicy {
    /// Everything on the fast tier (the all-DRAM reference).
    pub fn all_fast() -> Self {
        StaticPolicy {
            tier: TierId::FAST,
            name: "All-DRAM",
        }
    }

    /// Everything on the capacity tier (the all-NVM normalization baseline).
    pub fn all_slow() -> Self {
        StaticPolicy {
            tier: TierId::CAPACITY,
            name: "All-NVM",
        }
    }
}

impl TieringPolicy for StaticPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: self.name,
            mechanism: "None",
            subpage_tracking: false,
            promotion_metric: "-",
            demotion_metric: "-",
            thresholding: "-",
            critical_path_migration: "None",
            page_size_handling: "None",
        }
    }

    fn alloc_tier(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        _vpage: VirtPage,
        _size: PageSize,
    ) -> TierId {
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn all_slow_places_everything_on_capacity() {
        let mc = MachineConfig::dram_nvm(8 * HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE);
        let mut m = Machine::new(mc);
        let mut acct = CostAccounting::default();
        let mut p = StaticPolicy::all_slow();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
        assert_eq!(
            p.alloc_tier(&mut ops, VirtPage(0), PageSize::Huge),
            TierId::CAPACITY
        );
        assert_eq!(p.descriptor().name, "All-NVM");
    }

    #[test]
    fn all_fast_prefers_fast() {
        let mc = MachineConfig::dram_nvm(8 * HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE);
        let mut m = Machine::new(mc);
        let mut acct = CostAccounting::default();
        let mut p = StaticPolicy::all_fast();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
        assert_eq!(
            p.alloc_tier(&mut ops, VirtPage(0), PageSize::Huge),
            TierId::FAST
        );
    }
}
