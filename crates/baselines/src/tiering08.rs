//! Tiering-0.8 — the Linux kernel tiering patch series (V. Verma).
//!
//! Reproduced decision rules (paper Table 1, §2.2):
//!
//! - NUMA-hint faults measure an approximate *re-fault interval* per page;
//!   a page whose faults recur within the promotion-interval threshold is
//!   promoted in the fault handler (critical path).
//! - The threshold adapts to throttle the **promotion rate** toward a
//!   target — the paper's example of a system that adapts its threshold,
//!   but only to limit migration traffic, not to fit the hot set to the
//!   fast tier.
//! - Demotion is recency-based (kswapd-style) and keeps free headroom that
//!   new allocations may also use (which is why it does well on
//!   603.bwaves' short-lived data, §6.2.6).

use memtis_sim::prelude::{
    DetHashMap, PageSize, PolicyDescriptor, PolicyOps, SimError, TierId, TieringPolicy, VirtPage,
};
use memtis_tracking::hintfault::HintFaultSampler;
use std::collections::VecDeque;

/// Tiering-0.8 tunables.
#[derive(Debug, Clone)]
pub struct Tiering08Config {
    /// Hint-bit sweep length: one full pass over tracked pages takes
    /// this many ticks (kernel-like constant coverage time).
    pub sweep_rounds: u32,
    /// Initial re-fault-interval threshold for promotion (ns).
    pub initial_threshold_ns: f64,
    /// Target promotions per tick; the threshold adapts toward it.
    pub target_promotions_per_tick: f64,
    /// Fast-tier free headroom (fraction) maintained by demotion.
    pub headroom_frac: f64,
    /// Demotion budget per tick (bytes).
    pub demote_batch_bytes: u64,
}

impl Default for Tiering08Config {
    fn default() -> Self {
        Tiering08Config {
            sweep_rounds: 192,
            initial_threshold_ns: 1e7,
            target_promotions_per_tick: 4.0,
            headroom_frac: 0.02,
            demote_batch_bytes: 16 << 20,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Page {
    size: PageSize,
    last_fault_ns: f64,
}

/// The Tiering-0.8 policy.
pub struct Tiering08Policy {
    cfg: Tiering08Config,
    sampler: HintFaultSampler,
    pages: DetHashMap<VirtPage, Page>,
    /// FIFO of fast-tier pages in arrival order (recency demotion).
    fast_fifo: VecDeque<VirtPage>,
    threshold_ns: f64,
    promotions_this_tick: u32,
    /// Promotions performed in the fault handler.
    pub critical_path_promotions: u64,
}

impl Tiering08Policy {
    /// Creates the policy.
    pub fn new(cfg: Tiering08Config) -> Self {
        let sweep = cfg.sweep_rounds;
        let thr = cfg.initial_threshold_ns;
        Tiering08Policy {
            cfg,
            sampler: HintFaultSampler::sweeping(sweep),
            pages: DetHashMap::default(),
            fast_fifo: VecDeque::new(),
            threshold_ns: thr,
            promotions_this_tick: 0,
            critical_path_promotions: 0,
        }
    }

    /// Current adaptive promotion threshold (ns).
    pub fn threshold_ns(&self) -> f64 {
        self.threshold_ns
    }

    fn demote_for_headroom(&mut self, ops: &mut PolicyOps<'_>, need: u64) {
        let mut budget = self.cfg.demote_batch_bytes;
        while ops.free_bytes(TierId::FAST) < need && budget > 0 {
            let Some(victim) = self.fast_fifo.pop_front() else {
                break;
            };
            let Some(p) = self.pages.get(&victim) else {
                continue;
            };
            let size = p.size;
            match ops.locate(victim) {
                Some((TierId::FAST, s)) if s == size => {}
                _ => continue,
            }
            match ops.migrate(victim, TierId::CAPACITY) {
                Ok(_) => {
                    budget = budget.saturating_sub(size.bytes());
                    self.sampler.on_alloc(victim, size);
                }
                Err(SimError::OutOfMemory { .. }) => break,
                Err(_) => continue,
            }
        }
    }
}

impl TieringPolicy for Tiering08Policy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "Tiering-0.8",
            mechanism: "Page fault",
            subpage_tracking: false,
            promotion_metric: "Recency",
            demotion_metric: "Recency",
            thresholding: "Promotion rate",
            critical_path_migration: "Promotion",
            page_size_handling: "None",
        }
    }

    fn alloc_tier(&mut self, ops: &mut PolicyOps<'_>, _vpage: VirtPage, size: PageSize) -> TierId {
        // Headroom is shared with new allocations (unlike AutoTiering).
        if ops.free_bytes(TierId::FAST) >= size.bytes() {
            TierId::FAST
        } else {
            TierId::CAPACITY
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        tier: TierId,
    ) {
        self.pages.insert(
            vpage,
            Page {
                size,
                last_fault_ns: f64::NEG_INFINITY,
            },
        );
        if tier == TierId::FAST {
            self.fast_fifo.push_back(vpage);
        } else {
            self.sampler.on_alloc(vpage, size);
        }
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        self.pages.remove(&vpage);
        self.sampler.on_free(vpage);
    }

    fn on_hint_fault(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage) {
        let now = ops.now_ns();
        let key = match ops.locate(vpage) {
            Some((_, PageSize::Huge)) => vpage.huge_aligned(),
            _ => vpage,
        };
        let Some(p) = self.pages.get_mut(&key) else {
            return;
        };
        let interval = now - p.last_fault_ns;
        p.last_fault_ns = now;
        let size = p.size;
        if interval > self.threshold_ns {
            return; // Re-fault interval too long: not promotion-worthy yet.
        }
        match ops.locate(key) {
            Some((t, s)) if t != TierId::FAST && s == size => {}
            _ => return,
        }
        if ops.free_bytes(TierId::FAST) < size.bytes() {
            self.demote_for_headroom(ops, size.bytes());
        }
        if ops.migrate(key, TierId::FAST).is_ok() {
            self.critical_path_promotions += 1;
            self.promotions_this_tick += 1;
            self.sampler.on_free(key);
            self.fast_fifo.push_back(key);
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.sampler.arm_round(ops);
        // Adapt the threshold to throttle the promotion rate.
        let rate = self.promotions_this_tick as f64;
        if rate > self.cfg.target_promotions_per_tick * 1.5 {
            self.threshold_ns *= 0.8;
        } else if rate < self.cfg.target_promotions_per_tick * 0.5 {
            self.threshold_ns *= 1.25;
        }
        self.threshold_ns = self.threshold_ns.clamp(1e3, 1e12);
        self.promotions_this_tick = 0;
        // Recency-based demotion keeps the headroom.
        let headroom = (ops.capacity_bytes(TierId::FAST) as f64 * self.cfg.headroom_frac) as u64;
        if ops.free_bytes(TierId::FAST) < headroom {
            self.demote_for_headroom(ops, headroom);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn refault_within_threshold_promotes() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = Tiering08Policy::new(Tiering08Config::default());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        // First fault establishes recency; second (quick) refault promotes.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 1000.0);
            p.on_hint_fault(&mut ops, VirtPage(3));
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 2000.0);
            p.on_hint_fault(&mut ops, VirtPage(3));
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::FAST);
    }

    #[test]
    fn slow_refaults_are_throttled() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = Tiering08Policy::new(Tiering08Config {
            initial_threshold_ns: 10.0,
            ..Default::default()
        });
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Base, TierId::CAPACITY);
        }
        for t in [1e6, 2e6, 3e6] {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, t);
            p.on_hint_fault(&mut ops, VirtPage(0));
        }
        // Intervals of 1 ms with a 10 ns threshold: never promoted.
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
    }

    #[test]
    fn threshold_adapts_to_promotion_rate() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = Tiering08Policy::new(Tiering08Config::default());
        let t0 = p.threshold_ns();
        // No promotions happened: threshold loosens to find candidates.
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
        p.tick(&mut ops);
        assert!(p.threshold_ns() > t0);
    }
}
