//! TMTS (ASPLOS '23) — Google's warehouse-scale adaptable memory tiering.
//!
//! Reproduced decision rules (paper Table 1 and §8 "Comparison to TMTS"):
//!
//! - **Hybrid tracking**: page-table scanning builds per-page *idle ages*
//!   (kstaled-style) while hardware sampling spots hot pages.
//! - **Promotion** uses a simple static criterion: one access observed by
//!   sampling, or at least two by page-table scanning — performed in the
//!   background (no critical-path migration).
//! - **Demotion** is driven by a *cold-age histogram*: pages idle longer
//!   than an adaptive age threshold are demoted; the threshold adapts to
//!   keep the secondary-tier residency ratio (STRR) near a target (25% in
//!   production).
//! - **Huge pages are split upon demotion** (all-cold by definition), never
//!   by skew — the contrast the paper draws with MEMTIS's split policy.

use memtis_sim::prelude::{
    Access, AccessOutcome, DetHashMap, PageSize, PolicyDescriptor, PolicyOps, SimError, TierId,
    TieringPolicy, VirtPage,
};
use memtis_tracking::pebs::PebsSampler;
use memtis_tracking::ptscan::scan_and_clear;

/// TMTS tunables.
#[derive(Debug, Clone)]
pub struct TmtsConfig {
    /// PEBS load period (fixed; TMTS does not throttle dynamically).
    pub load_period: u64,
    /// PEBS store period.
    pub store_period: u64,
    /// Scan period, in ticks (builds idle ages).
    pub scan_every_ticks: u32,
    /// Scan-observed accesses required for promotion (paper: 2; one
    /// hardware sample also suffices).
    pub scan_promote_threshold: u8,
    /// Target secondary-tier residency ratio (paper: 25%).
    pub target_strr: f64,
    /// Initial demotion idle-age threshold, in scans.
    pub initial_demote_age: u32,
    /// Migration budget per tick (bytes).
    pub batch_bytes: u64,
}

impl Default for TmtsConfig {
    fn default() -> Self {
        TmtsConfig {
            load_period: 16,
            store_period: 2_000,
            scan_every_ticks: 8,
            scan_promote_threshold: 2,
            target_strr: 0.25,
            initial_demote_age: 4,
            batch_bytes: 16 << 20,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Page {
    size_huge: bool,
    /// Consecutive scans without an observed access.
    idle_age: u32,
    /// Accesses observed by scanning since last promotion decision.
    scan_hits: u8,
}

/// The TMTS policy.
pub struct TmtsPolicy {
    cfg: TmtsConfig,
    sampler: PebsSampler,
    pages: DetHashMap<VirtPage, Page>,
    demote_age: u32,
    ticks: u32,
    /// Cold-age histogram from the last scan (index = idle age, capped).
    pub cold_age_histogram: Vec<u64>,
    /// Huge pages split at demotion time.
    pub demotion_splits: u64,
}

impl TmtsPolicy {
    /// Creates the policy.
    pub fn new(cfg: TmtsConfig) -> Self {
        let sampler = PebsSampler::new(cfg.load_period, cfg.store_period);
        let demote_age = cfg.initial_demote_age;
        TmtsPolicy {
            cfg,
            sampler,
            pages: DetHashMap::default(),
            demote_age,
            ticks: 0,
            cold_age_histogram: vec![0; 32],
            demotion_splits: 0,
        }
    }

    /// Current adaptive demotion age threshold (scans).
    pub fn demote_age(&self) -> u32 {
        self.demote_age
    }

    fn promote(&mut self, ops: &mut PolicyOps<'_>, key: VirtPage) {
        let Some(p) = self.pages.get(&key) else {
            return;
        };
        let size = if p.size_huge {
            PageSize::Huge
        } else {
            PageSize::Base
        };
        match ops.locate(key) {
            Some((t, s)) if t != TierId::FAST && s == size => {}
            _ => return,
        }
        if ops.free_bytes(TierId::FAST) >= size.bytes() {
            let _ = ops.migrate(key, TierId::FAST);
        }
    }
}

impl TieringPolicy for TmtsPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "TMTS",
            mechanism: "PT scanning & HW-based sampling",
            subpage_tracking: false,
            promotion_metric: "Recency + Frequency",
            demotion_metric: "Recency",
            thresholding: "Static count (promo), idle age (demo)",
            critical_path_migration: "None",
            page_size_handling: "Split upon demotion",
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        _tier: TierId,
    ) {
        self.pages.insert(
            vpage,
            Page {
                size_huge: size == PageSize::Huge,
                ..Default::default()
            },
        );
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        self.pages.remove(&vpage);
    }

    fn on_access(&mut self, ops: &mut PolicyOps<'_>, access: &Access, outcome: &AccessOutcome) {
        let Some(sample) = self.sampler.observe(access, outcome) else {
            return;
        };
        ops.charge(4.0);
        let key = match outcome.page_size {
            PageSize::Huge => sample.vaddr.base_page().huge_aligned(),
            PageSize::Base => sample.vaddr.base_page(),
        };
        if let Some(p) = self.pages.get_mut(&key) {
            p.idle_age = 0;
        }
        // One hardware sample suffices for promotion candidacy (§8); the
        // move itself happens here in daemon context, off the critical path.
        if outcome.tier != TierId::FAST {
            self.promote(ops, key);
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.cfg.scan_every_ticks) {
            return;
        }
        // Scan: harvest accessed bits into idle ages and scan-hit counts.
        let mut accessed = Vec::new();
        let mut idle = Vec::new();
        scan_and_clear(ops, |rec| {
            if rec.accessed {
                accessed.push(rec.vpage);
            } else {
                idle.push(rec.vpage);
            }
        });
        self.cold_age_histogram.iter_mut().for_each(|v| *v = 0);
        let mut promote = Vec::new();
        for v in accessed {
            if let Some(p) = self.pages.get_mut(&v) {
                p.idle_age = 0;
                p.scan_hits = p.scan_hits.saturating_add(1);
                if p.scan_hits >= self.cfg.scan_promote_threshold {
                    p.scan_hits = 0;
                    promote.push(v);
                }
            }
        }
        let mut demote: Vec<(VirtPage, bool)> = Vec::new();
        for v in idle {
            if let Some(p) = self.pages.get_mut(&v) {
                p.idle_age = p.idle_age.saturating_add(1);
                let bucket = (p.idle_age as usize).min(self.cold_age_histogram.len() - 1);
                self.cold_age_histogram[bucket] += 1;
                if p.idle_age >= self.demote_age {
                    demote.push((v, p.size_huge));
                }
            }
        }

        // Background promotion (static criterion: 2 scan hits).
        for v in promote {
            self.promote(ops, v);
        }

        // Adapt the demotion age to steer STRR toward the target: if the
        // secondary tier holds less than the target share, demote more
        // eagerly (lower age); if more, be more protective.
        let fast_used = ops.capacity_bytes(TierId::FAST) - ops.free_bytes(TierId::FAST);
        let cap_used = ops.capacity_bytes(TierId::CAPACITY) - ops.free_bytes(TierId::CAPACITY);
        let total = (fast_used + cap_used).max(1);
        let strr = cap_used as f64 / total as f64;
        if strr < self.cfg.target_strr * 0.8 {
            self.demote_age = self.demote_age.saturating_sub(1).max(1);
        } else if strr > self.cfg.target_strr * 1.2 {
            self.demote_age = (self.demote_age + 1).min(30);
        }

        // Demotion, splitting huge pages on the way down ("all demoted huge
        // pages, which are entirely cold, undergo splitting upon demotion").
        let mut budget = self.cfg.batch_bytes;
        for (v, huge) in demote {
            if budget == 0 {
                break;
            }
            match ops.locate(v) {
                Some((TierId::FAST, size)) => {
                    if huge && size == PageSize::Huge {
                        if ops.split_huge(v, false).is_err() {
                            continue;
                        }
                        self.demotion_splits += 1;
                        // Track the subpages individually from here on.
                        self.pages.remove(&v);
                        for i in 0..memtis_sim::addr::NR_SUBPAGES {
                            let child = v.add(i);
                            self.pages.insert(
                                child,
                                Page {
                                    size_huge: false,
                                    idle_age: self.demote_age,
                                    scan_hits: 0,
                                },
                            );
                            match ops.migrate(child, TierId::CAPACITY) {
                                Ok(_) => budget = budget.saturating_sub(4096),
                                Err(SimError::OutOfMemory { .. }) => break,
                                Err(_) => continue,
                            }
                        }
                    } else {
                        match ops.migrate(v, TierId::CAPACITY) {
                            Ok(_) => budget = budget.saturating_sub(size.bytes()),
                            Err(SimError::OutOfMemory { .. }) => break,
                            Err(_) => continue,
                        }
                    }
                }
                _ => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    fn env() -> (Machine, CostAccounting) {
        (
            Machine::new(MachineConfig::dram_nvm(
                4 * HUGE_PAGE_SIZE,
                32 * HUGE_PAGE_SIZE,
            )),
            CostAccounting::default(),
        )
    }

    fn cfg() -> TmtsConfig {
        TmtsConfig {
            load_period: 1,
            store_period: 1,
            scan_every_ticks: 1,
            initial_demote_age: 2,
            ..Default::default()
        }
    }

    #[test]
    fn sampled_page_promotes_in_background() {
        let (mut m, mut acct) = env();
        let mut p = TmtsPolicy::new(cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        let a = Access::store(0);
        let out = m.access(a).unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_access(&mut ops, &a, &out);
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::FAST);
        assert_eq!(acct.app_extra_ns, 0.0, "no critical-path work");
    }

    #[test]
    fn idle_huge_pages_split_upon_demotion() {
        let (mut m, mut acct) = env();
        let mut p = TmtsPolicy::new(cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        // Touch every subpage once so nothing is freed as all-zero later.
        for i in 0..512u64 {
            m.access(Access::store(i * 4096)).unwrap();
        }
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::FAST);
        }
        // Scans with no further accesses: idle age climbs past the
        // threshold and the page is split and demoted as base pages.
        for t in 0..8 {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, t as f64);
            p.tick(&mut ops);
        }
        assert!(p.demotion_splits >= 1, "huge page split at demotion");
        assert_eq!(
            m.locate(VirtPage(17)),
            Some((TierId::CAPACITY, PageSize::Base))
        );
    }

    #[test]
    fn demote_age_adapts_toward_strr_target() {
        let (mut m, mut acct) = env();
        let mut p = TmtsPolicy::new(cfg());
        // Everything resident in fast tier: STRR = 0 < target -> demote age
        // should fall toward its floor.
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::FAST);
        }
        let before = p.demote_age();
        for t in 0..3 {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, t as f64);
            p.tick(&mut ops);
        }
        assert!(p.demote_age() <= before);
    }
}
