//! TPP (ASPLOS '23) — Transparent Page Placement for CXL tiered memory.
//!
//! Reproduced decision rules (paper Table 1, §2.2, §6.2.3):
//!
//! - NUMA-hint faults on capacity-tier pages; a page is promoted on its
//!   *second* fault (static threshold 2, "extending LRU policies"), **in the
//!   fault handler** — critical-path promotion.
//! - Fast-tier pages age through active/inactive LRU lists refreshed by
//!   page-table scanning; demotion takes inactive-tail pages in the
//!   background to keep a free-page watermark for new allocations.
//! - New allocations go to the fast tier while the watermark holds (the
//!   behaviour that serves 603.bwaves' short-lived data well).
//!
//! The coarse 2Q classification is what the paper blames for TPP identifying
//! more hot pages than fast-tier capacity at 1:8/1:16 on Liblinear.

use memtis_sim::prelude::{
    DetHashMap, PageSize, PolicyDescriptor, PolicyOps, SimError, TierId, TieringPolicy, VirtPage,
};
use memtis_tracking::hintfault::HintFaultSampler;
use memtis_tracking::lru2q::Lru2Q;
use memtis_tracking::ptscan::scan_and_clear;

/// TPP tunables.
#[derive(Debug, Clone)]
pub struct TppConfig {
    /// Fault count that triggers promotion (TPP: 2).
    pub promote_faults: u8,
    /// Hint-bit sweep length over capacity-tier pages, in ticks.
    pub sweep_rounds: u32,
    /// Fast-tier free watermark as a fraction of capacity.
    pub watermark_frac: f64,
    /// Page-table scan period, in ticks (fast-tier aging).
    pub scan_every_ticks: u32,
    /// Demotion budget per tick (bytes).
    pub demote_batch_bytes: u64,
}

impl Default for TppConfig {
    fn default() -> Self {
        TppConfig {
            promote_faults: 2,
            sweep_rounds: 192,
            watermark_frac: 0.02,
            scan_every_ticks: 8,
            demote_batch_bytes: 16 << 20,
        }
    }
}

/// The TPP policy.
pub struct TppPolicy {
    cfg: TppConfig,
    sampler: HintFaultSampler,
    /// Hint-fault counters for capacity-tier pages.
    fault_counts: DetHashMap<VirtPage, u8>,
    /// Active/inactive aging of fast-tier pages.
    lru: Lru2Q,
    sizes: DetHashMap<VirtPage, PageSize>,
    ticks: u32,
    /// Promotions performed in the fault handler.
    pub critical_path_promotions: u64,
}

impl TppPolicy {
    /// Creates the policy.
    pub fn new(cfg: TppConfig) -> Self {
        let sweep = cfg.sweep_rounds;
        TppPolicy {
            cfg,
            sampler: HintFaultSampler::sweeping(sweep),
            fault_counts: DetHashMap::default(),
            lru: Lru2Q::new(),
            sizes: DetHashMap::default(),
            ticks: 0,
            critical_path_promotions: 0,
        }
    }

    fn demote_for_watermark(&mut self, ops: &mut PolicyOps<'_>, need: u64) {
        let mut budget = self.cfg.demote_batch_bytes;
        while ops.free_bytes(TierId::FAST) < need && budget > 0 {
            let Some(victim) = self.lru.pop_inactive() else {
                break;
            };
            let Some(&size) = self.sizes.get(&victim) else {
                continue;
            };
            match ops.locate(victim) {
                Some((TierId::FAST, s)) if s == size => {}
                _ => continue,
            }
            match ops.migrate(victim, TierId::CAPACITY) {
                Ok(_) => {
                    budget = budget.saturating_sub(size.bytes());
                    // Demoted pages become promotion-trackable again.
                    self.fault_counts.insert(victim, 0);
                    self.sampler.on_alloc(victim, size);
                }
                Err(SimError::OutOfMemory { .. }) => break,
                Err(_) => continue,
            }
        }
    }
}

impl TieringPolicy for TppPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "TPP",
            mechanism: "Page fault",
            subpage_tracking: false,
            promotion_metric: "Recency + Frequency",
            demotion_metric: "Recency",
            thresholding: "Static access count",
            critical_path_migration: "Promotion",
            page_size_handling: "None",
        }
    }

    fn alloc_tier(&mut self, ops: &mut PolicyOps<'_>, _vpage: VirtPage, size: PageSize) -> TierId {
        if ops.free_bytes(TierId::FAST) >= size.bytes() {
            TierId::FAST
        } else {
            TierId::CAPACITY
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        tier: TierId,
    ) {
        self.sizes.insert(vpage, size);
        if tier == TierId::FAST {
            self.lru.insert_inactive(vpage);
        } else {
            self.fault_counts.insert(vpage, 0);
            self.sampler.on_alloc(vpage, size);
        }
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        self.sizes.remove(&vpage);
        self.lru.remove(vpage);
        self.fault_counts.remove(&vpage);
        self.sampler.on_free(vpage);
    }

    fn on_hint_fault(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage) {
        let key = match ops.locate(vpage) {
            Some((_, PageSize::Huge)) => vpage.huge_aligned(),
            _ => vpage,
        };
        let Some(c) = self.fault_counts.get_mut(&key) else {
            return;
        };
        *c = c.saturating_add(1);
        if *c < self.cfg.promote_faults {
            return;
        }
        // Second access: promote NOW, in the fault handler (critical path —
        // the ops sink is App here).
        let Some(&size) = self.sizes.get(&key) else {
            return;
        };
        match ops.locate(key) {
            Some((t, s)) if t != TierId::FAST && s == size => {}
            _ => return,
        }
        if ops.free_bytes(TierId::FAST) < size.bytes() {
            self.demote_for_watermark(ops, size.bytes());
        }
        if ops.migrate(key, TierId::FAST).is_ok() {
            self.critical_path_promotions += 1;
            self.fault_counts.remove(&key);
            self.sampler.on_free(key);
            self.lru.insert_inactive(key);
            self.lru.on_access(key); // Promoted because hot: start active.
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.ticks += 1;
        // Arm hint faults over capacity-tier pages.
        self.sampler.arm_round(ops);
        // Periodic fast-tier aging scan (the unscalable part: cost grows
        // with mapped entries).
        if self.ticks.is_multiple_of(self.cfg.scan_every_ticks) {
            let mut hits = Vec::new();
            scan_and_clear(ops, |rec| {
                if rec.accessed {
                    hits.push(rec.vpage);
                }
            });
            for v in hits {
                self.lru.on_access(v);
            }
            // Age one batch from active to inactive to keep eviction fodder.
            let target = self.lru.active_len() / 4;
            for _ in 0..target {
                self.lru.deactivate_oldest();
            }
        }
        // Background reclaim: keep the allocation watermark.
        let watermark = (ops.capacity_bytes(TierId::FAST) as f64 * self.cfg.watermark_frac) as u64;
        if ops.free_bytes(TierId::FAST) < watermark {
            self.demote_for_watermark(ops, watermark);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    fn env() -> (Machine, CostAccounting) {
        (
            Machine::new(MachineConfig::dram_nvm(
                4 * HUGE_PAGE_SIZE,
                32 * HUGE_PAGE_SIZE,
            )),
            CostAccounting::default(),
        )
    }

    #[test]
    fn promotes_on_second_fault_in_fault_handler() {
        let (mut m, mut acct) = env();
        let mut p = TppPolicy::new(TppConfig::default());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        // First fault: counted, not promoted.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_hint_fault(&mut ops, VirtPage(3));
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
        // Second fault: promoted on the spot, cost charged to the app sink.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_hint_fault(&mut ops, VirtPage(100));
        }
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::FAST);
        assert_eq!(p.critical_path_promotions, 1);
        assert!(acct.app_extra_ns > 0.0, "promotion cost on critical path");
        assert_eq!(acct.daemon_ns, 0.0);
    }

    #[test]
    fn reclaim_demotes_inactive_fast_pages() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            2 * HUGE_PAGE_SIZE,
            32 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = TppPolicy::new(TppConfig {
            watermark_frac: 0.5,
            ..Default::default()
        });
        for i in 0..2u64 {
            m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::FAST)
                .unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, VirtPage(i * 512), PageSize::Huge, TierId::FAST);
        }
        assert_eq!(m.free_bytes(TierId::FAST), 0);
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.tick(&mut ops);
        }
        // Watermark 50%: one of the two huge pages was demoted.
        assert_eq!(m.free_bytes(TierId::FAST), HUGE_PAGE_SIZE);
    }

    #[test]
    fn hint_arming_happens_on_capacity_pages() {
        let (mut m, mut acct) = env();
        let mut p = TppPolicy::new(TppConfig::default());
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Base, TierId::CAPACITY);
        }
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.tick(&mut ops);
        }
        let out = m.access(Access::load(0)).unwrap();
        assert!(out.hint_fault, "armed page should fault on access");
    }
}
