//! §8 extension ablation — hybrid page-table scanning + PEBS sampling.
//!
//! The paper's stated limitation: event sampling cannot distinguish rarely
//! accessed pages from never-accessed ones, so demotion among them is
//! blind; it proposes supplementing sampling with page-table scanning. This
//! bench runs MEMTIS with and without the extension and reports the
//! performance delta, the number of scan-supplemented pages, and the extra
//! daemon cost the paper warns about ("runtime overhead without yielding
//! performance benefits" when the workload doesn't need it).

use memtis_bench::{driver_config, machine_for, run_sim, CapacityKind, Ratio, Table};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut table = Table::new(vec![
        "benchmark",
        "base wall (ms)",
        "hybrid wall (ms)",
        "perf delta",
        "scan-supplemented pages",
        "extra daemon (ms)",
    ]);
    for bench in Benchmark::ALL {
        let (base, _) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(MemtisConfig::sim_scaled()),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let (hybrid, hsim) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(MemtisConfig::sim_scaled().with_hybrid_scan(16)),
            driver_config(),
            memtis_bench::access_budget(),
        );
        table.row(vec![
            bench.name().to_string(),
            format!("{:.2}", base.wall_ns / 1e6),
            format!("{:.2}", hybrid.wall_ns / 1e6),
            format!("{:+.2}%", (base.wall_ns / hybrid.wall_ns - 1.0) * 100.0),
            hsim.policy().stats.scan_supplements.to_string(),
            format!("{:.2}", (hybrid.daemon_ns - base.daemon_ns) / 1e6),
        ]);
    }
    memtis_bench::emit(
        "ext_hybrid_scan",
        "§8 extension: PT scanning supplementing PEBS (future work, off by default)",
        &table,
    );
}
