//! Figure 10 — impact of the warm set and the huge-page split on
//! performance and migration traffic.
//!
//! Three MEMTIS variants per benchmark (1:8, NVM): vanilla (no split, no
//! warm set), +split, and +split+T_warm (full MEMTIS). The paper reports
//! the warm set cutting migration traffic by 2.7–64.8% and the split adding
//! performance on the skewed workloads (with a known regression on
//! 603.bwaves, where a large warm set delays freeing space for short-lived
//! allocations).

use memtis_bench::{normalized, run_baseline, run_system, CapacityKind, Ratio, System, Table};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut table = Table::new(vec![
        "benchmark",
        "vanilla perf",
        "w/ split perf",
        "w/ split+Twarm perf",
        "vanilla traffic (4K pages)",
        "w/ split traffic",
        "w/ split+Twarm traffic",
        "traffic vs vanilla",
    ]);
    for bench in Benchmark::ALL {
        let base = run_baseline(bench, scale, CapacityKind::Nvm);
        let vanilla = run_system(
            bench,
            scale,
            ratio,
            CapacityKind::Nvm,
            System::MemtisVanilla,
        );
        // "w/ Split": split enabled, warm set still disabled.
        let split_only = {
            use memtis_core::{MemtisConfig, MemtisPolicy};
            let mut cfg = MemtisConfig::sim_scaled();
            cfg.warm_set = false;
            let machine = memtis_bench::machine_for(bench, scale, ratio, CapacityKind::Nvm);
            memtis_bench::run_cell(
                bench,
                scale,
                machine,
                Box::new(MemtisPolicy::new(cfg)),
                memtis_bench::driver_config(),
                memtis_bench::access_budget(),
            )
        };
        let full = run_system(bench, scale, ratio, CapacityKind::Nvm, System::Memtis);
        let t0 = vanilla.stats.migration.traffic_4k().max(1);
        let t1 = split_only.stats.migration.traffic_4k();
        let t2 = full.stats.migration.traffic_4k();
        table.row(vec![
            bench.name().to_string(),
            format!("{:.3}", normalized(&base, &vanilla)),
            format!("{:.3}", normalized(&base, &split_only)),
            format!("{:.3}", normalized(&base, &full)),
            t0.to_string(),
            t1.to_string(),
            t2.to_string(),
            format!("{:+.1}%", (t2 as f64 / t0 as f64 - 1.0) * 100.0),
        ]);
    }
    memtis_bench::emit(
        "fig10_ablation",
        "warm set + huge-page split ablation at 1:8 (paper Fig. 10)",
        &table,
    );
}
