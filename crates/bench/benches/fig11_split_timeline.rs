//! Figure 11 — Silo and Btree throughput over time with and without the
//! skewness-aware split (1:8 configuration).
//!
//! MEMTIS detects the skewed huge pages in the fast tier partway through
//! the run and starts splintering them; after a short dip the throughput
//! overtakes both MEMTIS-NS (no split) and the best fault-based system.
//! For Btree, splitting also reclaims THP bloat (RSS 38.3 → 27.2 GB in the
//! paper).

use memtis_bench::{
    driver_config, machine_for, run_sim, run_system, CapacityKind, Ratio, System, Table,
};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut summary = Table::new(vec![
        "benchmark",
        "MEMTIS thpt (M/s)",
        "MEMTIS-NS thpt (M/s)",
        "Tiering-0.8 thpt (M/s)",
        "split gain",
        "splits",
        "RSS MEMTIS (MB)",
        "RSS MEMTIS-NS (MB)",
    ]);
    for bench in [Benchmark::Silo, Benchmark::Btree] {
        let machine = machine_for(bench, scale, ratio, CapacityKind::Nvm);
        let (memtis_r, memtis_sim) = run_sim(
            bench,
            scale,
            machine.clone(),
            MemtisPolicy::new(MemtisConfig::sim_scaled()),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let ns_r = run_system(bench, scale, ratio, CapacityKind::Nvm, System::MemtisNs);
        let t08_r = run_system(bench, scale, ratio, CapacityKind::Nvm, System::Tiering08);

        // Throughput-over-time CSV (the paper's line chart), from the
        // shared telemetry window collector.
        let mut csv = Table::new(vec![
            "time_ns",
            "memtis_mps",
            "memtis_ns_mps",
            "tiering08_mps",
            "memtis_splits",
        ]);
        let series = |r: &memtis_sim::driver::RunReport, i: usize| {
            r.windows.get(i).map(|w| w.window_throughput / 1e6)
        };
        let splits_at = |i: usize| memtis_r.windows.get(i).and_then(|w| w.gauge("splits"));
        let len = memtis_r
            .windows
            .len()
            .max(ns_r.windows.len())
            .max(t08_r.windows.len());
        for i in 0..len {
            csv.row(vec![
                memtis_r
                    .windows
                    .get(i)
                    .map(|w| format!("{:.0}", w.wall_ns))
                    .unwrap_or_default(),
                series(&memtis_r, i)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_default(),
                series(&ns_r, i)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_default(),
                series(&t08_r, i)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_default(),
                splits_at(i).map(|v| format!("{v:.0}")).unwrap_or_default(),
            ]);
        }
        memtis_bench::emit(
            &format!("fig11_timeline_{}", bench.name().to_lowercase()),
            &format!("throughput over time, {} 1:8", bench.name()),
            &csv,
        );

        summary.row(vec![
            bench.name().to_string(),
            format!("{:.1}", memtis_r.throughput() / 1e6),
            format!("{:.1}", ns_r.throughput() / 1e6),
            format!("{:.1}", t08_r.throughput() / 1e6),
            format!(
                "{:+.1}%",
                (memtis_r.throughput() / ns_r.throughput() - 1.0) * 100.0
            ),
            memtis_sim.policy().stats.splits.to_string(),
            format!("{:.0}", memtis_r.rss_final_bytes as f64 / (1 << 20) as f64),
            format!("{:.0}", ns_r.rss_final_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    memtis_bench::emit(
        "fig11_split_timeline",
        "Silo/Btree over time: MEMTIS vs MEMTIS-NS vs Tiering-0.8 (paper Fig. 11: +10.6%/+10.4%)",
        &summary,
    );
}
