//! Figure 12 — fast-tier hit ratios at 1:8: the estimated base-page-only
//! hit ratio (eHR), the real hit ratio with splits (rHR), and the real hit
//! ratio without splits (rHR-NS).
//!
//! Paper shape: Silo and Btree show a large eHR − rHR-NS gap (64.1% and
//! 36.4%) that the split mostly closes (+52.91% and +19.92% rHR); dense
//! workloads (Graph500, PageRank, Liblinear) show eHR ≈ or below rHR — no
//! reason to split; 603.bwaves keeps a low rHR because short-lived
//! allocation churn keeps demoting hot pages.

use memtis_bench::{driver_config, machine_for, run_sim, CapacityKind, Ratio, Table};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut table = Table::new(vec![
        "benchmark",
        "eHR",
        "rHR (with split)",
        "rHR-NS (no split)",
        "split closes gap",
        "splits",
    ]);
    for bench in Benchmark::ALL {
        let (with_r, with_sim) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(MemtisConfig::sim_scaled()),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let (without_r, without_sim) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(MemtisConfig::sim_scaled().without_split()),
            driver_config(),
            memtis_bench::access_budget(),
        );
        // Steady-state values: average over the second half of the run's
        // estimation windows.
        let avg_tail = |series: &[(f64, f64, f64)], idx: usize| -> f64 {
            let tail = &series[series.len() / 2..];
            if tail.is_empty() {
                return 0.0;
            }
            tail.iter()
                .map(|t| if idx == 0 { t.1 } else { t.2 })
                .sum::<f64>()
                / tail.len() as f64
        };
        let rhr = avg_tail(&with_sim.policy().stats.hr_series, 0);
        let ehr = avg_tail(&without_sim.policy().stats.hr_series, 1);
        let rhr_ns = avg_tail(&without_sim.policy().stats.hr_series, 0);
        table.row(vec![
            bench.name().to_string(),
            format!("{:.1}%", ehr * 100.0),
            format!("{:.1}%", rhr * 100.0),
            format!("{:.1}%", rhr_ns * 100.0),
            format!("{:+.1}pp", (rhr - rhr_ns) * 100.0),
            with_sim.policy().stats.splits.to_string(),
        ]);
        let _ = (with_r, without_r);
    }
    memtis_bench::emit(
        "fig12_hit_ratios",
        "eHR / rHR / rHR-NS at 1:8 (paper Fig. 12)",
        &table,
    );
}
