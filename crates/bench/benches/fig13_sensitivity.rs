//! Figure 13 — sensitivity to the threshold-adaptation and cooling
//! intervals (2:1 configuration).
//!
//! Each interval is swept from one tenth of its default to ten times it;
//! performance is normalized to the default setting. The paper finds
//! MEMTIS robustly insensitive except at the largest adaptation interval,
//! where the hot set identified over the over-long window can exceed small
//! fast tiers.

use memtis_bench::{driver_config, geomean, machine_for, run_cell, CapacityKind, Ratio, Table};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_workloads::{Benchmark, Scale};

fn run_with(bench: Benchmark, cfg: MemtisConfig) -> f64 {
    let scale = Scale::DEFAULT;
    let machine = machine_for(bench, scale, Ratio::TWO_TO_ONE, CapacityKind::Nvm);
    let r = run_cell(
        bench,
        scale,
        machine,
        Box::new(MemtisPolicy::new(cfg)),
        driver_config(),
        memtis_bench::access_budget(),
    );
    r.wall_ns
}

fn main() {
    let factors: [f64; 5] = [0.1, 0.5, 1.0, 5.0, 10.0];
    let default = MemtisConfig::sim_scaled();

    for (axis, label) in [(0, "adaptation interval"), (1, "cooling interval")] {
        let mut header: Vec<String> = vec!["benchmark".into()];
        header.extend(factors.iter().map(|f| format!("{f}x")));
        let mut table = Table::new(header);
        let mut per_factor: Vec<Vec<f64>> = vec![Vec::new(); factors.len()];

        for bench in Benchmark::ALL {
            let base_wall = run_with(bench, default.clone());
            let mut row = vec![bench.name().to_string()];
            for (fi, &f) in factors.iter().enumerate() {
                let wall = if (f - 1.0).abs() < 1e-9 {
                    base_wall
                } else {
                    let mut cfg = default.clone();
                    if axis == 0 {
                        cfg.adapt_interval = ((cfg.adapt_interval as f64 * f) as u64).max(100);
                    } else {
                        cfg.cooling_interval =
                            ((cfg.cooling_interval as f64 * f) as u64).max(1_000);
                    }
                    run_with(bench, cfg)
                };
                let norm = base_wall / wall;
                per_factor[fi].push(norm);
                row.push(format!("{norm:.3}"));
            }
            table.row(row);
        }
        let mut geo = vec!["geomean".to_string()];
        for v in &per_factor {
            geo.push(format!("{:.3}", geomean(v)));
        }
        table.row(geo);
        memtis_bench::emit(
            &format!(
                "fig13_sensitivity_{}",
                if axis == 0 { "adapt" } else { "cooling" }
            ),
            &format!(
                "sensitivity to the {label}, 2:1 config, normalized to default (paper Fig. 13)"
            ),
            &table,
        );
    }
}
