//! Figure 14 — emulated CXL memory as the capacity tier: MEMTIS vs TPP.
//!
//! With the smaller latency gap (177 ns vs 300 ns loads) the margins shrink
//! relative to the NVM case, but the paper still finds MEMTIS ahead of TPP
//! on every benchmark (up to +102.9% on PageRank).

use memtis_bench::{normalized, run_baseline, run_system, CapacityKind, Ratio, System, Table};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let mut table = Table::new(vec!["benchmark", "ratio", "TPP", "MEMTIS", "memtis vs tpp"]);
    let mut worst: f64 = f64::MAX;
    let mut best: f64 = f64::MIN;
    for bench in Benchmark::ALL {
        let base = run_baseline(bench, scale, CapacityKind::Cxl);
        for ratio in Ratio::MAIN {
            let tpp = run_system(bench, scale, ratio, CapacityKind::Cxl, System::Tpp);
            let memtis = run_system(bench, scale, ratio, CapacityKind::Cxl, System::Memtis);
            let (nt, nm) = (normalized(&base, &tpp), normalized(&base, &memtis));
            let adv = nm / nt - 1.0;
            worst = worst.min(adv);
            best = best.max(adv);
            table.row(vec![
                bench.name().to_string(),
                ratio.label(),
                format!("{nt:.3}"),
                format!("{nm:.3}"),
                format!("{:+.1}%", adv * 100.0),
            ]);
        }
    }
    memtis_bench::emit(
        "fig14_cxl",
        "CXL capacity tier: MEMTIS vs TPP across ratios (paper Fig. 14)",
        &table,
    );
    println!(
        "MEMTIS vs TPP advantage range: {:+.1}% .. {:+.1}%",
        worst * 100.0,
        best * 100.0
    );
}
