//! Figure 1 — DAMON's granularity / interval / CPU-overhead trade-off.
//!
//! Three DAMON configurations monitor the 654.roms access stream (the
//! paper's heat-map workload):
//!
//! - `5ms-10-1000`   — coarse regions, short interval: cheap but lumps
//!   pages with distinct frequencies together (2.15% CPU in the paper).
//! - `500ms-10K-20K` — fine regions, long interval: cannot separate
//!   frequencies in time (3.18% CPU).
//! - `5ms-10K-20K`   — fine + fast: accurate but 72.85% CPU.
//!
//! Emits a CPU-overhead table plus one heat-map CSV per configuration
//! (time bin × address bin → aggregated access count).

use memtis_bench::{access_budget, Table, SEED};
use memtis_sim::prelude::{AccessStream, VirtAddr, WorkloadEvent};
use memtis_tracking::damon::{Damon, DamonConfig};
use memtis_workloads::{Benchmark, Scale, SpecStream};

/// Nominal per-access wall contribution (ns) at 20 threads.
const NS_PER_ACCESS: f64 = 10.0;
/// DAMON's intervals are compressed by this factor to fit the simulated
/// run length; its per-region check cost shrinks by the same factor so the
/// CPU-overhead *percentages* stay comparable to the paper's.
const INTERVAL_COMPRESSION: f64 = 2000.0;
const TIME_BINS: usize = 40;
const ADDR_BINS: usize = 32;

fn main() {
    let scale = Scale::DEFAULT;
    let spec = Benchmark::Roms.spec(scale, access_budget());
    // Monitoring targets: the workload's regions.
    let ranges: Vec<(VirtAddr, u64)> = spec.regions.iter().map(|r| (r.addr, r.bytes)).collect();
    let lo = ranges.iter().map(|(a, _)| a.0).min().unwrap();
    let hi = ranges.iter().map(|(a, b)| a.0 + b).max().unwrap();
    let total_ns = access_budget() as f64 * NS_PER_ACCESS;

    let configs: [(&str, DamonConfig); 3] = [
        ("5ms-10-1000", DamonConfig::paper(5.0, 10, 1000)),
        ("500ms-10K-20K", DamonConfig::paper(500.0, 10_000, 20_000)),
        ("5ms-10K-20K", DamonConfig::paper(5.0, 10_000, 20_000)),
    ];

    let mut table = Table::new(vec![
        "config",
        "regions (end)",
        "snapshots",
        "cpu overhead (1 core)",
        "paper cpu overhead",
        "addr bins with signal",
    ]);
    let paper_cpu = ["2.15%", "3.18%", "72.85%"];

    for (i, (name, cfg)) in configs.into_iter().enumerate() {
        // Time is compressed in the sim; scale DAMON's intervals by the same
        // factor the harness applies to everything else (64x) so interval-
        // to-runtime ratios match the paper's minutes-scale runs.
        let cfg = DamonConfig {
            sample_interval_ns: cfg.sample_interval_ns / INTERVAL_COMPRESSION,
            aggregate_interval_ns: cfg.aggregate_interval_ns / INTERVAL_COMPRESSION,
            ..cfg
        };
        let mut damon = Damon::new(cfg, &ranges, SEED);
        let mut wl = SpecStream::new(spec.clone(), SEED);
        let mut t = 0.0f64;
        while let Some(ev) = wl.next_event() {
            if let WorkloadEvent::Access(a) = ev {
                t += NS_PER_ACCESS;
                damon.observe(t, a.vaddr.base_page());
            }
        }
        damon.advance(t);

        // Build the heat map.
        let mut heat = vec![vec![0u64; ADDR_BINS]; TIME_BINS];
        for (when, snap) in &damon.history {
            let tb = (((when / total_ns) * TIME_BINS as f64) as usize).min(TIME_BINS - 1);
            for r in snap {
                let a0 = r.start.addr().0;
                let a1 = r.end.addr().0;
                let b0 = (((a0 - lo) as f64 / (hi - lo) as f64) * ADDR_BINS as f64) as usize;
                let b1 = (((a1 - lo) as f64 / (hi - lo) as f64) * ADDR_BINS as f64) as usize;
                for cell in &mut heat[tb][b0..=b1.min(ADDR_BINS - 1)] {
                    *cell += r.nr_accesses as u64;
                }
            }
        }
        let mut csv = Table::new(
            std::iter::once("time_bin".to_string())
                .chain((0..ADDR_BINS).map(|b| format!("addr{b}")))
                .collect::<Vec<_>>(),
        );
        for (tb, row) in heat.iter().enumerate() {
            let mut cells = vec![tb.to_string()];
            cells.extend(row.iter().map(|v| v.to_string()));
            csv.row(cells);
        }
        let csv_name = format!("fig1_damon_heatmap_{i}");
        memtis_bench::emit(&csv_name, &format!("DAMON heat map, config {name}"), &csv);

        let signal_bins = (0..ADDR_BINS)
            .filter(|&b| heat.iter().map(|r| r[b]).sum::<u64>() > 0)
            .count();
        table.row(vec![
            name.to_string(),
            damon.regions().len().to_string(),
            damon.history.len().to_string(),
            format!(
                "{:.2}%",
                damon.cpu_ns / INTERVAL_COMPRESSION / total_ns * 100.0
            ),
            paper_cpu[i].to_string(),
            signal_bins.to_string(),
        ]);
    }
    memtis_bench::emit(
        "fig1_damon",
        "DAMON granularity/interval/CPU trade-off (paper Fig. 1)",
        &table,
    );
}
