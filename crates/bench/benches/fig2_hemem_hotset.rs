//! Figure 2 — hot pages identified by HeMem over time.
//!
//! PageRank: the static-threshold hot set stays far below the fast-tier
//! size, leaving the rest of fast memory to arbitrary cold pages. XSBench:
//! the hot set overshoots the fast tier mid-run and later collapses. Both
//! pathologies motivate MEMTIS's distribution-based thresholds.

use memtis_baselines::{HememConfig, HememPolicy};
use memtis_bench::{driver_config, machine_for, run_sim, CapacityKind, Ratio, Table};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut table = Table::new(vec![
        "benchmark",
        "fast tier (MB)",
        "hot set min (MB)",
        "hot set max (MB)",
        "time under fast size",
        "time over fast size",
    ]);
    for bench in [Benchmark::PageRank, Benchmark::XsBench] {
        let machine = machine_for(bench, scale, ratio, CapacityKind::Nvm);
        let fast = machine.tiers[0].capacity;
        let (_report, sim) = run_sim(
            bench,
            scale,
            machine,
            HememPolicy::new(HememConfig::default()),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let series = &sim.policy().hot_series;
        let mb = |b: u64| b as f64 / (1 << 20) as f64;
        let min = series.iter().map(|&(_, h)| h).min().unwrap_or(0);
        let max = series.iter().map(|&(_, h)| h).max().unwrap_or(0);
        let under = series.iter().filter(|&&(_, h)| h <= fast).count();
        let over = series.len() - under;
        table.row(vec![
            bench.name().to_string(),
            format!("{:.1}", mb(fast)),
            format!("{:.1}", mb(min)),
            format!("{:.1}", mb(max)),
            format!("{:.0}%", under as f64 / series.len().max(1) as f64 * 100.0),
            format!("{:.0}%", over as f64 / series.len().max(1) as f64 * 100.0),
        ]);

        // Full series CSV for plotting.
        let mut csv = Table::new(vec!["time_ns", "hot_bytes", "fast_bytes"]);
        for &(t, h) in series {
            csv.row(vec![format!("{t:.0}"), h.to_string(), fast.to_string()]);
        }
        memtis_bench::emit(
            &format!("fig2_hemem_hotset_{}", bench.name().to_lowercase()),
            &format!("HeMem identified hot set over time, {}", bench.name()),
            &csv,
        );
    }
    memtis_bench::emit(
        "fig2_hemem_hotset",
        "HeMem hot-set size vs fast-tier capacity (paper Fig. 2)",
        &table,
    );
}
