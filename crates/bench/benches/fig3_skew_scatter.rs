//! Figure 3 — hotness vs huge-page utilization scatter.
//!
//! Liblinear (dense data): hot huge pages have high utilization — hotness
//! and utilization correlate, so huge pages should stay whole. Silo
//! (hash-scattered records): no correlation — a hot huge page holds only a
//! few hot subpages, the case the skewness-aware split exploits.

use memtis_bench::{driver_config, machine_for, run_sim, CapacityKind, Ratio, Table};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_sim::prelude::PageSize;
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 2,
    };
    let mut summary = Table::new(vec![
        "benchmark",
        "huge pages",
        "mean utilization (of 512)",
        "utilization of hottest decile",
        "hotness-utilization correlation",
        "paper shape",
    ]);
    for (bench, paper_shape) in [
        (Benchmark::Liblinear, "positive correlation (Fig. 3a)"),
        (Benchmark::Silo, "no correlation, low utilization (Fig. 3b)"),
    ] {
        // Track with MEMTIS but without split/migration side effects on the
        // scatter: disable split so pages stay huge.
        let cfg = MemtisConfig::sim_scaled().without_split();
        let (_report, sim) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(cfg),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let policy = sim.policy();
        // One dot per huge page: (utilization = touched subpages, hotness).
        let mut dots: Vec<(u32, u64)> = Vec::new();
        for (_v, meta) in policy.pages_iter() {
            if meta.size != PageSize::Huge {
                continue;
            }
            let Some(sub) = meta.sub.as_ref() else {
                continue;
            };
            let touched = sub.counts.iter().filter(|&&c| c > 0).count() as u32;
            if meta.count > 0 {
                dots.push((touched, meta.count));
            }
        }
        let mut csv = Table::new(vec!["utilization", "hotness"]);
        for &(u, h) in &dots {
            csv.row(vec![u.to_string(), h.to_string()]);
        }
        memtis_bench::emit(
            &format!("fig3_skew_scatter_{}", bench.name().to_lowercase()),
            &format!("hotness vs utilization dots, {}", bench.name()),
            &csv,
        );

        let n = dots.len().max(1) as f64;
        let mean_u: f64 = dots.iter().map(|&(u, _)| u as f64).sum::<f64>() / n;
        let mean_h: f64 = dots.iter().map(|&(_, h)| h as f64).sum::<f64>() / n;
        let cov: f64 = dots
            .iter()
            .map(|&(u, h)| (u as f64 - mean_u) * (h as f64 - mean_h))
            .sum::<f64>();
        let var_u: f64 = dots.iter().map(|&(u, _)| (u as f64 - mean_u).powi(2)).sum();
        let var_h: f64 = dots.iter().map(|&(_, h)| (h as f64 - mean_h).powi(2)).sum();
        let corr = if var_u > 0.0 && var_h > 0.0 {
            cov / (var_u.sqrt() * var_h.sqrt())
        } else {
            0.0
        };
        // Utilization of the hottest 10% of huge pages.
        let mut sorted = dots.clone();
        sorted.sort_by_key(|&(_, h)| std::cmp::Reverse(h));
        let top = sorted.len().div_ceil(10).max(1);
        let hot_util: f64 = sorted[..top].iter().map(|&(u, _)| u as f64).sum::<f64>() / top as f64;
        summary.row(vec![
            bench.name().to_string(),
            dots.len().to_string(),
            format!("{mean_u:.0}"),
            format!("{hot_util:.0}"),
            format!("{corr:.2}"),
            paper_shape.to_string(),
        ]);
    }
    memtis_bench::emit(
        "fig3_skew_scatter",
        "hotness vs huge-page utilization (paper Fig. 3)",
        &summary,
    );
}
