//! Figure 5 — main performance comparison.
//!
//! Eight benchmarks × three tiering ratios (1:2, 1:8, 1:16) × seven systems,
//! with NVM as the capacity tier, normalized to all-NVM-with-THP. The paper
//! reports MEMTIS best in 23/24 cells and 33.6% (geomean) over the
//! second-best system.

use memtis_bench::{
    geomean, normalized, run_baseline, run_system, CapacityKind, Ratio, System, Table,
};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let systems = System::FIG5;
    let mut header: Vec<String> = vec!["benchmark".into(), "ratio".into()];
    header.extend(systems.iter().map(|s| s.name().to_string()));
    header.push("memtis/2nd-best".into());
    let mut table = Table::new(header);

    // Per-system normalized scores across all cells, for the geomean rows.
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    let mut memtis_vs_second = Vec::new();
    let mut memtis_best_cells = 0usize;
    let mut cells = 0usize;

    for bench in Benchmark::ALL {
        let base = run_baseline(bench, scale, CapacityKind::Nvm);
        for ratio in Ratio::MAIN {
            let mut row: Vec<String> = vec![bench.name().into(), ratio.label()];
            let mut cell_scores = Vec::new();
            for (i, sys) in systems.iter().enumerate() {
                let r = run_system(bench, scale, ratio, CapacityKind::Nvm, *sys);
                let n = normalized(&base, &r);
                scores[i].push(n);
                cell_scores.push(n);
                row.push(format!("{n:.3}"));
            }
            let memtis = *cell_scores.last().unwrap();
            let second = cell_scores[..cell_scores.len() - 1]
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max);
            memtis_vs_second.push(memtis / second);
            cells += 1;
            if memtis >= second {
                memtis_best_cells += 1;
            }
            row.push(format!("{:+.1}%", (memtis / second - 1.0) * 100.0));
            table.row(row);
        }
    }

    let mut geo_row: Vec<String> = vec!["geomean".into(), "all".into()];
    for s in &scores {
        geo_row.push(format!("{:.3}", geomean(s)));
    }
    geo_row.push(format!(
        "{:+.1}%",
        (geomean(&memtis_vs_second) - 1.0) * 100.0
    ));
    table.row(geo_row);

    memtis_bench::emit(
        "fig5_main_comparison",
        "normalized performance vs all-NVM (NVM capacity tier); paper: MEMTIS best in 23/24, +33.6% geomean over second-best",
        &table,
    );
    println!(
        "MEMTIS best in {memtis_best_cells}/{cells} cells; geomean vs second-best {:+.1}%",
        (geomean(&memtis_vs_second) - 1.0) * 100.0
    );
}
