//! Figure 6 — scalability with growing RSS.
//!
//! Graph500's RSS grows from 128 GB to 690 GB (scaled 1/64) while the fast
//! tier stays fixed at 64 GB (scaled: 1 GiB). The paper reports MEMTIS
//! beating the second-best by 8.1–60.5% as the RSS grows, with HeMem second
//! at the larger sizes — sampling scales where page-table scanning and
//! fault-based tracking do not.

use memtis_bench::{driver_config, geomean, normalized, run_cell, System, Table, TIME_COMPRESSION};
use memtis_sim::prelude::{MachineConfig, HUGE_PAGE_SIZE};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let bench = Benchmark::Graph500;
    let systems = [
        System::AutoNuma,
        System::Tiering08,
        System::Tpp,
        System::Nimble,
        System::Hemem,
        System::Memtis,
    ];
    let rss_points_gb = [128.0, 192.0, 336.0, 690.0];
    let fast_bytes = 1u64 << 30; // 64 GB / 64.

    let mut header: Vec<String> = vec!["paper RSS (GB)".into(), "scaled RSS (GB)".into()];
    header.extend(systems.iter().map(|s| s.name().to_string()));
    header.push("memtis/2nd".into());
    let mut table = Table::new(header);
    let mut advantage = Vec::new();

    for rss_gb in rss_points_gb {
        // Scale chosen so the workload's total footprint hits the target.
        let scale = Scale(rss_gb / bench.paper_rss_gb() / 64.0);
        let rss = bench.spec(scale, 1).total_bytes();
        let capacity = rss * 2 + 64 * HUGE_PAGE_SIZE;
        let baseline = run_cell(
            bench,
            scale,
            MachineConfig::dram_nvm(2 * HUGE_PAGE_SIZE, capacity)
                .with_bandwidth_scale(TIME_COMPRESSION),
            System::AllNvm.build(),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let mut row = vec![
            format!("{rss_gb:.0}"),
            format!("{:.2}", rss as f64 / (1u64 << 30) as f64),
        ];
        let mut scores = Vec::new();
        for sys in systems {
            let machine = MachineConfig::dram_nvm(fast_bytes, capacity)
                .with_bandwidth_scale(TIME_COMPRESSION);
            let r = run_cell(
                bench,
                scale,
                machine,
                sys.build(),
                driver_config(),
                memtis_bench::access_budget(),
            );
            let n = normalized(&baseline, &r);
            scores.push(n);
            row.push(format!("{n:.3}"));
        }
        let memtis = *scores.last().unwrap();
        let second = scores[..scores.len() - 1]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        advantage.push(memtis / second);
        row.push(format!("{:+.1}%", (memtis / second - 1.0) * 100.0));
        table.row(row);
    }
    memtis_bench::emit(
        "fig6_scalability",
        "Graph500 with growing RSS, fixed fast tier (paper Fig. 6: MEMTIS +8.1%..+60.5%)",
        &table,
    );
    println!(
        "geomean MEMTIS advantage over second-best: {:+.1}%",
        (geomean(&advantage) - 1.0) * 100.0
    );
}
