//! Figure 7 — the 2:1 configuration (Meta's production target, §6.2.8).
//!
//! TPP was designed for this regime. The paper shows MEMTIS comparable to
//! all-DRAM except on the SPEC benchmarks, and ahead of TPP by 6.1–33.3%
//! when the sampled-page footprint exceeds the fast tier.

use memtis_bench::{
    driver_config, machine_all_fast, normalized, run_baseline, run_cell, run_system, CapacityKind,
    Ratio, System, Table,
};
use memtis_sim::prelude::DriverConfig;
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio::TWO_TO_ONE;
    let mut table = Table::new(vec![
        "benchmark",
        "All-DRAM w/ THP",
        "All-DRAM w/o THP",
        "TPP",
        "MEMTIS",
        "memtis vs tpp",
    ]);
    for bench in Benchmark::ALL {
        let base = run_baseline(bench, scale, CapacityKind::Nvm);
        let dram_thp = run_cell(
            bench,
            scale,
            machine_all_fast(bench, scale),
            System::AllDram.build(),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let dram_nothp = run_cell(
            bench,
            scale,
            machine_all_fast(bench, scale),
            System::AllDram.build(),
            DriverConfig {
                thp_enabled: false,
                ..driver_config()
            },
            memtis_bench::access_budget(),
        );
        let tpp = run_system(bench, scale, ratio, CapacityKind::Nvm, System::Tpp);
        let memtis = run_system(bench, scale, ratio, CapacityKind::Nvm, System::Memtis);
        let (nd, ndn, nt, nm) = (
            normalized(&base, &dram_thp),
            normalized(&base, &dram_nothp),
            normalized(&base, &tpp),
            normalized(&base, &memtis),
        );
        table.row(vec![
            bench.name().to_string(),
            format!("{nd:.3}"),
            format!("{ndn:.3}"),
            format!("{nt:.3}"),
            format!("{nm:.3}"),
            format!("{:+.1}%", (nm / nt - 1.0) * 100.0),
        ]);
    }
    memtis_bench::emit(
        "fig7_ratio_2to1",
        "2:1 fast:capacity configuration vs TPP and all-DRAM (paper Fig. 7)",
        &table,
    );
}
