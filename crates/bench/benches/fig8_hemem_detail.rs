//! Figure 8 — detailed comparison to HeMem under HeMem-favorable settings.
//!
//! 16 application threads (leaving spare cores for HeMem's busy sampling
//! thread, so its CPU contention disappears) at the 1:2 configuration.
//! HeMem+ additionally gets the same configured fast-tier size as MEMTIS
//! (no over-allocation compensation). The paper still finds MEMTIS ahead,
//! because HeMem's static thresholds waste fast memory on arbitrary cold
//! pages.

use memtis_baselines::{HememConfig, HememPolicy};
use memtis_bench::{
    driver_config, machine_for, normalized, run_cell, run_sim, CapacityKind, Ratio, System, Table,
    TIME_COMPRESSION,
};
use memtis_sim::prelude::MachineConfig;
use memtis_workloads::{Benchmark, Scale};

fn sixteen_threads(mut m: MachineConfig) -> MachineConfig {
    m.app_threads = 16;
    m
}

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 2,
    };
    let mut table = Table::new(vec![
        "benchmark",
        "HeMem",
        "HeMem+",
        "MEMTIS",
        "memtis vs hemem+",
    ]);
    for bench in Benchmark::ALL {
        // Baseline at 16 threads too.
        let rss = bench.spec(scale, 1).total_bytes();
        let base_machine = sixteen_threads(
            MachineConfig::dram_nvm(2 << 21, rss * 2 + (64 << 21))
                .with_bandwidth_scale(TIME_COMPRESSION),
        );
        let base = run_cell(
            bench,
            scale,
            base_machine,
            System::AllNvm.build(),
            driver_config(),
            memtis_bench::access_budget(),
        );

        // HeMem with its fast tier reduced by the measured over-allocation.
        let probe_machine = sixteen_threads(machine_for(bench, scale, ratio, CapacityKind::Nvm));
        let (_r, sim) = run_sim(
            bench,
            scale,
            probe_machine.clone(),
            HememPolicy::new(HememConfig::default()),
            driver_config(),
            200_000,
        );
        let overalloc = sim.policy().overallocated_bytes;
        let mut hemem_machine = probe_machine.clone();
        hemem_machine.tiers[0].capacity = hemem_machine.tiers[0]
            .capacity
            .saturating_sub(overalloc)
            .max(2 << 21);
        let hemem = run_cell(
            bench,
            scale,
            hemem_machine,
            System::Hemem.build(),
            driver_config(),
            memtis_bench::access_budget(),
        );
        // HeMem+: full fast-tier size (same as MEMTIS).
        let hemem_plus = run_cell(
            bench,
            scale,
            probe_machine.clone(),
            System::Hemem.build(),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let memtis = run_cell(
            bench,
            scale,
            probe_machine,
            System::Memtis.build(),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let (nh, nhp, nm) = (
            normalized(&base, &hemem),
            normalized(&base, &hemem_plus),
            normalized(&base, &memtis),
        );
        table.row(vec![
            bench.name().to_string(),
            format!("{nh:.3}"),
            format!("{nhp:.3}"),
            format!("{nm:.3}"),
            format!("{:+.1}%", (nm / nhp - 1.0) * 100.0),
        ]);
    }
    memtis_bench::emit(
        "fig8_hemem_detail",
        "MEMTIS vs HeMem/HeMem+ with 16 threads, 1:2 (paper Fig. 8)",
        &table,
    );
}
