//! Figure 9 — hot/warm/cold data identified by MEMTIS over time.
//!
//! For PageRank, XSBench, Liblinear, and 603.bwaves at 1:2 and 1:8, the
//! classified hot-set size should track the fast-tier capacity (dashed line
//! in the paper): MEMTIS sizes its hot threshold from the access
//! distribution so the hot set approximates the fast tier from below, with
//! the warm band filling the remainder.
//!
//! The series comes from the shared telemetry window collector
//! (`RunReport::windows`): each window carries the policy's
//! `hot_bytes`/`warm_bytes`/`cold_bytes` gauges at the window close.

use memtis_bench::{driver_config, machine_for, run_sim, CapacityKind, Ratio, Table};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let mut summary = Table::new(vec![
        "benchmark",
        "ratio",
        "fast (MB)",
        "median hot (MB)",
        "median warm (MB)",
        "hot/fast median",
        "snapshots hot<=fast",
    ]);
    for bench in [
        Benchmark::PageRank,
        Benchmark::XsBench,
        Benchmark::Liblinear,
        Benchmark::Bwaves,
    ] {
        for ratio in [
            Ratio {
                fast: 1,
                capacity: 2,
            },
            Ratio {
                fast: 1,
                capacity: 8,
            },
        ] {
            let machine = machine_for(bench, scale, ratio, CapacityKind::Nvm);
            let fast = machine.tiers[0].capacity;
            let (report, _sim) = run_sim(
                bench,
                scale,
                machine,
                MemtisPolicy::new(MemtisConfig::sim_scaled()),
                driver_config(),
                memtis_bench::access_budget(),
            );
            let mb = |b: f64| b / (1 << 20) as f64;
            let series: Vec<(f64, f64, f64, f64)> = report
                .windows
                .iter()
                .map(|w| {
                    let get = |k: &str| w.gauge(k).unwrap_or(0.0);
                    (
                        w.wall_ns,
                        get("hot_bytes"),
                        get("warm_bytes"),
                        get("cold_bytes"),
                    )
                })
                .collect();
            let mut csv = Table::new(vec!["time_ns", "hot_mb", "warm_mb", "cold_mb", "fast_mb"]);
            for &(t, h, w, c) in &series {
                csv.row(vec![
                    format!("{t:.0}"),
                    format!("{:.1}", mb(h)),
                    format!("{:.1}", mb(w)),
                    format!("{:.1}", mb(c)),
                    format!("{:.1}", mb(fast as f64)),
                ]);
            }
            memtis_bench::emit(
                &format!(
                    "fig9_hotset_{}_{}to{}",
                    bench.name().to_lowercase().replace('.', "_"),
                    ratio.fast,
                    ratio.capacity
                ),
                &format!(
                    "MEMTIS classification series, {} {}",
                    bench.name(),
                    ratio.label()
                ),
                &csv,
            );

            let mut hot: Vec<f64> = series.iter().map(|s| s.1).collect();
            let mut warm: Vec<f64> = series.iter().map(|s| s.2).collect();
            hot.sort_by(f64::total_cmp);
            warm.sort_by(f64::total_cmp);
            let med = |v: &[f64]| if v.is_empty() { 0.0 } else { v[v.len() / 2] };
            let within = series.iter().filter(|s| s.1 <= fast as f64 * 1.1).count();
            summary.row(vec![
                bench.name().to_string(),
                ratio.label(),
                format!("{:.0}", mb(fast as f64)),
                format!("{:.0}", mb(med(&hot))),
                format!("{:.0}", mb(med(&warm))),
                format!("{:.2}", med(&hot) / fast as f64),
                format!("{:.0}%", within as f64 / series.len().max(1) as f64 * 100.0),
            ]);
        }
    }
    memtis_bench::emit(
        "fig9_hotset_series",
        "MEMTIS hot/warm/cold classification vs fast-tier size (paper Fig. 9)",
        &summary,
    );
}
