#![allow(missing_docs)] // The criterion_group! macro generates undocumented items.

//! Hot-path micro benchmark: single-walk `Machine::access` versus the
//! retained triple-walk reference path (`Machine::access_reference`).
//!
//! Address streams are **precomputed** so the timed loop contains only the
//! access path itself (no RNG). Four patterns stress different mixes of
//! walk cost versus shared model cost (TLB/LLC/stats, identical in both
//! paths):
//!
//! - `hot`: 64 addresses, TLB- and LLC-resident — isolates the translation
//!   and reference-bit work that the single-walk fast path targets.
//! - `random`: uniform over 64 huge regions — LLC-missing, end-to-end view.
//! - `local`: sequential within a region, hopping every 512 accesses.
//! - `base`: 4 KiB mappings (4-level walks), TLB-capacity working set.
//!
//! A direct head-to-head prints speedups and writes `BENCH_hotpath.json`
//! so the trajectory is tracked across PRs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memtis_bench::emit_bench_json;
use memtis_sim::prelude::*;
use std::time::{Duration, Instant};

const HUGE_PAGES: u64 = 64;

/// Base-page working set: 6 regions x 128 pages = 768 pages. TLB-resident
/// (half the base-TLB capacity, and pages land 6-deep in each 12-way set)
/// so the measured delta is walk cost, not TLB-miss cost.
const BASE_REGIONS: u64 = 6;
const BASE_PAGES_PER_REGION: u64 = 128;

/// Precomputed address-stream length (power of two; the timed loop cycles).
const STREAM_LEN: usize = 1 << 20;

fn machine_with_huge_pages() -> Machine {
    let mut m = Machine::new(MachineConfig::dram_nvm(
        HUGE_PAGES * HUGE_PAGE_SIZE,
        8 * HUGE_PAGE_SIZE,
    ));
    for i in 0..HUGE_PAGES {
        m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::FAST)
            .unwrap();
    }
    m
}

fn machine_with_base_pages() -> Machine {
    let mut m = Machine::new(MachineConfig::dram_nvm(
        HUGE_PAGES * HUGE_PAGE_SIZE,
        8 * HUGE_PAGE_SIZE,
    ));
    for r in 0..BASE_REGIONS {
        for j in 0..BASE_PAGES_PER_REGION {
            m.alloc_and_map(VirtPage(r * 512 + j), PageSize::Base, TierId::FAST)
                .unwrap();
        }
    }
    m
}

/// Deterministic LCG driving the precomputed streams.
#[inline]
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

#[derive(Clone, Copy)]
enum Pattern {
    /// 64 addresses (one per huge region, distinct LLC sets): TLB and LLC
    /// hit after warmup, so the loop is dominated by translation +
    /// reference-bit updates — the work the fast path collapses.
    Hot,
    /// Uniform random over the whole 64-region huge mapping.
    Random,
    /// Sequential cachelines, hopping regions every 512 accesses.
    Local,
    /// Random within the base-page (4-level walk) working set.
    Base,
}

const PATTERNS: [(&str, Pattern); 4] = [
    ("hot", Pattern::Hot),
    ("random", Pattern::Random),
    ("local", Pattern::Local),
    ("base", Pattern::Base),
];

impl Pattern {
    fn machine(self) -> Machine {
        match self {
            Pattern::Base => machine_with_base_pages(),
            _ => machine_with_huge_pages(),
        }
    }

    fn stream(self) -> Vec<u64> {
        let mut seed = 0x9E3779B97F4A7C15u64;
        (0..STREAM_LEN as u64)
            .map(|i| match self {
                Pattern::Hot => {
                    // Offset `r * 4096` puts each region's line in its own
                    // LLC set (region strides are multiples of the set
                    // count, so only the offset picks the set).
                    let r = lcg_next(&mut seed) % HUGE_PAGES;
                    r * HUGE_PAGE_SIZE + r * 4096
                }
                Pattern::Random => lcg_next(&mut seed) % (HUGE_PAGES * HUGE_PAGE_SIZE),
                Pattern::Local => {
                    let region = (i / 512) % HUGE_PAGES;
                    region * HUGE_PAGE_SIZE + (i % 512) * 4096 + (i % 7) * 64
                }
                Pattern::Base => {
                    // One fixed cacheline per page, spread over distinct LLC
                    // sets, so the stream is LLC-resident after warmup and
                    // the measured delta is the 4-level walks.
                    let x = lcg_next(&mut seed);
                    let region = x % BASE_REGIONS;
                    let page = (x >> 8) % BASE_PAGES_PER_REGION;
                    let g = region * BASE_PAGES_PER_REGION + page;
                    (region * 512 + page) * 4096 + ((g / 64) % 64) * 64
                }
            })
            .collect()
    }
}

fn access_paths(c: &mut Criterion) {
    for (name, pattern) in PATTERNS {
        let stream = pattern.stream();

        let mut m = pattern.machine();
        let mut i = 0usize;
        c.bench_function(&format!("hotpath_fast_{name}"), |b| {
            b.iter(|| {
                let a = Access::load(stream[i & (STREAM_LEN - 1)]);
                i += 1;
                black_box(m.access(a).unwrap());
            })
        });

        let mut m = pattern.machine();
        let mut i = 0usize;
        c.bench_function(&format!("hotpath_reference_{name}"), |b| {
            b.iter(|| {
                let a = Access::load(stream[i & (STREAM_LEN - 1)]);
                i += 1;
                black_box(m.access_reference(a).unwrap());
            })
        });
    }
}

/// The per-access *page-table work* in isolation: the single `walk_mut`
/// (reading the translation and setting reference bits in one pass) versus
/// the seed's steady-state `translate` + `entry_mut` pair. This is the code
/// the tentpole collapsed; the end-to-end targets above dilute it with the
/// simulated TLB/LLC model cost, which is identical in both paths.
fn walk_component(c: &mut Criterion) {
    use memtis_sim::page_table::{EntryMut, PageTable};

    let regions: Vec<u64> = {
        let mut seed = 0x9E3779B97F4A7C15u64;
        (0..STREAM_LEN)
            .map(|_| lcg_next(&mut seed) % HUGE_PAGES)
            .collect()
    };

    let mut pt = PageTable::new();
    for r in 0..HUGE_PAGES {
        pt.map_huge(VirtPage(r * 512), Frame(r * 512)).unwrap();
    }
    let mut i = 0usize;
    c.bench_function("hotpath_walk_fast", |b| {
        b.iter(|| {
            let r = regions[i & (STREAM_LEN - 1)];
            i += 1;
            let vp = VirtPage(r * 512 + r);
            match pt.walk_mut(vp).unwrap() {
                EntryMut::Huge(h) => {
                    h.accessed = true;
                    black_box(h.frame.add(vp.subpage_index() as u64));
                }
                EntryMut::Base(p) => {
                    p.accessed = true;
                    black_box(p.frame);
                }
            }
        })
    });

    let mut pt = PageTable::new();
    for r in 0..HUGE_PAGES {
        pt.map_huge(VirtPage(r * 512), Frame(r * 512)).unwrap();
    }
    let mut i = 0usize;
    c.bench_function("hotpath_walk_reference", |b| {
        b.iter(|| {
            let r = regions[i & (STREAM_LEN - 1)];
            i += 1;
            let vp = VirtPage(r * 512 + r);
            let tr = pt.translate(vp).unwrap();
            match pt.entry_mut(vp).unwrap() {
                EntryMut::Huge(h) => h.accessed = true,
                EntryMut::Base(p) => p.accessed = true,
            }
            black_box(tr.frame);
        })
    });
}

/// Direct head-to-head: repeated one-stream sweeps through each path on
/// each pattern, minimum per-rep time kept (noise-robust on a shared box),
/// speedups printed and recorded in BENCH_hotpath.json.
fn head_to_head(_c: &mut Criterion) {
    const REPS: usize = 5;

    // Monomorphic per-path reps (a shared loop with an `if reference`
    // branch inlines both access paths into one bloated body and skews
    // the comparison).
    fn run_fast(pattern: Pattern, stream: &[u64]) -> f64 {
        let mut m = pattern.machine();
        // Warm TLB/LLC/walk-cache state outside the timed window.
        for &addr in &stream[..STREAM_LEN / 4] {
            let _ = m.access(Access::load(addr));
        }
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            for &addr in stream {
                black_box(m.access(Access::load(addr)).unwrap());
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    fn run_reference(pattern: Pattern, stream: &[u64]) -> f64 {
        let mut m = pattern.machine();
        for &addr in &stream[..STREAM_LEN / 4] {
            let _ = m.access_reference(Access::load(addr));
        }
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            for &addr in stream {
                black_box(m.access_reference(Access::load(addr)).unwrap());
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    let mut metrics = vec![("accesses".to_string(), STREAM_LEN as f64)];
    let mut lines = Vec::new();
    for (name, pattern) in PATTERNS {
        let stream = pattern.stream();
        let reference = run_reference(pattern, &stream);
        let fast = run_fast(pattern, &stream);
        let speedup = reference / fast;
        lines.push(format!(
            "{name} {:.1} -> {:.1} Macc/s ({speedup:.2}x)",
            STREAM_LEN as f64 / reference / 1e6,
            STREAM_LEN as f64 / fast / 1e6,
        ));
        metrics.push((
            format!("fast_{name}_macc_s"),
            STREAM_LEN as f64 / fast / 1e6,
        ));
        metrics.push((
            format!("reference_{name}_macc_s"),
            STREAM_LEN as f64 / reference / 1e6,
        ));
        metrics.push((format!("speedup_{name}"), speedup));
    }
    println!(
        "hotpath head-to-head, best of {REPS} reps x {STREAM_LEN} accesses: {}",
        lines.join(", ")
    );
    emit_bench_json("hotpath", &metrics);
}

/// End-to-end batched-pipeline head-to-head: full MEMTIS cells driven at
/// `chunk = 1` (the legacy per-event loop) versus the default chunk size.
/// Two workloads — 654.roms and a zipfian key-value synth — are recorded
/// once and replayed from identical traces, so both paths consume the
/// same byte stream; the per-rep reports are asserted bit-identical
/// (host wall-clock aside) before timings are reported. Best-of-reps
/// events/sec and speedups land in `BENCH_hotloop.json`.
fn hotloop(_c: &mut Criterion) {
    use memtis_bench::{
        driver_config, machine_for, CapacityKind, Ratio, System, SEED, TIME_COMPRESSION,
    };
    use memtis_workloads::{
        Benchmark, Scale, SpecStream, SynthBuilder, TraceRecorder, TraceReplay,
    };

    // Long reps (~100 ms each): on a shared box, tens-of-ms runs are
    // dominated by scheduler jitter and the best-of comparison becomes a
    // lottery; ~100 ms reps average the jitter away within each rep.
    const ACCESSES: u64 = 2_000_000;
    const REPS: usize = 7;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };

    /// Render a report for comparison, ignoring only host wall-clock.
    fn signature(mut report: RunReport) -> String {
        report.host_elapsed_ns = 0;
        format!("{report:?}")
    }

    let zipf_spec = SynthBuilder::new("zipf-synth")
        .footprint(96 << 20)
        .zipf(0.9)
        .stores(0.1)
        .build(ACCESSES);
    let zipf_rss = zipf_spec.total_bytes();
    let zipf_machine = MachineConfig::dram_nvm(
        ratio.fast_bytes(zipf_rss),
        zipf_rss * 2 + 64 * HUGE_PAGE_SIZE,
    )
    .with_bandwidth_scale(TIME_COMPRESSION);
    let cases = [
        (
            "roms",
            Benchmark::Roms.spec(Scale::TEST, ACCESSES),
            machine_for(Benchmark::Roms, Scale::TEST, ratio, CapacityKind::Nvm),
        ),
        ("zipf", zipf_spec, zipf_machine),
    ];

    let run_once = |machine: &MachineConfig, mk: &dyn Fn() -> TraceReplay, chunk: usize| {
        let mut wl = mk();
        let mut driver = driver_config();
        driver.chunk = chunk;
        let mut sim = Simulation::new(machine.clone(), System::Memtis.build(), driver);
        let start = Instant::now();
        let report = sim.run(&mut wl).unwrap();
        (report, start.elapsed().as_secs_f64())
    };

    let mut metrics = vec![("chunk".to_string(), DEFAULT_CHUNK as f64)];
    let mut lines = Vec::new();
    let mut total_events = 0.0;
    let mut total_batched_s = 0.0;
    for (name, spec, machine) in cases {
        let mut rec = TraceRecorder::new(SpecStream::new(spec, SEED));
        while rec.next_event().is_some() {}
        let trace = rec.finish();
        let mk = || TraceReplay::new(trace.clone(), name);

        // Interleave legacy/batched reps pairwise so drifting background
        // load biases both paths alike; keep the best rep of each.
        let (_, _) = run_once(&machine, &mk, 1); // Shared warmup, untimed.
        let mut legacy_s = f64::INFINITY;
        let mut batched_s = f64::INFINITY;
        let mut reports = None;
        for _ in 0..REPS {
            let (legacy_report, ls) = run_once(&machine, &mk, 1);
            let (batched_report, bs) = run_once(&machine, &mk, DEFAULT_CHUNK);
            legacy_s = legacy_s.min(ls);
            batched_s = batched_s.min(bs);
            reports = Some((legacy_report, batched_report));
        }
        let (legacy_report, batched_report) = reports.unwrap();
        assert_eq!(
            signature(legacy_report),
            signature(batched_report.clone()),
            "batched pipeline diverged from the per-event oracle on {name}"
        );

        let events = batched_report.sim_events as f64;
        let speedup = legacy_s / batched_s;
        lines.push(format!(
            "{name} {:.1} -> {:.1} Mev/s ({speedup:.2}x)",
            events / legacy_s / 1e6,
            events / batched_s / 1e6,
        ));
        metrics.push((format!("{name}_sim_events"), events));
        metrics.push((format!("{name}_legacy_host_ns"), legacy_s * 1e9));
        metrics.push((format!("{name}_batched_host_ns"), batched_s * 1e9));
        metrics.push((format!("{name}_legacy_eps"), events / legacy_s));
        metrics.push((format!("{name}_batched_eps"), events / batched_s));
        metrics.push((format!("{name}_speedup"), speedup));
        total_events += events;
        total_batched_s += batched_s;

        // Shard-scaling curve: the same trace under 1/2/4 lane workers at a
        // large chunk (amortizing per-burst spawn cost). Reports must stay
        // byte-identical across shard counts. Raw wall-clock only improves
        // when the host has spare cores; on an oversubscribed runner the
        // projected time (`ShardMetrics::projected_ns`: the worker phase
        // shrinks from its serialized wall to its critical-path share of
        // the observed per-shard load split) models an S-core host.
        const SHARD_CHUNK: usize = 65536;
        const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
        const SHARD_REPS: usize = 3;
        let mut shard_lines = Vec::new();
        let mut base_projected_eps = f64::NAN;
        let mut shard1_sig: Option<String> = None;
        for s in SHARD_COUNTS {
            let mut best_host = f64::INFINITY;
            let mut best_projected = f64::INFINITY;
            let mut last: Option<(RunReport, ShardMetrics)> = None;
            for _ in 0..SHARD_REPS {
                let mut wl = mk();
                let mut driver = driver_config();
                driver.chunk = SHARD_CHUNK;
                driver.shards = Some(s);
                let mut sim = Simulation::new(machine.clone(), System::Memtis.build(), driver);
                let start = Instant::now();
                let report = sim.run(&mut wl).unwrap();
                let host = start.elapsed().as_secs_f64();
                let m = sim.shard_metrics().expect("sharded run exposes metrics");
                let projected = m.projected_ns(host * 1e9).max(1.0) / 1e9;
                best_host = best_host.min(host);
                best_projected = best_projected.min(projected);
                last = Some((report, m));
            }
            let (report, sm) = last.unwrap();
            let events = report.sim_events as f64;
            let accesses = report.accesses as f64;
            match &shard1_sig {
                None => shard1_sig = Some(signature(report)),
                Some(base) => assert_eq!(
                    base,
                    &signature(report),
                    "sharded run diverged from the single-shard oracle on {name} at S={s}"
                ),
            }
            let projected_eps = events / best_projected;
            if s == 1 {
                base_projected_eps = projected_eps;
            }
            shard_lines.push(format!("S={s} {:.1}", projected_eps / 1e6));
            metrics.push((format!("{name}_shards{s}_host_ns"), best_host * 1e9));
            metrics.push((format!("{name}_shards{s}_eps"), events / best_host));
            metrics.push((format!("{name}_shards{s}_projected_eps"), projected_eps));
            // Deterministic health metrics (identical run to run, so CI can
            // gate them hard): the share of accesses the parallel lane
            // phase executed, and the critical-path share of the per-shard
            // load split (1/S is perfect balance, 1.0 is fully serial).
            metrics.push((
                format!("{name}_shards{s}_lane_frac"),
                sm.lane_accesses as f64 / accesses,
            ));
            metrics.push((
                format!("{name}_shards{s}_crit_frac"),
                sm.crit_accesses as f64 / sm.lane_accesses.max(1) as f64,
            ));
            if s > 1 {
                metrics.push((
                    format!("{name}_shards{s}_projected_speedup"),
                    projected_eps / base_projected_eps,
                ));
            }
        }
        println!(
            "shard scaling ({name}, chunk {SHARD_CHUNK}, projected Mev/s): {}",
            shard_lines.join(", ")
        );
    }
    metrics.push(("sim_events".to_string(), total_events));
    metrics.push(("host_elapsed_ns".to_string(), total_batched_s * 1e9));
    metrics.push(("events_per_sec".to_string(), total_events / total_batched_s));

    // Flight-recorder overhead curve: the same MEMTIS cell under (a) no
    // observer, (b) events-only tracing (ring + registry, no profiler or
    // latency histograms), (c) the full flight recorder (events + phase
    // spans + latency histograms). Modes are interleaved pairwise per rep
    // so drifting background load biases all three alike; best rep kept.
    {
        use memtis_core::{MemtisConfig, MemtisPolicy};
        use memtis_workloads::{Benchmark, Scale, SpecStream};
        const OBS_ACCESSES: u64 = 400_000;
        const OBS_REPS: usize = 9;

        fn run_obs<O: Observer>(mk: &dyn Fn() -> O, accesses: u64) -> (f64, f64) {
            let ratio = Ratio {
                fast: 1,
                capacity: 8,
            };
            let machine = machine_for(Benchmark::Roms, Scale::TEST, ratio, CapacityKind::Nvm);
            let mut wl = SpecStream::new(Benchmark::Roms.spec(Scale::TEST, accesses), SEED);
            let mut sim = Simulation::with_observer(
                machine,
                MemtisPolicy::new(MemtisConfig::sim_scaled()),
                driver_config(),
                mk(),
            );
            let start = Instant::now();
            let report = sim.run(&mut wl).unwrap();
            (start.elapsed().as_secs_f64(), report.sim_events as f64)
        }

        // Untimed warmup: fault in both code paths before the first rep.
        let _ = run_obs(&NopObserver::default, OBS_ACCESSES);
        let _ = run_obs(&TracingObserver::new, OBS_ACCESSES);
        let (mut off, mut events_only, mut full) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut obs_events = 0.0;
        for _ in 0..OBS_REPS {
            let (t, e) = run_obs(&NopObserver::default, OBS_ACCESSES);
            off = off.min(t);
            obs_events = e;
            let (t, _) = run_obs(&TracingObserver::events_only, OBS_ACCESSES);
            events_only = events_only.min(t);
            let (t, _) = run_obs(&TracingObserver::new, OBS_ACCESSES);
            full = full.min(t);
        }
        let events_frac = events_only / off - 1.0;
        let full_frac = full / off - 1.0;
        println!(
            "observer curve, best of {OBS_REPS} reps x {OBS_ACCESSES} accesses: \
             off {:.1} Mev/s, events-only {:.1} Mev/s ({:+.1}%), \
             full flight recorder {:.1} Mev/s ({:+.1}%)",
            obs_events / off / 1e6,
            obs_events / events_only / 1e6,
            events_frac * 100.0,
            obs_events / full / 1e6,
            full_frac * 100.0,
        );
        metrics.push(("obs_off_eps".to_string(), obs_events / off));
        metrics.push(("obs_events_eps".to_string(), obs_events / events_only));
        metrics.push(("obs_full_eps".to_string(), obs_events / full));
        metrics.push(("obs_events_overhead_frac".to_string(), events_frac));
        metrics.push(("obs_full_overhead_frac".to_string(), full_frac));
    }

    println!(
        "hotloop head-to-head, best of {REPS} reps x {ACCESSES} accesses: {}",
        lines.join(", ")
    );
    emit_bench_json("hotloop", &metrics);
}

/// Observer overhead at the driver level: the same MEMTIS cell run under
/// the default `NopObserver`, an events-only `TracingObserver`, and the
/// full flight recorder (events + phase spans + latency histograms).
/// `ops()` statically skips the observer hookup when `enabled()` is false,
/// and `Machine::access` (the `hotpath_fast_*` targets above) never sees an
/// observer at all — so the Nop run is the PR-1 driver plus only the
/// window-collector cuts, and must stay within noise (≤2%) of it.
fn observer_overhead(_c: &mut Criterion) {
    use memtis_bench::{driver_config, machine_for, CapacityKind, Ratio, SEED};
    use memtis_core::{MemtisConfig, MemtisPolicy};
    use memtis_workloads::{Benchmark, Scale, SpecStream};

    const ACCESSES: u64 = 400_000;
    const REPS: usize = 5;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };

    // Monomorphic per-observer reps, same reasoning as `head_to_head`.
    fn run_nop(ratio: Ratio, accesses: u64) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let machine = machine_for(Benchmark::Roms, Scale::TEST, ratio, CapacityKind::Nvm);
            let mut wl = SpecStream::new(Benchmark::Roms.spec(Scale::TEST, accesses), SEED);
            let mut sim = Simulation::new(
                machine,
                MemtisPolicy::new(MemtisConfig::sim_scaled()),
                driver_config(),
            );
            let start = Instant::now();
            black_box(sim.run(&mut wl).unwrap());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    fn run_traced(ratio: Ratio, accesses: u64, mk: &dyn Fn() -> TracingObserver) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let machine = machine_for(Benchmark::Roms, Scale::TEST, ratio, CapacityKind::Nvm);
            let mut wl = SpecStream::new(Benchmark::Roms.spec(Scale::TEST, accesses), SEED);
            let mut sim = Simulation::with_observer(
                machine,
                MemtisPolicy::new(MemtisConfig::sim_scaled()),
                driver_config(),
                mk(),
            );
            let start = Instant::now();
            black_box(sim.run(&mut wl).unwrap());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    let nop = run_nop(ratio, ACCESSES);
    let events_only = run_traced(ratio, ACCESSES, &TracingObserver::events_only);
    let traced = run_traced(ratio, ACCESSES, &TracingObserver::new);
    let events_overhead = events_only / nop - 1.0;
    let overhead = traced / nop - 1.0;
    println!(
        "observer overhead, best of {REPS} reps x {ACCESSES} accesses: \
         nop {:.1} Macc/s, events-only {:.1} Macc/s ({:+.1}%), \
         full {:.1} Macc/s ({:+.1}% traced overhead)",
        ACCESSES as f64 / nop / 1e6,
        ACCESSES as f64 / events_only / 1e6,
        events_overhead * 100.0,
        ACCESSES as f64 / traced / 1e6,
        overhead * 100.0,
    );
    emit_bench_json(
        "observer_overhead",
        &[
            ("accesses".to_string(), ACCESSES as f64),
            ("nop_macc_s".to_string(), ACCESSES as f64 / nop / 1e6),
            (
                "events_only_macc_s".to_string(),
                ACCESSES as f64 / events_only / 1e6,
            ),
            ("events_only_overhead_frac".to_string(), events_overhead),
            ("traced_macc_s".to_string(), ACCESSES as f64 / traced / 1e6),
            ("traced_overhead_frac".to_string(), overhead),
        ],
    );
}

criterion_group! {
    name = hotpath;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = access_paths, walk_component, head_to_head, hotloop, observer_overhead
}
criterion_main!(hotpath);
