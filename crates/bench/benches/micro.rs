#![allow(missing_docs)] // The criterion_group! macro generates undocumented items.

//! Criterion micro-benchmarks for the hot paths of the stack: the per-access
//! machine pipeline, PEBS sampling, histogram updates, Algorithm 1, page
//! walks, and huge-page splits. These bound the simulator's throughput and
//! double as regression guards.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memtis_core::{adapt, AccessHistogram};
use memtis_sim::prelude::*;
use memtis_tracking::pebs::PebsSampler;
use memtis_workloads::dist::ZipfTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn machine_access(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::dram_nvm(64 << 21, 512 << 21));
    for i in 0..64u64 {
        m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::FAST)
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("machine_access", |b| {
        b.iter(|| {
            let addr = rng.gen_range(0..64 * (1u64 << 21));
            black_box(m.access(Access::load(addr)).unwrap())
        })
    });
}

fn pebs_observe(c: &mut Criterion) {
    let mut s = PebsSampler::new(200, 100_000);
    let out = AccessOutcome {
        latency_ns: 100.0,
        vpage: VirtPage(0),
        page_size: PageSize::Huge,
        tier: TierId::FAST,
        llc_miss: true,
        tlb_miss: false,
        hint_fault: false,
        demand_fault: false,
    };
    c.bench_function("pebs_observe", |b| {
        b.iter(|| black_box(s.observe(&Access::load(4096), &out)))
    });
}

fn histogram_ops(c: &mut Criterion) {
    let mut h = AccessHistogram::new();
    for b in 0..16 {
        h.add(b, 1000);
    }
    let mut i = 0usize;
    c.bench_function("histogram_move", |b| {
        b.iter(|| {
            i = (i + 1) % 15;
            h.move_pages(i, i + 1, 1);
            h.move_pages(i + 1, i, 1);
            black_box(&h);
        })
    });
    c.bench_function("histogram_cool", |b| {
        b.iter(|| {
            let mut hh = h.clone();
            hh.cool();
            black_box(hh.total_pages())
        })
    });
}

fn algorithm1(c: &mut Criterion) {
    let mut h = AccessHistogram::new();
    for b in 0..16 {
        h.add(b, (b as u64 + 1) * 977);
    }
    c.bench_function("algorithm1_adapt", |b| {
        b.iter(|| black_box(adapt(&h, 64 << 21, 0.9, true)))
    });
}

fn page_walks(c: &mut Criterion) {
    let mut pt = memtis_sim::page_table::PageTable::new();
    for i in 0..10_000u64 {
        pt.map_base(VirtPage(i), Frame(i)).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("page_table_translate", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(pt.translate(VirtPage(i)))
        })
    });
}

fn huge_split(c: &mut Criterion) {
    c.bench_function("machine_split_huge", |b| {
        b.iter_with_setup(
            || {
                let mut m = Machine::new(MachineConfig::dram_nvm(16 << 21, 64 << 21));
                m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
                    .unwrap();
                for i in 0..8u64 {
                    m.access(Access::store(i * 4096)).unwrap();
                }
                m
            },
            |mut m| black_box(m.split_huge(VirtPage(0), true).unwrap()),
        )
    });
}

fn zipf_sampling(c: &mut Criterion) {
    let z = ZipfTable::new(200_000, 0.99);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("zipf_sample", |b| b.iter(|| black_box(z.sample(&mut rng))));
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = machine_access, pebs_observe, histogram_ops, algorithm1, page_walks, huge_split, zipf_sampling
}
criterion_main!(micro);
