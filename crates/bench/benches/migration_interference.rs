//! Migration interference — demand accesses vs the asynchronous engine.
//!
//! With instantaneous migration the app never feels `kmigrated`; with the
//! bandwidth-arbitrated engine, promotions occupy a finite link and pages
//! arrive late, so demand accesses keep paying capacity-tier latency.
//! Experiment 1 sweeps the per-link bandwidth cap and reports average
//! demand latency and fast-tier hit ratio as the cap tightens. Experiment
//! 2 ablates MEMTIS's in-flight cancellation under a tight cap on a
//! drifting-hot-set workload: a promotion enqueued for the old Zipf head
//! is still copying when the head rotates, so the page cools mid-flight.
//! Cancelling it costs at most one partial pass; letting it run (the
//! no-cancel ablation) completes a useless copy that evicts resident pages
//! and must later be demoted again, multiplying total link traffic.

use memtis_bench::{
    access_budget, driver_config, machine_for, run_sim, CapacityKind, Ratio, Table,
    TIME_COMPRESSION,
};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_sim::prelude::{MachineConfig, Simulation, HUGE_PAGE_SIZE};
use memtis_workloads::{Benchmark, Scale, SpecStream, SynthBuilder};

const BW_CAPS: [Option<f64>; 5] = [None, Some(64.0), Some(16.0), Some(4.0), Some(1.0)];
/// Ablation cap: a huge-page pass takes ~262 us — long enough to span many
/// `kmigrated` wakeups (so cooling can catch a transfer mid-flight), short
/// enough that transfers still complete within the run.
const TIGHT_BW: f64 = 8.0;

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let bench = Benchmark::Btree;

    let mut sweep = Table::new(vec![
        "bw (B/ns)",
        "avg demand lat (ns)",
        "fast-hit %",
        "promo 4K",
        "aborted",
        "inflight pk",
    ]);
    for cap in BW_CAPS {
        let mut driver = driver_config();
        driver.migration_bw = cap;
        let (r, _) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(MemtisConfig::sim_scaled()),
            driver,
            access_budget(),
        );
        sweep.row(vec![
            cap.map_or("instant".to_string(), |b| format!("{b}")),
            format!("{:.1}", r.app_access_ns / r.accesses as f64),
            format!("{:.1}", r.stats.fast_tier_hit_ratio() * 100.0),
            r.stats.migration.promoted_4k.to_string(),
            r.stats.migration.aborted.to_string(),
            r.stats.migration.in_flight_peak.to_string(),
        ]);
    }
    memtis_bench::emit(
        "migration_interference",
        &format!(
            "{}: demand latency vs migration-link bandwidth cap",
            bench.name()
        ),
        &sweep,
    );

    let mut ablation = Table::new(vec![
        "variant",
        "avg demand lat (ns)",
        "fast-hit %",
        "cancels",
        "aborted copy (KB)",
        "promo 4K",
        "demo 4K",
    ]);
    // A drifting hot set is what makes cancellation matter: promotions
    // enqueued for the old Zipf head are still copying when the head
    // rotates, so the page cools mid-flight.
    // Loads only: stores would dirty-abort the in-flight copies before the
    // drift has a chance to cool them, hiding the cancellation effect.
    let spec = SynthBuilder::new("drifting-zipf")
        .footprint(64 << 20)
        .zipf(1.2)
        .phases(16)
        .drift(0.5)
        .stores(0.0)
        .build(access_budget());
    let rss = spec.total_bytes();
    for (label, cfg) in [
        ("cancel in-flight", MemtisConfig::sim_scaled()),
        (
            "no-cancel ablation",
            MemtisConfig::sim_scaled().without_inflight_cancel(),
        ),
    ] {
        let machine = MachineConfig::dram_nvm(ratio.fast_bytes(rss), rss * 2 + 64 * HUGE_PAGE_SIZE)
            .with_bandwidth_scale(TIME_COMPRESSION);
        let mut driver = driver_config();
        driver.migration_bw = Some(TIGHT_BW);
        let mut wl = SpecStream::new(spec.clone(), memtis_bench::SEED);
        let mut sim = Simulation::new(machine, MemtisPolicy::new(cfg), driver);
        let r = sim.run(&mut wl).expect("ablation run failed");
        ablation.row(vec![
            label.to_string(),
            format!("{:.1}", r.app_access_ns / r.accesses as f64),
            format!("{:.1}", r.stats.fast_tier_hit_ratio() * 100.0),
            sim.policy().stats.inflight_cancels.to_string(),
            (r.stats.migration.aborted_bytes >> 10).to_string(),
            r.stats.migration.promoted_4k.to_string(),
            r.stats.migration.demoted_4k.to_string(),
        ]);
    }
    memtis_bench::emit(
        "migration_cancel_ablation",
        &format!("drifting-zipf: in-flight cancellation vs no-cancel at {TIGHT_BW} B/ns"),
        &ablation,
    );
}
