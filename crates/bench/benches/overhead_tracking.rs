//! §6.3.5 — the overheads of PEBS-based access tracking.
//!
//! `ksampled` adjusts its sampling period against a 3%-of-one-core budget:
//! on 654.roms (very high LLC-miss rate) the paper sees the period climb
//! from 200 to ~1400, while on 603.bwaves it stays at its initial value.
//! The paper reports 2.016% average CPU for ksampled and 0.922% average
//! performance impact.

use memtis_bench::{
    driver_config, machine_for, normalized, run_baseline, run_sim, run_system, CapacityKind, Ratio,
    System, Table,
};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut table = Table::new(vec![
        "benchmark",
        "initial period",
        "final period",
        "ksampled cpu (EMA)",
        "samples",
        "perf vs no-sampling MEMTIS",
    ]);
    for bench in Benchmark::ALL {
        let (report, sim) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(MemtisConfig::sim_scaled()),
            driver_config(),
            memtis_bench::access_budget(),
        );
        let p = sim.policy();
        // Reference: the same run with free sampling (no per-sample cost),
        // isolating the CPU overhead of tracking itself.
        let free_cfg = MemtisConfig {
            sample_cost_ns: 0.0,
            ..MemtisConfig::sim_scaled()
        };
        let free = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            MemtisPolicy::new(free_cfg),
            driver_config(),
            memtis_bench::access_budget(),
        )
        .0;
        table.row(vec![
            bench.name().to_string(),
            MemtisConfig::sim_scaled().load_period.to_string(),
            p.load_period().to_string(),
            format!("{:.2}%", p.stats.cpu_usage_ema * 100.0),
            p.stats.samples.to_string(),
            format!("{:+.2}%", (free.wall_ns / report.wall_ns - 1.0) * -100.0),
        ]);
    }
    memtis_bench::emit(
        "overhead_tracking",
        "ksampled dynamic period + CPU budget (paper §6.3.5: avg 2.016% CPU, 0.922% overhead)",
        &table,
    );

    // Sanity anchor: MEMTIS overall overhead stays near the all-NVM case
    // even with the fast tier effectively disabled (tiny fast tier).
    let bench = Benchmark::Roms;
    let base = run_baseline(bench, scale, CapacityKind::Nvm);
    let r = run_system(
        bench,
        scale,
        Ratio {
            fast: 1,
            capacity: 16,
        },
        CapacityKind::Nvm,
        System::Memtis,
    );
    println!(
        "654.roms 1:16 normalized (placement+overhead combined): {:.3}",
        normalized(&base, &r)
    );
}
