//! Table 1 — taxonomy of tiered memory systems.
//!
//! Generated directly from each policy's descriptor, so the table always
//! reflects what the implementations actually do.

use memtis_bench::{System, Table};

fn main() {
    let systems = [
        System::AutoNuma,
        System::AutoTiering,
        System::Tiering08,
        System::Tpp,
        System::Nimble,
        System::MultiClock,
        System::Tmts,
        System::Hemem,
        System::Memtis,
    ];
    let mut t = Table::new(vec![
        "system",
        "tracking mechanism",
        "subpage tracking",
        "promotion metric",
        "demotion metric",
        "thresholding",
        "critical-path migration",
        "page size handling",
    ]);
    for s in systems {
        let d = s.build().descriptor();
        t.row(vec![
            d.name.to_string(),
            d.mechanism.to_string(),
            if d.subpage_tracking { "Yes" } else { "No" }.to_string(),
            d.promotion_metric.to_string(),
            d.demotion_metric.to_string(),
            d.thresholding.to_string(),
            d.critical_path_migration.to_string(),
            d.page_size_handling.to_string(),
        ]);
    }
    memtis_bench::emit(
        "table1_taxonomy",
        "comparison of tiered memory systems (paper Table 1)",
        &t,
    );
}
