//! Table 2 — benchmark characteristics: RSS and huge-page ratio (RHP),
//! measured in the simulator and compared against the paper's testbed
//! values (sizes scaled 1/64).

use memtis_bench::{driver_config, machine_all_fast, run_sim, Table};
use memtis_sim::prelude::{NoopPolicy, HUGE_PAGE_SIZE};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let mut t = Table::new(vec![
        "benchmark",
        "paper RSS (GB)",
        "scaled RSS (MB)",
        "measured RSS (MB)",
        "paper RHP",
        "measured RHP",
        "description",
    ]);
    for bench in Benchmark::ALL {
        // Enough accesses to get through all allocation phases.
        let (report, sim) = run_sim(
            bench,
            scale,
            machine_all_fast(bench, scale),
            NoopPolicy,
            driver_config(),
            400_000,
        );
        let huge_bytes = sim.machine().mapped_huge_pages() * HUGE_PAGE_SIZE;
        let rss = report.rss_peak_bytes.max(sim.machine().rss_bytes());
        let rhp = huge_bytes as f64 / sim.machine().rss_bytes().max(1) as f64;
        t.row(vec![
            bench.name().to_string(),
            format!("{:.1}", bench.paper_rss_gb()),
            format!("{:.0}", bench.paper_rss_gb() * 1024.0 / 64.0),
            format!("{:.0}", rss as f64 / (1 << 20) as f64),
            format!("{:.1}%", bench.paper_rhp() * 100.0),
            format!("{:.1}%", rhp * 100.0),
            bench.description().to_string(),
        ]);
    }
    memtis_bench::emit(
        "table2_benchmarks",
        "benchmark characteristics (paper Table 2, sizes scaled 1/64)",
        &t,
    );
}
