//! Table 3 — HeMem over-allocation sizes.
//!
//! HeMem places small (non-huge-mmap) allocations directly in the fast
//! tier, bypassing tiering; the paper measures this "over-allocation" per
//! benchmark and shrinks HeMem's configured fast tier to compensate. Here
//! the same quantity is read from the HeMem policy's own accounting.

use memtis_baselines::{HememConfig, HememPolicy};
use memtis_bench::{driver_config, machine_for, run_sim, CapacityKind, Ratio, Table};
use memtis_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::DEFAULT;
    let ratio = Ratio {
        fast: 1,
        capacity: 2,
    };
    let mut t = Table::new(vec![
        "benchmark",
        "paper over-allocation (MB)",
        "measured (MB, 1/64 scale)",
        "measured x64 (MB, paper scale)",
    ]);
    let paper_mb: [(Benchmark, u64); 8] = [
        (Benchmark::Graph500, 60),
        (Benchmark::PageRank, 500),
        (Benchmark::XsBench, 420),
        (Benchmark::Liblinear, 90),
        (Benchmark::Silo, 1400),
        (Benchmark::Btree, 9800),
        (Benchmark::Bwaves, 1900),
        (Benchmark::Roms, 900),
    ];
    for (bench, paper) in paper_mb {
        let (_report, sim) = run_sim(
            bench,
            scale,
            machine_for(bench, scale, ratio, CapacityKind::Nvm),
            HememPolicy::new(HememConfig::default()),
            driver_config(),
            300_000,
        );
        let measured = sim.policy().overallocated_bytes;
        t.row(vec![
            bench.name().to_string(),
            format!("{paper}"),
            format!("{:.1}", measured as f64 / (1 << 20) as f64),
            format!("{:.0}", measured as f64 * 64.0 / (1 << 20) as f64),
        ]);
    }
    memtis_bench::emit(
        "table3_overalloc",
        "HeMem small-allocation over-allocation sizes (paper Table 3)",
        &t,
    );
}
