//! `chaos` — randomized fault-plan soak.
//!
//! ```text
//! chaos [--plans N] [--accesses N] [--seed MASTER] [--systems memtis,tpp,...]
//!       [--shards S]
//! ```
//!
//! Derives `N` randomized [`FaultPlan`]s from a master seed and runs each
//! against a bandwidth-limited machine at test scale, checking after every
//! run that the invariants the fault-free engine guarantees survived the
//! abuse:
//!
//! - page conservation: tier usage == RSS + in-flight reservations +
//!   fault-injected pressure reservations;
//! - zero histogram underflows (policy metadata never desyncs);
//! - determinism: every 10th plan is re-run and must reproduce the same
//!   wall clock, stats, and fault schedule bit-for-bit.
//!
//! Exits non-zero if any plan violates an invariant, printing the plan so
//! it can be pinned as a regression.

use memtis_bench::{machine_for, CapacityKind, Ratio, System};
use memtis_sim::faults::{FaultCounters, FaultPlan, FaultRng, OutageSpec, PressureSpec};
use memtis_sim::prelude::*;
use memtis_workloads::{Benchmark, Scale, SpecStream};

const WORKLOAD_SEED: u64 = 20231023;

fn find_system(name: &str) -> Option<System> {
    [
        System::AutoNuma,
        System::AutoTiering,
        System::Tiering08,
        System::Tpp,
        System::Nimble,
        System::Hemem,
        System::Memtis,
        System::MemtisNs,
        System::MemtisVanilla,
        System::MultiClock,
        System::Tmts,
    ]
    .into_iter()
    .find(|s| s.name().eq_ignore_ascii_case(name))
}

/// A randomized-but-reproducible plan: index `i` under one master seed
/// always yields the same plan.
fn random_plan(rng: &mut FaultRng) -> FaultPlan {
    FaultPlan {
        seed: rng.next_u64(),
        abort_per_pump: rng.next_f64() * 0.25,
        dirty_per_pump: rng.next_f64() * 0.25,
        sample_drop: rng.next_f64() * 0.25,
        sample_dup: rng.next_f64() * 0.25,
        tick_skip: rng.next_f64() * 0.25,
        tick_delay: rng.next_f64() * 0.25,
        outage: (!rng.next_u64().is_multiple_of(3)).then(|| OutageSpec {
            period_ns: 150_000.0 + rng.next_f64() * 500_000.0,
            duration_ns: 10_000.0 + rng.next_f64() * 100_000.0,
        }),
        pressure: (!rng.next_u64().is_multiple_of(3)).then(|| PressureSpec {
            period_ns: 200_000.0 + rng.next_f64() * 600_000.0,
            duration_ns: 30_000.0 + rng.next_f64() * 200_000.0,
            bytes: HUGE_PAGE_SIZE * (1 + rng.next_u64() % 4),
        }),
        ..FaultPlan::default()
    }
}

struct SoakOutcome {
    signature: String,
    faults: FaultCounters,
    violations: Vec<String>,
}

fn soak_one(
    system: System,
    bench: Benchmark,
    plan: FaultPlan,
    accesses: u64,
    shards: Option<usize>,
    heartbeat: Option<u64>,
) -> SoakOutcome {
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let mut machine = machine_for(bench, Scale::TEST, ratio, CapacityKind::Nvm);
    // Keep transfers in flight long enough for abort/dirty/outage faults to
    // find targets.
    machine.migration.bandwidth_limit = Some(8.0);
    let driver = DriverConfig {
        tick_interval_ns: 20_000.0,
        timeline_interval_ns: 200_000.0,
        window_events: 25_000,
        faults: Some(plan),
        shards,
        heartbeat_events: heartbeat,
        ..Default::default()
    };
    let mut wl = SpecStream::new(bench.spec(Scale::TEST, accesses), WORKLOAD_SEED);
    let mut sim = Simulation::new(machine, system.build(), driver);
    let report = match sim.run(&mut wl) {
        Ok(r) => r,
        Err(e) => {
            return SoakOutcome {
                signature: String::new(),
                faults: FaultCounters::default(),
                violations: vec![format!("run failed: {e:?}")],
            }
        }
    };

    let mut violations = Vec::new();
    if report.hist_underflows != 0 {
        violations.push(format!(
            "histogram underflowed {} pages",
            report.hist_underflows
        ));
    }
    let m = sim.machine();
    let used: u64 = (0..2).map(|t| m.used_bytes(TierId(t))).sum();
    let reserved = m.transfers_in_flight() as u64 * HUGE_PAGE_SIZE;
    let expected = m.rss_bytes() + reserved + m.fault_reserved_bytes();
    if used != expected {
        violations.push(format!(
            "page conservation violated: used={used} != rss({}) + inflight({reserved}) + pressure({})",
            m.rss_bytes(),
            m.fault_reserved_bytes()
        ));
    }
    if m.used_bytes(TierId::FAST) > m.capacity_bytes(TierId::FAST) {
        violations.push("fast tier over capacity".into());
    }
    let signature = format!(
        "{:x}|{:?}|{:?}|{}",
        report.wall_ns.to_bits(),
        report.stats,
        report.faults,
        report.accesses,
    );
    SoakOutcome {
        signature,
        faults: report.faults,
        violations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut plans: usize = 120;
    let mut accesses: u64 = 60_000;
    let mut master_seed: u64 = 0xC4A0_5000;
    let mut systems = vec![System::Memtis];
    let mut shards: Option<usize> = None;
    let mut heartbeat: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--plans" => {
                plans = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(plans);
                i += 2;
            }
            "--accesses" => {
                accesses = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(accesses);
                i += 2;
            }
            "--seed" => {
                master_seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(master_seed);
                i += 2;
            }
            "--shards" => {
                shards = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--heartbeat" => {
                heartbeat = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--systems" => {
                systems = args
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .filter_map(|s| {
                                let sys = find_system(s.trim());
                                if sys.is_none() {
                                    eprintln!("error: unknown system {s:?}");
                                    std::process::exit(2);
                                }
                                sys
                            })
                            .collect()
                    })
                    .unwrap_or(systems);
                i += 2;
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!(
                    "usage: chaos [--plans N] [--accesses N] [--seed MASTER] \
                     [--systems memtis,tpp,...] [--shards S] [--heartbeat EVENTS]"
                );
                std::process::exit(2);
            }
        }
    }

    let benches = [Benchmark::Silo, Benchmark::XsBench, Benchmark::Btree];
    let mut rng = FaultRng::new(master_seed);
    let mut failures = 0usize;
    let mut totals = FaultCounters::default();
    println!(
        "chaos soak: {} plans x {} systems, {} accesses/plan, master seed {master_seed}",
        plans,
        systems.len(),
        accesses
    );
    for p in 0..plans {
        let plan = random_plan(&mut rng);
        let bench = benches[p % benches.len()];
        for &system in &systems {
            let out = soak_one(system, bench, plan, accesses, shards, heartbeat);
            totals.merge(&out.faults);
            for v in &out.violations {
                failures += 1;
                eprintln!("FAIL plan {p} ({} on {}): {v}", system.name(), bench.name());
                eprintln!("  plan: {plan:?}");
            }
            // Every 10th plan doubles as a determinism check.
            if p % 10 == 0 && out.violations.is_empty() {
                let again = soak_one(system, bench, plan, accesses, shards, heartbeat);
                if again.signature != out.signature {
                    failures += 1;
                    eprintln!(
                        "FAIL plan {p} ({} on {}): nondeterministic replay",
                        system.name(),
                        bench.name()
                    );
                    eprintln!("  plan: {plan:?}");
                }
            }
        }
        if (p + 1) % 20 == 0 {
            println!(
                "  {}/{} plans done, {} faults injected",
                p + 1,
                plans,
                totals.total()
            );
        }
    }
    println!(
        "chaos soak finished: {} plans, faults injected: {totals:?}",
        plans
    );
    if failures > 0 {
        eprintln!("chaos soak FAILED: {failures} violation(s)");
        std::process::exit(1);
    }
    println!("all invariants held");
}
