//! `memtis` — ad-hoc experiment CLI.
//!
//! ```text
//! memtis run  <benchmark> [--ratio 1:8] [--policy memtis] [--cxl] [--accesses N]
//!             [--trace-out PATH] [--trace-format jsonl|perfetto] [--window EVENTS]
//!             [--migration-bw BYTES_PER_NS] [--migration-queue DEPTH] [--faults SPEC]
//!             [--chunk N] [--shards S]
//! memtis compare <benchmark> [--ratio 1:8] [--cxl] [--accesses N]
//!             [--migration-bw BYTES_PER_NS] [--migration-queue DEPTH] [--faults SPEC]
//!             [--chunk N]
//! memtis diff <old.json> <new.json> [--tol FRAC] [--tol KEY=FRAC] [--ignore GLOB]
//! memtis list
//! ```
//!
//! `run` executes one cell and prints the detailed report; `compare` runs
//! every system on one benchmark; `diff` compares two run-report (or
//! `BENCH_*.json`) documents with relative-tolerance bands and exits
//! nonzero on regression; `list` shows benchmarks and policies.

use memtis_bench::{
    access_budget, driver_config, driver_config_with_window, machine_for, normalized, run_baseline,
    run_cell_traced, run_system_with_driver, write_trace, CapacityKind, Ratio, System, Table,
    TraceFormat, DEFAULT_WINDOW_EVENTS, SEED,
};
use memtis_workloads::{Benchmark, Scale};

fn parse_ratio(s: &str) -> Option<Ratio> {
    let (f, c) = s.split_once(':')?;
    Some(Ratio {
        fast: f.parse().ok()?,
        capacity: c.parse().ok()?,
    })
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn find_system(name: &str) -> Option<System> {
    let all = [
        System::AutoNuma,
        System::AutoTiering,
        System::Tiering08,
        System::Tpp,
        System::Nimble,
        System::Hemem,
        System::Memtis,
        System::MemtisNs,
        System::MemtisVanilla,
        System::MultiClock,
        System::Tmts,
        System::AllNvm,
        System::AllDram,
    ];
    all.into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

struct Opts {
    ratio: Ratio,
    kind: CapacityKind,
    policy: System,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    window: u64,
    migration_bw: Option<f64>,
    migration_queue: Option<usize>,
    faults: Option<memtis_sim::faults::FaultPlan>,
    chunk: Option<usize>,
    shards: Option<usize>,
    heartbeat: Option<u64>,
}

impl Opts {
    /// The default driver config with this invocation's migration and
    /// chunking overrides applied.
    fn driver(&self) -> memtis_sim::prelude::DriverConfig {
        let mut d = driver_config();
        d.migration_bw = self.migration_bw;
        d.migration_queue = self.migration_queue;
        d.faults = self.faults;
        if let Some(c) = self.chunk {
            d.chunk = c;
        }
        d.shards = self.shards;
        d.heartbeat_events = self.heartbeat;
        d
    }
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        ratio: Ratio {
            fast: 1,
            capacity: 8,
        },
        kind: CapacityKind::Nvm,
        policy: System::Memtis,
        trace_out: None,
        trace_format: TraceFormat::Jsonl,
        window: DEFAULT_WINDOW_EVENTS,
        migration_bw: None,
        migration_queue: None,
        faults: None,
        chunk: None,
        shards: None,
        heartbeat: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ratio" => {
                if let Some(r) = args.get(i + 1).and_then(|s| parse_ratio(s)) {
                    o.ratio = r;
                }
                i += 2;
            }
            "--policy" => {
                if let Some(p) = args.get(i + 1).and_then(|s| find_system(s)) {
                    o.policy = p;
                }
                i += 2;
            }
            "--cxl" => {
                o.kind = CapacityKind::Cxl;
                i += 1;
            }
            "--accesses" => {
                if let Some(n) = args.get(i + 1) {
                    std::env::set_var("MEMTIS_ACCESSES", n);
                }
                i += 2;
            }
            "--trace-out" => {
                o.trace_out = args.get(i + 1).cloned();
                i += 2;
            }
            "--trace-format" => {
                match args.get(i + 1).and_then(|s| TraceFormat::parse(s)) {
                    Some(f) => o.trace_format = f,
                    None => {
                        eprintln!("error: --trace-format must be jsonl or perfetto");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--window" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    o.window = n;
                }
                i += 2;
            }
            "--migration-bw" => {
                o.migration_bw = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--migration-queue" => {
                o.migration_queue = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--chunk" => {
                o.chunk = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--shards" => {
                o.shards = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--heartbeat" => {
                o.heartbeat = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--faults" => {
                match args
                    .get(i + 1)
                    .map(|s| memtis_sim::faults::FaultPlan::parse(s))
                {
                    Some(Ok(plan)) => o.faults = Some(plan),
                    Some(Err(e)) => {
                        eprintln!("error: bad --faults spec: {e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("error: --faults needs a spec");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    o
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  memtis run <benchmark> [--ratio F:C] [--policy NAME] [--cxl] [--accesses N]\n    \
         [--trace-out PATH] [--trace-format jsonl|perfetto] [--window EVENTS]\n    \
         [--migration-bw BYTES_PER_NS] [--migration-queue DEPTH] [--chunk N] [--shards S]\n  \
         memtis compare <benchmark> [--ratio F:C] [--cxl] [--accesses N]\n  \
         memtis diff <old.json> <new.json> [--tol FRAC] [--tol KEY=FRAC] [--ignore GLOB]\n  \
         memtis list"
    );
    std::process::exit(2);
}

fn run_diff(args: &[String]) -> ! {
    use memtis_bench::{diff_reports, parse_diff_args, render_diff};
    use memtis_sim::obs::json::Json;
    let (old_path, new_path, opts) = match parse_diff_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let load = |path: &str| -> Json {
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&body).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let d = diff_reports(&load(&old_path), &load(&new_path), &opts);
    print!("{}", render_diff(&d));
    if d.has_breach() {
        eprintln!("diff: regression detected ({old_path} -> {new_path})");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("benchmarks:");
            for b in Benchmark::ALL {
                println!("  {:<12} {}", b.name(), b.description());
            }
            println!("\npolicies:");
            for s in [
                "AutoNUMA",
                "AutoTiering",
                "Tiering-0.8",
                "TPP",
                "Nimble",
                "HeMem",
                "MEMTIS",
                "MEMTIS-NS",
                "MEMTIS-Vanilla",
                "MULTI-CLOCK",
                "TMTS",
                "All-NVM",
                "All-DRAM",
            ] {
                println!("  {s}");
            }
        }
        Some("run") => {
            let Some(bench) = args.get(1).and_then(|s| find_benchmark(s)) else {
                usage()
            };
            let o = parse_opts(&args[2..]);
            let base = run_baseline(bench, Scale::DEFAULT, o.kind);
            let r = match &o.trace_out {
                Some(path) => {
                    let machine = machine_for(bench, Scale::DEFAULT, o.ratio, o.kind);
                    let mut driver = driver_config_with_window(o.window);
                    driver.migration_bw = o.migration_bw;
                    driver.migration_queue = o.migration_queue;
                    driver.faults = o.faults;
                    if let Some(c) = o.chunk {
                        driver.chunk = c;
                    }
                    driver.shards = o.shards;
                    driver.heartbeat_events = o.heartbeat;
                    let (r, obs) = run_cell_traced(
                        bench,
                        Scale::DEFAULT,
                        machine,
                        o.policy.build(),
                        driver,
                        access_budget(),
                        SEED,
                    );
                    write_trace(path, o.trace_format, &obs, &r.windows);
                    r
                }
                None => run_system_with_driver(
                    bench,
                    Scale::DEFAULT,
                    o.ratio,
                    o.kind,
                    o.policy,
                    o.driver(),
                ),
            };
            println!(
                "{} on {} at {} ({}):",
                o.policy.name(),
                bench.name(),
                o.ratio.label(),
                if o.kind == CapacityKind::Cxl {
                    "CXL"
                } else {
                    "NVM"
                }
            );
            println!(
                "  normalized perf   : {:.3} (vs all-{} w/ THP)",
                normalized(&base, &r),
                if o.kind == CapacityKind::Cxl {
                    "CXL"
                } else {
                    "NVM"
                }
            );
            println!("  wall time         : {:.2} ms", r.wall_ns / 1e6);
            println!("  throughput        : {:.1} M acc/s", r.throughput() / 1e6);
            println!(
                "  sim self-thpt     : {:.2} M events/s (host)",
                r.self_events_per_sec() / 1e6
            );
            println!(
                "  fast-tier hits    : {:.1}%",
                r.stats.fast_tier_hit_ratio() * 100.0
            );
            println!(
                "  migration traffic : {} 4K pages",
                r.stats.migration.traffic_4k()
            );
            println!("  huge-page splits  : {}", r.stats.migration.splits);
            println!(
                "  RSS (peak/final)  : {} / {} MB",
                r.rss_peak_bytes >> 20,
                r.rss_final_bytes >> 20
            );
            println!("  daemon CPU        : {:.2} cores", r.daemon_core_usage());
            println!("  app-path overhead : {:.2} ms", r.app_extra_ns / 1e6);
            if o.faults.is_some() {
                println!(
                    "  faults injected   : {} ({:?})",
                    r.faults.total(),
                    r.faults
                );
                println!("  hist underflows   : {}", r.hist_underflows);
            }
            let thpt: Vec<f64> = r.timeline.iter().map(|s| s.window_throughput).collect();
            let fhr: Vec<f64> = r.timeline.iter().map(|s| s.window_fast_hit_ratio).collect();
            if !thpt.is_empty() {
                println!(
                    "  throughput  (t →) : {}",
                    memtis_bench::sparkline(&thpt, 48)
                );
                println!(
                    "  fast-hit %  (t →) : {}",
                    memtis_bench::sparkline(&fhr, 48)
                );
            }
        }
        Some("diff") => run_diff(&args[1..]),
        Some("compare") => {
            let Some(bench) = args.get(1).and_then(|s| find_benchmark(s)) else {
                usage()
            };
            let o = parse_opts(&args[2..]);
            let base = run_baseline(bench, Scale::DEFAULT, o.kind);
            let mut t = Table::new(vec![
                "policy",
                "normalized",
                "fast-hit %",
                "traffic 4K",
                "splits",
            ]);
            let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
            for sys in System::FIG5 {
                let r =
                    run_system_with_driver(bench, Scale::DEFAULT, o.ratio, o.kind, sys, o.driver());
                let n = normalized(&base, &r);
                rows.push((
                    n,
                    vec![
                        sys.name().to_string(),
                        format!("{n:.3}"),
                        format!("{:.1}", r.stats.fast_tier_hit_ratio() * 100.0),
                        r.stats.migration.traffic_4k().to_string(),
                        r.stats.migration.splits.to_string(),
                    ],
                ));
            }
            rows.sort_by(|a, b| b.0.total_cmp(&a.0));
            for (_, row) in rows {
                t.row(row);
            }
            println!("{} at {}:\n{}", bench.name(), o.ratio.label(), t.render());
        }
        _ => usage(),
    }
}
