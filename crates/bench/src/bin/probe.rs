//! Diagnostic probe: run one (benchmark, ratio, system) cell and dump the
//! detailed report. Usage: `probe <benchmark> <ratio> <system>`.

use memtis_bench::{run_baseline, run_system, CapacityKind, Ratio, System};
use memtis_workloads::{Benchmark, Scale};

fn probe_memtis(bench: Benchmark, ratio: Ratio) {
    use memtis_core::{MemtisConfig, MemtisPolicy};
    use memtis_sim::prelude::Simulation;
    use memtis_workloads::SpecStream;
    let machine = memtis_bench::machine_for(bench, Scale::DEFAULT, ratio, CapacityKind::Nvm);
    let mut wl = SpecStream::new(
        bench.spec(Scale::DEFAULT, memtis_bench::access_budget()),
        memtis_bench::SEED,
    );
    let mut sim = Simulation::new(
        machine,
        MemtisPolicy::new(MemtisConfig::sim_scaled()),
        memtis_bench::driver_config(),
    );
    let _ = sim.run(&mut wl).unwrap();
    let p = sim.policy();
    let st = &p.stats;
    println!(
        "  memtis internals: samples={} adapts={} coolings={} estimates={} \
         rhr={:.3} ehr={:.3} candidates={} requested={} splits={} collapses={} \
         thr={:?} base_thr={:?} period={}",
        st.samples,
        st.adaptations,
        st.coolings,
        st.estimates,
        st.last_rhr,
        st.last_ehr,
        st.split_candidates,
        st.split_requested,
        st.splits,
        st.collapses,
        (p.thresholds().hot, p.thresholds().warm, p.thresholds().cold),
        (
            p.base_thresholds().hot,
            p.base_thresholds().warm,
            p.base_thresholds().cold
        ),
        p.load_period(),
    );
    println!("  page hist: {:?}", p.histogram().bins());
    println!("  base hist: {:?}", p.base_histogram().bins());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| Some(b.name().to_lowercase()) == args.get(1).map(|s| s.to_lowercase()))
        .unwrap_or(Benchmark::PageRank);
    let ratio = match args.get(2).map(String::as_str) {
        Some("1:2") => Ratio {
            fast: 1,
            capacity: 2,
        },
        Some("1:16") => Ratio {
            fast: 1,
            capacity: 16,
        },
        Some("2:1") => Ratio::TWO_TO_ONE,
        _ => Ratio {
            fast: 1,
            capacity: 8,
        },
    };
    let systems: Vec<System> = match args.get(3).map(String::as_str) {
        Some("all") | None => System::FIG5.to_vec(),
        Some(name) => System::FIG5
            .into_iter()
            .filter(|s| s.name().eq_ignore_ascii_case(name))
            .collect(),
    };
    let base = run_baseline(bench, Scale::DEFAULT, CapacityKind::Nvm);
    println!(
        "baseline all-NVM: wall={:.2}ms thpt={:.1}M/s llc_miss={:.3}",
        base.wall_ns / 1e6,
        base.throughput() / 1e6,
        base.llc.miss_ratio()
    );
    for sys in systems {
        let r = run_system(bench, Scale::DEFAULT, ratio, CapacityKind::Nvm, sys);
        println!(
            "{:<12} norm={:.3} wall={:.2}ms app_extra={:.2}ms daemon={:.2}ms dcores={:.2} \
             fastHR={:.3} promo4k={} demo4k={} splits={} shootdowns={} hintfaults={} rss={}MB \
             tlb_miss={:.4} llc_miss={:.3} avg_lat={:.1}ns",
            sys.name(),
            base.wall_ns / r.wall_ns,
            r.wall_ns / 1e6,
            r.app_extra_ns / 1e6,
            r.daemon_ns / 1e6,
            r.daemon_core_usage(),
            r.stats.fast_tier_hit_ratio(),
            r.stats.migration.promoted_4k,
            r.stats.migration.demoted_4k,
            r.stats.migration.splits,
            r.stats.shootdowns,
            r.stats.hint_faults,
            r.rss_final_bytes >> 20,
            r.tlb.miss_ratio(),
            r.llc.miss_ratio(),
            r.app_access_ns / r.accesses as f64,
        );
        if sys == System::Memtis {
            probe_memtis(bench, ratio);
        }
    }
}
