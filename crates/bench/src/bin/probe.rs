//! Diagnostic probe: run one (benchmark, ratio, system) cell and dump the
//! detailed report.
//!
//! ```text
//! probe [<benchmark>] [<ratio>] [<system>|all] [--test-scale]
//!       [--trace-out PATH] [--trace-format jsonl|perfetto] [--window EVENTS]
//!       [--report-out PATH] [--heartbeat EVENTS]
//!       [--migration-bw BYTES_PER_NS] [--migration-queue DEPTH]
//!       [--faults SPEC] [--chunk N] [--shards S]
//! ```
//!
//! `--faults` takes a seeded fault plan, e.g.
//! `seed=7,abort=0.02,dirty=0.05,drop=0.05,outage=400000:50000`
//! (see `memtis_sim::faults::FaultPlan::parse`).
//!
//! With `--trace-out` and/or `--report-out`, the first selected system's
//! run is re-executed under a tracing observer; `--trace-out` writes the
//! event/window trace, `--report-out` a `memtis-report-v1` JSON document
//! (throughput, fault counters, flight-recorder percentiles, phase
//! self-profile) for `memtis diff`. `--heartbeat N` emits a one-line JSON
//! status to stderr every N workload events.

use memtis_bench::{
    access_budget, driver_config_with_window, machine_for, run_baseline, run_cell_traced,
    run_system_with_driver, write_trace, CapacityKind, Ratio, System, TraceFormat,
    DEFAULT_WINDOW_EVENTS, SEED,
};
use memtis_workloads::{Benchmark, Scale};

fn probe_memtis(
    bench: Benchmark,
    ratio: Ratio,
    scale: Scale,
    driver: memtis_sim::prelude::DriverConfig,
) {
    use memtis_core::{MemtisConfig, MemtisPolicy};
    use memtis_sim::prelude::Simulation;
    use memtis_workloads::SpecStream;
    let machine = memtis_bench::machine_for(bench, scale, ratio, CapacityKind::Nvm);
    let mut wl = SpecStream::new(bench.spec(scale, memtis_bench::access_budget()), SEED);
    let mut sim = Simulation::new(
        machine,
        MemtisPolicy::new(MemtisConfig::sim_scaled()),
        driver,
    );
    let _ = sim.run(&mut wl).unwrap();
    let p = sim.policy();
    let st = &p.stats;
    println!(
        "  memtis internals: samples={} adapts={} coolings={} estimates={} \
         rhr={:.3} ehr={:.3} candidates={} requested={} splits={} collapses={} \
         thr={:?} base_thr={:?} period={}",
        st.samples,
        st.adaptations,
        st.coolings,
        st.estimates,
        st.last_rhr,
        st.last_ehr,
        st.split_candidates,
        st.split_requested,
        st.splits,
        st.collapses,
        (p.thresholds().hot, p.thresholds().warm, p.thresholds().cold),
        (
            p.base_thresholds().hot,
            p.base_thresholds().warm,
            p.base_thresholds().cold
        ),
        p.load_period(),
    );
    println!("  page hist: {:?}", p.histogram().bins());
    println!("  base hist: {:?}", p.base_histogram().bins());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut window = DEFAULT_WINDOW_EVENTS;
    let mut scale = Scale::DEFAULT;
    let mut migration_bw: Option<f64> = None;
    let mut migration_queue: Option<usize> = None;
    let mut faults: Option<memtis_sim::faults::FaultPlan> = None;
    let mut chunk: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut report_out: Option<String> = None;
    let mut heartbeat: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-out" => {
                trace_out = args.get(i + 1).cloned();
                i += 2;
            }
            "--report-out" => {
                report_out = args.get(i + 1).cloned();
                i += 2;
            }
            "--heartbeat" => {
                heartbeat = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--trace-format" => {
                trace_format = match args.get(i + 1).and_then(|s| TraceFormat::parse(s)) {
                    Some(f) => f,
                    None => {
                        eprintln!("error: --trace-format must be jsonl or perfetto");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--window" => {
                window = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(DEFAULT_WINDOW_EVENTS);
                i += 2;
            }
            "--test-scale" => {
                scale = Scale::TEST;
                i += 1;
            }
            "--migration-bw" => {
                migration_bw = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--migration-queue" => {
                migration_queue = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--chunk" => {
                chunk = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--shards" => {
                shards = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--faults" => {
                match args
                    .get(i + 1)
                    .map(|s| memtis_sim::faults::FaultPlan::parse(s))
                {
                    Some(Ok(plan)) => faults = Some(plan),
                    Some(Err(e)) => {
                        eprintln!("error: bad --faults spec: {e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("error: --faults needs a spec");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| Some(b.name().to_lowercase()) == positional.first().map(|s| s.to_lowercase()))
        .unwrap_or(Benchmark::PageRank);
    let ratio = match positional.get(1).map(String::as_str) {
        Some("1:2") => Ratio {
            fast: 1,
            capacity: 2,
        },
        Some("1:16") => Ratio {
            fast: 1,
            capacity: 16,
        },
        Some("2:1") => Ratio::TWO_TO_ONE,
        _ => Ratio {
            fast: 1,
            capacity: 8,
        },
    };
    let systems: Vec<System> = match positional.get(2).map(String::as_str) {
        Some("all") | None => System::FIG5.to_vec(),
        Some(name) => System::FIG5
            .into_iter()
            .filter(|s| s.name().eq_ignore_ascii_case(name))
            .collect(),
    };
    let mut driver = memtis_bench::driver_config();
    driver.migration_bw = migration_bw;
    driver.migration_queue = migration_queue;
    driver.faults = faults;
    if let Some(c) = chunk {
        driver.chunk = c;
    }
    driver.shards = shards;
    driver.heartbeat_events = heartbeat;
    let base = run_baseline(bench, scale, CapacityKind::Nvm);
    println!(
        "baseline all-NVM: wall={:.2}ms thpt={:.1}M/s llc_miss={:.3}",
        base.wall_ns / 1e6,
        base.throughput() / 1e6,
        base.llc.miss_ratio()
    );
    for &sys in &systems {
        let r = run_system_with_driver(bench, scale, ratio, CapacityKind::Nvm, sys, driver.clone());
        println!(
            "{:<12} norm={:.3} wall={:.2}ms app_extra={:.2}ms daemon={:.2}ms dcores={:.2} \
             fastHR={:.3} promo4k={} demo4k={} splits={} shootdowns={} hintfaults={} rss={}MB \
             tlb_miss={:.4} llc_miss={:.3} avg_lat={:.1}ns",
            sys.name(),
            base.wall_ns / r.wall_ns,
            r.wall_ns / 1e6,
            r.app_extra_ns / 1e6,
            r.daemon_ns / 1e6,
            r.daemon_core_usage(),
            r.stats.fast_tier_hit_ratio(),
            r.stats.migration.promoted_4k,
            r.stats.migration.demoted_4k,
            r.stats.migration.splits,
            r.stats.shootdowns,
            r.stats.hint_faults,
            r.rss_final_bytes >> 20,
            r.tlb.miss_ratio(),
            r.llc.miss_ratio(),
            r.app_access_ns / r.accesses as f64,
        );
        if faults.is_some() {
            println!(
                "  faults: {:?} hist_underflows={}",
                r.faults, r.hist_underflows
            );
        }
        if sys == System::Memtis {
            probe_memtis(bench, ratio, scale, driver.clone());
        }
    }

    if trace_out.is_some() || report_out.is_some() {
        let sys = systems.first().copied().unwrap_or(System::Memtis);
        let machine = machine_for(bench, scale, ratio, CapacityKind::Nvm);
        let mut traced_driver = driver_config_with_window(window);
        traced_driver.migration_bw = migration_bw;
        traced_driver.migration_queue = migration_queue;
        traced_driver.faults = faults;
        if let Some(c) = chunk {
            traced_driver.chunk = c;
        }
        traced_driver.shards = shards;
        traced_driver.heartbeat_events = heartbeat;
        let (report, obs) = run_cell_traced(
            bench,
            scale,
            machine,
            sys.build(),
            traced_driver,
            access_budget(),
            SEED,
        );
        if let Some(path) = trace_out {
            write_trace(&path, trace_format, &obs, &report.windows);
        }
        if let Some(path) = report_out {
            let profile = obs.profiler.as_ref().map(|p| p.stats());
            let body = memtis_bench::report_to_json(&report, profile.as_deref());
            match std::fs::write(&path, body) {
                Ok(()) => println!("[report written to {path}]"),
                Err(e) => eprintln!("warning: could not write report {path}: {e}"),
            }
        }
    }
}
