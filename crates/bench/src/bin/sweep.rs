//! `sweep` — parallel experiment sweep CLI.
//!
//! ```text
//! sweep [--jobs N] [--systems memtis,tpp,...] [--benches roms,btree,...]
//!       [--ratios 1:8,1:16] [--seeds K] [--accesses N] [--window EVENTS]
//!       [--cxl] [--test-scale] [--migration-bw BYTES_PER_NS]
//!       [--migration-queue DEPTH] [--faults SPEC] [--chunk N] [--shards S]
//! ```
//!
//! Runs the (policy × workload × ratio × seed) matrix across worker
//! threads, prints the merged table, writes `sweep.csv` and
//! `BENCH_sweep.json` under `target/experiments/`, and reports the
//! parallel-scaling numbers. Defaults: the paper's Fig. 5 systems over all
//! benchmarks at 1:8, one seed, `--jobs` = available cores.

use memtis_bench::sweep::{emit_sweep, matrix, run_sweep, SweepConfig};
use memtis_bench::{access_budget, CapacityKind, Ratio, System, DEFAULT_WINDOW_EVENTS};
use memtis_sim::prelude::DEFAULT_CHUNK;
use memtis_workloads::{Benchmark, Scale};

fn parse_ratio(s: &str) -> Option<Ratio> {
    let (f, c) = s.split_once(':')?;
    Some(Ratio {
        fast: f.parse().ok()?,
        capacity: c.parse().ok()?,
    })
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn find_system(name: &str) -> Option<System> {
    [
        System::AutoNuma,
        System::AutoTiering,
        System::Tiering08,
        System::Tpp,
        System::Nimble,
        System::Hemem,
        System::Memtis,
        System::MemtisNs,
        System::MemtisVanilla,
        System::MultiClock,
        System::Tmts,
        System::AllNvm,
        System::AllDram,
    ]
    .into_iter()
    .find(|s| s.name().eq_ignore_ascii_case(name))
}

fn parse_list<T>(arg: &str, what: &str, f: impl Fn(&str) -> Option<T>) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| match f(s.trim()) {
            Some(v) => v,
            None => {
                eprintln!("error: unknown {what} {s:?}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--jobs N] [--systems a,b,..] [--benches x,y,..] \
         [--ratios F:C,..] [--seeds K] [--accesses N] [--window EVENTS] \
         [--cxl] [--test-scale] [--migration-bw BYTES_PER_NS] \
         [--migration-queue DEPTH] [--faults SPEC] [--chunk N] [--shards S]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut systems: Vec<System> = System::FIG5.to_vec();
    let mut benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
    let mut ratios = vec![Ratio {
        fast: 1,
        capacity: 8,
    }];
    let mut seeds: u32 = 1;
    let mut kind = CapacityKind::Nvm;
    let mut scale = Scale::DEFAULT;
    let mut accesses = access_budget();
    let mut window_events = DEFAULT_WINDOW_EVENTS;
    let mut migration_bw: Option<f64> = None;
    let mut migration_queue: Option<usize> = None;
    let mut faults: Option<memtis_sim::faults::FaultPlan> = None;
    let mut chunk = DEFAULT_CHUNK;
    let mut shards: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |j: usize| -> &str {
            match args.get(j) {
                Some(v) => v,
                None => usage(),
            }
        };
        match args[i].as_str() {
            "--jobs" => {
                jobs = value(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--systems" => {
                systems = parse_list(value(i + 1), "system", find_system);
                i += 2;
            }
            "--benches" => {
                benches = parse_list(value(i + 1), "benchmark", find_benchmark);
                i += 2;
            }
            "--ratios" => {
                ratios = parse_list(value(i + 1), "ratio", parse_ratio);
                i += 2;
            }
            "--seeds" => {
                seeds = value(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--accesses" => {
                accesses = value(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--window" => {
                window_events = value(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--migration-bw" => {
                migration_bw = Some(value(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--migration-queue" => {
                migration_queue = Some(value(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--faults" => {
                match memtis_sim::faults::FaultPlan::parse(value(i + 1)) {
                    Ok(plan) => faults = Some(plan),
                    Err(e) => {
                        eprintln!("error: bad --faults spec: {e}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--chunk" => {
                chunk = value(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--shards" => {
                shards = Some(value(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--cxl" => {
                kind = CapacityKind::Cxl;
                i += 1;
            }
            "--test-scale" => {
                scale = Scale::TEST;
                i += 1;
            }
            _ => usage(),
        }
    }

    let cells = matrix(&systems, &benches, &ratios, kind, seeds.max(1));
    if cells.is_empty() {
        eprintln!("error: empty sweep matrix");
        std::process::exit(2);
    }
    // Intra-run sharding multiplies the sweep's thread demand: warn when
    // jobs x shards oversubscribes the host (results are unchanged, only
    // slower than a better-matched combination).
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total_threads = jobs.max(1) * shards.unwrap_or(1).max(1);
    if total_threads > host_cores {
        eprintln!(
            "warning: --jobs {} x --shards {} = {} threads oversubscribes {} host core(s); \
             consider lowering one of them",
            jobs.max(1),
            shards.unwrap_or(1).max(1),
            total_threads,
            host_cores
        );
    }
    println!(
        "sweep: {} cells ({} systems x {} benches x {} ratios x {} seeds), {} jobs, {} accesses/cell",
        cells.len(),
        systems.len(),
        benches.len(),
        ratios.len(),
        seeds.max(1),
        jobs,
        accesses
    );
    let cfg = SweepConfig {
        jobs,
        scale,
        accesses,
        window_events,
        migration_bw,
        migration_queue,
        faults,
        chunk,
        shards,
    };
    let result = run_sweep(&cells, &cfg);
    emit_sweep("sweep", &result);
}
