//! Experiment harness: machine configurations, system registry, run matrix.
//!
//! Everything the per-figure bench targets share: tiering-ratio machine
//! setup (§6.1), the policy registry, normalized-performance computation
//! (relative to all-NVM-with-THP, as in every paper figure), and geometric
//! means.

use memtis_baselines::{
    AutoNumaConfig, AutoNumaPolicy, AutoTieringConfig, AutoTieringPolicy, HememConfig, HememPolicy,
    MultiClockConfig, MultiClockPolicy, NimbleConfig, NimblePolicy, StaticPolicy, Tiering08Config,
    Tiering08Policy, TmtsConfig, TmtsPolicy, TppConfig, TppPolicy,
};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_sim::prelude::*;
use memtis_workloads::{Benchmark, Scale, SpecStream};

/// Default seed for all experiment streams.
pub const SEED: u64 = 20231023; // SOSP '23 opening day.

/// Time-compression factor: a simulated run executes roughly this many
/// times fewer accesses per page than the paper's minutes-long executions.
/// Migration bandwidth is scaled up by the same factor so that the ratio of
/// tier-fill time to run length — and therefore the relative cost of page
/// movement — stays in the paper's regime (see DESIGN.md).
pub const TIME_COMPRESSION: f64 = 64.0;

/// Access budget per run; override with `MEMTIS_ACCESSES`.
pub fn access_budget() -> u64 {
    std::env::var("MEMTIS_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500_000)
}

/// Capacity-tier memory kind for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityKind {
    /// Optane-like NVM (the paper's main setting).
    Nvm,
    /// Emulated CXL memory (§6.4).
    Cxl,
}

/// A fast:capacity tiering ratio (fast = RSS / (fast + capacity) share).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    /// Fast-tier share numerator.
    pub fast: u32,
    /// Capacity-tier share denominator.
    pub capacity: u32,
}

impl Ratio {
    /// The paper's three main configurations.
    pub const MAIN: [Ratio; 3] = [
        Ratio {
            fast: 1,
            capacity: 2,
        },
        Ratio {
            fast: 1,
            capacity: 8,
        },
        Ratio {
            fast: 1,
            capacity: 16,
        },
    ];

    /// Meta's production-target 2:1 configuration (§6.2.8).
    pub const TWO_TO_ONE: Ratio = Ratio {
        fast: 2,
        capacity: 1,
    };

    /// Fast-tier bytes for a workload of `rss` bytes.
    pub fn fast_bytes(&self, rss: u64) -> u64 {
        (rss * self.fast as u64 / (self.fast + self.capacity) as u64).max(2 * HUGE_PAGE_SIZE)
    }

    /// Label like "1:8".
    pub fn label(&self) -> String {
        format!("{}:{}", self.fast, self.capacity)
    }
}

/// Builds the machine for one experiment cell.
pub fn machine_for(
    bench: Benchmark,
    scale: Scale,
    ratio: Ratio,
    kind: CapacityKind,
) -> MachineConfig {
    let rss = bench.spec(scale, 1).total_bytes();
    let fast = ratio.fast_bytes(rss);
    // The capacity tier is sized generously: it must absorb the whole RSS
    // (plus bloat and churn) when the fast tier is small.
    let capacity = rss * 2 + 64 * HUGE_PAGE_SIZE;
    let m = match kind {
        CapacityKind::Nvm => MachineConfig::dram_nvm(fast, capacity),
        CapacityKind::Cxl => MachineConfig::dram_cxl(fast, capacity),
    };
    m.with_bandwidth_scale(TIME_COMPRESSION)
}

/// Machine where everything fits in the fast tier (all-DRAM reference).
pub fn machine_all_fast(bench: Benchmark, scale: Scale) -> MachineConfig {
    let rss = bench.spec(scale, 1).total_bytes();
    MachineConfig::dram_nvm(rss * 2 + 64 * HUGE_PAGE_SIZE, 64 * HUGE_PAGE_SIZE)
        .with_bandwidth_scale(TIME_COMPRESSION)
}

/// Default telemetry window length (workload events) for experiments.
pub const DEFAULT_WINDOW_EVENTS: u64 = 100_000;

/// Driver defaults for experiments at the default scale.
pub fn driver_config() -> DriverConfig {
    driver_config_with_window(DEFAULT_WINDOW_EVENTS)
}

/// Driver defaults with an explicit telemetry window length.
pub fn driver_config_with_window(window_events: u64) -> DriverConfig {
    DriverConfig {
        thp_enabled: true,
        tick_interval_ns: 20_000.0,
        timeline_interval_ns: 150_000.0,
        max_accesses: None,
        window_events,
        migration_bw: None,
        migration_queue: None,
        faults: None,
        chunk: DEFAULT_CHUNK,
        shards: None,
        heartbeat_events: None,
    }
}

/// All systems compared in the paper's main figures, plus extras.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Linux automatic NUMA balancing.
    AutoNuma,
    /// AutoTiering (ATC '21).
    AutoTiering,
    /// The tiering-0.8 kernel patch series.
    Tiering08,
    /// TPP (ASPLOS '23).
    Tpp,
    /// Nimble page management (ASPLOS '19).
    Nimble,
    /// HeMem (SOSP '21).
    Hemem,
    /// MEMTIS.
    Memtis,
    /// MEMTIS without huge-page split (Fig. 10/11 ablation).
    MemtisNs,
    /// MEMTIS without split and without the warm set (Fig. 10 "vanilla").
    MemtisVanilla,
    /// MULTI-CLOCK (HPCA '22), from Table 1.
    MultiClock,
    /// TMTS (ASPLOS '23), from Table 1 and the §8 discussion.
    Tmts,
    /// Static all-NVM (normalization baseline).
    AllNvm,
    /// Static all-DRAM (upper reference).
    AllDram,
}

impl System {
    /// The six comparison systems + MEMTIS, in the paper's Fig. 5 order.
    pub const FIG5: [System; 7] = [
        System::AutoNuma,
        System::AutoTiering,
        System::Tiering08,
        System::Tpp,
        System::Nimble,
        System::Hemem,
        System::Memtis,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::AutoNuma => "AutoNUMA",
            System::AutoTiering => "AutoTiering",
            System::Tiering08 => "Tiering-0.8",
            System::Tpp => "TPP",
            System::Nimble => "Nimble",
            System::Hemem => "HeMem",
            System::Memtis => "MEMTIS",
            System::MemtisNs => "MEMTIS-NS",
            System::MemtisVanilla => "MEMTIS-Vanilla",
            System::MultiClock => "MULTI-CLOCK",
            System::Tmts => "TMTS",
            System::AllNvm => "All-NVM",
            System::AllDram => "All-DRAM",
        }
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn TieringPolicy> {
        match self {
            System::AutoNuma => Box::new(AutoNumaPolicy::new(AutoNumaConfig::default())),
            System::AutoTiering => Box::new(AutoTieringPolicy::new(AutoTieringConfig::default())),
            System::Tiering08 => Box::new(Tiering08Policy::new(Tiering08Config::default())),
            System::Tpp => Box::new(TppPolicy::new(TppConfig::default())),
            System::Nimble => Box::new(NimblePolicy::new(NimbleConfig::default())),
            System::Hemem => Box::new(HememPolicy::new(HememConfig::default())),
            System::Memtis => Box::new(MemtisPolicy::new(MemtisConfig::sim_scaled())),
            System::MemtisNs => Box::new(MemtisPolicy::new(
                MemtisConfig::sim_scaled().without_split(),
            )),
            System::MemtisVanilla => {
                Box::new(MemtisPolicy::new(MemtisConfig::sim_scaled().vanilla()))
            }
            System::MultiClock => Box::new(MultiClockPolicy::new(MultiClockConfig::default())),
            System::Tmts => Box::new(TmtsPolicy::new(TmtsConfig::default())),
            System::AllNvm => Box::new(StaticPolicy::all_slow()),
            System::AllDram => Box::new(StaticPolicy::all_fast()),
        }
    }
}

/// Runs one cell with a concrete policy, returning the report and the
/// finished simulation so policy internals remain inspectable.
pub fn run_sim<P: TieringPolicy>(
    bench: Benchmark,
    scale: Scale,
    machine: MachineConfig,
    policy: P,
    driver: DriverConfig,
    accesses: u64,
) -> (RunReport, Simulation<P>) {
    let mut wl = SpecStream::new(bench.spec(scale, accesses), SEED);
    let mut sim = Simulation::new(machine, policy, driver);
    let report = sim.run(&mut wl).expect("experiment run failed");
    (report, sim)
}

/// Runs one experiment cell with a boxed policy.
pub fn run_cell(
    bench: Benchmark,
    scale: Scale,
    machine: MachineConfig,
    policy: Box<dyn TieringPolicy>,
    driver: DriverConfig,
    accesses: u64,
) -> RunReport {
    run_cell_seeded(bench, scale, machine, policy, driver, accesses, SEED)
}

/// Runs one experiment cell with an explicit workload seed (sweep matrix
/// cells derive their own deterministic seeds; everything else uses
/// [`SEED`] via [`run_cell`]).
pub fn run_cell_seeded(
    bench: Benchmark,
    scale: Scale,
    machine: MachineConfig,
    policy: Box<dyn TieringPolicy>,
    driver: DriverConfig,
    accesses: u64,
    seed: u64,
) -> RunReport {
    let mut wl = SpecStream::new(bench.spec(scale, accesses), seed);
    let mut sim = Simulation::new(machine, policy, driver);
    sim.run(&mut wl).expect("experiment run failed")
}

/// Runs one cell with a concrete policy under a [`TracingObserver`],
/// returning the report and the observer (ring + registry) for export.
pub fn run_sim_traced<P: TieringPolicy>(
    bench: Benchmark,
    scale: Scale,
    machine: MachineConfig,
    policy: P,
    driver: DriverConfig,
    accesses: u64,
) -> (RunReport, TracingObserver) {
    let mut wl = SpecStream::new(bench.spec(scale, accesses), SEED);
    let mut sim = Simulation::with_observer(machine, policy, driver, TracingObserver::new());
    let report = sim.run(&mut wl).expect("experiment run failed");
    (report, sim.into_observer())
}

/// Runs one experiment cell with a boxed policy under a
/// [`TracingObserver`], returning the report and the observer.
pub fn run_cell_traced(
    bench: Benchmark,
    scale: Scale,
    machine: MachineConfig,
    policy: Box<dyn TieringPolicy>,
    driver: DriverConfig,
    accesses: u64,
    seed: u64,
) -> (RunReport, TracingObserver) {
    let mut wl = SpecStream::new(bench.spec(scale, accesses), seed);
    let mut sim = Simulation::with_observer(machine, policy, driver, TracingObserver::new());
    let report = sim.run(&mut wl).expect("experiment run failed");
    (report, sim.into_observer())
}

/// Trace export format selected by `--trace-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line: header, events, windows.
    Jsonl,
    /// Chrome/Perfetto `trace_event` JSON (load in `ui.perfetto.dev`).
    Perfetto,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "jsonl" => Some(TraceFormat::Jsonl),
            "perfetto" => Some(TraceFormat::Perfetto),
            _ => None,
        }
    }

    /// Serializes a finished trace in this format.
    pub fn export(&self, obs: &TracingObserver, windows: &[WindowSample]) -> String {
        match self {
            TraceFormat::Jsonl => memtis_sim::obs::export_jsonl(obs, windows),
            TraceFormat::Perfetto => memtis_sim::obs::export_perfetto(obs, windows),
        }
    }
}

/// Writes a finished trace to `path` in the given format.
pub fn write_trace(
    path: &str,
    format: TraceFormat,
    obs: &TracingObserver,
    windows: &[WindowSample],
) {
    let body = format.export(obs, windows);
    match std::fs::write(path, body) {
        Ok(()) => println!(
            "[trace written to {path}: {} events ({} dropped), {} windows]",
            obs.ring.pushed(),
            obs.ring.dropped(),
            windows.len()
        ),
        Err(e) => eprintln!("warning: could not write trace {path}: {e}"),
    }
}

/// Runs `system` on `bench` at the given ratio and returns the report.
pub fn run_system(
    bench: Benchmark,
    scale: Scale,
    ratio: Ratio,
    kind: CapacityKind,
    system: System,
) -> RunReport {
    run_system_with_driver(bench, scale, ratio, kind, system, driver_config())
}

/// [`run_system`] with an explicit driver configuration (e.g. migration
/// bandwidth/queue overrides from the CLI).
pub fn run_system_with_driver(
    bench: Benchmark,
    scale: Scale,
    ratio: Ratio,
    kind: CapacityKind,
    system: System,
    driver: DriverConfig,
) -> RunReport {
    let machine = machine_for(bench, scale, ratio, kind);
    run_cell(
        bench,
        scale,
        machine,
        system.build(),
        driver,
        access_budget(),
    )
}

/// Runs the all-NVM baseline for `bench` (the paper's normalization base:
/// everything on the capacity tier, with THP).
pub fn run_baseline(bench: Benchmark, scale: Scale, kind: CapacityKind) -> RunReport {
    // A minimal fast tier that the All-NVM policy never uses.
    let rss = bench.spec(scale, 1).total_bytes();
    let capacity = rss * 2 + 64 * HUGE_PAGE_SIZE;
    let machine = match kind {
        CapacityKind::Nvm => MachineConfig::dram_nvm(2 * HUGE_PAGE_SIZE, capacity),
        CapacityKind::Cxl => MachineConfig::dram_cxl(2 * HUGE_PAGE_SIZE, capacity),
    }
    .with_bandwidth_scale(TIME_COMPRESSION);
    run_cell(
        bench,
        scale,
        machine,
        System::AllNvm.build(),
        driver_config(),
        access_budget(),
    )
}

/// Normalized performance: baseline wall time over system wall time
/// (higher is better; 1.0 == all-NVM).
pub fn normalized(baseline: &RunReport, system: &RunReport) -> f64 {
    baseline.wall_ns / system.wall_ns
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_compute_fast_tier_share() {
        let r = Ratio {
            fast: 1,
            capacity: 2,
        };
        assert_eq!(r.fast_bytes(9 << 21), 3 << 21);
        assert_eq!(r.label(), "1:2");
        let two = Ratio::TWO_TO_ONE;
        assert_eq!(two.fast_bytes(9 << 21), 6 << 21);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn every_system_builds() {
        for s in [
            System::AutoNuma,
            System::AutoTiering,
            System::Tiering08,
            System::Tpp,
            System::Nimble,
            System::Hemem,
            System::Memtis,
            System::MemtisNs,
            System::MemtisVanilla,
            System::MultiClock,
            System::Tmts,
            System::AllNvm,
            System::AllDram,
        ] {
            let p = s.build();
            assert!(!p.descriptor().name.is_empty());
        }
    }

    #[test]
    fn smoke_run_one_cell() {
        std::env::set_var("MEMTIS_ACCESSES", "20000");
        let scale = Scale::TEST;
        let base = run_baseline(Benchmark::Roms, scale, CapacityKind::Nvm);
        let r = run_system(
            Benchmark::Roms,
            scale,
            Ratio {
                fast: 1,
                capacity: 8,
            },
            CapacityKind::Nvm,
            System::Memtis,
        );
        assert!(r.wall_ns > 0.0 && base.wall_ns > 0.0);
        assert!(normalized(&base, &r) > 0.3);
        std::env::remove_var("MEMTIS_ACCESSES");
    }
}
