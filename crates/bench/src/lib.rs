//! # memtis-bench — experiment harness for every paper table and figure
//!
//! Shared infrastructure for the `benches/` targets, each of which
//! regenerates one table or figure of the MEMTIS paper (see DESIGN.md §3
//! for the full index). Run them all with `cargo bench`; per-target with
//! `cargo bench --bench fig5_main_comparison`. The access budget per run is
//! controlled by the `MEMTIS_ACCESSES` environment variable.

pub mod harness;
pub mod plot;
pub mod report;
pub mod rundiff;
pub mod sweep;

pub use harness::{
    access_budget, driver_config, driver_config_with_window, geomean, machine_all_fast,
    machine_for, normalized, run_baseline, run_cell, run_cell_seeded, run_cell_traced, run_sim,
    run_sim_traced, run_system, run_system_with_driver, write_trace, CapacityKind, Ratio, System,
    TraceFormat, DEFAULT_WINDOW_EVENTS, SEED, TIME_COMPRESSION,
};
pub use plot::{bar, sparkline};
pub use report::{emit, emit_bench_json, experiments_dir, Table};
pub use rundiff::{
    diff_reports, flatten, glob_match, parse_diff_args, render_diff, report_to_json, DiffOptions,
    DiffReport, DiffRow, REPORT_SCHEMA,
};
pub use sweep::{
    emit_sweep, matrix, run_sweep, windows_table, SweepCell, SweepConfig, SweepResult,
};
