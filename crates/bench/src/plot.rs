//! Terminal plotting helpers: sparklines and braille-free bar strips for
//! timeline tables, so `cargo bench` output conveys the *shape* of a series
//! (Fig. 9/11-style) without leaving the terminal.

/// Unicode block ramp used for sparklines.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a sparkline of `values`, downsampled to at most `width` columns.
///
/// Empty input renders as an empty string; a constant series renders at
/// mid-height. Values are min–max normalized.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(values.len());
    // Downsample by averaging each bucket.
    let mut buckets = Vec::with_capacity(cols);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = ((c + 1) * values.len() / cols).max(lo + 1);
        let avg = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        buckets.push(avg);
    }
    let min = buckets.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = buckets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    buckets
        .into_iter()
        .map(|v| {
            let t = if span <= 0.0 { 0.5 } else { (v - min) / span };
            RAMP[((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
        })
        .collect()
}

/// Renders a horizontal bar of `value` relative to `max`, `width` cells.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || width == 0 {
        return String::new();
    }
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = "█".repeat(filled);
    s.push_str(&"░".repeat(width - filled));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        let up: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let s = sparkline(&up, 8);
        assert_eq!(s.chars().count(), 8);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[7], '█');
        // Monotone non-decreasing ramp.
        let ranks: Vec<usize> = chars
            .iter()
            .map(|c| RAMP.iter().position(|r| r == c).unwrap())
            .collect();
        assert!(ranks.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn sparkline_edge_cases() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
        // Constant series: mid-height, no panic on zero span.
        let s = sparkline(&[3.0; 16], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.chars().all(|c| c == s.chars().next().unwrap()));
        // Fewer values than width: one column per value.
        assert_eq!(sparkline(&[1.0, 2.0], 10).chars().count(), 2);
    }

    #[test]
    fn bar_fills_proportionally() {
        assert_eq!(bar(5.0, 10.0, 10), "█████░░░░░");
        assert_eq!(bar(0.0, 10.0, 4), "░░░░");
        assert_eq!(bar(20.0, 10.0, 4), "████"); // Clamped.
        assert_eq!(bar(1.0, 0.0, 4), "");
    }
}
