//! Report rendering: aligned text tables and CSV emission.
//!
//! Every figure/table bench prints a human-readable table to stdout (what
//! `cargo bench` captures) and writes the same data as CSV under
//! `target/experiments/` for plotting.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, " {:<w$} ", cells[i], w = widths[i]);
                if i + 1 < ncols {
                    line.push('|');
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints a figure banner, the table, and writes `<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!();
    println!("=== {name}: {title} ===");
    println!("{}", table.render());
    let path = experiments_dir().join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv written to {}]", path.display());
    }
}

/// Writes `BENCH_<name>.json` under the experiments directory: a flat map
/// of perf metrics (simulator self-throughput in events/sec, host elapsed
/// seconds, …) so the perf trajectory of the simulator itself is tracked
/// across PRs alongside the experiment CSVs.
pub fn emit_bench_json(name: &str, metrics: &[(String, f64)]) {
    let mut body = String::from("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        // Keys are internal identifiers; escape quotes defensively anyway.
        let key = k.replace('\\', "\\\\").replace('"', "\\\"");
        let val = if v.is_finite() { *v } else { 0.0 };
        let _ = writeln!(body, "  \"{key}\": {val}{comma}");
    }
    body.push('}');
    body.push('\n');
    let path = experiments_dir().join(format!("BENCH_{name}.json"));
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[bench json written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_valid_flat_map() {
        emit_bench_json(
            "report_selftest",
            &[
                ("events_per_sec".to_string(), 1234.5),
                ("elapsed_s".to_string(), 0.25),
                ("nan_guard".to_string(), f64::NAN),
            ],
        );
        let path = experiments_dir().join("BENCH_report_selftest.json");
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\n"));
        assert!(body.trim_end().ends_with('}'));
        assert!(body.contains("\"events_per_sec\": 1234.5,"));
        assert!(body.contains("\"nan_guard\": 0"));
        // No trailing comma before the closing brace.
        assert!(!body.contains(",\n}"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All data lines have the same separator position.
        let p1 = lines[2].find('|').unwrap();
        let p2 = lines[3].find('|').unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
