//! Run-report serialization and the `diff` regression tool.
//!
//! `report_to_json` renders a [`RunReport`] (plus the optional phase
//! self-profile) as a `memtis-report-v1` JSON document using the
//! workspace's dependency-free JSON helpers. `diff_reports` compares two
//! such documents (or any flat-ish JSON, e.g. `BENCH_*.json`) key by key
//! with configurable relative-tolerance bands, for CI regression gating:
//! `memtis diff old.json new.json --tol 0.1 --tol throughput=0.05
//! --ignore 'host.*'` exits nonzero when any key moved outside its band.

use memtis_sim::obs::json::{escape, fmt_f64, Json};
use memtis_sim::obs::SpanStat;
use memtis_sim::prelude::RunReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag emitted at the top of every report document.
pub const REPORT_SCHEMA: &str = "memtis-report-v1";

fn push_kv(out: &mut String, indent: &str, key: &str, val: &str, comma: bool) {
    let _ = writeln!(
        out,
        "{indent}\"{}\": {val}{}",
        escape(key),
        if comma { "," } else { "" }
    );
}

/// Renders a run report (and, when available, the profiler's phase
/// attribution table) as a `memtis-report-v1` JSON document.
///
/// Deterministic, simulated-time quantities are top-level; *host*-time
/// quantities live under `"host"` and `"profile"` so a diff can exclude
/// them wholesale (`--ignore 'host.*' --ignore 'profile.*'`).
pub fn report_to_json(report: &RunReport, profile: Option<&[SpanStat]>) -> String {
    let mut out = String::from("{\n");
    push_kv(
        &mut out,
        "  ",
        "schema",
        &format!("\"{REPORT_SCHEMA}\""),
        true,
    );
    push_kv(
        &mut out,
        "  ",
        "workload",
        &format!("\"{}\"", escape(&report.workload)),
        true,
    );
    push_kv(
        &mut out,
        "  ",
        "policy",
        &format!("\"{}\"", escape(&report.policy)),
        true,
    );
    let scalars: Vec<(&str, f64)> = vec![
        ("wall_ns", report.wall_ns),
        ("accesses", report.accesses as f64),
        ("sim_events", report.sim_events as f64),
        ("throughput", report.throughput()),
        ("app_access_ns", report.app_access_ns),
        ("app_extra_ns", report.app_extra_ns),
        ("daemon_ns", report.daemon_ns),
        ("rss_peak_bytes", report.rss_peak_bytes as f64),
        ("rss_final_bytes", report.rss_final_bytes as f64),
        ("hist_underflows", report.hist_underflows as f64),
        ("fast_tier_hit_ratio", report.stats.fast_tier_hit_ratio()),
        ("tlb_miss_ratio", report.tlb.miss_ratio()),
        ("llc_miss_ratio", report.llc.miss_ratio()),
        ("windows_len", report.windows.len() as f64),
    ];
    for (k, v) in scalars {
        push_kv(&mut out, "  ", k, &fmt_f64(v), true);
    }
    // Migration counters (simulated-time, deterministic).
    let mig = &report.stats.migration;
    out.push_str("  \"migration\": {\n");
    let mig_rows: Vec<(&str, f64)> = vec![
        ("promoted_4k", mig.promoted_4k as f64),
        ("demoted_4k", mig.demoted_4k as f64),
        ("splits", mig.splits as f64),
        ("migrated_bytes", mig.migrated_bytes as f64),
        ("traffic_4k", mig.traffic_4k() as f64),
        ("shootdowns", report.stats.shootdowns as f64),
        ("hint_faults", report.stats.hint_faults as f64),
    ];
    for (i, (k, v)) in mig_rows.iter().enumerate() {
        push_kv(&mut out, "    ", k, &fmt_f64(*v), i + 1 < mig_rows.len());
    }
    out.push_str("  },\n");
    // Fault-injection tallies (all zero on normal runs).
    let f = &report.faults;
    out.push_str("  \"faults\": {\n");
    let fault_rows: Vec<(&str, u64)> = vec![
        ("forced_aborts", f.forced_aborts),
        ("injected_dirty", f.injected_dirty),
        ("link_outages", f.link_outages),
        ("sample_drops", f.sample_drops),
        ("sample_dups", f.sample_dups),
        ("tick_skips", f.tick_skips),
        ("tick_delays", f.tick_delays),
        ("pressure_spikes", f.pressure_spikes),
    ];
    for (i, (k, v)) in fault_rows.iter().enumerate() {
        push_kv(
            &mut out,
            "    ",
            k,
            &fmt_f64(*v as f64),
            i + 1 < fault_rows.len(),
        );
    }
    out.push_str("  },\n");
    // Flight-recorder latency rows, exactly as the driver produced them.
    out.push_str("  \"lat\": {\n");
    for (i, (k, v)) in report.lat.iter().enumerate() {
        push_kv(&mut out, "    ", k, &fmt_f64(*v), i + 1 < report.lat.len());
    }
    out.push_str("  },\n");
    // Phase self-profile (host time; excluded from golden diffs).
    out.push_str("  \"profile\": {\n");
    if let Some(stats) = profile {
        for (i, s) in stats.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"calls\": {}, \"ns\": {} }}{}",
                s.id.name(),
                s.calls,
                s.ns,
                if i + 1 < stats.len() { "," } else { "" }
            );
        }
    }
    out.push_str("  },\n");
    // Host (simulator self-throughput) quantities.
    out.push_str("  \"host\": {\n");
    push_kv(
        &mut out,
        "    ",
        "elapsed_ns",
        &fmt_f64(report.host_elapsed_ns as f64),
        true,
    );
    push_kv(
        &mut out,
        "    ",
        "events_per_sec",
        &fmt_f64(report.self_events_per_sec()),
        false,
    );
    out.push_str("  }\n}\n");
    out
}

/// Flattens a JSON document into dotted-key leaves: numbers (and booleans,
/// as 0/1) into `nums`, strings into `strs`. Array elements are indexed
/// (`a.0`, `a.1`, …); nulls are skipped.
pub fn flatten(
    v: &Json,
    prefix: &str,
    nums: &mut BTreeMap<String, f64>,
    strs: &mut BTreeMap<String, String>,
) {
    let key = |k: &str| {
        if prefix.is_empty() {
            k.to_string()
        } else {
            format!("{prefix}.{k}")
        }
    };
    match v {
        Json::Obj(m) => {
            for (k, child) in m {
                flatten(child, &key(k), nums, strs);
            }
        }
        Json::Arr(a) => {
            for (i, child) in a.iter().enumerate() {
                flatten(child, &key(&i.to_string()), nums, strs);
            }
        }
        Json::Num(n) => {
            nums.insert(prefix.to_string(), *n);
        }
        Json::Bool(b) => {
            nums.insert(prefix.to_string(), if *b { 1.0 } else { 0.0 });
        }
        Json::Str(s) => {
            strs.insert(prefix.to_string(), s.clone());
        }
        Json::Null => {}
    }
}

/// Matches a simple glob pattern against a key: `*` matches any (possibly
/// empty) substring, all other characters match literally.
pub fn glob_match(pattern: &str, key: &str) -> bool {
    fn inner(p: &[u8], k: &[u8]) -> bool {
        match p.first() {
            None => k.is_empty(),
            Some(b'*') => {
                // Try every split point, longest-first not needed.
                (0..=k.len()).any(|i| inner(&p[1..], &k[i..]))
            }
            Some(c) => k.first() == Some(c) && inner(&p[1..], &k[1..]),
        }
    }
    inner(pattern.as_bytes(), key.as_bytes())
}

/// Tolerance configuration for a diff.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Default symmetric relative tolerance for every numeric key.
    pub tol: f64,
    /// Per-key overrides, first match wins (`--tol KEY=FRAC`; KEY may be a
    /// glob).
    pub per_key: Vec<(String, f64)>,
    /// Keys excluded from comparison (`--ignore GLOB`).
    pub ignore: Vec<String>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tol: 0.05,
            per_key: Vec::new(),
            ignore: Vec::new(),
        }
    }
}

impl DiffOptions {
    fn ignored(&self, key: &str) -> bool {
        self.ignore.iter().any(|g| glob_match(g, key))
    }

    fn tolerance_for(&self, key: &str) -> f64 {
        self.per_key
            .iter()
            .find(|(g, _)| glob_match(g, key))
            .map(|(_, t)| *t)
            .unwrap_or(self.tol)
    }
}

/// One compared key.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Dotted key.
    pub key: String,
    /// Value in the old (reference) document, if present.
    pub old: Option<f64>,
    /// Value in the new document, if present.
    pub new: Option<f64>,
    /// Relative change `(new-old)/max(|old|,|new|,eps)`.
    pub rel: f64,
    /// Tolerance band the key was held to.
    pub tol: f64,
    /// Whether the change breaches the band (or the key is one-sided).
    pub breach: bool,
}

/// Result of diffing two documents.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// All rows where the value changed or is missing on one side
    /// (unchanged keys are elided).
    pub rows: Vec<DiffRow>,
    /// Keys compared (after ignores).
    pub compared: usize,
    /// String-valued keys that differ (always a breach).
    pub str_mismatches: Vec<(String, String, String)>,
}

impl DiffReport {
    /// Whether any key moved outside its tolerance band.
    pub fn has_breach(&self) -> bool {
        !self.str_mismatches.is_empty() || self.rows.iter().any(|r| r.breach)
    }
}

/// Compares two parsed JSON documents key by key.
///
/// The relative change uses `max(|old|, |new|, eps)` as the denominator so
/// zero-valued references do not blow up and symmetric swaps score
/// symmetrically. A key present on only one side is a breach (the document
/// shape changed) unless ignored.
pub fn diff_reports(old: &Json, new: &Json, opts: &DiffOptions) -> DiffReport {
    const EPS: f64 = 1e-9;
    let (mut anums, mut astrs) = (BTreeMap::new(), BTreeMap::new());
    let (mut bnums, mut bstrs) = (BTreeMap::new(), BTreeMap::new());
    flatten(old, "", &mut anums, &mut astrs);
    flatten(new, "", &mut bnums, &mut bstrs);
    let mut report = DiffReport::default();

    let keys: std::collections::BTreeSet<&String> = anums.keys().chain(bnums.keys()).collect();
    for key in keys {
        if opts.ignored(key) {
            continue;
        }
        report.compared += 1;
        let (a, b) = (anums.get(key).copied(), bnums.get(key).copied());
        let tol = opts.tolerance_for(key);
        match (a, b) {
            (Some(a), Some(b)) => {
                let denom = a.abs().max(b.abs()).max(EPS);
                let rel = (b - a) / denom;
                if a != b {
                    report.rows.push(DiffRow {
                        key: key.clone(),
                        old: Some(a),
                        new: Some(b),
                        rel,
                        tol,
                        breach: rel.abs() > tol,
                    });
                }
            }
            (a, b) => {
                report.rows.push(DiffRow {
                    key: key.clone(),
                    old: a,
                    new: b,
                    rel: f64::INFINITY,
                    tol,
                    breach: true,
                });
            }
        }
    }
    let skeys: std::collections::BTreeSet<&String> = astrs.keys().chain(bstrs.keys()).collect();
    for key in skeys {
        if opts.ignored(key) {
            continue;
        }
        report.compared += 1;
        let a = astrs.get(key).cloned().unwrap_or_default();
        let b = bstrs.get(key).cloned().unwrap_or_default();
        if a != b {
            report.str_mismatches.push((key.clone(), a, b));
        }
    }
    report
}

/// Renders a diff report for humans; one line per changed key.
pub fn render_diff(d: &DiffReport) -> String {
    let mut out = String::new();
    for (k, a, b) in &d.str_mismatches {
        let _ = writeln!(out, "BREACH {k}: {a:?} -> {b:?} (string mismatch)");
    }
    for r in &d.rows {
        let verdict = if r.breach { "BREACH" } else { "ok    " };
        match (r.old, r.new) {
            (Some(a), Some(b)) => {
                let _ = writeln!(
                    out,
                    "{verdict} {}: {} -> {} ({:+.2}% vs ±{:.1}%)",
                    r.key,
                    fmt_f64(a),
                    fmt_f64(b),
                    r.rel * 100.0,
                    r.tol * 100.0
                );
            }
            (a, b) => {
                let _ = writeln!(
                    out,
                    "{verdict} {}: present only in {} document",
                    r.key,
                    if a.is_some() { "old" } else { "new" }
                );
                let _ = b;
            }
        }
    }
    let breaches = d.str_mismatches.len() + d.rows.iter().filter(|r| r.breach).count();
    let _ = writeln!(
        out,
        "compared {} keys: {} changed, {} breached",
        d.compared,
        d.rows.len() + d.str_mismatches.len(),
        breaches
    );
    out
}

/// Parses `diff` CLI arguments (after the subcommand) into file paths and
/// options. Returns an error string on malformed flags.
pub fn parse_diff_args(args: &[String]) -> Result<(String, String, DiffOptions), String> {
    let mut files = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--tol needs a value".to_string())?;
                match v.split_once('=') {
                    Some((key, frac)) => {
                        let t: f64 = frac
                            .parse()
                            .map_err(|_| format!("bad tolerance {frac:?}"))?;
                        opts.per_key.push((key.to_string(), t));
                    }
                    None => {
                        opts.tol = v.parse().map_err(|_| format!("bad tolerance {v:?}"))?;
                    }
                }
                i += 2;
            }
            "--ignore" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--ignore needs a glob".to_string())?;
                opts.ignore.push(v.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            path => {
                files.push(path.to_string());
                i += 1;
            }
        }
    }
    if files.len() != 2 {
        return Err(format!(
            "expected exactly two report files, got {}",
            files.len()
        ));
    }
    Ok((files.remove(0), files.remove(0), opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matches() {
        assert!(glob_match("host.*", "host.elapsed_ns"));
        assert!(glob_match("*_ns", "lat.demand_p99_ns"));
        assert!(glob_match("throughput", "throughput"));
        assert!(!glob_match("host.*", "throughput"));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("a*b", "acbc"));
        assert!(glob_match("a*b*c", "aXbYc"));
    }

    #[test]
    fn flatten_produces_dotted_keys() {
        let doc = Json::parse(r#"{"a": {"b": 1, "c": [2, 3]}, "s": "x", "t": true}"#).unwrap();
        let (mut n, mut s) = (BTreeMap::new(), BTreeMap::new());
        flatten(&doc, "", &mut n, &mut s);
        assert_eq!(n["a.b"], 1.0);
        assert_eq!(n["a.c.0"], 2.0);
        assert_eq!(n["a.c.1"], 3.0);
        assert_eq!(n["t"], 1.0);
        assert_eq!(s["s"], "x");
    }

    #[test]
    fn diff_flags_breaches_and_respects_bands() {
        let a = Json::parse(r#"{"throughput": 100.0, "wall_ns": 50.0, "x": 1}"#).unwrap();
        let b = Json::parse(r#"{"throughput": 89.0, "wall_ns": 51.0, "x": 1}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffOptions::default());
        // throughput moved -11% (> 5%), wall_ns moved ~2% (ok), x unchanged.
        assert!(d.has_breach());
        let t = d.rows.iter().find(|r| r.key == "throughput").unwrap();
        assert!(t.breach);
        let w = d.rows.iter().find(|r| r.key == "wall_ns").unwrap();
        assert!(!w.breach);
        assert!(!d.rows.iter().any(|r| r.key == "x"));
    }

    #[test]
    fn diff_per_key_tolerance_and_ignore() {
        let a = Json::parse(r#"{"throughput": 100.0, "host": {"elapsed_ns": 5}}"#).unwrap();
        let b = Json::parse(r#"{"throughput": 92.0, "host": {"elapsed_ns": 500}}"#).unwrap();
        let opts = DiffOptions {
            tol: 0.05,
            per_key: vec![("throughput".to_string(), 0.10)],
            ignore: vec!["host.*".to_string()],
        };
        let d = diff_reports(&a, &b, &opts);
        assert!(!d.has_breach(), "{}", render_diff(&d));
    }

    #[test]
    fn diff_missing_key_is_a_breach() {
        let a = Json::parse(r#"{"x": 1, "y": 2}"#).unwrap();
        let b = Json::parse(r#"{"x": 1}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.has_breach());
        assert!(d.rows.iter().any(|r| r.key == "y" && r.new.is_none()));
    }

    #[test]
    fn diff_string_mismatch_is_a_breach() {
        let a = Json::parse(r#"{"schema": "memtis-report-v1"}"#).unwrap();
        let b = Json::parse(r#"{"schema": "memtis-report-v2"}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.has_breach());
    }

    #[test]
    fn zero_reference_does_not_divide_by_zero() {
        let a = Json::parse(r#"{"x": 0}"#).unwrap();
        let b = Json::parse(r#"{"x": 1}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.rows[0].rel.is_finite());
        assert!(d.rows[0].breach);
    }

    #[test]
    fn parse_diff_args_handles_flags() {
        let args: Vec<String> = [
            "a.json",
            "--tol",
            "0.1",
            "b.json",
            "--tol",
            "throughput=0.02",
            "--ignore",
            "host.*",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (a, b, opts) = parse_diff_args(&args).unwrap();
        assert_eq!(a, "a.json");
        assert_eq!(b, "b.json");
        assert_eq!(opts.tol, 0.1);
        assert_eq!(opts.per_key, vec![("throughput".to_string(), 0.02)]);
        assert_eq!(opts.ignore, vec!["host.*".to_string()]);
        assert!(parse_diff_args(&["one.json".to_string()]).is_err());
        assert!(parse_diff_args(&["a".into(), "b".into(), "--bogus".into()]).is_err());
    }

    #[test]
    fn report_json_roundtrips_through_parser() {
        let report = RunReport {
            workload: "selftest".to_string(),
            policy: "MEMTIS".to_string(),
            wall_ns: 1.5e6,
            accesses: 1000,
            sim_events: 1100,
            lat: vec![
                ("demand_count".to_string(), 1000.0),
                ("demand_p99_ns".to_string(), 404.0),
            ],
            ..Default::default()
        };
        let body = report_to_json(&report, None);
        let doc = Json::parse(&body).expect("report JSON must parse");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(REPORT_SCHEMA));
        assert_eq!(doc.get("accesses").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            doc.get("lat")
                .unwrap()
                .get("demand_p99_ns")
                .unwrap()
                .as_f64(),
            Some(404.0)
        );
        // A document diffed against itself is clean.
        let d = diff_reports(&doc, &doc, &DiffOptions::default());
        assert!(!d.has_breach());
        assert!(d.rows.is_empty());
    }
}
