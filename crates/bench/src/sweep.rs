//! Parallel experiment sweep runner.
//!
//! Fans a (policy × workload × ratio × seed) matrix across
//! `std::thread::scope` workers. Each cell owns its `Machine`, policy, and
//! workload stream, so there is no shared mutable state between cells —
//! parallel execution is bit-identical to serial execution:
//!
//! - every cell derives its workload seed deterministically from the cell
//!   *coordinates* (FNV-1a over policy/benchmark/ratio/kind/seed-index
//!   mixed with the global [`SEED`]), never from scheduling order;
//! - workers pull cell indices from an atomic counter and write results
//!   into per-cell slots, so the merged report is ordered by matrix index
//!   regardless of which worker finished first.
//!
//! The merged output is a [`Table`] (text + CSV via [`emit`]) plus a
//! `BENCH_<name>.json` perf record (aggregate simulator events/sec, per-job
//! scaling efficiency) via [`emit_bench_json`].

use crate::harness::{
    driver_config_with_window, machine_for, run_cell_seeded, CapacityKind, Ratio, System,
    DEFAULT_WINDOW_EVENTS, SEED,
};
use crate::report::{emit, emit_bench_json, Table};
use memtis_sim::prelude::{Fnv1a, RunReport, DEFAULT_CHUNK};
use memtis_workloads::{Benchmark, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One cell of the sweep matrix.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell {
    /// Tiering system under test.
    pub system: System,
    /// Workload.
    pub bench: Benchmark,
    /// Fast:capacity tiering ratio.
    pub ratio: Ratio,
    /// Capacity-tier memory kind.
    pub kind: CapacityKind,
    /// Seed replica index (0-based) for multi-seed sweeps.
    pub seed_index: u32,
}

impl SweepCell {
    /// Deterministic per-cell workload seed, derived from the cell
    /// coordinates so it is independent of matrix order and scheduling.
    /// The mix order is frozen (seeds are part of the recorded results):
    /// global seed, system, benchmark, ratio, kind, replica index.
    pub fn seed(&self) -> u64 {
        Fnv1a::new()
            .mix_u64(SEED)
            .mix_str(self.system.name())
            .mix_str(self.bench.name())
            .mix_u32(self.ratio.fast)
            .mix_u32(self.ratio.capacity)
            .mix_bytes(&[matches!(self.kind, CapacityKind::Cxl) as u8])
            .mix_u32(self.seed_index)
            .finish()
    }

    /// Short display label like `MEMTIS/roms@1:8#0`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{}#{}",
            self.system.name(),
            self.bench.name(),
            self.ratio.label(),
            self.seed_index
        )
    }
}

/// Builds the full cross-product matrix.
pub fn matrix(
    systems: &[System],
    benches: &[Benchmark],
    ratios: &[Ratio],
    kind: CapacityKind,
    seeds: u32,
) -> Vec<SweepCell> {
    let mut cells =
        Vec::with_capacity(systems.len() * benches.len() * ratios.len() * seeds as usize);
    for &system in systems {
        for &bench in benches {
            for &ratio in ratios {
                for seed_index in 0..seeds {
                    cells.push(SweepCell {
                        system,
                        bench,
                        ratio,
                        kind,
                        seed_index,
                    });
                }
            }
        }
    }
    cells
}

/// Sweep execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Worker threads (clamped to at least 1 and at most the cell count).
    pub jobs: usize,
    /// Workload scale.
    pub scale: Scale,
    /// Access budget per cell.
    pub accesses: u64,
    /// Telemetry window length in workload events.
    pub window_events: u64,
    /// Migration-link bandwidth cap (bytes/ns) applied to every cell;
    /// `None` keeps instantaneous migration.
    pub migration_bw: Option<f64>,
    /// Migration admission-queue depth override applied to every cell.
    pub migration_queue: Option<usize>,
    /// Seeded fault plan applied to every cell; `None` runs fault-free.
    pub faults: Option<memtis_sim::faults::FaultPlan>,
    /// Driver chunk size; `0`/`1` forces the legacy per-event loop.
    pub chunk: usize,
    /// Intra-run sharding: worker threads per cell (see
    /// [`memtis_sim::prelude::DriverConfig::shards`]). `None` keeps cells
    /// single-threaded. Results are byte-identical for every value; the
    /// knob only affects host wall time. Combined with `jobs`, the host
    /// runs up to `jobs x shards` threads at once.
    pub shards: Option<usize>,
}

impl SweepConfig {
    /// Defaults: one job, default scale, the harness access budget, and the
    /// default telemetry window.
    pub fn new(jobs: usize, scale: Scale, accesses: u64) -> Self {
        SweepConfig {
            jobs,
            scale,
            accesses,
            window_events: DEFAULT_WINDOW_EVENTS,
            migration_bw: None,
            migration_queue: None,
            faults: None,
            chunk: DEFAULT_CHUNK,
            shards: None,
        }
    }
}

/// One finished cell.
#[derive(Debug)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: SweepCell,
    /// The run report.
    pub report: RunReport,
}

/// A finished sweep: per-cell results in matrix order plus wall-clock
/// accounting for the scaling measurement.
#[derive(Debug)]
pub struct SweepResult {
    /// Results, ordered by matrix index (scheduling-independent).
    pub cells: Vec<CellResult>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Host wall-clock for the whole sweep (ns).
    pub host_elapsed_ns: u64,
}

impl SweepResult {
    /// Sum of per-cell host run times (ns) — the serial-equivalent work.
    pub fn cell_host_ns(&self) -> u64 {
        self.cells.iter().map(|c| c.report.host_elapsed_ns).sum()
    }

    /// Observed speedup over serial execution of the same cells.
    pub fn speedup(&self) -> f64 {
        if self.host_elapsed_ns == 0 {
            0.0
        } else {
            self.cell_host_ns() as f64 / self.host_elapsed_ns as f64
        }
    }

    /// Scaling efficiency: speedup divided by worker count.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.jobs.max(1) as f64
    }

    /// Aggregate simulator self-throughput (events/sec of sweep wall time).
    pub fn events_per_sec(&self) -> f64 {
        if self.host_elapsed_ns == 0 {
            return 0.0;
        }
        let events: u64 = self.cells.iter().map(|c| c.report.sim_events).sum();
        events as f64 / (self.host_elapsed_ns as f64 * 1e-9)
    }
}

/// Runs one cell (helper shared by the parallel runner and tests).
pub fn run_sweep_cell(cell: SweepCell, cfg: &SweepConfig) -> RunReport {
    let machine = machine_for(cell.bench, cfg.scale, cell.ratio, cell.kind);
    let mut driver = driver_config_with_window(cfg.window_events);
    driver.migration_bw = cfg.migration_bw;
    driver.migration_queue = cfg.migration_queue;
    driver.faults = cfg.faults;
    driver.chunk = cfg.chunk;
    driver.shards = cfg.shards;
    run_cell_seeded(
        cell.bench,
        cfg.scale,
        machine,
        cell.system.build(),
        driver,
        cfg.accesses,
        cell.seed(),
    )
}

/// Runs the matrix across `cfg.jobs` scoped worker threads.
pub fn run_sweep(cells: &[SweepCell], cfg: &SweepConfig) -> SweepResult {
    let jobs = cfg.jobs.max(1).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult>>> =
        (0..cells.len()).map(|_| Mutex::new(None)).collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cell) = cells.get(i) else { break };
                let report = run_sweep_cell(cell, cfg);
                *slots[i].lock().expect("result slot poisoned") = Some(CellResult { cell, report });
            });
        }
    });
    let host_elapsed_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker loop covers every index")
        })
        .collect();
    SweepResult {
        cells: results,
        jobs,
        host_elapsed_ns,
    }
}

/// Renders the merged per-cell table.
pub fn sweep_table(result: &SweepResult) -> Table {
    let mut t = Table::new(vec![
        "policy",
        "workload",
        "ratio",
        "kind",
        "seed",
        "wall_ms",
        "Macc/s",
        "fast-hit %",
        "aborted",
        "inflight_pk",
        "host events/s",
    ]);
    for c in &result.cells {
        let r = &c.report;
        t.row(vec![
            c.cell.system.name().to_string(),
            c.cell.bench.name().to_string(),
            c.cell.ratio.label(),
            match c.cell.kind {
                CapacityKind::Nvm => "NVM".to_string(),
                CapacityKind::Cxl => "CXL".to_string(),
            },
            format!("{:#x}", c.cell.seed()),
            format!("{:.2}", r.wall_ns / 1e6),
            format!("{:.2}", r.throughput() / 1e6),
            format!("{:.1}", r.stats.fast_tier_hit_ratio() * 100.0),
            r.stats.migration.aborted.to_string(),
            r.stats.migration.in_flight_peak.to_string(),
            format!("{:.0}", r.self_events_per_sec()),
        ]);
    }
    t
}

/// Renders the per-cell telemetry window series: one row per (cell,
/// window), carrying the shared collector's rHR/eHR, throughput, and
/// migration-bandwidth samples into the merged report.
pub fn windows_table(result: &SweepResult) -> Table {
    let mut t = Table::new(vec![
        "policy",
        "workload",
        "ratio",
        "seed",
        "window",
        "wall_ms",
        "Macc/s",
        "fast-hit %",
        "rhr",
        "ehr",
        "mig MB/s",
    ]);
    for c in &result.cells {
        for w in &c.report.windows {
            t.row(vec![
                c.cell.system.name().to_string(),
                c.cell.bench.name().to_string(),
                c.cell.ratio.label(),
                c.cell.seed_index.to_string(),
                w.index.to_string(),
                format!("{:.2}", w.wall_ns / 1e6),
                format!("{:.2}", w.window_throughput / 1e6),
                format!("{:.1}", w.fast_hit_ratio * 100.0),
                format!("{:.4}", w.rhr),
                format!("{:.4}", w.ehr),
                format!("{:.2}", w.migration_bw / 1e6),
            ]);
        }
    }
    t
}

/// Emits the merged table (text + CSV) and the `BENCH_<name>.json` perf
/// record, and prints the scaling summary.
pub fn emit_sweep(name: &str, result: &SweepResult) {
    let table = sweep_table(result);
    emit(name, "parallel experiment sweep", &table);
    let windows = windows_table(result);
    if !windows.is_empty() {
        emit(
            &format!("{name}_windows"),
            "per-cell telemetry window series",
            &windows,
        );
    }
    let elapsed_s = result.host_elapsed_ns as f64 * 1e-9;
    println!(
        "sweep: {} cells, {} jobs, {:.2}s wall, speedup {:.2}x, efficiency {:.2}, {:.0} events/s",
        result.cells.len(),
        result.jobs,
        elapsed_s,
        result.speedup(),
        result.efficiency(),
        result.events_per_sec(),
    );
    emit_bench_json(
        name,
        &[
            ("cells".to_string(), result.cells.len() as f64),
            ("jobs".to_string(), result.jobs as f64),
            ("host_elapsed_s".to_string(), elapsed_s),
            (
                "cell_host_s_total".to_string(),
                result.cell_host_ns() as f64 * 1e-9,
            ),
            ("speedup".to_string(), result.speedup()),
            ("efficiency".to_string(), result.efficiency()),
            ("events_per_sec".to_string(), result.events_per_sec()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(jobs: usize) -> SweepConfig {
        SweepConfig {
            jobs,
            scale: Scale::TEST,
            accesses: 4_000,
            window_events: 1_000,
            migration_bw: None,
            migration_queue: None,
            faults: None,
            chunk: DEFAULT_CHUNK,
            shards: None,
        }
    }

    fn tiny_matrix() -> Vec<SweepCell> {
        matrix(
            &[System::Memtis, System::Tpp],
            &[Benchmark::Roms, Benchmark::Btree],
            &[Ratio {
                fast: 1,
                capacity: 8,
            }],
            CapacityKind::Nvm,
            1,
        )
    }

    #[test]
    fn matrix_is_full_cross_product() {
        let cells = matrix(
            &[System::Memtis, System::Tpp],
            &[Benchmark::Roms],
            &Ratio::MAIN,
            CapacityKind::Nvm,
            2,
        );
        // 2 systems x 1 benchmark x 3 ratios x 2 seeds.
        assert_eq!(cells.len(), 12);
    }

    #[test]
    fn cell_seeds_are_distinct_and_coordinate_stable() {
        let cells = tiny_matrix();
        let seeds: Vec<u64> = cells.iter().map(SweepCell::seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision: {seeds:?}");
        // The seed depends only on coordinates, not matrix position.
        let reordered: Vec<SweepCell> = cells.iter().rev().copied().collect();
        let rev_seeds: Vec<u64> = reordered.iter().map(SweepCell::seed).collect();
        assert_eq!(seeds.iter().rev().copied().collect::<Vec<_>>(), rev_seeds);
    }

    #[test]
    fn cell_seed_matches_frozen_inline_fnv() {
        // The seed derivation moved onto `Fnv1a`; recorded sweep results
        // depend on these values, so pin them against the original inline
        // byte-wise implementation.
        let legacy = |cell: &SweepCell| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |bytes: &[u8]| {
                for &b in bytes {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            };
            mix(&SEED.to_le_bytes());
            mix(cell.system.name().as_bytes());
            mix(cell.bench.name().as_bytes());
            mix(&cell.ratio.fast.to_le_bytes());
            mix(&cell.ratio.capacity.to_le_bytes());
            mix(&[matches!(cell.kind, CapacityKind::Cxl) as u8]);
            mix(&cell.seed_index.to_le_bytes());
            h
        };
        for kind in [CapacityKind::Nvm, CapacityKind::Cxl] {
            for cell in matrix(
                &[System::Memtis, System::Hemem],
                &[Benchmark::Roms, Benchmark::Btree],
                &Ratio::MAIN,
                kind,
                2,
            ) {
                assert_eq!(cell.seed(), legacy(&cell), "seed drifted: {}", cell.label());
            }
        }
    }

    #[test]
    fn sharded_cells_are_shard_count_invariant() {
        // `shards: Some(1)` is the sharded pipeline's serial oracle (the
        // sharded path hoists tick boundaries to burst granularity, so it is
        // compared against itself across thread counts, not against `None`).
        let cells = tiny_matrix()[..1].to_vec();
        let mut cfg = tiny_cfg(1);
        cfg.shards = Some(1);
        let base = run_sweep(&cells, &cfg);
        for shards in [2usize, 4] {
            cfg.shards = Some(shards);
            let sharded = run_sweep(&cells, &cfg);
            let (a, b) = (&base.cells[0].report, &sharded.cells[0].report);
            assert_eq!(a.wall_ns.to_bits(), b.wall_ns.to_bits());
            assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
            assert_eq!(a.windows, b.windows);
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_exactly() {
        let cells = tiny_matrix();
        let serial = run_sweep(&cells, &tiny_cfg(1));
        let parallel = run_sweep(&cells, &tiny_cfg(2));
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(parallel.cells.iter()) {
            assert_eq!(a.cell.label(), b.cell.label());
            assert_eq!(a.report.wall_ns.to_bits(), b.report.wall_ns.to_bits());
            assert_eq!(a.report.accesses, b.report.accesses);
            assert_eq!(
                format!("{:?}", a.report.stats),
                format!("{:?}", b.report.stats)
            );
            // The telemetry window series must also be scheduling-independent.
            assert_eq!(a.report.windows, b.report.windows);
            assert!(!a.report.windows.is_empty());
        }
    }

    #[test]
    fn windows_table_has_a_row_per_window() {
        let cells = tiny_matrix()[..1].to_vec();
        let r = run_sweep(&cells, &tiny_cfg(1));
        let expected: usize = r.cells.iter().map(|c| c.report.windows.len()).sum();
        assert!(expected > 0);
        let t = windows_table(&r);
        assert_eq!(t.len(), expected);
    }

    #[test]
    fn jobs_clamped_to_cell_count() {
        let cells = tiny_matrix()[..1].to_vec();
        let r = run_sweep(&cells, &tiny_cfg(16));
        assert_eq!(r.jobs, 1);
        assert_eq!(r.cells.len(), 1);
        assert!(r.cells[0].report.sim_events > 0);
        let t = sweep_table(&r);
        assert_eq!(t.len(), 1);
    }
}
