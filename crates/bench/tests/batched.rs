//! Property test: the chunked driver pipeline is byte-identical to the
//! legacy per-event loop over random benchmark cells.
//!
//! Each case picks a workload, system, chunk size, window length, and
//! optionally a fault plan and a migration bandwidth cap, then runs the
//! same cell twice — once at `chunk = 1` (the per-event oracle) and once
//! at the sampled chunk size — under a tracing observer. The `RunReport`
//! (with host wall-clock zeroed) and the full exported JSONL event/window
//! trace must render byte-for-byte identically.

use memtis_bench::{machine_for, run_cell_traced, CapacityKind, Ratio, System, SEED};
use memtis_sim::obs::export_jsonl;
use memtis_sim::prelude::*;
use memtis_workloads::{Benchmark, Scale};
use proptest::prelude::*;

const BENCHES: [Benchmark; 4] = [
    Benchmark::Roms,
    Benchmark::Btree,
    Benchmark::Silo,
    Benchmark::XsBench,
];
// Memtis exercises the deferred batch-safe path; TPP and HeMem run their
// samples inline through the chunked-but-per-event dispatch.
const SYSTEMS: [System; 3] = [System::Memtis, System::Tpp, System::Hemem];
const CHUNKS: [usize; 4] = [2, 7, 64, DEFAULT_CHUNK];

/// Render a report for comparison, ignoring only host wall-clock.
fn signature(mut report: RunReport) -> String {
    report.host_elapsed_ns = 0;
    format!("{report:?}")
}

#[allow(clippy::too_many_arguments)]
fn run_with_chunk(
    bench: Benchmark,
    sys: System,
    chunk: usize,
    accesses: u64,
    window: u64,
    seed: u64,
    faults: Option<&str>,
    migration_bw: Option<f64>,
) -> (String, String) {
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let machine = machine_for(bench, Scale::TEST, ratio, CapacityKind::Nvm);
    let mut driver = DriverConfig {
        window_events: window,
        chunk,
        migration_bw,
        ..memtis_bench::driver_config()
    };
    driver.faults = faults.map(|s| {
        memtis_sim::faults::FaultPlan::parse(s).expect("fault spec used by the test is valid")
    });
    let (report, obs) = run_cell_traced(
        bench,
        Scale::TEST,
        machine,
        sys.build(),
        driver,
        accesses,
        seed,
    );
    let trace = export_jsonl(&obs, &report.windows);
    (signature(report), trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_pipeline_matches_per_event_oracle(
        bench_idx in 0usize..BENCHES.len(),
        sys_idx in 0usize..SYSTEMS.len(),
        chunk_idx in 0usize..CHUNKS.len(),
        accesses in 2_000u64..8_000,
        window in 500u64..3_000,
        seed_salt in 0u64..1_000_000,
        with_faults in proptest::bool::ANY,
        fault_seed in 1u64..100,
        with_bw in proptest::bool::ANY,
    ) {
        let bench = BENCHES[bench_idx];
        let sys = SYSTEMS[sys_idx];
        let chunk = CHUNKS[chunk_idx];
        let seed = SEED ^ seed_salt;
        let spec = format!("seed={fault_seed},abort=0.05,dirty=0.1,drop=0.05,outage=60000:20000");
        let faults = with_faults.then_some(spec.as_str());
        let migration_bw = with_bw.then_some(0.5);

        let (oracle_report, oracle_trace) =
            run_with_chunk(bench, sys, 1, accesses, window, seed, faults, migration_bw);
        let (batched_report, batched_trace) =
            run_with_chunk(bench, sys, chunk, accesses, window, seed, faults, migration_bw);

        prop_assert_eq!(oracle_report, batched_report);
        prop_assert_eq!(oracle_trace, batched_trace);
    }
}
