//! Property test: the sharded burst pipeline is byte-identical to the
//! single-shard run over random benchmark cells.
//!
//! Each case picks a workload, system, shard count, chunk size, window
//! length, and optionally an active fault plan and a migration bandwidth
//! cap, then runs the same cell twice — once at `--shards 1` (the serial
//! oracle: same burst boundaries, one lane-worker) and once at the sampled
//! shard count — under a tracing observer. The `RunReport` (with host
//! wall-clock zeroed), the full exported JSONL event/window trace, and the
//! window series must render byte-for-byte identically.
//!
//! The oracle is `--shards 1` at the *same* chunk, not `shards: None`: the
//! sharded pipeline hoists tick/snapshot boundaries to burst granularity
//! (a documented semantic deviation, see DESIGN.md §12), so its results
//! are compared shard-count-to-shard-count, where determinism is the claim.
//! Faulted and bandwidth-capped cases route through the serial fallback
//! gate, so they double as a regression check that the gate itself is
//! shard-count-invariant.

use memtis_bench::{machine_for, run_cell_traced, CapacityKind, Ratio, System, SEED};
use memtis_sim::obs::export_jsonl;
use memtis_sim::prelude::*;
use memtis_workloads::{Benchmark, Scale};
use proptest::prelude::*;

const BENCHES: [Benchmark; 4] = [
    Benchmark::Roms,
    Benchmark::Btree,
    Benchmark::Silo,
    Benchmark::XsBench,
];
// Memtis exercises the deferred batch-safe parallel path; TPP and HeMem
// sample inline and therefore run chunked-but-serial even when sharded.
const SYSTEMS: [System; 3] = [System::Memtis, System::Tpp, System::Hemem];
const CHUNKS: [usize; 4] = [2, 7, 64, DEFAULT_CHUNK];

/// Render a report for comparison, ignoring only host wall-clock.
fn signature(mut report: RunReport) -> String {
    report.host_elapsed_ns = 0;
    format!("{report:?}")
}

#[allow(clippy::too_many_arguments)]
fn run_with_shards(
    bench: Benchmark,
    sys: System,
    shards: usize,
    chunk: usize,
    accesses: u64,
    window: u64,
    seed: u64,
    faults: Option<&str>,
    migration_bw: Option<f64>,
) -> (String, String, String) {
    let ratio = Ratio {
        fast: 1,
        capacity: 8,
    };
    let machine = machine_for(bench, Scale::TEST, ratio, CapacityKind::Nvm);
    let mut driver = DriverConfig {
        window_events: window,
        chunk,
        shards: Some(shards),
        migration_bw,
        ..memtis_bench::driver_config()
    };
    driver.faults = faults.map(|s| {
        memtis_sim::faults::FaultPlan::parse(s).expect("fault spec used by the test is valid")
    });
    let (report, obs) = run_cell_traced(
        bench,
        Scale::TEST,
        machine,
        sys.build(),
        driver,
        accesses,
        seed,
    );
    let trace = export_jsonl(&obs, &report.windows);
    let windows = format!("{:?}", report.windows);
    (signature(report), trace, windows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn sharded_run_matches_serial_bit_exactly(
        bench_idx in 0usize..BENCHES.len(),
        sys_idx in 0usize..SYSTEMS.len(),
        chunk_idx in 0usize..CHUNKS.len(),
        shards in 1usize..9,
        accesses in 2_000u64..8_000,
        window in 500u64..3_000,
        seed_salt in 0u64..1_000_000,
        with_faults in proptest::bool::ANY,
        fault_seed in 1u64..100,
        with_bw in proptest::bool::ANY,
    ) {
        let bench = BENCHES[bench_idx];
        let sys = SYSTEMS[sys_idx];
        let chunk = CHUNKS[chunk_idx];
        let seed = SEED ^ seed_salt;
        let spec = format!("seed={fault_seed},abort=0.05,dirty=0.1,drop=0.05,outage=60000:20000");
        let faults = with_faults.then_some(spec.as_str());
        let migration_bw = with_bw.then_some(0.5);

        let (serial_report, serial_trace, serial_windows) = run_with_shards(
            bench, sys, 1, chunk, accesses, window, seed, faults, migration_bw,
        );
        let (sharded_report, sharded_trace, sharded_windows) = run_with_shards(
            bench, sys, shards, chunk, accesses, window, seed, faults, migration_bw,
        );

        prop_assert_eq!(serial_report, sharded_report);
        prop_assert_eq!(serial_trace, sharded_trace);
        prop_assert_eq!(serial_windows, sharded_windows);
    }
}
