//! Windowed-telemetry coverage: window boundaries are exact event
//! multiples and bracket every cooling tick, and the rHR/eHR series carried
//! by the windows agrees with the policy's own estimates (the numbers
//! `fig12_hit_ratios` reports at end of run).

use memtis_bench::{driver_config_with_window, machine_for, CapacityKind, Ratio, SEED};
use memtis_core::{MemtisConfig, MemtisPolicy, MemtisStats};
use memtis_sim::prelude::*;
use memtis_workloads::{Benchmark, Scale, SpecStream};

const ACCESSES: u64 = 250_000;
const WINDOW: u64 = 25_000;

fn ratio() -> Ratio {
    Ratio {
        fast: 1,
        capacity: 8,
    }
}

/// A config whose clocks all fire many times within the test budget.
fn cfg() -> MemtisConfig {
    MemtisConfig {
        load_period: 4,
        store_period: 64,
        adapt_interval: 500,
        cooling_interval: 10_000,
        min_estimate_samples: 2_000,
        control_interval: 1_000,
        sample_cost_ns: 2.0,
        ..MemtisConfig::sim_scaled()
    }
}

fn run_traced(bench: Benchmark) -> (RunReport, MemtisStats, TracingObserver) {
    let machine = machine_for(bench, Scale::TEST, ratio(), CapacityKind::Nvm);
    let mut wl = SpecStream::new(bench.spec(Scale::TEST, ACCESSES), SEED);
    let mut sim = Simulation::with_observer(
        machine,
        MemtisPolicy::new(cfg()),
        driver_config_with_window(WINDOW),
        TracingObserver::new(),
    );
    let report = sim.run(&mut wl).expect("run failed");
    let stats = sim.policy().stats.clone();
    let obs = sim.into_observer();
    (report, stats, obs)
}

#[test]
fn window_boundaries_are_event_multiples_and_bracket_cooling_ticks() {
    let (report, stats, obs) = run_traced(Benchmark::XsBench);
    let windows = &report.windows;
    assert!(windows.len() >= 2, "expected several windows");

    // Every non-final window closes exactly on a window_events boundary.
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index, i as u64);
        if i + 1 < windows.len() {
            assert_eq!(w.end_event, (i as u64 + 1) * WINDOW);
        }
        if i > 0 {
            assert!(w.wall_ns >= windows[i - 1].wall_ns);
            assert!(w.end_event > windows[i - 1].end_event);
        }
    }

    // Every cooling tick falls inside exactly one window interval.
    assert!(stats.coolings > 0, "test config must trigger cooling");
    let mut ticks = 0usize;
    for e in obs.ring.iter() {
        if !matches!(e.kind, EventKind::CoolingTick { .. }) {
            continue;
        }
        ticks += 1;
        let brackets = windows
            .iter()
            .enumerate()
            .filter(|(i, w)| {
                let lo = if *i == 0 { 0.0 } else { windows[i - 1].wall_ns };
                lo < e.t_ns && e.t_ns <= w.wall_ns
            })
            .count();
        assert_eq!(brackets, 1, "cooling tick at {} ns not bracketed", e.t_ns);
    }
    // Nothing was dropped at this scale, so the ring saw every tick.
    assert_eq!(obs.ring.dropped(), 0);
    assert_eq!(ticks as u64, stats.coolings);
}

#[test]
fn window_rhr_ehr_match_fig12_end_of_run_values() {
    let (report, stats, _obs) = run_traced(Benchmark::Silo);
    assert!(stats.estimates > 0, "test config must trigger estimation");
    let last = report.windows.last().expect("windows present");
    // The final window carries the policy's latest estimates verbatim —
    // the same numbers fig12_hit_ratios reads from the policy at run end.
    assert_eq!(last.rhr.to_bits(), stats.last_rhr.to_bits());
    assert_eq!(last.ehr.to_bits(), stats.last_ehr.to_bits());
    let (_, rhr, ehr) = *stats.hr_series.last().expect("series present");
    assert_eq!(rhr.to_bits(), stats.last_rhr.to_bits());
    assert_eq!(ehr.to_bits(), stats.last_ehr.to_bits());
}
