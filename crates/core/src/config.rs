//! MEMTIS configuration — every constant the paper specifies, in one place.

/// Tunables of the MEMTIS policy.
///
/// Defaults are the paper's values. Event-count-based intervals (threshold
/// adaptation, cooling, benefit estimation) are expressed in *samples* /
/// *events* exactly as in the paper; [`MemtisConfig::sim_scaled`] shrinks
/// them together with the simulator's size scale so that the
/// samples-per-page ratios the mechanisms rely on are preserved.
#[derive(Debug, Clone)]
pub struct MemtisConfig {
    /// Initial PEBS period for retired LLC load misses (paper: 200).
    pub load_period: u64,
    /// Initial PEBS period for retired stores (paper: 100,000).
    pub store_period: u64,
    /// `ksampled` CPU budget as a fraction of one core (paper: 3%).
    pub cpu_limit: f64,
    /// CPU cost of processing one sample (ns). The paper's kernel runs on
    /// unscaled hardware; the sim-scaled config shrinks this with the size
    /// scale so the sampling rate per page stays comparable.
    pub sample_cost_ns: f64,
    /// Samples between CPU-usage checks of the dynamic period controller.
    pub control_interval: u64,
    /// Samples between threshold adaptations (paper: 100,000).
    pub adapt_interval: u64,
    /// Samples between coolings (paper: 2,000,000).
    pub cooling_interval: u64,
    /// Hot-set fill ratio α deciding whether a warm band opens (paper: 0.9).
    pub alpha: f64,
    /// Fast-tier free-space reserve triggering demotion (paper: 2%).
    pub free_reserve_frac: f64,
    /// Enable the warm set (disabled in the Fig. 10 "vanilla" ablation).
    pub warm_set: bool,
    /// Enable skewness-aware huge-page splitting (disabled in MEMTIS-NS).
    pub split: bool,
    /// Enable conservative all-hot collapsing of base pages (§4.3.3).
    pub collapse: bool,
    /// Minimum split benefit `eHR - rHR` to trigger splitting (paper: 5%).
    pub split_benefit_min: f64,
    /// Scale factor β in the `Ns` formula (paper: 0.4).
    pub beta: f64,
    /// Lower bound on samples per benefit-estimation window (the paper's
    /// trigger is a quarter of the allocated pages; this floors it for tiny
    /// runs).
    pub min_estimate_samples: u64,
    /// Benefit estimation fires when the window holds `allocated_pages /
    /// estimate_rss_divisor` samples (paper: 4). The sim-scaled config
    /// raises the divisor because runs sample each page ~100x less often
    /// than the paper's minutes-long executions.
    pub estimate_rss_divisor: u64,
    /// Consecutive estimation windows whose benefit exceeds the trigger
    /// before splits are queued — the "long-term, stable memory access
    /// trends" requirement of §4.3.1.
    pub estimate_streak: u32,
    /// Migration budget per `kmigrated` wakeup (bytes).
    pub migrate_batch_bytes: u64,
    /// Maximum huge-page splits per wakeup.
    pub max_splits_per_tick: usize,
    /// Maximum collapses per wakeup.
    pub max_collapses_per_tick: usize,
    /// §8 extension (off by default, as in the paper): every N `kmigrated`
    /// wakeups, a light page-table scan supplements PEBS. Sampling cannot
    /// distinguish rarely-accessed from never-accessed pages; the scan's
    /// accessed bits give unsampled-but-touched pages a minimal hotness so
    /// demotion prefers the truly idle ones. 0 disables.
    pub hybrid_scan_every_ticks: u32,
    /// Cancel in-flight promotions whose page cooled below the hot
    /// threshold before the copy finished (only meaningful when the driver
    /// runs the asynchronous migration engine). Disabled in the no-cancel
    /// ablation, which lets stale transfers burn link bandwidth to
    /// completion.
    pub cancel_inflight: bool,
}

impl Default for MemtisConfig {
    fn default() -> Self {
        MemtisConfig {
            load_period: 200,
            store_period: 100_000,
            cpu_limit: 0.03,
            sample_cost_ns: 150.0,
            control_interval: 10_000,
            adapt_interval: 100_000,
            cooling_interval: 2_000_000,
            alpha: 0.9,
            free_reserve_frac: 0.02,
            warm_set: true,
            split: true,
            collapse: true,
            split_benefit_min: 0.05,
            beta: 0.4,
            min_estimate_samples: 200_000,
            estimate_rss_divisor: 4,
            estimate_streak: 2,
            migrate_batch_bytes: 256 << 20,
            max_splits_per_tick: 64,
            max_collapses_per_tick: 4,
            hybrid_scan_every_ticks: 0,
            cancel_inflight: true,
        }
    }
}

impl MemtisConfig {
    /// Configuration scaled for the default 1/64 simulator scale: periods,
    /// intervals, per-sample cost, and batch sizes all shrink so that
    /// samples-per-page per cooling period and CPU-fraction budgets match
    /// the paper's regime.
    pub fn sim_scaled() -> Self {
        MemtisConfig {
            load_period: 8,
            store_period: 1_000,
            cpu_limit: 0.03,
            sample_cost_ns: 2.0,
            control_interval: 2_000,
            adapt_interval: 1_000,
            cooling_interval: 20_000,
            min_estimate_samples: 5_000,
            estimate_rss_divisor: 256,
            migrate_batch_bytes: 8 << 20,
            max_splits_per_tick: 16,
            max_collapses_per_tick: 2,
            ..Default::default()
        }
    }

    /// The MEMTIS-NS variant (no huge-page split) of this config (Fig. 11).
    pub fn without_split(mut self) -> Self {
        self.split = false;
        self.collapse = false;
        self
    }

    /// The "vanilla" ablation of this config: no split and no warm set
    /// (Fig. 10).
    pub fn vanilla(mut self) -> Self {
        self.split = false;
        self.collapse = false;
        self.warm_set = false;
        self
    }

    /// Enables the §8 hybrid-tracking extension with the given scan period
    /// (in `kmigrated` wakeups).
    pub fn with_hybrid_scan(mut self, every_ticks: u32) -> Self {
        self.hybrid_scan_every_ticks = every_ticks;
        self
    }

    /// The no-cancel ablation: in-flight promotions of pages that cooled
    /// run to completion instead of being aborted.
    pub fn without_inflight_cancel(mut self) -> Self {
        self.cancel_inflight = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MemtisConfig::default();
        assert_eq!(c.load_period, 200);
        assert_eq!(c.store_period, 100_000);
        assert_eq!(c.cpu_limit, 0.03);
        assert_eq!(c.adapt_interval, 100_000);
        assert_eq!(c.cooling_interval, 2_000_000);
        assert_eq!(c.alpha, 0.9);
        assert_eq!(c.free_reserve_frac, 0.02);
        assert_eq!(c.split_benefit_min, 0.05);
        assert_eq!(c.beta, 0.4);
        assert!(c.split && c.warm_set);
    }

    #[test]
    fn ablation_helpers() {
        let ns = MemtisConfig::default().without_split();
        assert!(!ns.split && ns.warm_set);
        let v = MemtisConfig::default().vanilla();
        assert!(!v.split && !v.warm_set);
    }

    #[test]
    fn scaled_keeps_interval_ratios() {
        let p = MemtisConfig::default();
        let s = MemtisConfig::sim_scaled();
        let paper_ratio = p.cooling_interval as f64 / p.adapt_interval as f64;
        let sim_ratio = s.cooling_interval as f64 / s.adapt_interval as f64;
        assert!(
            (paper_ratio / sim_ratio - 1.0).abs() < 0.01,
            "cooling:adaptation ratio preserved"
        );
    }
}
