//! The page-access histogram (§4.1.3).
//!
//! Sixteen bins on an exponential scale: bin `n` covers hotness factors
//! `[2^n, 2^(n+1))`, the last bin is unbounded. Each bin counts distinct
//! pages at 4 KiB granularity (a huge page contributes 512). The exponential
//! scale matches the Zipf/Pareto nature of page accesses, keeps the structure
//! tiny (16 × 8-byte counters), and makes cooling — halving every hotness
//! factor — a one-bin left shift.

/// Number of bins.
pub const NUM_BINS: usize = 16;
/// Highest bin index.
pub const MAX_BIN: usize = NUM_BINS - 1;

/// Returns the bin index for a hotness factor.
///
/// Hotness 0 and 1 both land in bin 0; values ≥ 2^15 land in the unbounded
/// top bin.
#[inline]
pub fn bin_of(hotness: u64) -> usize {
    if hotness <= 1 {
        0
    } else {
        ((63 - hotness.leading_zeros()) as usize).min(MAX_BIN)
    }
}

/// A 16-bin exponential access histogram counting 4 KiB-granule pages.
#[derive(Debug, Clone, Default)]
pub struct AccessHistogram {
    bins: [u64; NUM_BINS],
    underflows: u64,
}

impl AccessHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw bin counters.
    pub fn bins(&self) -> &[u64; NUM_BINS] {
        &self.bins
    }

    /// Pages (4 KiB units) in bin `b`.
    pub fn pages_in(&self, b: usize) -> u64 {
        self.bins[b]
    }

    /// Bytes represented by bin `b`.
    pub fn bytes_in(&self, b: usize) -> u64 {
        self.bins[b] * 4096
    }

    /// Total tracked pages (4 KiB units).
    pub fn total_pages(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Adds `pages_4k` pages to bin `b`.
    #[inline]
    pub fn add(&mut self, b: usize, pages_4k: u64) {
        self.bins[b] += pages_4k;
    }

    /// Removes `pages_4k` pages from bin `b`.
    ///
    /// An attempted removal beyond the bin's count means the caller's page
    /// metadata went out of sync with the histogram. This used to saturate
    /// silently in release builds (and panic only in debug), masking the
    /// corruption; now every underflowed page is tallied in
    /// [`AccessHistogram::underflows`] identically in all build profiles so
    /// callers can surface the desync instead of hiding it.
    #[inline]
    pub fn remove(&mut self, b: usize, pages_4k: u64) {
        if self.bins[b] < pages_4k {
            self.underflows += pages_4k - self.bins[b];
            self.bins[b] = 0;
        } else {
            self.bins[b] -= pages_4k;
        }
    }

    /// Total pages (4 KiB units) that `remove()` was asked to take out of
    /// bins that did not hold them. Zero on healthy runs.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Moves `pages_4k` pages from bin `from` to bin `to` (no-op if equal).
    #[inline]
    pub fn move_pages(&mut self, from: usize, to: usize, pages_4k: u64) {
        if from != to {
            self.remove(from, pages_4k);
            self.add(to, pages_4k);
        }
    }

    /// Cooling: every hotness factor is halved, which on the exponential
    /// scale is a one-bin left shift (§4.2.2). Pages whose halved hotness
    /// still lands in the top bin must be corrected afterwards by the
    /// page-list walk via [`AccessHistogram::move_pages`].
    pub fn cool(&mut self) {
        self.bins[0] += self.bins[1];
        for b in 1..MAX_BIN {
            self.bins[b] = self.bins[b + 1];
        }
        self.bins[MAX_BIN] = 0;
    }

    /// Folds `other` into `self` bin by bin (underflow tallies included).
    /// Used by sharded runs to merge per-shard histogram deltas at epoch
    /// barriers; merge order does not matter because the fold is a plain
    /// sum.
    pub fn merge(&mut self, other: &AccessHistogram) {
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
        self.underflows += other.underflows;
    }

    /// Pages (4 KiB units) in bins `>= b`.
    pub fn pages_at_or_above(&self, b: usize) -> u64 {
        self.bins[b.min(NUM_BINS)..].iter().sum()
    }

    /// Bytes in bins `>= b` (0 when `b > MAX_BIN`).
    pub fn bytes_at_or_above(&self, b: usize) -> u64 {
        if b > MAX_BIN {
            0
        } else {
            self.pages_at_or_above(b) * 4096
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries_are_powers_of_two() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(1), 0);
        assert_eq!(bin_of(2), 1);
        assert_eq!(bin_of(3), 1);
        assert_eq!(bin_of(4), 2);
        assert_eq!(bin_of(7), 2);
        assert_eq!(bin_of(8), 3);
        assert_eq!(bin_of((1 << 15) - 1), 14);
        assert_eq!(bin_of(1 << 15), 15);
        assert_eq!(bin_of(u64::MAX), 15);
    }

    #[test]
    fn add_move_remove_conserve_totals() {
        let mut h = AccessHistogram::new();
        h.add(3, 100);
        h.add(7, 50);
        assert_eq!(h.total_pages(), 150);
        h.move_pages(3, 4, 40);
        assert_eq!(h.total_pages(), 150);
        assert_eq!(h.pages_in(3), 60);
        assert_eq!(h.pages_in(4), 40);
        h.remove(7, 50);
        assert_eq!(h.total_pages(), 100);
    }

    #[test]
    fn cooling_shifts_left_and_merges_bin_zero() {
        let mut h = AccessHistogram::new();
        h.add(0, 5);
        h.add(1, 7);
        h.add(2, 11);
        h.add(15, 3);
        h.cool();
        // Bin 0 absorbs bin 1 (hotness 1 stays 0 after halving... both land
        // in bin 0); every other bin shifts down one.
        assert_eq!(h.pages_in(0), 12);
        assert_eq!(h.pages_in(1), 11);
        assert_eq!(h.pages_in(14), 3);
        assert_eq!(h.pages_in(15), 0);
        assert_eq!(h.total_pages(), 26);
    }

    #[test]
    fn cooling_matches_halved_bin_assignment() {
        // For every hotness h > 1 outside the top bin: bin(h/2) == bin(h)-1,
        // which is exactly what the shift implements.
        for h in 2u64..(1 << 15) {
            assert_eq!(bin_of(h / 2), bin_of(h).saturating_sub(1), "h={h}");
        }
    }

    #[test]
    fn underflow_is_counted_not_masked() {
        let mut h = AccessHistogram::new();
        h.add(5, 3);
        assert_eq!(h.underflows(), 0);
        // Ask for more pages than the bin holds: the bin empties, and the
        // excess is tallied instead of silently saturating away.
        h.remove(5, 10);
        assert_eq!(h.pages_in(5), 0);
        assert_eq!(h.underflows(), 7);
        // Removing from an empty bin counts the full amount.
        h.remove(0, 2);
        assert_eq!(h.underflows(), 9);
        // Healthy removals never move the counter.
        h.add(1, 4);
        h.remove(1, 4);
        assert_eq!(h.underflows(), 9);
    }

    #[test]
    fn merge_sums_bins_and_underflows() {
        let mut a = AccessHistogram::new();
        a.add(2, 5);
        a.add(15, 1);
        a.remove(0, 3); // underflow: 3
        let mut b = AccessHistogram::new();
        b.add(2, 7);
        b.add(9, 2);
        b.remove(1, 4); // underflow: 4
        a.merge(&b);
        assert_eq!(a.pages_in(2), 12);
        assert_eq!(a.pages_in(9), 2);
        assert_eq!(a.pages_in(15), 1);
        assert_eq!(a.total_pages(), 15);
        assert_eq!(a.underflows(), 7);
    }

    #[test]
    fn suffix_sums() {
        let mut h = AccessHistogram::new();
        h.add(14, 10);
        h.add(15, 20);
        h.add(2, 5);
        assert_eq!(h.pages_at_or_above(14), 30);
        assert_eq!(h.pages_at_or_above(16), 0);
        assert_eq!(h.bytes_at_or_above(15), 20 * 4096);
        assert_eq!(h.bytes_at_or_above(16), 0);
        assert_eq!(h.pages_at_or_above(0), 35);
    }
}
