//! # memtis-core — the MEMTIS tiering policy
//!
//! Faithful reimplementation of MEMTIS (SOSP '23) over the simulated
//! machine substrate:
//!
//! - [`histogram`] — the 16-bin exponential page-access histogram (§4.1.3)
//!   whose cooling is a one-bin shift.
//! - [`threshold`] — dynamic hot/warm/cold threshold adaptation, the paper's
//!   Algorithm 1 (§4.2.1).
//! - [`meta`] — per-page EMA access counts and per-subpage counters (§4.1.2),
//!   including the skewness factor (eq. 3).
//! - [`regions`] — the huge-page-region-indexed dense metadata table the
//!   policy stores [`meta::PageMeta`] in; cooling and skewness selection
//!   scan it contiguously.
//! - [`policy`] — the policy proper: `ksampled` sample processing with the
//!   dynamically throttled PEBS period (§4.1.1), periodic cooling (§4.2.2),
//!   background promotion/demotion with the warm set (§4.2.3), and
//!   skewness-aware huge-page split driven by the eHR−rHR benefit estimate
//!   (§4.3).
//! - [`config`] — every paper constant in one tunable struct, with ablation
//!   helpers (`without_split`, `vanilla`) used by the Fig. 10/11 benches.

pub mod config;
pub mod histogram;
pub mod meta;
pub mod policy;
pub mod regions;
pub mod threshold;

pub use config::MemtisConfig;
pub use histogram::{bin_of, AccessHistogram, MAX_BIN, NUM_BINS};
pub use meta::{PageMeta, SubMeta};
pub use policy::{MemtisPolicy, MemtisStats};
pub use regions::RegionTable;
pub use threshold::{adapt, Thresholds};
