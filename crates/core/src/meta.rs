//! Per-page access metadata (§4.1.2, §5).
//!
//! The kernel implementation stores this in unused `struct page` slots of
//! compound pages (huge pages) and in a side table hung off PTE page frames
//! (base pages), bounding memory overhead at 0.195%. Here it lives in a map
//! keyed by virtual page number; the *contents* are identical: the EMA
//! access count `C_i`, and for huge pages a per-subpage count vector that
//! backs both the emulated base-page histogram and the skewness factor.

use crate::histogram::bin_of;
use memtis_sim::prelude::{PageSize, NR_SUBPAGES};

/// Per-subpage metadata of a huge page.
#[derive(Debug, Clone)]
pub struct SubMeta {
    /// Access count per 4 KiB subpage (halved by cooling).
    pub counts: [u32; NR_SUBPAGES as usize],
    /// Current bin of each subpage in the emulated base-page histogram.
    pub bins: [u8; NR_SUBPAGES as usize],
}

impl Default for SubMeta {
    fn default() -> Self {
        SubMeta {
            counts: [0; NR_SUBPAGES as usize],
            bins: [0; NR_SUBPAGES as usize],
        }
    }
}

/// Metadata for one managed page (base page or huge page).
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Mapping size this metadata describes.
    pub size: PageSize,
    /// EMA access count `C_i` (incremented per sample, halved by cooling).
    pub count: u64,
    /// Current bin in the page access histogram.
    pub bin: u8,
    /// Per-subpage metadata (huge pages only).
    pub sub: Option<Box<SubMeta>>,
    /// Benefit-estimation window epoch that last sampled this page (used to
    /// count distinct huge pages per window without a set).
    pub epoch: u32,
    /// Whether the page currently sits on the promotion list.
    pub in_promo: bool,
}

impl PageMeta {
    /// Fresh base-page metadata with the given initial count.
    pub fn new_base(count: u64) -> Self {
        let bin = bin_of(base_hotness(count)) as u8;
        PageMeta {
            size: PageSize::Base,
            count,
            bin,
            sub: None,
            epoch: 0,
            in_promo: false,
        }
    }

    /// Fresh huge-page metadata with the given initial count.
    pub fn new_huge(count: u64) -> Self {
        PageMeta {
            size: PageSize::Huge,
            count,
            bin: bin_of(count) as u8,
            sub: Some(Box::default()),
            epoch: 0,
            in_promo: false,
        }
    }

    /// The hotness factor `H_i` (§4.1.2): the raw count for a huge page,
    /// compensated by `nr_subpages` for a base page.
    #[inline]
    pub fn hotness(&self) -> u64 {
        match self.size {
            PageSize::Huge => self.count,
            PageSize::Base => base_hotness(self.count),
        }
    }

    /// Pages (4 KiB units) this entry contributes to the histogram.
    #[inline]
    pub fn pages_4k(&self) -> u64 {
        match self.size {
            PageSize::Huge => NR_SUBPAGES,
            PageSize::Base => 1,
        }
    }

    /// Utilization factor `U_i`: subpages whose emulated-base-page bin
    /// reaches the base hot threshold (§4.3.2).
    pub fn utilization(&self, base_hot_threshold: usize) -> u32 {
        match &self.sub {
            Some(s) => s
                .bins
                .iter()
                .filter(|&&b| (b as usize) >= base_hot_threshold)
                .count() as u32,
            None => 0,
        }
    }

    /// Skewness factor `S_i = Σ H_ij² / U_i²` (eq. 3). Squaring both the
    /// subpage hotness and the utilization separates "few very hot
    /// subpages" from "uniformly hot" huge pages. Returns `None` for pages
    /// with zero utilization (nothing hot to isolate) or non-huge pages.
    pub fn skewness(&self, base_hot_threshold: usize) -> Option<f64> {
        self.skew_profile(base_hot_threshold).map(|p| p.skewness)
    }

    /// Full per-subpage access profile used for split-candidate selection.
    /// Returns `None` for non-huge pages or when no subpage is hot.
    pub fn skew_profile(&self, base_hot_threshold: usize) -> Option<SkewProfile> {
        let sub = self.sub.as_ref()?;
        let u = self.utilization(base_hot_threshold);
        if u == 0 {
            return None;
        }
        let mut touched = 0u32;
        let mut max_count = 0u32;
        let mut total = 0u64;
        let mut sum_sq = 0.0f64;
        for &c in sub.counts.iter() {
            if c > 0 {
                touched += 1;
                total += c as u64;
                max_count = max_count.max(c);
                let h = c as f64;
                sum_sq += h * h;
            }
        }
        Some(SkewProfile {
            utilization: u,
            touched,
            max_count,
            total_count: total,
            skewness: sum_sq / (u as f64 * u as f64),
        })
    }
}

/// Per-subpage access profile of a huge page (split-candidate screening).
#[derive(Debug, Clone, Copy)]
pub struct SkewProfile {
    /// `U_i`: subpages at or above the base hot threshold.
    pub utilization: u32,
    /// Subpages with any recorded access.
    pub touched: u32,
    /// Highest subpage count.
    pub max_count: u32,
    /// Sum of all subpage counts.
    pub total_count: u64,
    /// `S_i` (eq. 3).
    pub skewness: f64,
}

impl SkewProfile {
    /// Whether the profile indicates *persistent* subpage skew rather than
    /// uniform access with sampling noise. Two conditions, both needed:
    ///
    /// - **low utilization**: at most a quarter of the subpages are hot
    ///   (the paper's Fig. 3 reports 5–15% for Silo, 8–12.5% for Btree) —
    ///   keeping the page huge wastes the rest of its fast-tier residency;
    /// - **hotness contrast**: the hottest subpage stands several times
    ///   above the mean touched-subpage count, so the variation is a stable
    ///   access-frequency gap and not resampling noise on a uniformly swept
    ///   page (splitting those would sacrifice TLB reach for nothing).
    pub fn is_genuinely_skewed(&self) -> bool {
        let mean = self.total_count as f64 / self.touched.max(1) as f64;
        (self.utilization as u64) <= crate::meta::NR_SUBPAGES / 4
            && self.max_count as f64 >= 4.0 * mean.max(1.0)
    }
}

/// Hotness of a base page with count `c`: `c × nr_subpages` (§4.1.2),
/// compensating for a huge page being 512× more likely to be sampled.
#[inline]
pub fn base_hotness(count: u64) -> u64 {
    count.saturating_mul(NR_SUBPAGES)
}

/// Hotness of subpage with count `c`, as the emulated base-page histogram
/// sees it (a subpage promoted to a base page would have this hotness).
#[inline]
pub fn subpage_hotness(count: u32) -> u64 {
    (count as u64).saturating_mul(NR_SUBPAGES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pages_compensate_by_subpage_count() {
        let m = PageMeta::new_base(2);
        assert_eq!(m.hotness(), 1024);
        assert_eq!(m.pages_4k(), 1);
        let h = PageMeta::new_huge(2);
        assert_eq!(h.hotness(), 2);
        assert_eq!(h.pages_4k(), 512);
    }

    #[test]
    fn utilization_counts_hot_subpages() {
        let mut m = PageMeta::new_huge(100);
        let sub = m.sub.as_mut().unwrap();
        sub.bins[0] = 12;
        sub.bins[1] = 12;
        sub.bins[2] = 9;
        assert_eq!(m.utilization(12), 2);
        assert_eq!(m.utilization(10), 2);
        assert_eq!(m.utilization(9), 3);
    }

    #[test]
    fn skewness_ranks_skewed_above_uniform() {
        // Skewed: 4 subpages with count 100 each, rest zero.
        let mut skewed = PageMeta::new_huge(400);
        {
            let s = skewed.sub.as_mut().unwrap();
            for i in 0..4 {
                s.counts[i] = 100;
                s.bins[i] = 15;
            }
        }
        // Uniform: 400 subpages with count 1 each.
        let mut uniform = PageMeta::new_huge(400);
        {
            let s = uniform.sub.as_mut().unwrap();
            for i in 0..400 {
                s.counts[i] = 1;
                s.bins[i] = 15;
            }
        }
        let ss = skewed.skewness(15).unwrap();
        let su = uniform.skewness(15).unwrap();
        assert!(ss > su * 100.0, "skewed {ss} vs uniform {su}");
    }

    #[test]
    fn skewness_none_without_hot_subpages() {
        let m = PageMeta::new_huge(7);
        assert_eq!(m.skewness(12), None);
        let b = PageMeta::new_base(7);
        assert_eq!(b.skewness(0), None);
    }
}
