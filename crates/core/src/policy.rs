//! The MEMTIS tiering policy (§3–§4).
//!
//! `ksampled` work happens in [`MemtisPolicy::on_access`] (sample
//! processing, histogram updates, threshold adaptation, cooling triggers,
//! split-benefit estimation), `kmigrated` work in [`MemtisPolicy::tick`]
//! (promotion, demotion, huge-page split/collapse). Both are charged to the
//! background-daemon cost sink — nothing MEMTIS does extends the
//! application's critical path, which is the property the driver's cost
//! model rewards.

use crate::config::MemtisConfig;
use crate::histogram::{bin_of, AccessHistogram, MAX_BIN};
use crate::meta::{subpage_hotness, PageMeta, SubMeta};
use crate::regions::RegionTable;
use crate::threshold::{adapt, Thresholds};
use memtis_sim::prelude::{
    Access, AccessKind, AccessOutcome, AccessRecord, EventKind, PageSize, PolicyDescriptor,
    PolicyOps, RecordFilter, SimError, ThresholdCause, TierId, TieringPolicy, TransferEnd,
    TransferId, VirtPage, HUGE_PAGE_SIZE, NR_SUBPAGES,
};
use memtis_tracking::pebs::{PebsSampler, PeriodController};
use std::collections::VecDeque;

/// CPU cost of one threshold adaptation (ns).
const ADAPT_NS: f64 = 500.0;
/// CPU cost per 4 KiB page-equivalent visited during cooling (ns).
const COOL_PAGE_NS: f64 = 2.0;
/// Number of log2 buckets for the skewness selection array.
const SKEW_BUCKETS: usize = 48;

/// Counters and series exposed for the evaluation harness.
#[derive(Debug, Default, Clone)]
pub struct MemtisStats {
    /// PEBS samples processed.
    pub samples: u64,
    /// Threshold adaptations performed.
    pub adaptations: u64,
    /// Cooling passes performed.
    pub coolings: u64,
    /// Split-benefit estimations performed.
    pub estimates: u64,
    /// Huge pages split.
    pub splits: u64,
    /// Huge pages collapsed.
    pub collapses: u64,
    /// 4 KiB pages promoted.
    pub promoted_4k: u64,
    /// 4 KiB pages demoted.
    pub demoted_4k: u64,
    /// Most recent measured fast-tier hit ratio (rHR, §4.3.1).
    pub last_rhr: f64,
    /// Most recent estimated base-page-only hit ratio (eHR).
    pub last_ehr: f64,
    /// `(now_ns, rHR, eHR)` per estimation window.
    pub hr_series: Vec<(f64, f64, f64)>,
    /// `(now_ns, load_period)` per controller decision.
    pub period_series: Vec<(f64, u64)>,
    /// Smoothed `ksampled` CPU usage (fraction of one core).
    pub cpu_usage_ema: f64,
    /// Split candidates bucketed at the most recent cooling.
    pub split_candidates: u64,
    /// Total splits requested by the benefit estimator (sum of Ns).
    pub split_requested: u64,
    /// Pages whose hotness was supplemented by the hybrid PT scan (§8
    /// extension).
    pub scan_supplements: u64,
    /// In-flight promotions aborted because the page cooled below the hot
    /// threshold before the copy finished.
    pub inflight_cancels: u64,
    /// Promotions re-enqueued after their transfer aborted (dirty re-copy
    /// exhaustion, forced fault, …) while the page was still hot.
    pub abort_retries: u64,
}

/// The MEMTIS policy.
pub struct MemtisPolicy {
    cfg: MemtisConfig,
    pages: RegionTable,
    page_hist: AccessHistogram,
    base_hist: AccessHistogram,
    thr: Thresholds,
    base_thr: Thresholds,
    sampler: PebsSampler,
    controller: PeriodController,
    // Event-count clocks.
    since_adapt: u64,
    since_cool: u64,
    since_control: u64,
    last_control_ns: f64,
    window_cpu_ns: f64,
    // Benefit-estimation window (§4.3.1).
    win_samples: u64,
    win_fast: u64,
    win_ehr_hits: u64,
    win_hp_samples: u64,
    win_hp_distinct: u64,
    epoch: u32,
    // Work queues.
    promo: VecDeque<VirtPage>,
    demote_cold: VecDeque<VirtPage>,
    demote_warm: VecDeque<VirtPage>,
    split_queue: VecDeque<VirtPage>,
    collapse_queue: VecDeque<VirtPage>,
    /// Transfers this policy admitted to the asynchronous migration engine
    /// and has not yet seen end: `(page, transfer, destination)`. Empty in
    /// unlimited-bandwidth mode, where every migration completes in place.
    in_flight: Vec<(VirtPage, TransferId, TierId)>,
    skew_buckets: Vec<Vec<VirtPage>>,
    benefit_streak: u32,
    ticks_since_refill: u32,
    tick_count: u32,
    /// Public statistics.
    pub stats: MemtisStats,
}

impl MemtisPolicy {
    /// Creates the policy with the given configuration.
    pub fn new(cfg: MemtisConfig) -> Self {
        let sampler = PebsSampler::new(cfg.load_period, cfg.store_period);
        let controller =
            PeriodController::with_limits(cfg.cpu_limit, (cfg.load_period / 4).max(1), 1_000_000);
        MemtisPolicy {
            cfg,
            pages: RegionTable::new(),
            page_hist: AccessHistogram::new(),
            base_hist: AccessHistogram::new(),
            thr: Thresholds::default(),
            base_thr: Thresholds::default(),
            sampler,
            controller,
            since_adapt: 0,
            since_cool: 0,
            since_control: 0,
            last_control_ns: 0.0,
            window_cpu_ns: 0.0,
            win_samples: 0,
            win_fast: 0,
            win_ehr_hits: 0,
            win_hp_samples: 0,
            win_hp_distinct: 0,
            epoch: 1,
            promo: VecDeque::new(),
            demote_cold: VecDeque::new(),
            demote_warm: VecDeque::new(),
            split_queue: VecDeque::new(),
            collapse_queue: VecDeque::new(),
            in_flight: Vec::new(),
            skew_buckets: vec![Vec::new(); SKEW_BUCKETS],
            benefit_streak: 0,
            ticks_since_refill: u32::MAX / 2,
            tick_count: 0,
            stats: MemtisStats::default(),
        }
    }

    /// Current thresholds over the page access histogram.
    pub fn thresholds(&self) -> Thresholds {
        self.thr
    }

    /// Current thresholds over the emulated base-page histogram.
    pub fn base_thresholds(&self) -> Thresholds {
        self.base_thr
    }

    /// The page access histogram.
    pub fn histogram(&self) -> &AccessHistogram {
        &self.page_hist
    }

    /// The emulated base-page histogram.
    pub fn base_histogram(&self) -> &AccessHistogram {
        &self.base_hist
    }

    /// Current PEBS load period (after dynamic adjustment).
    pub fn load_period(&self) -> u64 {
        self.sampler.load_period()
    }

    /// Metadata view for tests and analysis tools.
    pub fn page_meta(&self, vpage: VirtPage) -> Option<&PageMeta> {
        self.pages.get(vpage)
    }

    /// Iterates all tracked pages in ascending virtual-page order
    /// (analysis tools, Fig. 3 scatter).
    pub fn pages_iter(&self) -> impl Iterator<Item = (VirtPage, &PageMeta)> {
        self.pages.iter()
    }

    fn initial_count(&self, size: PageSize) -> u64 {
        // "Initial hotness for newly allocated pages is set to the current
        // hotness threshold (T_hot)" — §4.2.1.
        let bin = self.thr.hot.min(MAX_BIN);
        match size {
            PageSize::Huge => 1u64 << bin,
            PageSize::Base => 1u64 << (bin.saturating_sub(9)),
        }
    }

    fn remove_from_hists(&mut self, meta: &PageMeta) {
        self.page_hist.remove(meta.bin as usize, meta.pages_4k());
        match &meta.sub {
            Some(sub) => {
                for &b in sub.bins.iter() {
                    self.base_hist.remove(b as usize, 1);
                }
            }
            None => self.base_hist.remove(meta.bin as usize, 1),
        }
    }

    fn add_to_hists(&mut self, meta: &PageMeta) {
        self.page_hist.add(meta.bin as usize, meta.pages_4k());
        match &meta.sub {
            Some(sub) => {
                for &b in sub.bins.iter() {
                    self.base_hist.add(b as usize, 1);
                }
            }
            None => self.base_hist.add(meta.bin as usize, 1),
        }
    }

    fn run_adaptation(&mut self, ops: &mut PolicyOps<'_>, cause: ThresholdCause) {
        let _span = ops.span(memtis_sim::obs::SpanId::ThresholdRecompute);
        let fast = ops.capacity_bytes(TierId::FAST);
        self.thr = adapt(&self.page_hist, fast, self.cfg.alpha, self.cfg.warm_set);
        self.base_thr = adapt(&self.base_hist, fast, self.cfg.alpha, true);
        ops.charge(ADAPT_NS);
        self.window_cpu_ns += ADAPT_NS;
        self.stats.adaptations += 1;
        ops.emit(EventKind::ThresholdRecompute {
            cause,
            hot: self.thr.hot as u32,
            warm: self.thr.warm as u32,
            cold: self.thr.cold as u32,
        });
    }

    /// Periodic histogram cooling (§4.2.2): halve every count, shift both
    /// histograms one bin left, correct stragglers, and rebuild the
    /// demotion lists, skewness buckets, and collapse candidates.
    fn run_cooling(&mut self, ops: &mut PolicyOps<'_>) {
        let _span = ops.span(memtis_sim::obs::SpanId::CoolingTick);
        self.page_hist.cool();
        self.base_hist.cool();
        self.demote_cold.clear();
        self.demote_warm.clear();
        for b in &mut self.skew_buckets {
            b.clear();
        }
        self.collapse_queue.clear();

        let mut visited_4k = 0u64;
        // The region table sorts its scan order and packs each 2 MiB
        // region's entries contiguously, so collapse detection needs no
        // auxiliary grouping map: count (hot, total, resident-in-fast)
        // inline while sweeping each region.
        for region in self.pages.regions_sorted() {
            let mut grp_hot: u16 = 0;
            let mut grp_total: u16 = 0;
            let mut grp_all_fast = true;
            for j in 0..NR_SUBPAGES {
                let vpage = VirtPage((region << 9) | j);
                let Some(meta) = self.pages.get_mut(vpage) else {
                    continue;
                };
                visited_4k += meta.pages_4k();
                // Halve the count; the histogram shift already assumed the
                // bin dropped by exactly one, so correct any page whose
                // halved hotness lands elsewhere (top bin, or zero).
                meta.count /= 2;
                let assumed = (meta.bin as usize).saturating_sub(1);
                let hotness = meta.hotness();
                let actual = bin_of(hotness);
                meta.bin = actual as u8;
                let pages_4k = meta.pages_4k();
                let is_huge = meta.size == PageSize::Huge;
                // Subpage cooling with the same correction on the base hist.
                let mut sub_moves: Vec<(usize, usize)> = Vec::new();
                if let Some(sub) = meta.sub.as_mut() {
                    for s in 0..NR_SUBPAGES as usize {
                        sub.counts[s] /= 2;
                        let a = (sub.bins[s] as usize).saturating_sub(1);
                        let n = bin_of(subpage_hotness(sub.counts[s]));
                        sub.bins[s] = n as u8;
                        if a != n {
                            sub_moves.push((a, n));
                        }
                    }
                }
                let base_move = if meta.sub.is_none() {
                    let a = assumed;
                    (a != actual).then_some((a, actual))
                } else {
                    None
                };
                let bin_now = meta.bin as usize;
                let _ = meta;

                if assumed != actual {
                    self.page_hist.move_pages(assumed, actual, pages_4k);
                }
                for (a, n) in sub_moves {
                    self.base_hist.move_pages(a, n, 1);
                }
                if let Some((a, n)) = base_move {
                    self.base_hist.move_pages(a, n, 1);
                }

                // Classify for the demotion lists (fast-tier residents only).
                let in_fast = matches!(ops.locate(vpage), Some((t, _)) if t == TierId::FAST);
                if in_fast {
                    if self.thr.is_cold(bin_now) {
                        self.demote_cold.push_back(vpage);
                    } else if self.thr.is_warm(bin_now) {
                        self.demote_warm.push_back(vpage);
                    }
                }

                // Skewness buckets for split candidate selection (§4.3.2).
                // Only *genuinely* skewed pages are candidates: few hot
                // subpages relative to the touched set, with the hottest
                // subpage far above the mean. Splitting a uniformly hot
                // huge page (or one whose subpage-count variation is
                // sampling noise) would sacrifice TLB reach for no
                // fast-tier savings.
                if self.cfg.split && is_huge {
                    let meta = self.pages.get(vpage).expect("still present");
                    // Any huge page with persistent subpage skew qualifies;
                    // a page that looks lukewarm at 2 MiB granularity may
                    // hold a very hot record — precisely the Silo pattern.
                    if let Some(p) = meta.skew_profile(self.base_thr.hot) {
                        if p.is_genuinely_skewed() {
                            let bucket =
                                (p.skewness.max(1.0).log2() as usize).min(SKEW_BUCKETS - 1);
                            self.skew_buckets[bucket].push(vpage);
                        }
                    }
                }

                // Collapse candidacy bookkeeping (hot base pages only).
                if self.cfg.collapse && !is_huge {
                    grp_total += 1;
                    if self.thr.is_hot(bin_now) {
                        grp_hot += 1;
                    }
                    grp_all_fast &= in_fast;
                }
            }

            if self.cfg.collapse
                && grp_total as u64 == NR_SUBPAGES
                && grp_hot == grp_total
                && grp_all_fast
            {
                self.collapse_queue.push_back(VirtPage(region << 9));
            }
        }

        self.stats.split_candidates = self.skew_buckets.iter().map(|b| b.len() as u64).sum();
        // The page-list walk is kmigrated work (§4.2.2): it consumes daemon
        // CPU but does not count against ksampled's sampling budget.
        ops.charge(visited_4k as f64 * COOL_PAGE_NS);
        self.stats.coolings += 1;
        // Thresholds shift with the histogram (§4.2.2).
        self.run_adaptation(ops, ThresholdCause::Cooling);
        ops.emit(EventKind::CoolingTick {
            visited_4k,
            hot_threshold: self.thr.hot as u32,
            warm_threshold: self.thr.warm as u32,
        });
    }

    /// Split-benefit estimation (§4.3.1) and candidate selection (§4.3.2).
    fn run_estimation(&mut self, ops: &mut PolicyOps<'_>) {
        let samples = self.win_samples.max(1);
        let rhr = self.win_fast as f64 / samples as f64;
        let ehr = self.win_ehr_hits as f64 / samples as f64;
        self.stats.last_rhr = rhr;
        self.stats.last_ehr = ehr;
        self.stats.hr_series.push((ops.now_ns(), rhr, ehr));
        self.stats.estimates += 1;

        if ehr - rhr >= self.cfg.split_benefit_min {
            self.benefit_streak += 1;
        } else {
            self.benefit_streak = 0;
        }
        // Split only on a sustained benefit ("long-term, stable memory
        // access trends", §4.3.1), never on a transient fill-phase gap.
        if self.cfg.split && self.benefit_streak >= self.cfg.estimate_streak {
            let cfg = ops.machine().config();
            let dl = cfg.latency_gap_ns();
            let l_fast = cfg.tier(TierId::FAST).load_ns;
            let avg_samples_hp =
                (self.win_hp_samples as f64 / self.win_hp_distinct.max(1) as f64).max(1.0);
            // Eq. 2: Ns = min((eHR − rHR) · (ΔL / L_fast) · (samples · β /
            // avg), samples / avg).
            let ns = ((ehr - rhr) * (dl / l_fast) * (samples as f64 * self.cfg.beta)
                / avg_samples_hp)
                .min(samples as f64 / avg_samples_hp)
                .floor() as usize;
            self.stats.split_requested += ns as u64;
            self.queue_top_skewed(ns);
        }

        self.win_samples = 0;
        self.win_fast = 0;
        self.win_ehr_hits = 0;
        self.win_hp_samples = 0;
        self.win_hp_distinct = 0;
        self.epoch = self.epoch.wrapping_add(1).max(1);
    }

    /// Picks the top-`n` most skewed huge pages from the bucket array built
    /// during the last cooling pass.
    fn queue_top_skewed(&mut self, n: usize) {
        let mut left = n;
        for bucket in self.skew_buckets.iter_mut().rev() {
            while left > 0 {
                let Some(vpage) = bucket.pop() else { break };
                self.split_queue.push_back(vpage);
                left -= 1;
            }
            if left == 0 {
                break;
            }
        }
    }

    /// Splinters one huge page: page-table split, zero-subpage reclaim, and
    /// metadata redistribution; hot subpages head for the fast tier, cold
    /// ones for the capacity tier (§4.3.3).
    fn do_split(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage) -> bool {
        // Validate: still huge-mapped and tracked.
        let Some((tier, PageSize::Huge)) = ops.locate(vpage) else {
            return false;
        };
        let Some(meta) = self.pages.get(vpage) else {
            return false;
        };
        if meta.size != PageSize::Huge {
            return false;
        }
        // Which subpages survive the split (never-written ones are freed).
        let written: Vec<bool> = match ops.machine().huge_entry(vpage) {
            Some(h) => (0..NR_SUBPAGES as usize)
                .map(|i| h.subpage_written(i))
                .collect(),
            None => return false,
        };
        let meta = self.pages.remove(vpage).expect("checked above");
        self.remove_from_hists(&meta);
        if ops.split_huge(vpage, true).is_err() {
            // Should not happen after validation; drop metadata consistently.
            return false;
        }
        let sub = meta.sub.as_deref().cloned().unwrap_or_default();
        for (j, &w) in written.iter().enumerate() {
            if !w {
                continue;
            }
            let child = vpage.add(j as u64);
            let count = sub.counts[j] as u64;
            let new_meta = PageMeta::new_base(count);
            let bin = new_meta.bin as usize;
            self.page_hist.add(bin, 1);
            self.base_hist.add(bin, 1);
            if self.thr.is_hot(bin) && tier != TierId::FAST {
                self.promo.push_back(child);
            } else if tier == TierId::FAST && self.thr.is_cold(bin) {
                self.demote_cold.push_back(child);
            }
            self.pages.insert(child, new_meta);
        }
        self.stats.splits += 1;
        true
    }

    /// Collapses 512 all-hot, fast-tier base pages back into one huge page.
    fn do_collapse(&mut self, ops: &mut PolicyOps<'_>, group: VirtPage) -> bool {
        // Re-validate: all subpages still base-mapped in the fast tier, hot.
        for j in 0..NR_SUBPAGES {
            let child = group.add(j);
            match (ops.locate(child), self.pages.get(child)) {
                (Some((TierId::FAST, PageSize::Base)), Some(m))
                    if self.thr.is_hot(m.bin as usize) => {}
                _ => return false,
            }
        }
        if ops.collapse_huge(group, TierId::FAST).is_err() {
            return false;
        }
        let mut sub = Box::<SubMeta>::default();
        let mut total = 0u64;
        for j in 0..NR_SUBPAGES as usize {
            let child = group.add(j as u64);
            let m = self.pages.remove(child).expect("validated above");
            self.remove_from_hists(&m);
            sub.counts[j] = m.count.min(u32::MAX as u64) as u32;
            sub.bins[j] = bin_of(subpage_hotness(sub.counts[j])) as u8;
            total += m.count;
        }
        let meta = PageMeta {
            size: PageSize::Huge,
            count: total,
            bin: bin_of(total) as u8,
            sub: Some(sub),
            epoch: 0,
            in_promo: false,
        };
        self.add_to_hists(&meta);
        self.pages.insert(group, meta);
        self.stats.collapses += 1;
        true
    }

    /// Refills the demotion candidate lists by walking the page metadata
    /// (normally they are rebuilt at each cooling; `kmigrated` re-scans the
    /// page lists when it needs victims sooner).
    fn refill_demote_lists(&mut self, ops: &mut PolicyOps<'_>) {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        for (vpage, meta) in self.pages.iter() {
            let bin = meta.bin as usize;
            if self.thr.is_hot(bin) {
                continue;
            }
            if !matches!(ops.locate(vpage), Some((TierId::FAST, _))) {
                continue;
            }
            if self.thr.is_cold(bin) {
                cold.push(vpage);
            } else {
                warm.push(vpage);
            }
        }
        ops.charge(self.pages.len() as f64 * COOL_PAGE_NS);
        self.demote_cold = cold.into();
        self.demote_warm = warm.into();
    }

    /// §8 extension: a light page-table scan gives unsampled-but-accessed
    /// pages a minimal hotness so demotion distinguishes "rarely accessed"
    /// from "never accessed" — the blind spot of pure sampling.
    fn hybrid_scan(&mut self, ops: &mut PolicyOps<'_>) {
        let mut touched: Vec<VirtPage> = Vec::new();
        memtis_tracking::ptscan::scan_and_clear(ops, |rec| {
            if rec.accessed {
                touched.push(match rec.size {
                    PageSize::Huge => rec.vpage.huge_aligned(),
                    PageSize::Base => rec.vpage,
                });
            }
        });
        for vpage in touched {
            let Some(meta) = self.pages.get_mut(vpage) else {
                continue;
            };
            if meta.count > 0 {
                continue; // Sampling already sees it.
            }
            meta.count = 1;
            let old = meta.bin as usize;
            let new = bin_of(meta.hotness());
            meta.bin = new as u8;
            let pages_4k = meta.pages_4k();
            let is_base = meta.sub.is_none();
            self.page_hist.move_pages(old, new, pages_4k);
            if is_base {
                self.base_hist.move_pages(old, new, 1);
            }
            self.stats.scan_supplements += 1;
        }
    }

    /// Demotes pages (cold first, then warm) until the fast tier regains its
    /// free-space reserve or the budget runs out. Returns bytes migrated.
    fn demote_for_space(&mut self, ops: &mut PolicyOps<'_>, need_bytes: u64, budget: u64) -> u64 {
        let mut moved = 0u64;
        let mut use_warm = false;
        loop {
            if ops.free_bytes(TierId::FAST) >= need_bytes || moved >= budget {
                break;
            }
            let candidate = if !use_warm {
                match self.demote_cold.pop_front() {
                    Some(v) => Some((v, true)),
                    None => {
                        use_warm = true;
                        continue;
                    }
                }
            } else {
                self.demote_warm.pop_front().map(|v| (v, false))
            };
            let Some((vpage, want_cold)) = candidate else {
                break;
            };
            // Validate the (possibly stale) queue entry.
            let Some(meta) = self.pages.get(vpage) else {
                ops.cancel_migration(vpage, TierId::CAPACITY);
                continue;
            };
            let bin = meta.bin as usize;
            let ok_class = if want_cold {
                self.thr.is_cold(bin)
            } else {
                !self.thr.is_hot(bin)
            };
            if !ok_class {
                ops.cancel_migration(vpage, TierId::CAPACITY);
                continue;
            }
            match ops.locate(vpage) {
                Some((TierId::FAST, size)) if size == meta.size => {}
                _ => {
                    ops.cancel_migration(vpage, TierId::CAPACITY);
                    continue;
                }
            }
            match ops.migrate(vpage, TierId::CAPACITY) {
                Ok(h) => {
                    // Committed bandwidth counts against the budget whether
                    // the copy completed in place or is still in flight.
                    moved += meta_size_bytes(meta);
                    if h.is_done() {
                        self.stats.demoted_4k += meta.pages_4k();
                    } else if let Some(id) = h.transfer_id() {
                        self.in_flight.push((vpage, id, TierId::CAPACITY));
                    }
                }
                Err(SimError::OutOfMemory { .. }) | Err(SimError::QueueFull) => break,
                Err(_) => continue,
            }
        }
        moved
    }

    /// Aborts in-flight promotions whose page is no longer hot: the copy
    /// would land a cooled page in the fast tier while burning link
    /// bandwidth that hotter transfers are queued for. Demotions are never
    /// cancelled — reclaiming fast-tier space stays worthwhile.
    fn cancel_cooled_inflight(&mut self, ops: &mut PolicyOps<'_>) {
        if !self.cfg.cancel_inflight || self.in_flight.is_empty() {
            return;
        }
        let mut keep = Vec::with_capacity(self.in_flight.len());
        for (vpage, id, dst) in std::mem::take(&mut self.in_flight) {
            let still_hot = self
                .pages
                .get(vpage)
                .is_some_and(|m| self.thr.is_hot(m.bin as usize));
            if dst == TierId::FAST && !still_hot {
                if ops.abort_transfer(id).is_some() {
                    self.stats.inflight_cancels += 1;
                }
                if let Some(meta) = self.pages.get_mut(vpage) {
                    meta.in_promo = false;
                }
            } else {
                keep.push((vpage, id, dst));
            }
        }
        self.in_flight = keep;
    }
}

fn meta_size_bytes(meta: &PageMeta) -> u64 {
    meta.size.bytes()
}

impl TieringPolicy for MemtisPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "MEMTIS",
            mechanism: "HW-based sampling",
            subpage_tracking: true,
            promotion_metric: "EMA of access frequency",
            demotion_metric: "EMA of access frequency",
            thresholding: "Memory access distribution",
            critical_path_migration: "None",
            page_size_handling: "Split based on access skew",
        }
    }

    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        vpage: VirtPage,
        size: PageSize,
        _tier: TierId,
    ) {
        let count = self.initial_count(size);
        let meta = match size {
            PageSize::Huge => PageMeta::new_huge(count),
            PageSize::Base => PageMeta::new_base(count),
        };
        self.add_to_hists(&meta);
        if let Some(old) = self.pages.insert(vpage, meta) {
            // Re-mapped over stale tracking (e.g. region reuse): drop it.
            self.remove_from_hists(&old);
        }
    }

    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, vpage: VirtPage, _size: PageSize) {
        if let Some(meta) = self.pages.remove(vpage) {
            self.remove_from_hists(&meta);
        }
    }

    fn on_access(&mut self, ops: &mut PolicyOps<'_>, access: &Access, outcome: &AccessOutcome) {
        let Some(sample) = self.sampler.observe(access, outcome) else {
            return;
        };
        ops.charge(self.cfg.sample_cost_ns);
        self.window_cpu_ns += self.cfg.sample_cost_ns;
        self.stats.samples += 1;

        let vpage = sample.vaddr.base_page();
        let (key, is_huge) = match outcome.page_size {
            PageSize::Huge => (vpage.huge_aligned(), true),
            PageSize::Base => (vpage, false),
        };
        if let Some(meta) = self.pages.get_mut(key) {
            meta.count += 1;
            let old_bin = meta.bin as usize;
            let new_bin = bin_of(meta.hotness());
            meta.bin = new_bin as u8;
            let pages_4k = meta.pages_4k();

            let mut base_move: Option<(usize, usize)> = None;
            if is_huge {
                if let Some(sub) = meta.sub.as_mut() {
                    let j = vpage.subpage_index();
                    sub.counts[j] = sub.counts[j].saturating_add(1);
                    let nb = bin_of(subpage_hotness(sub.counts[j]));
                    let ob = sub.bins[j] as usize;
                    sub.bins[j] = nb as u8;
                    if ob != nb {
                        base_move = Some((ob, nb));
                    }
                }
            } else if old_bin != new_bin {
                base_move = Some((old_bin, new_bin));
            }
            // eHR: would this 4 KiB page hit if only base pages were used?
            let sampled_base_bin = if is_huge {
                meta.sub
                    .as_ref()
                    .map(|s| s.bins[vpage.subpage_index()] as usize)
            } else {
                Some(new_bin)
            };
            self.page_hist.move_pages(old_bin, new_bin, pages_4k);
            if let Some((a, b)) = base_move {
                self.base_hist.move_pages(a, b, 1);
            }
            if let Some(bb) = sampled_base_bin {
                if bb >= self.base_thr.hot {
                    self.win_ehr_hits += 1;
                }
            }
            // Promotion candidates: hot pages currently in the capacity tier.
            let meta = self.pages.get_mut(key).expect("present");
            if self.thr.is_hot(new_bin) && outcome.tier != TierId::FAST && !meta.in_promo {
                meta.in_promo = true;
                self.promo.push_back(key);
            }
            if is_huge {
                self.win_hp_samples += 1;
                let meta = self.pages.get_mut(key).expect("present");
                if meta.epoch != self.epoch {
                    meta.epoch = self.epoch;
                    self.win_hp_distinct += 1;
                }
            }
        }

        // rHR: did the sampled access land in the fast tier? (§4.3.1)
        self.win_samples += 1;
        if outcome.tier == TierId::FAST {
            self.win_fast += 1;
        }

        // Event-count clocks.
        self.since_adapt += 1;
        self.since_cool += 1;
        self.since_control += 1;

        if self.since_adapt >= self.cfg.adapt_interval {
            self.since_adapt = 0;
            self.run_adaptation(ops, ThresholdCause::Periodic);
        }
        if self.since_cool >= self.cfg.cooling_interval {
            self.since_cool = 0;
            self.run_cooling(ops);
        }
        // Benefit estimation once enough records accumulated: a quarter of
        // the allocated pages, floored for small runs (§4.3.1).
        let rss_pages = ops.machine().rss_bytes() / 4096;
        let trigger =
            (rss_pages / self.cfg.estimate_rss_divisor.max(1)).max(self.cfg.min_estimate_samples);
        if self.win_samples >= trigger {
            self.run_estimation(ops);
        }
        // Dynamic period control (§4.1.1).
        if self.since_control >= self.cfg.control_interval {
            self.since_control = 0;
            let now = ops.now_ns();
            let elapsed = now - self.last_control_ns;
            if elapsed > 0.0 {
                let usage = self.window_cpu_ns / elapsed;
                self.controller.update(usage, &mut self.sampler);
                self.stats.cpu_usage_ema = self.controller.usage_ema();
                self.stats
                    .period_series
                    .push((now, self.sampler.load_period()));
                ops.emit(EventKind::SampleBatch {
                    samples: self.cfg.control_interval,
                    load_period: self.sampler.load_period(),
                    cpu_usage: self.stats.cpu_usage_ema,
                });
            }
            self.last_control_ns = now;
            self.window_cpu_ns = 0.0;
        }
    }

    /// `on_access` only filters through the PEBS sampler, updates policy
    /// bookkeeping, and *reads* the machine (RSS for the estimation
    /// trigger, tier occupancy during cooling) — all mutation happens in
    /// `tick`. That satisfies the deferral contract.
    fn batch_safe(&self) -> bool {
        true
    }

    /// PEBS programs two events — LLC-miss loads and retired stores — so an
    /// LLC-hit load can never produce a sample ([`PebsSampler::observe`]
    /// returns without touching a counter) and its record would only be
    /// scanned and discarded by [`MemtisPolicy::on_access_batch`]. Waive it.
    fn batch_record_filter(&self) -> RecordFilter {
        RecordFilter {
            llc_hit_loads: false,
            ..RecordFilter::ALL
        }
    }

    /// Geometric skip-sampling over a deferred batch: with the paper's
    /// periods (1/200 LLC-miss loads, 1/100,000 stores) >99% of accesses
    /// never produce a sample, so instead of running the sampler's counter
    /// arithmetic per access, scan each run for the event at the firing
    /// distance, bulk-skip the non-firing prefix in O(1), and deliver only
    /// the firing event through the full per-sample path. The distances are
    /// recomputed after every delivered sample because sample processing
    /// can reconfigure the periods (dynamic period control, §4.1.1).
    fn on_access_batch(&mut self, ops: &mut PolicyOps<'_>, batch: &[AccessRecord]) {
        let mut i = 0;
        while i < batch.len() {
            let until_load = self.sampler.load_events_until_sample();
            let until_store = self.sampler.store_events_until_sample();
            let mut loads = 0u64;
            let mut stores = 0u64;
            let mut fire: Option<usize> = None;
            for (k, rec) in batch[i..].iter().enumerate() {
                match rec.access.kind {
                    AccessKind::Load if rec.outcome.llc_miss => {
                        loads += 1;
                        if loads == until_load {
                            fire = Some(k);
                            break;
                        }
                    }
                    AccessKind::Store => {
                        stores += 1;
                        if stores == until_store {
                            fire = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match fire {
                Some(k) => {
                    let rec = &batch[i + k];
                    let (fired_loads, fired_stores) = match rec.access.kind {
                        AccessKind::Load => (1, 0),
                        AccessKind::Store => (0, 1),
                    };
                    self.sampler
                        .skip(loads - fired_loads, stores - fired_stores);
                    ops.set_now(rec.now_ns);
                    self.on_access(ops, &rec.access, &rec.outcome);
                    i += k + 1;
                }
                None => {
                    self.sampler.skip(loads, stores);
                    break;
                }
            }
        }
    }

    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        self.tick_count = self.tick_count.wrapping_add(1);
        if self.cfg.hybrid_scan_every_ticks > 0
            && self
                .tick_count
                .is_multiple_of(self.cfg.hybrid_scan_every_ticks)
        {
            self.hybrid_scan(ops);
        }
        self.cancel_cooled_inflight(ops);
        let mut budget = self.cfg.migrate_batch_bytes;

        // Fast-tier kmigrated: restore the free-space reserve (§4.2.3).
        let reserve = (ops.capacity_bytes(TierId::FAST) as f64 * self.cfg.free_reserve_frac) as u64;
        let need_space = ops.free_bytes(TierId::FAST) < reserve
            || self
                .promo
                .front()
                .is_some_and(|_| ops.free_bytes(TierId::FAST) < HUGE_PAGE_SIZE);
        self.ticks_since_refill = self.ticks_since_refill.saturating_add(1);
        if need_space
            && self.demote_cold.is_empty()
            && self.demote_warm.is_empty()
            && self.ticks_since_refill >= 8
        {
            // Rate-limited: the page-list walk is O(pages) and kmigrated
            // would not rescan on every wakeup.
            self.ticks_since_refill = 0;
            self.refill_demote_lists(ops);
        }
        if ops.free_bytes(TierId::FAST) < reserve {
            let moved = self.demote_for_space(ops, reserve, budget);
            budget = budget.saturating_sub(moved);
        }

        // Page-size daemon: splits, then conservative collapses.
        for _ in 0..self.cfg.max_splits_per_tick {
            let Some(vpage) = self.split_queue.pop_front() else {
                break;
            };
            self.do_split(ops, vpage);
        }
        for _ in 0..self.cfg.max_collapses_per_tick {
            let Some(group) = self.collapse_queue.pop_front() else {
                break;
            };
            self.do_collapse(ops, group);
        }

        // Capacity-tier kmigrated: promote hot pages while space remains.
        while budget > 0 {
            let Some(vpage) = self.promo.pop_front() else {
                break;
            };
            let Some(meta) = self.pages.get_mut(vpage) else {
                ops.cancel_migration(vpage, TierId::FAST);
                continue;
            };
            meta.in_promo = false;
            let bin = meta.bin as usize;
            let size = meta.size;
            if !self.thr.is_hot(bin) {
                ops.cancel_migration(vpage, TierId::FAST);
                continue;
            }
            match ops.locate(vpage) {
                Some((t, s)) if t != TierId::FAST && s == size => {}
                _ => {
                    ops.cancel_migration(vpage, TierId::FAST);
                    continue;
                }
            }
            // Make room if needed (demote cold, then warm).
            if ops.free_bytes(TierId::FAST) < size.bytes() {
                let moved = self.demote_for_space(ops, size.bytes().max(reserve), budget);
                budget = budget.saturating_sub(moved);
                if ops.free_bytes(TierId::FAST) < size.bytes() {
                    // Could not secure space: re-queue and stop promoting.
                    let meta = self.pages.get_mut(vpage).expect("present");
                    meta.in_promo = true;
                    self.promo.push_front(vpage);
                    break;
                }
            }
            // Hotter pages win the migration link first: the histogram bin
            // is the arbitration priority.
            let priority = bin.min(u8::MAX as usize) as u8;
            match ops.enqueue_migration(vpage, TierId::FAST, priority) {
                Ok(h) => {
                    if h.is_done() {
                        let pages = match size {
                            PageSize::Huge => NR_SUBPAGES,
                            PageSize::Base => 1,
                        };
                        self.stats.promoted_4k += pages;
                    } else if let Some(id) = h.transfer_id() {
                        // Keep the page flagged until the transfer ends so
                        // samples don't re-enqueue it meanwhile.
                        let meta = self.pages.get_mut(vpage).expect("present");
                        meta.in_promo = true;
                        self.in_flight.push((vpage, id, TierId::FAST));
                    }
                    budget = budget.saturating_sub(size.bytes());
                }
                Err(SimError::OutOfMemory { .. }) | Err(SimError::QueueFull) => {
                    let meta = self.pages.get_mut(vpage).expect("present");
                    meta.in_promo = true;
                    self.promo.push_front(vpage);
                    break;
                }
                Err(_) => continue,
            }
        }
    }

    fn on_transfer_end(&mut self, ops: &mut PolicyOps<'_>, end: &TransferEnd) {
        let Some(idx) = self.in_flight.iter().position(|&(_, id, _)| id == end.id) else {
            return;
        };
        let (vpage, _, dst) = self.in_flight.swap_remove(idx);
        if dst == TierId::FAST {
            if let Some(meta) = self.pages.get_mut(vpage) {
                meta.in_promo = false;
            }
        }
        if end.aborted.is_none() {
            let pages = match end.size {
                PageSize::Huge => NR_SUBPAGES,
                PageSize::Base => 1,
            };
            if end.to == TierId::FAST {
                self.stats.promoted_4k += pages;
            } else {
                self.stats.demoted_4k += pages;
            }
        } else if dst == TierId::FAST {
            // Aborted promotion (dirty re-copy exhaustion, forced fault, …):
            // if the page is still hot and still on the capacity tier, retry
            // on a later tick rather than losing it until the next sample.
            let still_hot = self
                .pages
                .get(vpage)
                .is_some_and(|m| self.thr.is_hot(m.bin as usize));
            let still_remote = ops
                .locate(vpage)
                .is_some_and(|(tier, _)| tier != TierId::FAST);
            if still_hot && still_remote {
                let meta = self.pages.get_mut(vpage).expect("present");
                if !meta.in_promo {
                    meta.in_promo = true;
                    self.promo.push_back(vpage);
                    self.stats.abort_retries += 1;
                }
            }
        }
    }

    fn timeline(&self, out: &mut Vec<(&'static str, f64)>) {
        let hot = self.page_hist.bytes_at_or_above(self.thr.hot);
        let warm = self
            .page_hist
            .bytes_at_or_above(self.thr.warm)
            .saturating_sub(hot);
        let total = self.page_hist.total_pages() * 4096;
        let cold = total.saturating_sub(hot + warm);
        out.push(("hot_bytes", hot as f64));
        out.push(("warm_bytes", warm as f64));
        out.push(("cold_bytes", cold as f64));
        out.push(("rhr", self.stats.last_rhr));
        out.push(("ehr", self.stats.last_ehr));
        out.push(("splits", self.stats.splits as f64));
        out.push(("load_period", self.sampler.load_period() as f64));
        let active = self.page_hist.bins().iter().filter(|&&b| b > 0).count();
        out.push(("hist_active_bins", active as f64));
        out.push(("sampling_cpu", self.stats.cpu_usage_ema));
    }

    fn histogram_bins(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(self.page_hist.bins());
    }

    fn hist_underflows(&self) -> u64 {
        self.page_hist.underflows() + self.base_hist.underflows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    fn test_cfg() -> MemtisConfig {
        MemtisConfig {
            load_period: 1,
            store_period: 1,
            adapt_interval: 200,
            cooling_interval: 4_000,
            min_estimate_samples: 500,
            control_interval: 1_000,
            sample_cost_ns: 1.0,
            migrate_batch_bytes: 64 << 20,
            ..MemtisConfig::sim_scaled()
        }
    }

    fn ops_env() -> (Machine, CostAccounting) {
        let m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            32 * HUGE_PAGE_SIZE,
        ));
        (m, CostAccounting::default())
    }

    #[test]
    fn alloc_and_free_keep_histograms_consistent() {
        let (mut m, mut acct) = ops_env();
        let mut p = MemtisPolicy::new(test_cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Base, TierId::FAST)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::FAST);
            p.on_alloc(&mut ops, VirtPage(512), PageSize::Base, TierId::FAST);
        }
        assert_eq!(p.histogram().total_pages(), 513);
        assert_eq!(p.base_histogram().total_pages(), 513);
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_free(&mut ops, VirtPage(0), PageSize::Huge);
        }
        assert_eq!(p.histogram().total_pages(), 1);
        assert_eq!(p.base_histogram().total_pages(), 1);
    }

    #[test]
    fn samples_move_pages_up_the_histogram() {
        let (mut m, mut acct) = ops_env();
        let mut p = MemtisPolicy::new(test_cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        let bin0 = p.page_meta(VirtPage(0)).unwrap().bin;
        for i in 0..100u64 {
            let a = Access::load((i % 512) * 4096);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64);
            p.on_access(&mut ops, &a, &out);
        }
        let meta = p.page_meta(VirtPage(0)).unwrap();
        assert!(meta.count >= 50, "count {}", meta.count);
        assert!(meta.bin >= bin0);
        // Subpage counters track which 4 KiB pages were touched.
        let sub = meta.sub.as_ref().unwrap();
        assert!(sub.counts.iter().filter(|&&c| c > 0).count() > 50);
        // Hot capacity-tier page lands on the promotion list.
        assert!(p.promo.iter().any(|&v| v == VirtPage(0)) || meta.in_promo);
    }

    #[test]
    fn tick_promotes_hot_capacity_pages() {
        let (mut m, mut acct) = ops_env();
        let mut p = MemtisPolicy::new(test_cfg());
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        for i in 0..400u64 {
            let a = Access::load((i % 512) * 4096);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64 * 100.0);
            p.on_access(&mut ops, &a, &out);
        }
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1e6);
            p.tick(&mut ops);
        }
        assert_eq!(m.locate(VirtPage(0)), Some((TierId::FAST, PageSize::Huge)));
        assert!(p.stats.promoted_4k >= 512);
    }

    #[test]
    fn cooling_halves_counts_and_corrects_bins() {
        let (mut m, mut acct) = ops_env();
        let mut cfg = test_cfg();
        cfg.cooling_interval = 1_000_000; // Trigger manually.
        let mut p = MemtisPolicy::new(cfg);
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Base, TierId::FAST);
        }
        for i in 0..64u64 {
            let a = Access::load(0);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64);
            p.on_access(&mut ops, &a, &out);
        }
        let before = p.page_meta(VirtPage(0)).unwrap().count;
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1e5);
            p.run_cooling(&mut ops);
        }
        let meta = p.page_meta(VirtPage(0)).unwrap();
        assert_eq!(meta.count, before / 2);
        assert_eq!(meta.bin as usize, bin_of(meta.hotness()));
        assert_eq!(p.histogram().total_pages(), 1);
        assert_eq!(p.stats.coolings, 1);
    }

    #[test]
    fn skewed_huge_page_gets_split_and_bloat_reclaimed() {
        let (mut m, mut acct) = ops_env();
        let mut cfg = test_cfg();
        cfg.min_estimate_samples = 1_000_000; // Drive estimation manually.
        let mut p = MemtisPolicy::new(cfg);
        // A skewed huge page in the capacity tier: only 8 subpages written
        // and hammered; plus a dense hot huge page filling the fast tier.
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        for i in 0..800u64 {
            // Stores always qualify for PEBS sampling (retired stores),
            // unlike loads which must miss the LLC. Concentrate most
            // accesses on two subpages with a lightly-touched tail — a
            // contrasting skew profile like a hot record in a hash page.
            let sub = if i % 10 < 9 { 0 } else { 1 + (i % 7) };
            let a = Access::store(sub * 4096 + (i * 64) % 4096);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64 * 50.0);
            p.on_access(&mut ops, &a, &out);
        }
        // Build the skew buckets (cooling) and force a split of the page.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1e5);
            p.run_cooling(&mut ops);
        }
        let skew_total: usize = p.skew_buckets.iter().map(Vec::len).sum();
        assert!(skew_total >= 1, "skewed page should be bucketed");
        p.queue_top_skewed(1);
        let rss_before = m.rss_bytes();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 2e5);
            p.tick(&mut ops);
        }
        assert_eq!(p.stats.splits, 1);
        // 504 never-written subpages reclaimed.
        assert_eq!(m.rss_bytes(), rss_before - 504 * 4096);
        // Hot survivors are tracked as base pages.
        let meta = p.page_meta(VirtPage(0)).unwrap();
        assert_eq!(meta.size, PageSize::Base);
        assert_eq!(p.histogram().total_pages(), 8);
        // And queued for promotion to the fast tier.
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 3e5);
            p.tick(&mut ops);
        }
        assert_eq!(m.locate(VirtPage(0)), Some((TierId::FAST, PageSize::Base)));
    }

    #[test]
    fn demotion_restores_free_reserve() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            2 * HUGE_PAGE_SIZE,
            32 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let mut p = MemtisPolicy::new(test_cfg());
        // Fill the fast tier completely with two huge pages.
        for i in 0..2u64 {
            m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::FAST)
                .unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(i * 512), PageSize::Huge, TierId::FAST);
        }
        assert_eq!(m.free_bytes(TierId::FAST), 0);
        // Cool twice so the untouched pages decay to cold bins and the
        // demotion lists are rebuilt.
        for c in 0..6 {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, c as f64 * 1e5);
            p.run_cooling(&mut ops);
        }
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1e6);
            p.tick(&mut ops);
        }
        assert!(
            m.free_bytes(TierId::FAST) >= HUGE_PAGE_SIZE,
            "demotion should free at least one huge page"
        );
        assert!(p.stats.demoted_4k >= 512);
    }

    /// Builds a bandwidth-limited machine and a policy with one hot huge
    /// page in the capacity tier whose promotion is in flight after a tick.
    fn inflight_promo_env(cfg: MemtisConfig) -> (Machine, CostAccounting, MemtisPolicy) {
        let mut mc = MachineConfig::dram_nvm(4 * HUGE_PAGE_SIZE, 32 * HUGE_PAGE_SIZE);
        mc.migration.bandwidth_limit = Some(1.0); // 2 MiB takes ~2 ms.
        let mut m = Machine::new(mc);
        let mut acct = CostAccounting::default();
        let mut p = MemtisPolicy::new(cfg);
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(0), PageSize::Huge, TierId::CAPACITY);
        }
        for i in 0..400u64 {
            let a = Access::load((i % 512) * 4096);
            let out = m.access(a).unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, i as f64 * 100.0);
            p.on_access(&mut ops, &a, &out);
        }
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1e5);
            p.tick(&mut ops);
        }
        (m, acct, p)
    }

    #[test]
    fn bandwidth_limited_promotion_stays_in_flight_until_reported() {
        let (mut m, mut acct, mut p) = inflight_promo_env(test_cfg());
        // The promotion was admitted, not completed: the page still reads
        // from the capacity tier and the policy tracks the transfer.
        assert_eq!(p.in_flight.len(), 1);
        assert_eq!(p.stats.promoted_4k, 0);
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
        assert!(p.page_meta(VirtPage(0)).unwrap().in_promo);
        // Drain the copy and deliver the terminal records like the driver.
        let events = m.pump_transfers(1e10);
        let ends: Vec<TransferEnd> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::Ended(end) => Some(*end),
                _ => None,
            })
            .collect();
        assert_eq!(ends.len(), 1);
        for end in &ends {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 1e10);
            p.on_transfer_end(&mut ops, end);
        }
        assert!(p.in_flight.is_empty());
        assert_eq!(p.stats.promoted_4k, 512);
        assert!(!p.page_meta(VirtPage(0)).unwrap().in_promo);
        assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::FAST);
    }

    #[test]
    fn cooled_inflight_promotion_is_cancelled_unless_ablated() {
        for (cancel, expect_cancels) in [(true, 1u64), (false, 0u64)] {
            let cfg = if cancel {
                test_cfg()
            } else {
                test_cfg().without_inflight_cancel()
            };
            let (mut m, mut acct, mut p) = inflight_promo_env(cfg);
            assert_eq!(p.in_flight.len(), 1);
            // Cool the page below the hot threshold, then tick: the cancel
            // sweep runs before any new migration work.
            let bin = p.page_meta(VirtPage(0)).unwrap().bin as usize;
            p.thr.hot = bin + 1;
            assert!(!p.thresholds().is_hot(bin), "page must have cooled");
            {
                let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 3e5);
                p.tick(&mut ops);
            }
            assert_eq!(p.stats.inflight_cancels, expect_cancels);
            if cancel {
                assert!(p.in_flight.is_empty());
                assert_eq!(m.stats.migration.aborted, 1);
                assert!(!p.page_meta(VirtPage(0)).unwrap().in_promo);
                // The page never reaches the fast tier.
                let _ = m.pump_transfers(1e10);
                assert_eq!(m.locate(VirtPage(0)).unwrap().0, TierId::CAPACITY);
            } else {
                // Ablation: the stale transfer keeps burning the link and
                // eventually lands the cooled page in the fast tier.
                assert_eq!(p.in_flight.len(), 1);
                assert_eq!(m.stats.migration.aborted, 0);
            }
        }
    }

    #[test]
    fn descriptor_matches_table1_row() {
        let p = MemtisPolicy::new(MemtisConfig::default());
        let d = p.descriptor();
        assert_eq!(d.name, "MEMTIS");
        assert!(d.subpage_tracking);
        assert_eq!(d.critical_path_migration, "None");
    }
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use memtis_sim::prelude::*;

    /// §8 extension: the hybrid scan gives never-sampled-but-accessed pages
    /// a minimal hotness, separating them from truly idle pages.
    #[test]
    fn hybrid_scan_supplements_unsampled_pages() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            16 * HUGE_PAGE_SIZE,
        ));
        let mut acct = CostAccounting::default();
        let cfg = MemtisConfig {
            load_period: 1_000_000, // Sampling effectively off.
            store_period: 1_000_000,
            hybrid_scan_every_ticks: 1,
            ..MemtisConfig::sim_scaled()
        };
        let mut p = MemtisPolicy::new(cfg);
        for i in 0..2u64 {
            m.alloc_and_map(VirtPage(i * 512), PageSize::Huge, TierId::FAST)
                .unwrap();
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            p.on_alloc(&mut ops, VirtPage(i * 512), PageSize::Huge, TierId::FAST);
        }
        // Cool until both pages decay to zero hotness.
        for c in 0..4 {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, c as f64);
            p.run_cooling(&mut ops);
        }
        assert_eq!(p.page_meta(VirtPage(0)).unwrap().count, 0);
        // Touch only page 0; the sampler misses it (period 1M) but the
        // hybrid scan catches the accessed bit.
        m.access(Access::load(0)).unwrap();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 10.0);
            p.tick(&mut ops);
        }
        assert_eq!(p.stats.scan_supplements, 1);
        let touched = p.page_meta(VirtPage(0)).unwrap();
        let idle = p.page_meta(VirtPage(512)).unwrap();
        assert!(touched.count > idle.count);
        assert!(touched.bin >= idle.bin);
    }

    /// The extension is off by default, exactly as in the paper.
    #[test]
    fn hybrid_scan_disabled_by_default() {
        assert_eq!(MemtisConfig::default().hybrid_scan_every_ticks, 0);
        assert_eq!(MemtisConfig::sim_scaled().hybrid_scan_every_ticks, 0);
        let on = MemtisConfig::sim_scaled().with_hybrid_scan(8);
        assert_eq!(on.hybrid_scan_every_ticks, 8);
    }
}
