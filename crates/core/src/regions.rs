//! Region-indexed dense page-metadata table.
//!
//! [`MemtisPolicy`](crate::policy::MemtisPolicy) used to key every
//! [`PageMeta`] by `VirtPage` in one big hash map, which made the
//! per-sample lookup a full hash probe and the cooling/skewness pass a
//! pointer-chasing walk in hash order. This table instead indexes by
//! *huge-page region* (`vpn >> 9`): a small hash map resolves the region to
//! a slab, and the slab holds a dense 512-slot subpage array. The effects:
//!
//! - the per-sample hot path hashes the region (not the page) and usually
//!   skips even that via a one-entry last-region cache — consecutive PEBS
//!   samples overwhelmingly land in the same 2 MiB region;
//! - cooling, demotion-list refill, and skewness selection become
//!   contiguous scans over slab arrays in sorted region order;
//! - collapse-candidate detection needs no auxiliary grouping map: the base
//!   pages of a 2 MiB region already sit in one slab.
//!
//! Iteration order is *sorted by virtual page number*, which is fully
//! deterministic regardless of insertion/removal history (the old map was
//! merely deterministic for identical operation sequences).

use crate::meta::PageMeta;
use memtis_sim::prelude::{DetHashMap, VirtPage, NR_SUBPAGES};
use std::cell::Cell;

/// Sentinel region number for the empty last-region cache and freed slabs.
const NO_REGION: u64 = u64::MAX;

/// One 2 MiB region worth of metadata: a dense subpage array.
///
/// A region tracking a huge page stores its meta at the slot of the huge
/// page's (aligned) base vpn; a region tracking base pages uses one slot
/// per 4 KiB page. The distinction lives in [`PageMeta::size`], exactly as
/// it did under the flat map.
#[derive(Debug)]
struct RegionSlab {
    /// Region number (`vpn >> 9`), or [`NO_REGION`] when on the free list.
    region: u64,
    /// Number of `Some` slots.
    live: u32,
    /// Per-subpage metadata, indexed by `vpn & 511`.
    slots: Box<[Option<PageMeta>]>,
}

impl RegionSlab {
    fn new(region: u64) -> Self {
        RegionSlab {
            region,
            live: 0,
            slots: (0..NR_SUBPAGES).map(|_| None).collect(),
        }
    }
}

/// Dense per-region page-metadata table (drop-in for the flat hash map).
#[derive(Debug, Default)]
pub struct RegionTable {
    /// Region number → slab index.
    index: DetHashMap<u64, u32>,
    /// Slab storage; slabs never move once allocated (freed ones are
    /// recycled via `free`), so cached slab indices stay valid.
    slabs: Vec<RegionSlab>,
    /// Recycled slab indices.
    free: Vec<u32>,
    /// Total live entries across all slabs.
    len: usize,
    /// One-entry last-region cache: `(region, slab index)`. A `Cell` so
    /// read-only lookups can refresh it too. Hits are validated against the
    /// slab's own region tag, so a recycled slab can never alias.
    last: Cell<(u64, u32)>,
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RegionTable {
            index: DetHashMap::default(),
            slabs: Vec::new(),
            free: Vec::new(),
            len: 0,
            last: Cell::new((NO_REGION, 0)),
        }
    }

    /// Number of tracked pages (live entries, not regions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolves a region number to its slab index, consulting the
    /// last-region cache first.
    #[inline]
    fn slab_of(&self, region: u64) -> Option<u32> {
        let (r, i) = self.last.get();
        if r == region && self.slabs[i as usize].region == region {
            return Some(i);
        }
        let i = *self.index.get(&region)?;
        self.last.set((region, i));
        Some(i)
    }

    /// Looks up the metadata for `vpage`.
    #[inline]
    pub fn get(&self, vpage: VirtPage) -> Option<&PageMeta> {
        let i = self.slab_of(vpage.0 >> 9)?;
        self.slabs[i as usize].slots[(vpage.0 & 511) as usize].as_ref()
    }

    /// Looks up the metadata for `vpage`, mutably.
    #[inline]
    pub fn get_mut(&mut self, vpage: VirtPage) -> Option<&mut PageMeta> {
        let i = self.slab_of(vpage.0 >> 9)?;
        self.slabs[i as usize].slots[(vpage.0 & 511) as usize].as_mut()
    }

    /// Inserts metadata for `vpage`, returning any previous entry.
    pub fn insert(&mut self, vpage: VirtPage, meta: PageMeta) -> Option<PageMeta> {
        let region = vpage.0 >> 9;
        let i = match self.slab_of(region) {
            Some(i) => i,
            None => {
                let i = match self.free.pop() {
                    Some(i) => {
                        self.slabs[i as usize].region = region;
                        i
                    }
                    None => {
                        self.slabs.push(RegionSlab::new(region));
                        (self.slabs.len() - 1) as u32
                    }
                };
                self.index.insert(region, i);
                self.last.set((region, i));
                i
            }
        };
        let slot = &mut self.slabs[i as usize].slots[(vpage.0 & 511) as usize];
        let old = slot.replace(meta);
        if old.is_none() {
            self.slabs[i as usize].live += 1;
            self.len += 1;
        }
        old
    }

    /// Removes and returns the metadata for `vpage`. An emptied region's
    /// slab goes on the free list for recycling.
    pub fn remove(&mut self, vpage: VirtPage) -> Option<PageMeta> {
        let region = vpage.0 >> 9;
        let i = self.slab_of(region)?;
        let slab = &mut self.slabs[i as usize];
        let old = slab.slots[(vpage.0 & 511) as usize].take()?;
        slab.live -= 1;
        self.len -= 1;
        if slab.live == 0 {
            slab.region = NO_REGION;
            self.index.remove(&region);
            self.free.push(i);
            self.last.set((NO_REGION, 0));
        }
        Some(old)
    }

    /// Live region numbers in ascending order — the deterministic scan
    /// order for cooling and demotion-list refill.
    pub fn regions_sorted(&self) -> Vec<u64> {
        let mut regions: Vec<u64> = self.index.keys().copied().collect();
        regions.sort_unstable();
        regions
    }

    /// Live region numbers owned by lane `lane` of a `num_lanes`-way
    /// partition, in ascending order. The lane partition matches the
    /// simulator's sharded execution exactly (`memtis_sim::shard::lane_of`
    /// maps each 2 MiB region to one of 64 canonical lanes, which are
    /// reduced modulo `num_lanes` here), so a per-lane scan visits exactly
    /// the metadata a shard owns, and concatenating lanes `0..num_lanes`
    /// visits every region exactly once.
    pub fn regions_in_lane(&self, lane: usize, num_lanes: usize) -> Vec<u64> {
        let n = num_lanes.max(1);
        let mut regions: Vec<u64> = self
            .index
            .keys()
            .copied()
            .filter(|&r| {
                memtis_sim::shard::lane_of(memtis_sim::prelude::VirtPage(r << 9)) % n == lane % n
            })
            .collect();
        regions.sort_unstable();
        regions
    }

    /// Iterates all tracked pages in ascending virtual-page order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPage, &PageMeta)> {
        self.regions_sorted().into_iter().flat_map(move |region| {
            let i = *self.index.get(&region).expect("region just listed");
            self.slabs[i as usize]
                .slots
                .iter()
                .enumerate()
                .filter_map(move |(j, slot)| {
                    slot.as_ref()
                        .map(|m| (VirtPage((region << 9) | j as u64), m))
                })
        })
    }

    /// Runs `f` over every live entry of `region` (ascending subpage
    /// order), with mutable access. Returns the number of entries visited.
    pub fn for_each_in_region_mut(
        &mut self,
        region: u64,
        mut f: impl FnMut(VirtPage, &mut PageMeta),
    ) -> usize {
        let Some(i) = self.slab_of(region) else {
            return 0;
        };
        let slab = &mut self.slabs[i as usize];
        let mut visited = 0;
        for (j, slot) in slab.slots.iter_mut().enumerate() {
            if let Some(meta) = slot.as_mut() {
                f(VirtPage((region << 9) | j as u64), meta);
                visited += 1;
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::PageSize;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = RegionTable::new();
        assert!(t.is_empty());
        assert!(t.insert(VirtPage(513), PageMeta::new_base(3)).is_none());
        assert!(t.insert(VirtPage(0), PageMeta::new_huge(7)).is_none());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(VirtPage(513)).unwrap().count, 3);
        assert_eq!(t.get(VirtPage(0)).unwrap().size, PageSize::Huge);
        assert!(t.get(VirtPage(514)).is_none());
        assert!(t.get(VirtPage(1 << 30)).is_none());
        t.get_mut(VirtPage(513)).unwrap().count += 1;
        assert_eq!(t.remove(VirtPage(513)).unwrap().count, 4);
        assert!(t.remove(VirtPage(513)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = RegionTable::new();
        t.insert(VirtPage(42), PageMeta::new_base(1));
        let old = t.insert(VirtPage(42), PageMeta::new_base(9)).unwrap();
        assert_eq!(old.count, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(VirtPage(42)).unwrap().count, 9);
    }

    #[test]
    fn iteration_is_sorted_by_vpn() {
        let mut t = RegionTable::new();
        for vpn in [5000u64, 1, 512, 4096, 0, 513] {
            t.insert(VirtPage(vpn), PageMeta::new_base(vpn));
        }
        let order: Vec<u64> = t.iter().map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![0, 1, 512, 513, 4096, 5000]);
        let counts: Vec<u64> = t.iter().map(|(_, m)| m.count).collect();
        assert_eq!(counts, vec![0, 1, 512, 513, 4096, 5000]);
    }

    #[test]
    fn emptied_slabs_are_recycled_without_aliasing() {
        let mut t = RegionTable::new();
        t.insert(VirtPage(0), PageMeta::new_base(1));
        t.insert(VirtPage(512), PageMeta::new_base(2));
        // Warm the cache on region 0, then free it.
        assert!(t.get(VirtPage(0)).is_some());
        t.remove(VirtPage(0));
        assert_eq!(t.free.len(), 1);
        // Region 0 lookups must miss, not alias into a stale slab.
        assert!(t.get(VirtPage(0)).is_none());
        // A new region recycles the freed slab; old region still misses.
        t.insert(VirtPage(1024), PageMeta::new_base(3));
        assert_eq!(t.slabs.len(), 2);
        assert!(t.get(VirtPage(0)).is_none());
        assert_eq!(t.get(VirtPage(1024)).unwrap().count, 3);
        assert_eq!(t.get(VirtPage(512)).unwrap().count, 2);
    }

    #[test]
    fn lane_slices_partition_the_regions() {
        let mut t = RegionTable::new();
        for region in [0u64, 1, 2, 63, 64, 65, 130, 200] {
            t.insert(VirtPage(region << 9), PageMeta::new_base(region));
        }
        let num_lanes = 64;
        let mut seen = Vec::new();
        for lane in 0..num_lanes {
            let rs = t.regions_in_lane(lane, num_lanes);
            for r in &rs {
                assert_eq!(
                    memtis_sim::shard::lane_of(memtis_sim::prelude::VirtPage(r << 9)),
                    lane
                );
            }
            seen.extend(rs);
        }
        seen.sort_unstable();
        assert_eq!(seen, t.regions_sorted());
        // A single-lane partition is the full sorted scan.
        assert_eq!(t.regions_in_lane(0, 1), t.regions_sorted());
    }

    #[test]
    fn region_scan_visits_live_slots_in_order() {
        let mut t = RegionTable::new();
        for j in [9u64, 2, 511] {
            t.insert(VirtPage(1024 + j), PageMeta::new_base(j));
        }
        let mut seen = Vec::new();
        let n = t.for_each_in_region_mut(2, |v, m| {
            m.count += 100;
            seen.push(v.0);
        });
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1026, 1033, 1535]);
        assert_eq!(t.get(VirtPage(1026)).unwrap().count, 102);
        assert_eq!(t.for_each_in_region_mut(7, |_, _| {}), 0);
    }
}
