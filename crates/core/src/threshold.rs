//! Dynamic threshold adaptation — the paper's Algorithm 1 (§4.2.1).
//!
//! Walk the histogram top-down, accumulating bins while they still fit in
//! the fast tier; `T_hot` is the first bin index that no longer fits, plus
//! one. If the identified hot set fills at least `α` (0.9) of the fast tier,
//! the warm threshold equals the hot threshold; otherwise a warm band one
//! bin below the hot threshold shields near-hot pages from demotion,
//! avoiding ping-pong migration traffic. `T_cold` sits one bin below
//! `T_warm`.

use crate::histogram::{AccessHistogram, MAX_BIN};

/// The three classification thresholds, as histogram bin indices.
///
/// A page with bin index `B` is *hot* when `B >= hot`, *cold* when
/// `B <= cold`, and *warm* in between. `hot` may be `MAX_BIN + 1` when even
/// the top bin alone overflows the fast tier (then no page classifies as
/// hot — the bins cannot be subdivided).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Hot threshold `T_hot`.
    pub hot: usize,
    /// Warm threshold `T_warm`.
    pub warm: usize,
    /// Cold threshold `T_cold` (0 means bin 0 is cold).
    pub cold: usize,
    /// Size (bytes) of the identified hot set at adaptation time.
    pub hot_set_bytes: u64,
}

impl Default for Thresholds {
    /// Initial values: `T_hot = 1`, `T_warm = 1`, `T_cold = 0` (§4.2.1).
    fn default() -> Self {
        Thresholds {
            hot: 1,
            warm: 1,
            cold: 0,
            hot_set_bytes: 0,
        }
    }
}

impl Thresholds {
    /// Classification helper: is bin `b` hot?
    #[inline]
    pub fn is_hot(&self, b: usize) -> bool {
        b >= self.hot
    }

    /// Classification helper: is bin `b` cold?
    #[inline]
    pub fn is_cold(&self, b: usize) -> bool {
        b <= self.cold && !self.is_hot(b)
    }

    /// Classification helper: is bin `b` warm (neither hot nor cold)?
    #[inline]
    pub fn is_warm(&self, b: usize) -> bool {
        !self.is_hot(b) && !self.is_cold(b)
    }
}

/// Runs Algorithm 1 over `hist` for a fast tier of `fast_bytes` capacity.
///
/// `alpha` is the fill-ratio knob (paper: 0.9). When `warm_set` is false the
/// warm band is disabled (`T_warm = T_hot`) regardless of fill — used by the
/// Fig. 10 ablation.
pub fn adapt(hist: &AccessHistogram, fast_bytes: u64, alpha: f64, warm_set: bool) -> Thresholds {
    // Lines 1–6: expand the hot set downward from the top bin while it fits.
    let mut s: u64 = 0;
    let mut b: isize = MAX_BIN as isize;
    while b > 0 && s + hist.bytes_in(b as usize) <= fast_bytes {
        s += hist.bytes_in(b as usize);
        b -= 1;
    }
    let hot = (b + 1) as usize;

    // Lines 7–11: the warm band exists only when the identified hot set
    // leaves a meaningful fraction of the fast tier unfilled.
    let warm = if !warm_set || s as f64 >= fast_bytes as f64 * alpha {
        hot
    } else {
        hot.saturating_sub(1)
    };
    // Line 12.
    let cold = warm.saturating_sub(1);
    Thresholds {
        hot,
        warm,
        cold,
        hot_set_bytes: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(usize, u64)]) -> AccessHistogram {
        let mut h = AccessHistogram::new();
        for &(b, pages) in pairs {
            h.add(b, pages);
        }
        h
    }

    const PAGE: u64 = 4096;

    #[test]
    fn hot_set_fills_fast_tier() {
        // Fast tier: 100 pages. Bins: 15 -> 60 pages, 14 -> 30, 13 -> 50.
        let h = hist(&[(15, 60), (14, 30), (13, 50)]);
        let t = adapt(&h, 100 * PAGE, 0.9, true);
        // 60 + 30 fit; adding bin 13 (50) would overflow.
        assert_eq!(t.hot, 14);
        assert_eq!(t.hot_set_bytes, 90 * PAGE);
        // 90 >= 0.9 * 100: hot set close enough, no warm band.
        assert_eq!(t.warm, 14);
        assert_eq!(t.cold, 13);
    }

    #[test]
    fn warm_band_appears_when_hot_set_is_small() {
        // Bin 15 has 50 pages, bin 14 has 200: only bin 15 fits in 100.
        let h = hist(&[(15, 50), (14, 200), (10, 1000)]);
        let t = adapt(&h, 100 * PAGE, 0.9, true);
        assert_eq!(t.hot, 15);
        assert_eq!(t.hot_set_bytes, 50 * PAGE);
        // 50 < 90: warm threshold drops one bin to shield near-hot pages.
        assert_eq!(t.warm, 14);
        assert_eq!(t.cold, 13);
        assert!(t.is_hot(15));
        assert!(t.is_warm(14));
        assert!(t.is_cold(13));
        assert!(t.is_cold(0));
    }

    #[test]
    fn warm_set_disabled_forces_warm_equals_hot() {
        let h = hist(&[(15, 50), (14, 200)]);
        let t = adapt(&h, 100 * PAGE, 0.9, false);
        assert_eq!(t.warm, t.hot);
        assert_eq!(t.cold, t.hot - 1);
    }

    #[test]
    fn top_bin_alone_overflowing_yields_no_hot_pages() {
        let h = hist(&[(15, 500)]);
        let t = adapt(&h, 100 * PAGE, 0.9, true);
        assert_eq!(t.hot, MAX_BIN + 1);
        assert_eq!(t.hot_set_bytes, 0);
        // No bin classifies as hot.
        assert!(!t.is_hot(15));
        assert!(t.is_warm(15));
    }

    #[test]
    fn everything_fits_down_to_bin_one() {
        let h = hist(&[(15, 10), (8, 10), (1, 10)]);
        let t = adapt(&h, 1000 * PAGE, 0.9, true);
        // The loop stops at b == 0: bin 0 never classifies as hot.
        assert_eq!(t.hot, 1);
        assert_eq!(t.hot_set_bytes, 30 * PAGE);
        assert!(!t.is_hot(0));
    }

    #[test]
    fn empty_histogram_gives_initial_like_thresholds() {
        let h = AccessHistogram::new();
        let t = adapt(&h, 100 * PAGE, 0.9, true);
        assert_eq!(t.hot, 1);
        // Empty hot set is below alpha: warm band opens (harmless).
        assert_eq!(t.warm, 0);
        assert_eq!(t.cold, 0);
    }

    #[test]
    fn default_matches_paper_initials() {
        let t = Thresholds::default();
        assert_eq!((t.hot, t.warm, t.cold), (1, 1, 0));
    }
}
