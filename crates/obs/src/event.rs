//! Typed trace events.
//!
//! Events carry plain integers (virtual page numbers as `u64`, tier ids as
//! `u8`) so this crate stays dependency-free; the simulator's newtypes are
//! unwrapped at the emission site.

/// Why a migration attempt did not move a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationFailure {
    /// Destination tier had no free frame of the required size.
    OutOfMemory,
    /// The page was not mapped (stale queue entry, already freed).
    NotMapped,
    /// The virtual page was not aligned for its mapping size.
    Unaligned,
    /// Source and destination tier were the same.
    SameTier,
    /// A queued migration was dropped at re-validation (stale candidate:
    /// page freed, reclassified, or already moved).
    Cancelled,
    /// An in-flight transfer exhausted its re-copy budget: stores kept
    /// dirtying the source page mid-copy.
    Dirty,
    /// The mapping changed under an in-flight transfer (unmap, split,
    /// collapse, or re-allocation), invalidating the copied data.
    Superseded,
    /// Any other simulator error.
    Other,
}

impl MigrationFailure {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationFailure::OutOfMemory => "out_of_memory",
            MigrationFailure::NotMapped => "not_mapped",
            MigrationFailure::Unaligned => "unaligned",
            MigrationFailure::SameTier => "same_tier",
            MigrationFailure::Cancelled => "cancelled",
            MigrationFailure::Dirty => "dirty",
            MigrationFailure::Superseded => "superseded",
            MigrationFailure::Other => "other",
        }
    }
}

/// What a fault-injection plan perturbed (see `memtis-sim`'s `faults`
/// module). Carried by [`EventKind::FaultInjected`] so chaos runs leave an
/// auditable record of every perturbation in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An in-flight transfer was forcibly aborted.
    ForcedAbort,
    /// A dirty store was injected into an active copy pass.
    InjectedDirty,
    /// A migration link went down for a window (bandwidth lost).
    LinkOutage,
    /// A PEBS sample was dropped before the policy saw it.
    SampleDrop,
    /// A PEBS sample was delivered twice.
    SampleDup,
    /// A `kmigrated` wakeup was skipped outright.
    TickSkip,
    /// A `kmigrated` wakeup was delayed.
    TickDelay,
    /// A tier-capacity pressure spike began (frames stolen).
    PressureSpike,
    /// A pressure spike ended (stolen frames released).
    PressureRelease,
}

impl FaultKind {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ForcedAbort => "forced_abort",
            FaultKind::InjectedDirty => "injected_dirty",
            FaultKind::LinkOutage => "link_outage",
            FaultKind::SampleDrop => "sample_drop",
            FaultKind::SampleDup => "sample_dup",
            FaultKind::TickSkip => "tick_skip",
            FaultKind::TickDelay => "tick_delay",
            FaultKind::PressureSpike => "pressure_spike",
            FaultKind::PressureRelease => "pressure_release",
        }
    }
}

/// What triggered a TLB shootdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShootdownCause {
    /// Page migration remapped the page.
    Migration,
    /// A huge page was split into base pages.
    Split,
    /// Base pages were collapsed into a huge page.
    Collapse,
    /// The workload unmapped the page.
    Unmap,
}

impl ShootdownCause {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            ShootdownCause::Migration => "migration",
            ShootdownCause::Split => "split",
            ShootdownCause::Collapse => "collapse",
            ShootdownCause::Unmap => "unmap",
        }
    }
}

/// What triggered a threshold recomputation (MEMTIS Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdCause {
    /// The periodic adaptation interval elapsed.
    Periodic,
    /// A cooling pass shifted the histogram, so thresholds follow.
    Cooling,
}

impl ThresholdCause {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            ThresholdCause::Periodic => "periodic",
            ThresholdCause::Cooling => "cooling",
        }
    }
}

/// One traced occurrence in the tiering substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A page moved toward the fast tier.
    Promotion {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Source tier id.
        from: u8,
        /// Destination tier id.
        to: u8,
        /// Bytes copied.
        bytes: u64,
    },
    /// A page moved away from the fast tier.
    Demotion {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Source tier id.
        from: u8,
        /// Destination tier id.
        to: u8,
        /// Bytes copied.
        bytes: u64,
    },
    /// A huge page was split into base pages.
    Split {
        /// Virtual page number of the huge page head.
        vpage: u64,
        /// Tier the page resided on.
        tier: u8,
        /// Never-written subpages unmapped and freed during the split.
        zero_subpages_freed: u32,
    },
    /// 512 base pages were collapsed into one huge page.
    Collapse {
        /// Virtual page number of the new huge page head.
        vpage: u64,
        /// Tier the huge page was allocated on.
        tier: u8,
    },
    /// A histogram cooling pass ran (counts halved, bins shifted).
    CoolingTick {
        /// 4 KiB page-equivalents visited by the cooling walk.
        visited_4k: u64,
        /// Hot-threshold bin after the pass.
        hot_threshold: u32,
        /// Warm-threshold bin after the pass.
        warm_threshold: u32,
    },
    /// Thresholds were recomputed from the access distribution.
    ThresholdRecompute {
        /// What triggered the recomputation.
        cause: ThresholdCause,
        /// New hot-threshold bin.
        hot: u32,
        /// New warm-threshold bin.
        warm: u32,
        /// New cold-threshold bin.
        cold: u32,
    },
    /// A batch of PEBS samples was processed by the sampling daemon.
    SampleBatch {
        /// Samples in the batch.
        samples: u64,
        /// Sampler load period in effect after the batch.
        load_period: u64,
        /// Smoothed sampling CPU usage (fraction of one core).
        cpu_usage: f64,
    },
    /// A TLB shootdown was performed.
    TlbShootdown {
        /// Virtual page number the shootdown targeted.
        vpage: u64,
        /// What caused the shootdown.
        cause: ShootdownCause,
    },
    /// A migration attempt failed or a queued migration was cancelled.
    MigrationFailed {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Intended destination tier id.
        to: u8,
        /// Why the page did not move.
        cause: MigrationFailure,
    },
    /// An asynchronous transfer was admitted to the migration engine.
    MigrationEnqueued {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Source tier id.
        from: u8,
        /// Destination tier id.
        to: u8,
        /// Bytes the transfer will copy.
        bytes: u64,
        /// Transfers queued behind the engine's links after admission.
        queue_depth: u64,
    },
    /// A queued transfer won its link and began copying.
    MigrationStarted {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Source tier id.
        from: u8,
        /// Destination tier id.
        to: u8,
        /// Bytes being copied.
        bytes: u64,
    },
    /// An in-flight transfer finished its copy and remapped the page.
    MigrationCompleted {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Source tier id.
        from: u8,
        /// Destination tier id.
        to: u8,
        /// Bytes copied.
        bytes: u64,
    },
    /// An in-flight transfer ended without remapping the page.
    MigrationAborted {
        /// Virtual page number (4 KiB granule).
        vpage: u64,
        /// Intended destination tier id.
        to: u8,
        /// Bytes the transfer was to copy.
        bytes: u64,
        /// Copy work discarded, in bytes (whole passes).
        wasted_bytes: u64,
        /// Why the transfer died.
        cause: MigrationFailure,
    },
    /// The fault-injection layer perturbed the run.
    FaultInjected {
        /// What was perturbed.
        fault: FaultKind,
        /// Virtual page number the fault targeted (0 when not page-scoped).
        vpage: u64,
    },
    /// `AccessHistogram::remove` underflowed a bin: histogram/metadata
    /// desync that release builds previously saturated away silently.
    HistUnderflow {
        /// Underflows detected since the previous report.
        count: u64,
    },
    /// A sharded run cut a telemetry window: cumulative epoch-barrier
    /// tallies at the cut. Field values are shard-count-invariant (burst
    /// boundaries and lane spills do not depend on the thread grouping), so
    /// traces stay byte-identical across `--shards` values.
    ShardBarrier {
        /// Parallel bursts merged so far.
        bursts: u64,
        /// Accesses that spilled from a stopped lane to the coordinator's
        /// serial path so far.
        spills: u64,
    },
}

impl EventKind {
    /// Stable lower-case kind label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Promotion { .. } => "promotion",
            EventKind::Demotion { .. } => "demotion",
            EventKind::Split { .. } => "split",
            EventKind::Collapse { .. } => "collapse",
            EventKind::CoolingTick { .. } => "cooling_tick",
            EventKind::ThresholdRecompute { .. } => "threshold_recompute",
            EventKind::SampleBatch { .. } => "sample_batch",
            EventKind::TlbShootdown { .. } => "tlb_shootdown",
            EventKind::MigrationFailed { .. } => "migration_failed",
            EventKind::MigrationEnqueued { .. } => "migration_enqueued",
            EventKind::MigrationStarted { .. } => "migration_started",
            EventKind::MigrationCompleted { .. } => "migration_completed",
            EventKind::MigrationAborted { .. } => "migration_aborted",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::HistUnderflow { .. } => "hist_underflow",
            EventKind::ShardBarrier { .. } => "shard_barrier",
        }
    }
}

/// One trace event: a kind plus the simulated time it occurred at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated wall-clock time of the event (ns).
    pub t_ns: f64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event at simulated time `t_ns`.
    pub fn new(t_ns: f64, kind: EventKind) -> Self {
        Event { t_ns, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let e = Event::new(
            1.0,
            EventKind::Promotion {
                vpage: 7,
                from: 1,
                to: 0,
                bytes: 4096,
            },
        );
        assert_eq!(e.kind.label(), "promotion");
        assert_eq!(MigrationFailure::Cancelled.label(), "cancelled");
        assert_eq!(ShootdownCause::Unmap.label(), "unmap");
        assert_eq!(ThresholdCause::Cooling.label(), "cooling");
    }
}
