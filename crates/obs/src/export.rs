//! Trace exporters and validators.
//!
//! Two formats are produced from the same [`TracingObserver`] + window
//! series:
//!
//! - **JSONL** — one JSON object per line: a header (schema id, event and
//!   drop counts, final counter values), an explicit truncation record when
//!   the ring dropped events, then every retained event in sequence order,
//!   then every closed window. Deterministic: the same run produces
//!   byte-identical output. Truncation is also warned about on stderr so a
//!   lossy trace never passes silently.
//! - **Chrome/Perfetto `trace_event` JSON** — loadable in `ui.perfetto.dev`
//!   or `chrome://tracing`. Events become instants on three synthetic
//!   threads named after MEMTIS's kernel daemons (ksampled, kmigrated,
//!   khugepaged); windows become counter tracks (hit ratios, migration
//!   bandwidth, throughput).
//!
//! The validators re-parse exported text with the dependency-free parser
//! in [`crate::json`] so CI can smoke-check traces without external tools.

use crate::event::EventKind;
use crate::json::{escape, fmt_f64, Json};
use crate::observer::TracingObserver;
use crate::window::WindowSample;

/// Schema identifier written into the JSONL header line.
pub const JSONL_SCHEMA: &str = "memtis-trace-v1";

fn push_kind_fields(out: &mut String, kind: &EventKind) {
    use std::fmt::Write;
    match *kind {
        EventKind::Promotion {
            vpage,
            from,
            to,
            bytes,
        }
        | EventKind::Demotion {
            vpage,
            from,
            to,
            bytes,
        } => {
            let _ = write!(
                out,
                r#","vpage":{vpage},"from":{from},"to":{to},"bytes":{bytes}"#
            );
        }
        EventKind::Split {
            vpage,
            tier,
            zero_subpages_freed,
        } => {
            let _ = write!(
                out,
                r#","vpage":{vpage},"tier":{tier},"zero_subpages_freed":{zero_subpages_freed}"#
            );
        }
        EventKind::Collapse { vpage, tier } => {
            let _ = write!(out, r#","vpage":{vpage},"tier":{tier}"#);
        }
        EventKind::CoolingTick {
            visited_4k,
            hot_threshold,
            warm_threshold,
        } => {
            let _ = write!(
                out,
                r#","visited_4k":{visited_4k},"hot_threshold":{hot_threshold},"warm_threshold":{warm_threshold}"#
            );
        }
        EventKind::ThresholdRecompute {
            cause,
            hot,
            warm,
            cold,
        } => {
            let _ = write!(
                out,
                r#","cause":"{}","hot":{hot},"warm":{warm},"cold":{cold}"#,
                cause.label()
            );
        }
        EventKind::SampleBatch {
            samples,
            load_period,
            cpu_usage,
        } => {
            let _ = write!(
                out,
                r#","samples":{samples},"load_period":{load_period},"cpu_usage":{}"#,
                fmt_f64(cpu_usage)
            );
        }
        EventKind::TlbShootdown { vpage, cause } => {
            let _ = write!(out, r#","vpage":{vpage},"cause":"{}""#, cause.label());
        }
        EventKind::MigrationFailed { vpage, to, cause } => {
            let _ = write!(
                out,
                r#","vpage":{vpage},"to":{to},"cause":"{}""#,
                cause.label()
            );
        }
        EventKind::MigrationEnqueued {
            vpage,
            from,
            to,
            bytes,
            queue_depth,
        } => {
            let _ = write!(
                out,
                r#","vpage":{vpage},"from":{from},"to":{to},"bytes":{bytes},"queue_depth":{queue_depth}"#
            );
        }
        EventKind::MigrationStarted {
            vpage,
            from,
            to,
            bytes,
        }
        | EventKind::MigrationCompleted {
            vpage,
            from,
            to,
            bytes,
        } => {
            let _ = write!(
                out,
                r#","vpage":{vpage},"from":{from},"to":{to},"bytes":{bytes}"#
            );
        }
        EventKind::MigrationAborted {
            vpage,
            to,
            bytes,
            wasted_bytes,
            cause,
        } => {
            let _ = write!(
                out,
                r#","vpage":{vpage},"to":{to},"bytes":{bytes},"wasted_bytes":{wasted_bytes},"cause":"{}""#,
                cause.label()
            );
        }
        EventKind::FaultInjected { fault, vpage } => {
            let _ = write!(out, r#","fault":"{}","vpage":{vpage}"#, fault.label());
        }
        EventKind::HistUnderflow { count } => {
            let _ = write!(out, r#","count":{count}"#);
        }
        EventKind::ShardBarrier { bursts, spills } => {
            let _ = write!(out, r#","bursts":{bursts},"spills":{spills}"#);
        }
    }
}

fn window_json(s: &WindowSample) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        r#"{{"window":{},"end_event":{},"wall_ns":{},"accesses":{},"window_accesses":{},"window_throughput":{},"fast_hit_ratio":{},"rhr":{},"ehr":{},"migrated_bytes":{},"migration_bw":{}"#,
        s.index,
        s.end_event,
        fmt_f64(s.wall_ns),
        s.accesses,
        s.window_accesses,
        fmt_f64(s.window_throughput),
        fmt_f64(s.fast_hit_ratio),
        fmt_f64(s.rhr),
        fmt_f64(s.ehr),
        s.migrated_bytes,
        fmt_f64(s.migration_bw),
    );
    out.push_str(",\"tier_hit_ratios\":[");
    for (i, v) in s.tier_hit_ratios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(*v));
    }
    out.push_str("],\"hist_bins\":[");
    for (i, v) in s.hist_bins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("],\"gauges\":{");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{}":{}"#, escape(name), fmt_f64(*v));
    }
    out.push_str("}}");
    out
}

/// Serializes a trace as JSONL: header line, event lines, window lines.
pub fn export_jsonl(obs: &TracingObserver, windows: &[WindowSample]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        r#"{{"schema":"{}","events":{},"retained":{},"dropped":{},"counters":{{"#,
        JSONL_SCHEMA,
        obs.ring.pushed(),
        obs.ring.len(),
        obs.ring.dropped(),
    );
    for (i, (name, v)) in obs.registry.counters_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{}":{}"#, escape(name), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in obs.registry.gauges_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{}":{}"#, escape(name), fmt_f64(*v));
    }
    out.push_str("}}\n");
    if obs.ring.dropped() > 0 {
        eprintln!(
            "warning: trace truncated — event ring dropped {} of {} events \
             (first retained seq {}); raise the ring capacity to keep them",
            obs.ring.dropped(),
            obs.ring.pushed(),
            obs.ring.first_seq(),
        );
        let _ = write!(
            out,
            "{{\"truncated\":true,\"dropped\":{},\"first_seq\":{}}}",
            obs.ring.dropped(),
            obs.ring.first_seq(),
        );
        out.push('\n');
    }
    for (seq, ev) in (obs.ring.first_seq()..).zip(obs.ring.iter()) {
        let _ = write!(
            out,
            r#"{{"seq":{seq},"t_ns":{},"kind":"{}""#,
            fmt_f64(ev.t_ns),
            ev.kind.label()
        );
        push_kind_fields(&mut out, &ev.kind);
        out.push_str("}\n");
    }
    for w in windows {
        out.push_str(&window_json(w));
        out.push('\n');
    }
    out
}

/// Synthetic Perfetto thread id an event is attributed to.
fn perfetto_tid(kind: &EventKind) -> u32 {
    match kind {
        EventKind::SampleBatch { .. }
        | EventKind::CoolingTick { .. }
        | EventKind::ThresholdRecompute { .. } => 1,
        EventKind::Promotion { .. }
        | EventKind::Demotion { .. }
        | EventKind::TlbShootdown { .. }
        | EventKind::MigrationFailed { .. }
        | EventKind::MigrationEnqueued { .. }
        | EventKind::MigrationStarted { .. }
        | EventKind::MigrationCompleted { .. }
        | EventKind::MigrationAborted { .. }
        | EventKind::FaultInjected { .. } => 2,
        EventKind::Split { .. } | EventKind::Collapse { .. } => 3,
        EventKind::HistUnderflow { .. } | EventKind::ShardBarrier { .. } => 1,
    }
}

fn perfetto_args(kind: &EventKind) -> String {
    let mut s = String::from("{\"_\":0");
    push_kind_fields(&mut s, kind);
    s.push('}');
    s
}

/// Serializes a trace as Chrome/Perfetto `trace_event` JSON.
///
/// Events appear as instants (`ph:"i"`) on three synthetic threads named
/// after the MEMTIS daemons: tid 1 `ksampled` (sampling, cooling,
/// thresholds), tid 2 `kmigrated` (migrations, shootdowns), tid 3
/// `khugepaged` (splits, collapses). Windows appear as counter tracks
/// (`ph:"C"`). Timestamps are microseconds of simulated time.
pub fn export_perfetto(obs: &TracingObserver, windows: &[WindowSample]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&line);
    };
    for (tid, name) in [(1u32, "ksampled"), (2, "kmigrated"), (3, "khugepaged")] {
        emit(
            format!(
                r#"{{"ph":"M","pid":1,"tid":{tid},"name":"thread_name","args":{{"name":"{name}"}}}}"#
            ),
            &mut out,
        );
    }
    if obs.ring.dropped() > 0 {
        eprintln!(
            "warning: trace truncated — event ring dropped {} of {} events \
             (first retained seq {}); raise the ring capacity to keep them",
            obs.ring.dropped(),
            obs.ring.pushed(),
            obs.ring.first_seq(),
        );
        emit(
            format!(
                r#"{{"ph":"i","pid":1,"tid":1,"ts":0,"s":"g","name":"trace_truncated","args":{{"dropped":{},"first_seq":{}}}}}"#,
                obs.ring.dropped(),
                obs.ring.first_seq(),
            ),
            &mut out,
        );
    }
    for ev in obs.ring.iter() {
        let ts = fmt_f64(ev.t_ns / 1000.0);
        emit(
            format!(
                r#"{{"ph":"i","pid":1,"tid":{},"ts":{ts},"s":"t","name":"{}","args":{}}}"#,
                perfetto_tid(&ev.kind),
                ev.kind.label(),
                perfetto_args(&ev.kind)
            ),
            &mut out,
        );
    }
    for w in windows {
        let ts = fmt_f64(w.wall_ns / 1000.0);
        let mut line = format!(r#"{{"ph":"C","pid":1,"ts":{ts},"name":"hit_ratio","args":{{"#);
        let _ = write!(
            line,
            r#""rhr":{},"ehr":{},"fast":{}}}}}"#,
            fmt_f64(w.rhr),
            fmt_f64(w.ehr),
            fmt_f64(w.fast_hit_ratio)
        );
        emit(line, &mut out);
        emit(
            format!(
                r#"{{"ph":"C","pid":1,"ts":{ts},"name":"migration_bw","args":{{"bytes_per_s":{}}}}}"#,
                fmt_f64(w.migration_bw)
            ),
            &mut out,
        );
        emit(
            format!(
                r#"{{"ph":"C","pid":1,"ts":{ts},"name":"throughput","args":{{"accesses_per_s":{}}}}}"#,
                fmt_f64(w.window_throughput)
            ),
            &mut out,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}");
    out
}

/// All event-kind labels the JSONL validator accepts.
const KNOWN_KINDS: [&str; 16] = [
    "promotion",
    "demotion",
    "split",
    "collapse",
    "cooling_tick",
    "threshold_recompute",
    "sample_batch",
    "tlb_shootdown",
    "migration_failed",
    "migration_enqueued",
    "migration_started",
    "migration_completed",
    "migration_aborted",
    "fault_injected",
    "hist_underflow",
    "shard_barrier",
];

/// Summary returned by a successful [`validate_jsonl`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Event lines present in the file.
    pub events: usize,
    /// Window lines present in the file.
    pub windows: usize,
    /// Dropped-event count declared by the header.
    pub dropped: u64,
}

/// Validates JSONL trace text: parseable lines, a well-formed header, an
/// explicit truncation record exactly when the header declares drops,
/// contiguous event sequence numbers, known event kinds, and contiguous
/// window indices. Returns line counts on success.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace")?;
    let h = Json::parse(header).map_err(|e| format!("header: {e}"))?;
    if h.get("schema").and_then(Json::as_str) != Some(JSONL_SCHEMA) {
        return Err(format!("header schema is not {JSONL_SCHEMA:?}"));
    }
    let declared_events = h
        .get("events")
        .and_then(Json::as_f64)
        .ok_or("header missing \"events\"")? as u64;
    let retained = h
        .get("retained")
        .and_then(Json::as_f64)
        .ok_or("header missing \"retained\"")? as u64;
    let dropped = h
        .get("dropped")
        .and_then(Json::as_f64)
        .ok_or("header missing \"dropped\"")? as u64;
    if retained + dropped != declared_events {
        return Err("header retained + dropped != events".to_string());
    }
    h.get("counters")
        .and_then(|c| c.get("events_recorded_total"))
        .ok_or("header missing counters.events_recorded_total")?;
    let mut events = 0usize;
    let mut windows = 0usize;
    let mut next_seq = dropped;
    let mut next_window = 0u64;
    let mut truncation_records = 0usize;
    for (lineno, line) in lines {
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("truncated").is_some() {
            // The explicit truncation record: only legal (and then
            // mandatory, exactly once, before any event) when the header
            // declares drops, and its counts must agree with the header.
            if dropped == 0 {
                return Err(format!(
                    "line {}: truncation record but header declares no drops",
                    lineno + 1
                ));
            }
            if truncation_records > 0 || events > 0 || windows > 0 {
                return Err(format!(
                    "line {}: truncation record must directly follow the header",
                    lineno + 1
                ));
            }
            truncation_records += 1;
            if v.get("dropped").and_then(Json::as_f64) != Some(dropped as f64) {
                return Err(format!(
                    "line {}: truncation record dropped count disagrees with header",
                    lineno + 1
                ));
            }
            if v.get("first_seq").and_then(Json::as_f64) != Some(dropped as f64) {
                return Err(format!(
                    "line {}: truncation record first_seq must equal dropped",
                    lineno + 1
                ));
            }
        } else if let Some(seq) = v.get("seq").and_then(Json::as_f64) {
            if seq as u64 != next_seq {
                return Err(format!(
                    "line {}: seq {} != expected {}",
                    lineno + 1,
                    seq,
                    next_seq
                ));
            }
            next_seq += 1;
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: event without kind", lineno + 1))?;
            if !KNOWN_KINDS.contains(&kind) {
                return Err(format!("line {}: unknown kind {kind:?}", lineno + 1));
            }
            v.get("t_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: event without t_ns", lineno + 1))?;
            events += 1;
        } else if let Some(w) = v.get("window").and_then(Json::as_f64) {
            if w as u64 != next_window {
                return Err(format!(
                    "line {}: window {} != expected {}",
                    lineno + 1,
                    w,
                    next_window
                ));
            }
            next_window += 1;
            for key in ["wall_ns", "rhr", "ehr", "window_throughput", "migration_bw"] {
                v.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: window without {key}", lineno + 1))?;
            }
            windows += 1;
        } else {
            return Err(format!("line {}: neither event nor window", lineno + 1));
        }
    }
    if events as u64 != retained {
        return Err(format!(
            "header declares {retained} retained events, found {events}"
        ));
    }
    if dropped > 0 && truncation_records == 0 {
        return Err(format!(
            "header declares {dropped} dropped events but no truncation record follows"
        ));
    }
    Ok(JsonlSummary {
        events,
        windows,
        dropped,
    })
}

/// Validates Perfetto `trace_event` JSON: a `traceEvents` array whose
/// entries carry a known phase, pid, and (for non-metadata phases) a
/// non-negative timestamp. Returns the entry count on success.
pub fn validate_perfetto(text: &str) -> Result<usize, String> {
    let v = Json::parse(text)?;
    let evs = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, e) in evs.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing ph"))?;
        if !matches!(ph, "M" | "i" | "C" | "X" | "B" | "E") {
            return Err(format!("entry {i}: unknown phase {ph:?}"));
        }
        e.get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("entry {i}: missing pid"))?;
        if ph != "M" {
            let ts = e
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i}: missing ts"))?;
            if ts < 0.0 {
                return Err(format!("entry {i}: negative ts"));
            }
        }
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing name"))?;
    }
    Ok(evs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MigrationFailure, ShootdownCause, ThresholdCause};
    use crate::observer::Observer;

    fn sample_observer() -> TracingObserver {
        let mut o = TracingObserver::new();
        o.record(Event::new(
            1000.0,
            EventKind::SampleBatch {
                samples: 32,
                load_period: 1009,
                cpu_usage: 0.015,
            },
        ));
        o.record(Event::new(
            2000.0,
            EventKind::Promotion {
                vpage: 42,
                from: 1,
                to: 0,
                bytes: 4096,
            },
        ));
        o.record(Event::new(
            2500.0,
            EventKind::ThresholdRecompute {
                cause: ThresholdCause::Periodic,
                hot: 5,
                warm: 3,
                cold: 1,
            },
        ));
        o.record(Event::new(
            3000.0,
            EventKind::Split {
                vpage: 512,
                tier: 0,
                zero_subpages_freed: 7,
            },
        ));
        o.record(Event::new(
            3500.0,
            EventKind::TlbShootdown {
                vpage: 42,
                cause: ShootdownCause::Migration,
            },
        ));
        o.record(Event::new(
            4000.0,
            EventKind::MigrationFailed {
                vpage: 9,
                to: 0,
                cause: MigrationFailure::OutOfMemory,
            },
        ));
        o
    }

    fn sample_windows() -> Vec<WindowSample> {
        vec![WindowSample {
            index: 0,
            end_event: 100,
            wall_ns: 5000.0,
            accesses: 90,
            window_accesses: 90,
            window_throughput: 1.8e7,
            fast_hit_ratio: 0.75,
            tier_hit_ratios: vec![0.75, 0.25],
            rhr: 0.8,
            ehr: 0.85,
            migrated_bytes: 4096,
            migration_bw: 8.192e8,
            hist_bins: vec![1, 0, 3],
            gauges: vec![("hot_bytes", 8192.0)],
        }]
    }

    #[test]
    fn jsonl_roundtrips_through_validator() {
        let o = sample_observer();
        let w = sample_windows();
        let text = export_jsonl(&o, &w);
        let s = validate_jsonl(&text).unwrap();
        assert_eq!(s.events, 6);
        assert_eq!(s.windows, 1);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn jsonl_is_deterministic() {
        let o = sample_observer();
        let w = sample_windows();
        assert_eq!(export_jsonl(&o, &w), export_jsonl(&o, &w));
    }

    #[test]
    fn jsonl_reports_drops_in_header() {
        let mut o = TracingObserver::with_ring_capacity(2);
        for i in 0..5u64 {
            o.record(Event::new(
                i as f64,
                EventKind::Collapse { vpage: i, tier: 0 },
            ));
        }
        let text = export_jsonl(&o, &[]);
        let s = validate_jsonl(&text).unwrap();
        assert_eq!(s.events, 2);
        assert_eq!(s.dropped, 3);
        // The explicit truncation record directly follows the header.
        let trunc = Json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert!(trunc.get("truncated").is_some());
        assert_eq!(trunc.get("dropped").and_then(Json::as_f64), Some(3.0));
        assert_eq!(trunc.get("first_seq").and_then(Json::as_f64), Some(3.0));
        // First retained event keeps its global sequence number.
        let v = Json::parse(text.lines().nth(2).unwrap()).unwrap();
        assert_eq!(v.get("seq").and_then(Json::as_f64), Some(3.0));
        // The truncated Perfetto export carries the marker instant too.
        let p = export_perfetto(&o, &[]);
        validate_perfetto(&p).unwrap();
        assert!(p.contains(r#""name":"trace_truncated","args":{"dropped":3,"first_seq":3}"#));
    }

    #[test]
    fn validator_enforces_truncation_record() {
        let mut o = TracingObserver::with_ring_capacity(2);
        for i in 0..5u64 {
            o.record(Event::new(
                i as f64,
                EventKind::Collapse { vpage: i, tier: 0 },
            ));
        }
        let text = export_jsonl(&o, &[]);
        // Dropping the truncation record from a lossy trace must fail.
        let without: String = text
            .lines()
            .filter(|l| !l.contains("\"truncated\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate_jsonl(&without)
            .unwrap_err()
            .contains("no truncation record"));
        // A spurious truncation record on a lossless trace must fail too.
        let lossless = export_jsonl(&sample_observer(), &[]);
        let mut lines: Vec<&str> = lossless.lines().collect();
        lines.insert(1, "{\"truncated\":true,\"dropped\":0,\"first_seq\":0}");
        let spurious: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate_jsonl(&spurious)
            .unwrap_err()
            .contains("header declares no drops"));
    }

    #[test]
    fn perfetto_roundtrips_through_validator() {
        let o = sample_observer();
        let w = sample_windows();
        let text = export_perfetto(&o, &w);
        // 3 thread metadata + 6 instants + 3 counters.
        assert_eq!(validate_perfetto(&text).unwrap(), 12);
        let v = Json::parse(&text).unwrap();
        let evs = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Instants are µs: the promotion at 2000 ns lands at ts=2.
        let promo = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("promotion"))
            .unwrap();
        assert_eq!(promo.get("ts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(promo.get("tid").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn transfer_lifecycle_events_roundtrip() {
        let mut o = TracingObserver::new();
        o.record(Event::new(
            100.0,
            EventKind::MigrationEnqueued {
                vpage: 7,
                from: 1,
                to: 0,
                bytes: 4096,
                queue_depth: 3,
            },
        ));
        o.record(Event::new(
            200.0,
            EventKind::MigrationStarted {
                vpage: 7,
                from: 1,
                to: 0,
                bytes: 4096,
            },
        ));
        o.record(Event::new(
            300.0,
            EventKind::MigrationCompleted {
                vpage: 7,
                from: 1,
                to: 0,
                bytes: 4096,
            },
        ));
        o.record(Event::new(
            400.0,
            EventKind::MigrationAborted {
                vpage: 9,
                to: 0,
                bytes: 4096,
                wasted_bytes: 8192,
                cause: MigrationFailure::Dirty,
            },
        ));
        let text = export_jsonl(&o, &[]);
        let s = validate_jsonl(&text).unwrap();
        assert_eq!(s.events, 4);
        assert!(text.contains(r#""kind":"migration_enqueued","vpage":7"#));
        assert!(text.contains(r#""queue_depth":3"#));
        assert!(text.contains(r#""wasted_bytes":8192,"cause":"dirty""#));
        // The completion fed the promotions counter; the abort its own.
        use crate::registry::{CounterId, GaugeId};
        assert_eq!(o.registry.counter(CounterId::Promotions), 1);
        assert_eq!(o.registry.counter(CounterId::MigrationsEnqueued), 1);
        assert_eq!(o.registry.counter(CounterId::MigrationsAborted), 1);
        assert_eq!(o.registry.gauge(GaugeId::MigrationQueueDepth), 3.0);
        // All four land on the kmigrated perfetto thread.
        let p = export_perfetto(&o, &[]);
        validate_perfetto(&p).unwrap();
        let v = Json::parse(&p).unwrap();
        for e in v.get("traceEvents").and_then(Json::as_arr).unwrap() {
            if e.get("ph").and_then(Json::as_str) == Some("i") {
                assert_eq!(e.get("tid").and_then(Json::as_f64), Some(2.0));
            }
        }
    }

    #[test]
    fn validators_reject_corruption() {
        let o = sample_observer();
        let text = export_jsonl(&o, &[]);
        let broken = text.replacen("\"seq\":1", "\"seq\":7", 1);
        assert!(validate_jsonl(&broken).is_err());
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_perfetto("{\"traceEvents\":[{\"ph\":\"Z\"}]}").is_err());
    }
}
