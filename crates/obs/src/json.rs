//! Minimal hand-rolled JSON support for the exporters and validators.
//!
//! The workspace deliberately carries no serde; this module provides the
//! two halves the observability pipeline needs: deterministic formatting
//! helpers for the writers, and a small recursive-descent parser the CI
//! smoke validators use to check exported traces without external tools.

use std::collections::BTreeMap;

/// Formats an `f64` deterministically for JSON output.
///
/// Rust's `Display` for `f64` is the shortest string that round-trips,
/// which is deterministic across runs and platforms and never uses an
/// exponent for the magnitudes the simulator produces. Non-finite values
/// (invalid JSON) are mapped to `0`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for inclusion in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object with string keys (sorted map — key order is not preserved).
    Obj(BTreeMap<String, Json>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Number (all JSON numbers parse as `f64`).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: input.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member lookup when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(a));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_is_plain_and_roundtrips() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(1234567.0), "1234567");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        let v = 0.123456789;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parse_roundtrip() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null, "e": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Obj(Default::default())));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn parse_escapes() {
        let v = Json::parse(r#""aA\t""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t"));
    }
}
