//! Dependency-free HDR-style log-linear latency histograms.
//!
//! [`LatHist`] buckets non-negative integer nanosecond values into a
//! log-linear grid: every power-of-two octave is cut into `2^SUB_BITS = 32`
//! equal-width sub-buckets, and values below `2 * 32 = 64` get width-1
//! (exact) buckets. Reporting the bucket midpoint bounds the relative
//! error at `1 / (2 * 32) ≈ 1.6%` (well inside the 2.5% budget), while the
//! whole grid is only [`BUCKETS`] `u64` cells — small enough to keep one
//! histogram per (tier, page-size) class on the hot path.
//!
//! Histograms are **mergeable** and **differenceable**: bucket counts,
//! the total count, and the exact running sum are all plain `u64`s, so
//! [`LatHist::merge`] of per-window (or per-shard) histograms is
//! bit-exactly the histogram of the concatenated stream, and
//! [`LatHist::diff`] against an earlier snapshot yields the window in
//! between. The flight recorder uses cumulative snapshots + `diff` to cut
//! per-window percentile series without double-recording.

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 2*SUB exact buckets below 64, then 32 per octave
/// for octaves 6..=63.
pub const BUCKETS: usize = (2 * SUB as usize) + ((63 - SUB_BITS as usize) * SUB as usize);

/// A mergeable log-linear latency histogram over `u64` nanoseconds.
#[derive(Clone, PartialEq, Eq)]
pub struct LatHist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl std::fmt::Debug for LatHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatHist")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

impl Default for LatHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for value `v`.
///
/// Branch-free: values under `2 * SUB` are pinned to octave `SUB_BITS` by
/// the `| (2 * SUB - 1)` pad, which makes `shift = 0` and the general
/// formula collapse (with wrapping arithmetic) to the identity `v` on the
/// exact range. The hot demand tap sees latencies that alternate between
/// the exact range (LLC hits) and higher octaves (memory accesses), so a
/// two-region branch here mispredicts constantly; see the
/// `small_values_are_exact` / `index_low_width_are_consistent` tests for
/// the equivalence sweep.
#[inline]
fn index_of(v: u64) -> usize {
    // octave = floor(log2 max(v, 2*SUB - 1)) >= SUB_BITS
    let octave = 63 - (v | (2 * SUB - 1)).leading_zeros();
    let shift = octave - SUB_BITS;
    SUB.wrapping_add((octave as u64 - SUB_BITS as u64) * SUB)
        .wrapping_add((v >> shift).wrapping_sub(SUB)) as usize
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * SUB {
        i
    } else {
        let octave = SUB_BITS as u64 + (i - SUB) / SUB;
        let sub = i % SUB;
        let shift = octave - SUB_BITS as u64;
        (SUB + sub) << shift
    }
}

/// Width of bucket `i` (1 for the exact range).
#[inline]
fn bucket_width(i: usize) -> u64 {
    if (i as u64) < 2 * SUB {
        1
    } else {
        let octave = SUB_BITS as u64 + (i as u64 - SUB) / SUB;
        1u64 << (octave - SUB_BITS as u64)
    }
}

/// Representative value for bucket `i`: exact for width-1 buckets,
/// midpoint otherwise.
#[inline]
fn bucket_mid(i: usize) -> u64 {
    let w = bucket_width(i);
    bucket_low(i) + w / 2
}

impl LatHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatHist {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one `u64` nanosecond value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Records `n` repeats of the already-bucketed value `v` at bucket
    /// `idx` (which must equal `index_of(v)`). Bit-exactly equivalent to
    /// calling [`LatHist::record`]`(v)` `n` times.
    #[inline]
    pub fn record_repeated(&mut self, idx: usize, v: u64, n: u64) {
        debug_assert_eq!(idx, index_of(v));
        self.buckets[idx] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
    }

    /// Records an `f64` nanosecond value, rounding half-up to `u64`.
    ///
    /// All tap sites use this one conversion so shard-merged and serial
    /// histograms agree bit-exactly. Negative / NaN inputs clamp to 0.
    #[inline]
    pub fn record_ns(&mut self, v: f64) {
        self.record(ns_to_u64(v));
    }

    /// Recorded sample count.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of the recorded (rounded) values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the smallest non-empty bucket (0 when empty).
    pub fn min(&self) -> u64 {
        self.buckets
            .iter()
            .position(|&b| b > 0)
            .map(bucket_low)
            .unwrap_or(0)
    }

    /// Representative value of the largest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(bucket_mid)
            .unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]`: the representative of the bucket
    /// containing the sample of rank `ceil(q * count)`. Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut rank = (q * self.count as f64).ceil() as u64;
        rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// p90 shorthand.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// p99.9 shorthand.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Adds every sample of `other` into `self` (bucket-wise `u64` add,
    /// so merging is associative, commutative, and bit-exact).
    pub fn merge(&mut self, other: &LatHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Overwrites `self` with `other`'s contents, reusing the existing
    /// bucket allocation (unlike `clone()`, steady-state snapshotting
    /// allocates nothing).
    pub fn copy_from(&mut self, other: &LatHist) {
        self.buckets.copy_from_slice(&other.buckets);
        self.count = other.count;
        self.sum = other.sum;
    }

    /// Summary statistics of the whole histogram, computed in one bucket
    /// pass. Field-for-field identical to calling `count` / `mean` /
    /// `percentile` / `max` individually.
    pub fn stats(&self) -> HistStats {
        stats_from_fn(self.count, self.sum, |i| self.buckets[i])
    }

    /// Summary statistics of the samples recorded since snapshot `prev`
    /// (an earlier snapshot of this cumulative histogram), computed in one
    /// pass without materialising the difference histogram. Bit-exactly
    /// equal to `self.diff(prev).stats()`.
    pub fn stats_since(&self, prev: &LatHist) -> HistStats {
        let count = self
            .count
            .checked_sub(prev.count)
            .expect("LatHist::stats_since: not a prefix snapshot");
        let sum = self.sum.wrapping_sub(prev.sum);
        stats_from_fn(count, sum, |i| self.buckets[i] - prev.buckets[i])
    }

    /// The histogram of samples recorded since snapshot `prev` — the
    /// bucket-wise difference `self - prev`. `prev` must be an earlier
    /// snapshot of the same cumulative histogram (every bucket of `prev`
    /// ≤ the matching bucket of `self`); panics otherwise.
    pub fn diff(&self, prev: &LatHist) -> LatHist {
        let mut out = LatHist::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(prev.buckets.iter()))
        {
            *o = a
                .checked_sub(*b)
                .expect("LatHist::diff: not a prefix snapshot");
        }
        out.count = self
            .count
            .checked_sub(prev.count)
            .expect("LatHist::diff: not a prefix snapshot");
        out.sum = self.sum.wrapping_sub(prev.sum);
        out
    }
}

/// The crate-wide `f64` nanoseconds → `u64` bucket-value conversion:
/// round half-up, clamp negatives/NaN to 0.
#[inline]
pub fn ns_to_u64(v: f64) -> u64 {
    // `as` saturates: negative and NaN go to 0, huge values to u64::MAX.
    (v + 0.5) as u64
}

/// One-pass summary of a histogram (or of a window between two cumulative
/// snapshots): exactly the fields the per-window report rows need, so the
/// window-cut path never materialises a difference histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistStats {
    /// Sample count.
    pub count: u64,
    /// Mean of the recorded (rounded) values; 0.0 when empty.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Representative value of the largest non-empty bucket.
    pub max: u64,
}

/// Computes [`HistStats`] over `count` samples whose per-bucket counts are
/// given by `bucket(i)`. Rank selection matches [`LatHist::percentile`]
/// exactly (rank `ceil(q * count)` clamped to `[1, count]`, bucket
/// midpoint reported), so stats computed through a difference closure are
/// bit-identical to stats of the materialised difference histogram.
fn stats_from_fn(count: u64, sum: u64, bucket: impl Fn(usize) -> u64) -> HistStats {
    if count == 0 {
        return HistStats::default();
    }
    let rank = |q: f64| ((q * count as f64).ceil() as u64).clamp(1, count);
    let ranks = [rank(0.50), rank(0.90), rank(0.99), rank(0.999)];
    let mut out = [0u64; 4];
    let mut k = 0;
    let mut seen = 0u64;
    let mut last = 0usize;
    for i in 0..BUCKETS {
        let d = bucket(i);
        if d == 0 {
            continue;
        }
        last = i;
        seen += d;
        while k < 4 && seen >= ranks[k] {
            out[k] = bucket_mid(i);
            k += 1;
        }
    }
    // `seen == count` by construction, so every rank is satisfied; the
    // backstop mirrors `percentile`'s final-bucket fallback.
    for slot in out.iter_mut().skip(k) {
        *slot = bucket_mid(last);
    }
    HistStats {
        count,
        mean: sum as f64 / count as f64,
        p50: out[0],
        p90: out[1],
        p99: out[2],
        p999: out[3],
        max: bucket_mid(last),
    }
}

/// The flight recorder: the full set of latency histograms one run (or
/// one machine) accumulates, plus the pending-abort table that feeds the
/// abort-to-retry lag histogram.
///
/// Demand histograms are cut per `(tier, page-size)` class; the tier axis
/// grows on demand so the recorder stays topology-agnostic. All fields
/// are cumulative; window series come from `clone()` snapshots and
/// [`LatHist::diff`].
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    /// Per-tier `[base, huge]` demand-access latency.
    demand: Vec<[LatHist; 2]>,
    /// Copy latency (start → successful completion) of migrations.
    pub transfer: LatHist,
    /// Enqueue → copy-start wait of migrations that reached the link.
    pub queue_wait: LatHist,
    /// Abort → next enqueue lag for the same page.
    pub abort_retry: LatHist,
    /// vpage → sim-time of its most recent abort, awaiting a retry.
    pending_aborts: std::collections::BTreeMap<u64, f64>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one demand access that resolved on `tier` with the given
    /// page size.
    #[inline]
    pub fn record_demand(&mut self, tier: u8, huge: bool, latency_ns: f64) {
        let t = tier as usize;
        if t >= self.demand.len() {
            self.demand.resize_with(t + 1, Default::default);
        }
        self.demand[t][huge as usize].record_ns(latency_ns);
    }

    /// The demand histogram for `(tier, huge)`, if any sample landed
    /// in that class (or any higher-tier class forced the axis to grow).
    pub fn demand(&self, tier: u8, huge: bool) -> Option<&LatHist> {
        self.demand.get(tier as usize).map(|h| &h[huge as usize])
    }

    /// Number of tiers the demand axis has grown to.
    pub fn demand_tiers(&self) -> usize {
        self.demand.len()
    }

    /// All demand classes merged into one histogram.
    pub fn demand_all(&self) -> LatHist {
        let mut out = LatHist::new();
        for per_tier in &self.demand {
            for h in per_tier {
                out.merge(h);
            }
        }
        out
    }

    /// [`HistStats`] of all demand classes merged, computed bucket-major
    /// across the classes without materialising the merged histogram.
    pub fn demand_all_stats(&self) -> HistStats {
        let (mut count, mut sum) = (0u64, 0u64);
        for per_tier in &self.demand {
            for h in per_tier {
                count += h.count;
                sum = sum.wrapping_add(h.sum);
            }
        }
        stats_from_fn(count, sum, |i| {
            self.demand
                .iter()
                .map(|t| t[0].buckets[i] + t[1].buckets[i])
                .sum()
        })
    }

    /// [`HistStats`] of all demand samples recorded since snapshot `prev`
    /// (an earlier snapshot of this cumulative recorder; tiers missing in
    /// `prev` count as empty). Bit-exactly equal to
    /// `self.diff(prev).demand_all().stats()`.
    pub fn demand_all_stats_since(&self, prev: &FlightRecorder) -> HistStats {
        let (mut count, mut sum) = (0u64, 0u64);
        for (t, per_tier) in self.demand.iter().enumerate() {
            for (s, h) in per_tier.iter().enumerate() {
                let p = prev.demand.get(t).map(|pt| &pt[s]);
                count += h.count - p.map_or(0, |p| p.count);
                sum = sum.wrapping_add(h.sum.wrapping_sub(p.map_or(0, |p| p.sum)));
            }
        }
        stats_from_fn(count, sum, |i| {
            self.demand
                .iter()
                .enumerate()
                .map(|(t, per_tier)| {
                    let cur = per_tier[0].buckets[i] + per_tier[1].buckets[i];
                    let old = prev
                        .demand
                        .get(t)
                        .map_or(0, |pt| pt[0].buckets[i] + pt[1].buckets[i]);
                    cur - old
                })
                .sum()
        })
    }

    /// Records the queue wait of a transfer that just started copying.
    #[inline]
    pub fn record_queue_wait(&mut self, wait_ns: f64) {
        self.queue_wait.record_ns(wait_ns);
    }

    /// Records the copy latency of a successfully completed transfer.
    #[inline]
    pub fn record_transfer(&mut self, copy_ns: f64) {
        self.transfer.record_ns(copy_ns);
    }

    /// Notes that the transfer covering `vpage` aborted at `now_ns`; the
    /// next enqueue of the same page records the abort-to-retry lag.
    #[inline]
    pub fn note_abort(&mut self, vpage: u64, now_ns: f64) {
        self.pending_aborts.insert(vpage, now_ns);
    }

    /// Notes an enqueue of `vpage` at `now_ns`, completing a pending
    /// abort-to-retry measurement if one exists.
    #[inline]
    pub fn note_enqueue(&mut self, vpage: u64, now_ns: f64) {
        if let Some(aborted_at) = self.pending_aborts.remove(&vpage) {
            self.abort_retry.record_ns(now_ns - aborted_at);
        }
    }

    /// The per-class histograms recorded since snapshot `prev` (an earlier
    /// clone of this cumulative recorder; missing tiers in `prev` count as
    /// empty). Pending-abort state is not differenced.
    pub fn diff(&self, prev: &FlightRecorder) -> FlightRecorder {
        let empty = LatHist::new();
        let mut out = FlightRecorder::new();
        out.demand = self
            .demand
            .iter()
            .enumerate()
            .map(|(t, per_tier)| {
                let prev_tier = prev.demand.get(t);
                [
                    per_tier[0].diff(prev_tier.map(|p| &p[0]).unwrap_or(&empty)),
                    per_tier[1].diff(prev_tier.map(|p| &p[1]).unwrap_or(&empty)),
                ]
            })
            .collect();
        out.transfer = self.transfer.diff(&prev.transfer);
        out.queue_wait = self.queue_wait.diff(&prev.queue_wait);
        out.abort_retry = self.abort_retry.diff(&prev.abort_retry);
        out
    }

    /// Merges another recorder's histograms into this one (pending-abort
    /// state is not merged; it is coordinator-local).
    pub fn merge(&mut self, other: &FlightRecorder) {
        if other.demand.len() > self.demand.len() {
            self.demand
                .resize_with(other.demand.len(), Default::default);
        }
        for (t, per_tier) in other.demand.iter().enumerate() {
            for (s, h) in per_tier.iter().enumerate() {
                self.demand[t][s].merge(h);
            }
        }
        self.transfer.merge(&other.transfer);
        self.queue_wait.merge(&other.queue_wait);
        self.abort_retry.merge(&other.abort_retry);
    }

    /// Overwrites `self` with a snapshot of `other`'s histograms, reusing
    /// bucket allocations — the window-cut path calls this instead of
    /// `clone()`, so steady-state cuts allocate nothing once the tier axis
    /// has stabilised. The pending-abort table is not copied (snapshots
    /// only feed [`FlightRecorder::diff`]-style reads).
    pub fn snapshot_from(&mut self, other: &FlightRecorder) {
        if self.demand.len() < other.demand.len() {
            self.demand
                .resize_with(other.demand.len(), Default::default);
        }
        for (dst, src) in self.demand.iter_mut().zip(other.demand.iter()) {
            dst[0].copy_from(&src[0]);
            dst[1].copy_from(&src[1]);
        }
        self.transfer.copy_from(&other.transfer);
        self.queue_wait.copy_from(&other.queue_wait);
        self.abort_retry.copy_from(&other.abort_retry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for property-style sweeps without pulling
    /// in an RNG crate.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn bucket_count_matches_constant() {
        // Highest index actually reachable is for u64::MAX.
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
        assert_eq!(index_of(0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatHist::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for v in 0..64u64 {
            assert_eq!(bucket_mid(index_of(v)), v, "value {v} not exact");
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn index_low_width_are_consistent() {
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for _ in 0..20_000 {
            let v = rng.next() >> (rng.next() % 64);
            let i = index_of(v);
            let low = bucket_low(i);
            let w = bucket_width(i);
            assert!(low <= v, "low {low} > v {v}");
            assert!(v - low < w, "v {v} outside bucket [{low}, {low}+{w})");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_low(i + 1), low + w, "buckets not contiguous at {i}");
            }
        }
    }

    #[test]
    fn relative_error_within_budget() {
        let mut rng = Rng(42);
        for _ in 0..50_000 {
            let v = (rng.next() % (1 << 40)).max(1);
            let rep = bucket_mid(index_of(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.025, "value {v} rep {rep} err {err}");
        }
    }

    #[test]
    fn percentiles_track_uniform_stream() {
        let mut h = LatHist::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.percentile(q) as f64;
            assert!(
                (got - want).abs() / want <= 0.025,
                "q={q} got {got} want {want}"
            );
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.percentile(0.0), bucket_mid(index_of(1)));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatHist::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_of_windows_equals_whole_run_bit_exactly() {
        // Property sweep: random stream, random window boundaries; the
        // merge of per-window histograms must equal the whole-run
        // histogram bit-for-bit (buckets, count, and sum).
        let mut rng = Rng(0xdeadbeefcafef00d);
        for case in 0..50 {
            let n = 200 + (rng.next() % 2_000) as usize;
            let mut whole = LatHist::new();
            let mut merged = LatHist::new();
            let mut window = LatHist::new();
            for i in 0..n {
                let v = rng.next() >> (rng.next() % 50);
                whole.record(v);
                window.record(v);
                // Random window cut ~ every 64 samples on average.
                if rng.next().is_multiple_of(64) || i == n - 1 {
                    merged.merge(&window);
                    window = LatHist::new();
                }
            }
            merged.merge(&window);
            assert_eq!(whole, merged, "case {case}: window merge diverged");
        }
    }

    #[test]
    fn diff_of_cumulative_snapshots_recovers_windows() {
        let mut rng = Rng(7);
        let mut cum = LatHist::new();
        let mut prev = cum.clone();
        let mut remerged = LatHist::new();
        for _ in 0..10 {
            for _ in 0..500 {
                cum.record(rng.next() % 1_000_000);
            }
            let win = cum.diff(&prev);
            remerged.merge(&win);
            prev = cum.clone();
        }
        assert_eq!(cum, remerged);
    }

    #[test]
    fn stats_match_individual_accessors() {
        let mut rng = Rng(0xabcdef12345);
        let mut h = LatHist::new();
        for _ in 0..30_000 {
            h.record(rng.next() >> (rng.next() % 50));
        }
        let s = h.stats();
        assert_eq!(s.count, h.count());
        assert_eq!(s.mean, h.mean());
        assert_eq!(s.p50, h.p50());
        assert_eq!(s.p90, h.p90());
        assert_eq!(s.p99, h.p99());
        assert_eq!(s.p999, h.p999());
        assert_eq!(s.max, h.max());
    }

    #[test]
    fn stats_since_equals_materialised_diff() {
        let mut rng = Rng(0x5151515151);
        let mut cum = LatHist::new();
        let mut prev = cum.clone();
        for _ in 0..8 {
            for _ in 0..700 {
                cum.record(rng.next() % 5_000_000);
            }
            let lazy = cum.stats_since(&prev);
            let strict = cum.diff(&prev).stats();
            assert_eq!(lazy, strict);
            prev = cum.clone();
        }
        // Empty window.
        assert_eq!(cum.stats_since(&cum.clone()), HistStats::default());
    }

    #[test]
    fn record_demand_matches_per_class_oracle() {
        // Alternating classes and values must land bit-identically in the
        // per-class histograms a raw `record_ns` oracle builds.
        let mut rng = Rng(99);
        let mut rec = FlightRecorder::new();
        let mut oracle: Vec<[LatHist; 2]> = vec![Default::default(), Default::default()];
        let values = [100.25f64, 100.25, 380.0, 47.5, 380.0];
        for _ in 0..50_000 {
            let tier = (rng.next() % 2) as u8;
            let huge = rng.next().is_multiple_of(4);
            let v = values[(rng.next() % values.len() as u64) as usize];
            rec.record_demand(tier, huge, v);
            oracle[tier as usize][huge as usize].record_ns(v);
        }
        for t in 0..2u8 {
            for huge in [false, true] {
                assert_eq!(
                    rec.demand(t, huge).unwrap(),
                    &oracle[t as usize][huge as usize],
                    "class ({t}, {huge}) diverged"
                );
            }
        }
    }

    #[test]
    fn demand_all_stats_since_matches_diff_path() {
        let mut rng = Rng(0x777);
        let mut rec = FlightRecorder::new();
        let mut prev = rec.clone();
        for _ in 0..6 {
            for _ in 0..2_000 {
                rec.record_demand(
                    (rng.next() % 3) as u8,
                    rng.next().is_multiple_of(2),
                    (rng.next() % 100_000) as f64,
                );
            }
            let lazy = rec.demand_all_stats_since(&prev);
            let strict = rec.diff(&prev).demand_all().stats();
            assert_eq!(lazy, strict);
            assert_eq!(rec.demand_all_stats(), rec.demand_all().stats());
            prev.snapshot_from(&rec);
        }
    }

    #[test]
    fn snapshot_from_equals_clone() {
        let mut rec = FlightRecorder::new();
        for i in 0..5_000u64 {
            rec.record_demand((i % 2) as u8, i % 8 == 0, (i % 977) as f64);
            if i % 7 == 0 {
                rec.record_transfer(i as f64);
                rec.record_queue_wait((i / 2) as f64);
            }
        }
        let mut snap = FlightRecorder::new();
        snap.snapshot_from(&rec);
        // The snapshot diffs cleanly against the source: empty window.
        assert_eq!(rec.demand_all_stats_since(&snap), HistStats::default());
        assert!(rec.diff(&snap).demand_all().is_empty());
        assert_eq!(rec.diff(&snap).transfer.count(), 0);
    }

    #[test]
    fn ns_conversion_rounds_half_up_and_clamps() {
        assert_eq!(ns_to_u64(0.0), 0);
        assert_eq!(ns_to_u64(0.49), 0);
        assert_eq!(ns_to_u64(0.5), 1);
        assert_eq!(ns_to_u64(99.9), 100);
        assert_eq!(ns_to_u64(-5.0), 0);
        assert_eq!(ns_to_u64(f64::NAN), 0);
    }
}
