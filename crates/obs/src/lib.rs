//! # memtis-obs — observability for the tiering substrate
//!
//! A unified tracing/metrics layer for the simulator, the MEMTIS policy,
//! and every baseline:
//!
//! - [`event`] — typed trace events ([`Event`]/[`EventKind`]) carrying
//!   sim-time, page id, tier, and cause.
//! - [`ring`] — a fixed-capacity, drop-oldest event ring ([`EventRing`])
//!   with a dropped-event counter; pushes never allocate once full.
//! - [`registry`] — monotonic counters and gauges ([`Registry`]) updated
//!   with relaxed atomic operations.
//! - [`window`] — a windowed time-series collector ([`WindowCollector`])
//!   snapshotting hit ratios, migration bandwidth, and histogram state
//!   every N simulation events into [`WindowSample`]s.
//! - [`observer`] — the [`Observer`] trait instrumentation sites are
//!   generic over. The [`NopObserver`] default compiles to nothing;
//!   [`TracingObserver`] records everything.
//! - [`export`] — JSONL and Chrome/Perfetto `trace_event` exporters plus
//!   dependency-free validators for CI smoke checks.
//! - [`lathist`] — HDR-style log-linear latency histograms ([`LatHist`])
//!   and the [`FlightRecorder`] aggregate (demand latency by
//!   tier/page-size, transfer latency, queue wait, abort-to-retry lag).
//! - [`profile`] — the phase self-profiler ([`Profiler`]/[`SpanId`]):
//!   scoped host-time spans attributed to simulator phases.
//!
//! The crate is dependency-free (events carry plain `u64`/`u8` ids) so the
//! simulator can depend on it without cycles.

pub mod event;
pub mod export;
pub mod json;
pub mod lathist;
pub mod observer;
pub mod profile;
pub mod registry;
pub mod ring;
pub mod window;

pub use event::{Event, EventKind, FaultKind, MigrationFailure, ShootdownCause, ThresholdCause};
pub use export::{
    export_jsonl, export_perfetto, validate_jsonl, validate_perfetto, JsonlSummary, JSONL_SCHEMA,
};
pub use lathist::{FlightRecorder, HistStats, LatHist};
pub use observer::{NopObserver, Observer, TracingObserver};
pub use profile::{Profiler, SpanGuard, SpanId, SpanStat, ALL_SPANS};
pub use registry::{CounterId, GaugeId, Registry};
pub use ring::EventRing;
pub use window::{WindowCollector, WindowCut, WindowSample};
