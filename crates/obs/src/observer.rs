//! The [`Observer`] trait and its two canonical implementations.
//!
//! Instrumentation sites hold a `&mut dyn Observer` (or are generic over
//! `O: Observer`) and guard every emission with [`Observer::enabled`]. For
//! [`NopObserver`] that check is a constant `false` the optimizer deletes
//! together with the event-construction code behind it, so an untraced
//! build pays nothing — not even a branch — at the instrumentation sites.

use std::sync::Arc;

use crate::event::{Event, EventKind};
use crate::profile::Profiler;
use crate::registry::{CounterId, GaugeId, Registry};
use crate::ring::EventRing;
use crate::window::WindowSample;

/// Sink for trace events and window samples.
///
/// All methods have no-op defaults so implementations opt into exactly the
/// signals they care about. The trait is object-safe: policies behind
/// `Box<dyn TieringPolicy>` receive a `&mut dyn Observer`.
pub trait Observer {
    /// Whether this observer wants events at all. Emission sites check
    /// this before constructing an [`Event`], so a `false` constant makes
    /// the whole site dead code.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event.
    #[inline]
    fn record(&mut self, event: Event) {
        let _ = event;
    }

    /// Notifies that a telemetry window closed.
    #[inline]
    fn on_window(&mut self, sample: &WindowSample) {
        let _ = sample;
    }

    /// The phase self-profiler this observer carries, if any. Span sites
    /// go through this accessor, so with the default `None` (and in
    /// particular with [`NopObserver`]) every span is dead code.
    #[inline]
    fn profiler(&self) -> Option<&Arc<Profiler>> {
        None
    }

    /// Whether the flight recorder (latency histograms) should be
    /// attached. Separate from [`Observer::enabled`] so an events-only
    /// tracer can measure pure event-stream overhead.
    #[inline]
    fn flight_enabled(&self) -> bool {
        false
    }
}

/// The default observer: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopObserver;

impl Observer for NopObserver {}

/// Blanket forwarding so `&mut O` works where `impl Observer` is expected.
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }

    #[inline]
    fn on_window(&mut self, sample: &WindowSample) {
        (**self).on_window(sample);
    }

    #[inline]
    fn profiler(&self) -> Option<&Arc<Profiler>> {
        (**self).profiler()
    }

    #[inline]
    fn flight_enabled(&self) -> bool {
        (**self).flight_enabled()
    }
}

/// A recording observer: events go into a drop-oldest [`EventRing`] and
/// every event also bumps the matching [`Registry`] counters, so counters
/// stay exact even after the ring overflows.
#[derive(Debug, Default)]
pub struct TracingObserver {
    /// The event ring (drop-oldest on overflow).
    pub ring: EventRing,
    /// Counters and gauges derived from the event stream.
    pub registry: Registry,
    /// The phase self-profiler, when the full flight recorder is on.
    pub profiler: Option<Arc<Profiler>>,
    /// Whether latency histograms should be attached to the machine.
    pub flight: bool,
}

impl TracingObserver {
    /// Creates a full tracer (events + profiler + flight recorder) with
    /// the default ring capacity.
    pub fn new() -> Self {
        TracingObserver {
            profiler: Some(Arc::new(Profiler::new())),
            flight: true,
            ..Default::default()
        }
    }

    /// Creates a full tracer retaining at most `capacity` events.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        TracingObserver {
            ring: EventRing::with_capacity(capacity),
            ..Self::new()
        }
    }

    /// Creates a tracer that records events only — no profiler spans, no
    /// latency histograms. Used to separate event-stream overhead from
    /// flight-recorder overhead in the hotpath bench.
    pub fn events_only() -> Self {
        TracingObserver::default()
    }
}

impl Observer for TracingObserver {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    #[inline]
    fn flight_enabled(&self) -> bool {
        self.flight
    }

    fn record(&mut self, event: Event) {
        let r = &self.registry;
        r.inc(CounterId::EventsRecorded);
        match event.kind {
            EventKind::Promotion { .. } => r.inc(CounterId::Promotions),
            EventKind::Demotion { .. } => r.inc(CounterId::Demotions),
            EventKind::Split { .. } => r.inc(CounterId::Splits),
            EventKind::Collapse { .. } => r.inc(CounterId::Collapses),
            EventKind::CoolingTick { .. } => r.inc(CounterId::CoolingTicks),
            EventKind::ThresholdRecompute { .. } => r.inc(CounterId::ThresholdRecomputes),
            EventKind::SampleBatch {
                samples,
                load_period,
                cpu_usage,
            } => {
                r.inc(CounterId::SampleBatches);
                r.add(CounterId::SamplesProcessed, samples);
                r.set_gauge(GaugeId::LoadPeriod, load_period as f64);
                r.set_gauge(GaugeId::SamplingCpu, cpu_usage);
            }
            EventKind::TlbShootdown { .. } => r.inc(CounterId::TlbShootdowns),
            EventKind::MigrationFailed { cause, .. } => {
                if cause == crate::event::MigrationFailure::Cancelled {
                    r.inc(CounterId::MigrationsCancelled);
                } else {
                    r.inc(CounterId::MigrationsFailed);
                }
            }
            EventKind::MigrationEnqueued { queue_depth, .. } => {
                r.inc(CounterId::MigrationsEnqueued);
                r.set_gauge(GaugeId::MigrationQueueDepth, queue_depth as f64);
            }
            EventKind::MigrationStarted { .. } => {}
            // Asynchronous completions feed the same promotion/demotion
            // counters the synchronous events do, so counter semantics
            // don't depend on the engine mode.
            EventKind::MigrationCompleted { from, to, .. } => {
                if to < from {
                    r.inc(CounterId::Promotions);
                } else {
                    r.inc(CounterId::Demotions);
                }
            }
            EventKind::MigrationAborted { .. } => r.inc(CounterId::MigrationsAborted),
            EventKind::FaultInjected { .. } => r.inc(CounterId::FaultsInjected),
            EventKind::HistUnderflow { count } => r.add(CounterId::HistUnderflow, count),
            EventKind::ShardBarrier { .. } => r.inc(CounterId::ShardBarriers),
        }
        self.ring.push(event);
        self.registry
            .set_counter(CounterId::EventsDropped, self.ring.dropped());
    }

    fn on_window(&mut self, sample: &WindowSample) {
        let r = &self.registry;
        r.set_gauge(GaugeId::Rhr, sample.rhr);
        r.set_gauge(GaugeId::Ehr, sample.ehr);
        if let Some(v) = sample.gauge("hot_bytes") {
            r.set_gauge(GaugeId::HotSetBytes, v);
        }
        if let Some(v) = sample.gauge("warm_bytes") {
            r.set_gauge(GaugeId::WarmSetBytes, v);
        }
        if let Some(v) = sample.gauge("cold_bytes") {
            r.set_gauge(GaugeId::ColdSetBytes, v);
        }
        let active = sample.hist_bins.iter().filter(|&&b| b > 0).count();
        if !sample.hist_bins.is_empty() {
            r.set_gauge(GaugeId::HistActiveBins, active as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MigrationFailure, ShootdownCause};

    #[test]
    fn nop_observer_is_disabled() {
        let mut o = NopObserver;
        assert!(!o.enabled());
        o.record(Event::new(
            0.0,
            EventKind::TlbShootdown {
                vpage: 1,
                cause: ShootdownCause::Unmap,
            },
        ));
    }

    #[test]
    fn tracer_modes_gate_profiler_and_flight() {
        let full = TracingObserver::new();
        assert!(full.profiler().is_some());
        assert!(full.flight_enabled());
        let events = TracingObserver::events_only();
        assert!(events.enabled());
        assert!(events.profiler().is_none());
        assert!(!events.flight_enabled());
        assert!(NopObserver.profiler().is_none());
        assert!(!NopObserver.flight_enabled());
    }

    #[test]
    fn tracer_derives_counters_from_events() {
        let mut o = TracingObserver::new();
        assert!(o.enabled());
        o.record(Event::new(
            1.0,
            EventKind::Promotion {
                vpage: 1,
                from: 1,
                to: 0,
                bytes: 4096,
            },
        ));
        o.record(Event::new(
            2.0,
            EventKind::SampleBatch {
                samples: 64,
                load_period: 1007,
                cpu_usage: 0.02,
            },
        ));
        o.record(Event::new(
            3.0,
            EventKind::MigrationFailed {
                vpage: 9,
                to: 0,
                cause: MigrationFailure::Cancelled,
            },
        ));
        o.record(Event::new(
            4.0,
            EventKind::MigrationFailed {
                vpage: 9,
                to: 0,
                cause: MigrationFailure::OutOfMemory,
            },
        ));
        let r = &o.registry;
        assert_eq!(r.counter(CounterId::EventsRecorded), 4);
        assert_eq!(r.counter(CounterId::Promotions), 1);
        assert_eq!(r.counter(CounterId::SampleBatches), 1);
        assert_eq!(r.counter(CounterId::SamplesProcessed), 64);
        assert_eq!(r.counter(CounterId::MigrationsCancelled), 1);
        assert_eq!(r.counter(CounterId::MigrationsFailed), 1);
        assert_eq!(r.gauge(GaugeId::LoadPeriod), 1007.0);
        assert_eq!(o.ring.len(), 4);
    }

    #[test]
    fn dropped_counter_mirrors_ring() {
        let mut o = TracingObserver::with_ring_capacity(2);
        for i in 0..5 {
            o.record(Event::new(
                i as f64,
                EventKind::TlbShootdown {
                    vpage: i,
                    cause: ShootdownCause::Migration,
                },
            ));
        }
        assert_eq!(o.registry.counter(CounterId::EventsRecorded), 5);
        assert_eq!(o.registry.counter(CounterId::EventsDropped), 3);
        assert_eq!(o.ring.dropped(), 3);
    }

    #[test]
    fn window_updates_gauges() {
        let mut o = TracingObserver::new();
        let s = WindowSample {
            index: 0,
            end_event: 10,
            wall_ns: 1e6,
            accesses: 10,
            window_accesses: 10,
            window_throughput: 1.0,
            fast_hit_ratio: 0.5,
            tier_hit_ratios: vec![0.5, 0.5],
            rhr: 0.8,
            ehr: 0.9,
            migrated_bytes: 0,
            migration_bw: 0.0,
            hist_bins: vec![0, 3, 0, 1],
            gauges: vec![("hot_bytes", 123.0)],
        };
        o.on_window(&s);
        assert_eq!(o.registry.gauge(GaugeId::Rhr), 0.8);
        assert_eq!(o.registry.gauge(GaugeId::Ehr), 0.9);
        assert_eq!(o.registry.gauge(GaugeId::HotSetBytes), 123.0);
        assert_eq!(o.registry.gauge(GaugeId::HistActiveBins), 2.0);
    }
}
