//! Phase self-profiler: scoped host-time spans attributed to simulator
//! phases.
//!
//! A [`Profiler`] is a fixed table of `(calls, ns)` atomic cells, one per
//! [`SpanId`]. Instrumentation sites open a [`SpanGuard`] (which stamps
//! `Instant::now()`) and the guard records the elapsed host nanoseconds on
//! drop. Sites reach the profiler through
//! [`crate::Observer::profiler`], whose default returns `None` — so with
//! [`crate::NopObserver`] every span site is statically dead code and the
//! untraced hot loop pays nothing.
//!
//! Span times are **host** time: they decompose `sim_events / host_ns`
//! into where the simulator itself spends wall-clock, and must never be
//! mixed into deterministic simulated-time report fields.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The simulator phases the profiler attributes host time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanId {
    /// Delivering PEBS-style samples to the policy (`on_access` and
    /// runtime ksampled drains).
    SamplingDrain,
    /// MEMTIS cooling sweep (`run_cooling`).
    CoolingTick,
    /// MEMTIS split/promotion threshold adaptation (`run_adaptation`).
    ThresholdRecompute,
    /// A full policy `tick()` (cooling + adaptation + migration planning).
    PolicyTick,
    /// Advancing the async migration engine (`pump_transfers`).
    MigrationPump,
    /// Waiting at the sharded-burst barrier (worker join).
    ShardBarrier,
    /// Coordinator-side fold of sharded lane outcomes.
    ShardFold,
    /// Batched access execution inside the machine.
    BatchExec,
    /// Cutting a telemetry window.
    WindowCut,
}

/// All span ids, in display order. `name()` is matched exhaustively, so a
/// new variant fails compilation until it is named and listed here (the
/// `table_covers_every_span` test pins the list length).
pub const ALL_SPANS: [SpanId; 9] = [
    SpanId::SamplingDrain,
    SpanId::CoolingTick,
    SpanId::ThresholdRecompute,
    SpanId::PolicyTick,
    SpanId::MigrationPump,
    SpanId::ShardBarrier,
    SpanId::ShardFold,
    SpanId::BatchExec,
    SpanId::WindowCut,
];

impl SpanId {
    /// Stable snake_case name used in reports and the diff tool.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::SamplingDrain => "sampling_drain",
            SpanId::CoolingTick => "cooling_tick",
            SpanId::ThresholdRecompute => "threshold_recompute",
            SpanId::PolicyTick => "policy_tick",
            SpanId::MigrationPump => "migration_pump",
            SpanId::ShardBarrier => "shard_barrier",
            SpanId::ShardFold => "shard_fold",
            SpanId::BatchExec => "batch_exec",
            SpanId::WindowCut => "window_cut",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

#[derive(Debug, Default)]
struct Cell {
    calls: AtomicU64,
    ns: AtomicU64,
}

/// Accumulated `(calls, host-ns)` per phase. Cheap to share: sites hold
/// an `Arc<Profiler>` and record with relaxed atomics, so the runtime
/// crate's real threads and the single-threaded simulator use the same
/// type.
#[derive(Debug, Default)]
pub struct Profiler {
    cells: [Cell; ALL_SPANS.len()],
}

/// One row of the attribution table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStat {
    /// Which phase.
    pub id: SpanId,
    /// Completed span count.
    pub calls: u64,
    /// Total host nanoseconds inside the span.
    pub ns: u64,
}

impl Profiler {
    /// A zeroed profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one completed span of `ns` host-nanoseconds to `id`.
    #[inline]
    pub fn record(&self, id: SpanId, ns: u64) {
        let c = &self.cells[id.index()];
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Opens a scoped span; host time from now until the guard drops is
    /// attributed to `id`.
    #[inline]
    pub fn enter(self: &Arc<Self>, id: SpanId) -> SpanGuard {
        SpanGuard {
            profiler: Arc::clone(self),
            id,
            start: Instant::now(),
        }
    }

    /// `(calls, ns)` for one phase.
    pub fn get(&self, id: SpanId) -> (u64, u64) {
        let c = &self.cells[id.index()];
        (
            c.calls.load(Ordering::Relaxed),
            c.ns.load(Ordering::Relaxed),
        )
    }

    /// The attribution table, every phase in display order (including
    /// zero rows, so consumers see a fixed schema).
    pub fn stats(&self) -> Vec<SpanStat> {
        ALL_SPANS
            .iter()
            .map(|&id| {
                let (calls, ns) = self.get(id);
                SpanStat { id, calls, ns }
            })
            .collect()
    }

    /// Total host nanoseconds across all phases. Spans may nest
    /// (e.g. `threshold_recompute` inside `cooling_tick` inside
    /// `policy_tick`), so this can exceed wall time.
    pub fn total_ns(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.ns.load(Ordering::Relaxed))
            .sum()
    }
}

/// RAII span: records elapsed host time into its profiler on drop. Owns
/// its `Arc` so call sites never fight the borrow checker over the
/// observer.
pub struct SpanGuard {
    profiler: Arc<Profiler>,
    id: SpanId,
    start: Instant,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.profiler.record(self.id, ns);
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanGuard({})", self.id.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_span() {
        let p = Profiler::new();
        let stats = p.stats();
        assert_eq!(stats.len(), ALL_SPANS.len());
        // Names are unique and snake_case.
        for (i, s) in stats.iter().enumerate() {
            let n = s.id.name();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            for other in &stats[i + 1..] {
                assert_ne!(n, other.id.name());
            }
        }
    }

    #[test]
    fn guard_records_on_drop() {
        let p = Arc::new(Profiler::new());
        {
            let _g = p.enter(SpanId::CoolingTick);
        }
        {
            let _g = p.enter(SpanId::CoolingTick);
        }
        let (calls, _ns) = p.get(SpanId::CoolingTick);
        assert_eq!(calls, 2);
        assert_eq!(p.get(SpanId::MigrationPump), (0, 0));
    }

    #[test]
    fn record_accumulates() {
        let p = Profiler::new();
        p.record(SpanId::BatchExec, 100);
        p.record(SpanId::BatchExec, 250);
        assert_eq!(p.get(SpanId::BatchExec), (2, 350));
        assert_eq!(p.total_ns(), 350);
    }
}
