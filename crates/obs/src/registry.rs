//! Counter and gauge registry.
//!
//! Monotonic counters and point-in-time gauges with cheap relaxed-atomic
//! updates: an increment is a single `fetch_add(Relaxed)`, so shared-ring
//! consumers (e.g. the runtime's real-thread daemons) can bump counters
//! without synchronizing with readers. Readers see each cell individually
//! atomically; cross-counter snapshots are only consistent at quiescence,
//! which is all the end-of-run reporting needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Events recorded into the trace ring (before overflow drops).
    EventsRecorded,
    /// Events lost to ring overflow (drop-oldest).
    EventsDropped,
    /// Pages promoted toward the fast tier.
    Promotions,
    /// Pages demoted away from the fast tier.
    Demotions,
    /// Huge pages split.
    Splits,
    /// Huge pages collapsed.
    Collapses,
    /// Histogram cooling passes.
    CoolingTicks,
    /// Threshold recomputations (Algorithm 1 walks).
    ThresholdRecomputes,
    /// PEBS sample batches processed.
    SampleBatches,
    /// PEBS samples processed (sum over batches).
    SamplesProcessed,
    /// TLB shootdowns observed.
    TlbShootdowns,
    /// Migration attempts that failed in the machine.
    MigrationsFailed,
    /// Queued migrations cancelled at re-validation.
    MigrationsCancelled,
    /// Asynchronous transfers admitted to the migration engine.
    MigrationsEnqueued,
    /// In-flight transfers that ended without remapping the page.
    MigrationsAborted,
    /// Perturbations applied by the fault-injection layer.
    FaultsInjected,
    /// Histogram bin underflows (metadata/histogram desync) detected.
    HistUnderflow,
    /// Epoch-barrier telemetry events emitted by sharded runs.
    ShardBarriers,
}

impl CounterId {
    /// All counters, in registry order.
    pub const ALL: [CounterId; 18] = [
        CounterId::EventsRecorded,
        CounterId::EventsDropped,
        CounterId::Promotions,
        CounterId::Demotions,
        CounterId::Splits,
        CounterId::Collapses,
        CounterId::CoolingTicks,
        CounterId::ThresholdRecomputes,
        CounterId::SampleBatches,
        CounterId::SamplesProcessed,
        CounterId::TlbShootdowns,
        CounterId::MigrationsFailed,
        CounterId::MigrationsCancelled,
        CounterId::MigrationsEnqueued,
        CounterId::MigrationsAborted,
        CounterId::FaultsInjected,
        CounterId::HistUnderflow,
        CounterId::ShardBarriers,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            CounterId::EventsRecorded => "events_recorded",
            CounterId::EventsDropped => "events_dropped",
            CounterId::Promotions => "promotions",
            CounterId::Demotions => "demotions",
            CounterId::Splits => "splits",
            CounterId::Collapses => "collapses",
            CounterId::CoolingTicks => "cooling_ticks",
            CounterId::ThresholdRecomputes => "threshold_recomputes",
            CounterId::SampleBatches => "sample_batches",
            CounterId::SamplesProcessed => "samples_processed",
            CounterId::TlbShootdowns => "tlb_shootdowns",
            CounterId::MigrationsFailed => "migrations_failed",
            CounterId::MigrationsCancelled => "migrations_cancelled",
            CounterId::MigrationsEnqueued => "migrations_enqueued",
            CounterId::MigrationsAborted => "migrations_aborted",
            CounterId::FaultsInjected => "faults_injected",
            CounterId::HistUnderflow => "hist_underflow",
            CounterId::ShardBarriers => "shard_barriers",
        }
    }
}

/// Gauge identifiers (point-in-time values, not monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Bytes currently classified hot.
    HotSetBytes,
    /// Bytes currently classified warm.
    WarmSetBytes,
    /// Bytes currently classified cold.
    ColdSetBytes,
    /// Non-empty histogram bins (occupancy of the classification array).
    HistActiveBins,
    /// Estimated sampling CPU usage (fraction of one core).
    SamplingCpu,
    /// Current PEBS load sampling period.
    LoadPeriod,
    /// Most recent windowed real hit ratio (rHR).
    Rhr,
    /// Most recent windowed estimated base-page hit ratio (eHR).
    Ehr,
    /// Migration-engine admission-queue depth after the latest enqueue.
    MigrationQueueDepth,
}

impl GaugeId {
    /// All gauges, in registry order.
    pub const ALL: [GaugeId; 9] = [
        GaugeId::HotSetBytes,
        GaugeId::WarmSetBytes,
        GaugeId::ColdSetBytes,
        GaugeId::HistActiveBins,
        GaugeId::SamplingCpu,
        GaugeId::LoadPeriod,
        GaugeId::Rhr,
        GaugeId::Ehr,
        GaugeId::MigrationQueueDepth,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            GaugeId::HotSetBytes => "hot_set_bytes",
            GaugeId::WarmSetBytes => "warm_set_bytes",
            GaugeId::ColdSetBytes => "cold_set_bytes",
            GaugeId::HistActiveBins => "hist_active_bins",
            GaugeId::SamplingCpu => "sampling_cpu",
            GaugeId::LoadPeriod => "load_period",
            GaugeId::Rhr => "rhr",
            GaugeId::Ehr => "ehr",
            GaugeId::MigrationQueueDepth => "migration_queue_depth",
        }
    }
}

/// The counter/gauge registry.
///
/// Gauges store `f64` bit patterns in `AtomicU64` cells so both kinds share
/// the same relaxed-atomic storage.
#[derive(Debug, Default)]
pub struct Registry {
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicU64; GaugeId::ALL.len()],
}

impl Registry {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (relaxed).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one (relaxed).
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current counter value (relaxed).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Sets a counter to an absolute value (used to mirror an external
    /// monotonic source like the ring's dropped count).
    pub fn set_counter(&self, id: CounterId, v: u64) {
        self.counters[id as usize].store(v, Ordering::Relaxed);
    }

    /// Sets a gauge (relaxed).
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: f64) {
        self.gauges[id as usize].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current gauge value (relaxed).
    pub fn gauge(&self, id: GaugeId) -> f64 {
        f64::from_bits(self.gauges[id as usize].load(Ordering::Relaxed))
    }

    /// Snapshot of all counters as `(name, value)` pairs.
    pub fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        CounterId::ALL
            .iter()
            .map(|&id| (id.name(), self.counter(id)))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)` pairs.
    pub fn gauges_snapshot(&self) -> Vec<(&'static str, f64)> {
        GaugeId::ALL
            .iter()
            .map(|&id| (id.name(), self.gauge(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.inc(CounterId::Promotions);
        r.add(CounterId::Promotions, 4);
        assert_eq!(r.counter(CounterId::Promotions), 5);
        assert_eq!(r.counter(CounterId::Demotions), 0);
    }

    #[test]
    fn gauges_store_point_values() {
        let r = Registry::new();
        r.set_gauge(GaugeId::Rhr, 0.875);
        r.set_gauge(GaugeId::Rhr, 0.5);
        assert_eq!(r.gauge(GaugeId::Rhr), 0.5);
        assert_eq!(r.gauge(GaugeId::Ehr), 0.0);
    }

    #[test]
    fn snapshots_cover_every_id() {
        let r = Registry::new();
        assert_eq!(r.counters_snapshot().len(), CounterId::ALL.len());
        assert_eq!(r.gauges_snapshot().len(), GaugeId::ALL.len());
        // Names are unique (exporter keys).
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::ALL.len());
    }

    #[test]
    fn updates_are_safe_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.inc(CounterId::TlbShootdowns);
                    }
                });
            }
        });
        assert_eq!(r.counter(CounterId::TlbShootdowns), 4000);
    }
}
