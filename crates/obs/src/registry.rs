//! Counter and gauge registry.
//!
//! Monotonic counters and point-in-time gauges with cheap relaxed-atomic
//! updates: an increment is a single `fetch_add(Relaxed)`, so shared-ring
//! consumers (e.g. the runtime's real-thread daemons) can bump counters
//! without synchronizing with readers. Readers see each cell individually
//! atomically; cross-counter snapshots are only consistent at quiescence,
//! which is all the end-of-run reporting needs.
//!
//! # Naming convention
//!
//! Exported names are `snake_case` and end with a unit suffix:
//!
//! - `_total` — monotonic event counts (every [`CounterId`]),
//! - `_bytes` — byte quantities,
//! - `_ns` — nanosecond durations,
//! - `_ratio` — dimensionless fractions in `[0, 1]`,
//! - `_count` — point-in-time discrete quantities (bins, queue entries,
//!   sampling-period lengths).
//!
//! The [`registry_ids!`] macro generates the enum, its `ALL` table, and its
//! `name()` method from one variant list, so a new counter or gauge cannot
//! be added without a name — the match and the table are exhaustive by
//! construction — and a unit test rejects names that stray from the suffix
//! convention.

use std::sync::atomic::{AtomicU64, Ordering};

/// Defines a registry identifier enum together with its `ALL` table and
/// `name()` accessor. One variant list feeds all three, so an unnamed or
/// unlisted identifier is unrepresentable.
macro_rules! registry_ids {
    (
        $(#[$enum_meta:meta])*
        $enum_name:ident {
            $($(#[$variant_meta:meta])* $variant:ident => $name:literal,)+
        }
    ) => {
        $(#[$enum_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $enum_name {
            $($(#[$variant_meta])* $variant,)+
        }

        impl $enum_name {
            /// All identifiers, in registry order.
            pub const ALL: [$enum_name; [$(stringify!($variant)),+].len()] =
                [$($enum_name::$variant,)+];

            /// Stable `snake_case` exporter name, ending in a unit suffix
            /// (see the module docs for the convention).
            pub fn name(&self) -> &'static str {
                match self {
                    $($enum_name::$variant => $name,)+
                }
            }
        }
    };
}

registry_ids! {
    /// Monotonic counter identifiers.
    CounterId {
        /// Events recorded into the trace ring (before overflow drops).
        EventsRecorded => "events_recorded_total",
        /// Events lost to ring overflow (drop-oldest).
        EventsDropped => "events_dropped_total",
        /// Pages promoted toward the fast tier.
        Promotions => "promotions_total",
        /// Pages demoted away from the fast tier.
        Demotions => "demotions_total",
        /// Huge pages split.
        Splits => "splits_total",
        /// Huge pages collapsed.
        Collapses => "collapses_total",
        /// Histogram cooling passes.
        CoolingTicks => "cooling_ticks_total",
        /// Threshold recomputations (Algorithm 1 walks).
        ThresholdRecomputes => "threshold_recomputes_total",
        /// PEBS sample batches processed.
        SampleBatches => "sample_batches_total",
        /// PEBS samples processed (sum over batches).
        SamplesProcessed => "samples_processed_total",
        /// TLB shootdowns observed.
        TlbShootdowns => "tlb_shootdowns_total",
        /// Migration attempts that failed in the machine.
        MigrationsFailed => "migrations_failed_total",
        /// Queued migrations cancelled at re-validation.
        MigrationsCancelled => "migrations_cancelled_total",
        /// Asynchronous transfers admitted to the migration engine.
        MigrationsEnqueued => "migrations_enqueued_total",
        /// In-flight transfers that ended without remapping the page.
        MigrationsAborted => "migrations_aborted_total",
        /// Perturbations applied by the fault-injection layer.
        FaultsInjected => "faults_injected_total",
        /// Histogram bin underflows (metadata/histogram desync) detected.
        HistUnderflow => "hist_underflows_total",
        /// Epoch-barrier telemetry events emitted by sharded runs.
        ShardBarriers => "shard_barriers_total",
    }
}

registry_ids! {
    /// Gauge identifiers (point-in-time values, not monotonic).
    GaugeId {
        /// Bytes currently classified hot.
        HotSetBytes => "hot_set_bytes",
        /// Bytes currently classified warm.
        WarmSetBytes => "warm_set_bytes",
        /// Bytes currently classified cold.
        ColdSetBytes => "cold_set_bytes",
        /// Non-empty histogram bins (occupancy of the classification array).
        HistActiveBins => "hist_active_bins_count",
        /// Estimated sampling CPU usage (fraction of one core).
        SamplingCpu => "sampling_cpu_ratio",
        /// Current PEBS load sampling period (accesses between samples).
        LoadPeriod => "load_period_count",
        /// Most recent windowed real hit ratio (rHR).
        Rhr => "rhr_ratio",
        /// Most recent windowed estimated base-page hit ratio (eHR).
        Ehr => "ehr_ratio",
        /// Migration-engine admission-queue depth after the latest enqueue.
        MigrationQueueDepth => "migration_queue_depth_count",
    }
}

/// The counter/gauge registry.
///
/// Gauges store `f64` bit patterns in `AtomicU64` cells so both kinds share
/// the same relaxed-atomic storage.
#[derive(Debug, Default)]
pub struct Registry {
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicU64; GaugeId::ALL.len()],
}

impl Registry {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter (relaxed).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one (relaxed).
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current counter value (relaxed).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Sets a counter to an absolute value (used to mirror an external
    /// monotonic source like the ring's dropped count).
    pub fn set_counter(&self, id: CounterId, v: u64) {
        self.counters[id as usize].store(v, Ordering::Relaxed);
    }

    /// Sets a gauge (relaxed).
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, v: f64) {
        self.gauges[id as usize].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current gauge value (relaxed).
    pub fn gauge(&self, id: GaugeId) -> f64 {
        f64::from_bits(self.gauges[id as usize].load(Ordering::Relaxed))
    }

    /// Snapshot of all counters as `(name, value)` pairs.
    pub fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        CounterId::ALL
            .iter()
            .map(|&id| (id.name(), self.counter(id)))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)` pairs.
    pub fn gauges_snapshot(&self) -> Vec<(&'static str, f64)> {
        GaugeId::ALL
            .iter()
            .map(|&id| (id.name(), self.gauge(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.inc(CounterId::Promotions);
        r.add(CounterId::Promotions, 4);
        assert_eq!(r.counter(CounterId::Promotions), 5);
        assert_eq!(r.counter(CounterId::Demotions), 0);
    }

    #[test]
    fn gauges_store_point_values() {
        let r = Registry::new();
        r.set_gauge(GaugeId::Rhr, 0.875);
        r.set_gauge(GaugeId::Rhr, 0.5);
        assert_eq!(r.gauge(GaugeId::Rhr), 0.5);
        assert_eq!(r.gauge(GaugeId::Ehr), 0.0);
    }

    #[test]
    fn snapshots_cover_every_id() {
        let r = Registry::new();
        assert_eq!(r.counters_snapshot().len(), CounterId::ALL.len());
        assert_eq!(r.gauges_snapshot().len(), GaugeId::ALL.len());
        // Names are unique (exporter keys).
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::ALL.len());
    }

    #[test]
    fn names_follow_unit_suffix_convention() {
        let snake = |n: &str| {
            !n.is_empty()
                && n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                && !n.starts_with('_')
                && !n.ends_with('_')
                && !n.contains("__")
        };
        // Monotonic counters always count events.
        for c in CounterId::ALL {
            assert!(snake(c.name()), "counter {:?} name not snake_case", c);
            assert!(
                c.name().ends_with("_total"),
                "counter {:?} name {:?} must end with _total",
                c,
                c.name()
            );
        }
        // Gauges carry the unit of whatever they measure.
        const GAUGE_UNITS: [&str; 4] = ["_bytes", "_ns", "_ratio", "_count"];
        for g in GaugeId::ALL {
            assert!(snake(g.name()), "gauge {:?} name not snake_case", g);
            assert!(
                GAUGE_UNITS.iter().any(|u| g.name().ends_with(u)),
                "gauge {:?} name {:?} lacks a unit suffix {:?}",
                g,
                g.name(),
                GAUGE_UNITS
            );
        }
    }

    #[test]
    fn updates_are_safe_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.inc(CounterId::TlbShootdowns);
                    }
                });
            }
        });
        assert_eq!(r.counter(CounterId::TlbShootdowns), 4000);
    }
}
