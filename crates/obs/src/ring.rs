//! Fixed-capacity, drop-oldest event ring.
//!
//! The ring is a single-writer structure with no interior locking: a push
//! is an index bump plus a slot write (no allocation once the buffer has
//! filled), so tracing cannot introduce lock contention or allocator
//! traffic into the simulation loop. On overflow the *oldest* event is
//! overwritten and the dropped count grows — recent history is always
//! retained, which is what post-mortem debugging wants.

use crate::event::Event;

/// Default ring capacity (events retained).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A fixed-capacity event ring with drop-oldest overflow semantics.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    /// Total events ever pushed (retained + dropped).
    pushed: u64,
    cap: usize,
}

impl EventRing {
    /// Creates a ring retaining at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap.min(1024)),
            start: 0,
            pushed: 0,
            cap,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event was ever retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed, including dropped ones.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events lost to overflow (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Sequence number of the oldest retained event (equals the dropped
    /// count, since drops are strictly oldest-first).
    pub fn first_seq(&self) -> u64 {
        self.dropped()
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start += 1;
            if self.start == self.cap {
                self.start = 0;
            }
        }
        self.pushed += 1;
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> Event {
        Event::new(
            i as f64,
            EventKind::TlbShootdown {
                vpage: i,
                cause: crate::event::ShootdownCause::Unmap,
            },
        )
    }

    #[test]
    fn push_below_capacity_retains_everything() {
        let mut r = EventRing::with_capacity(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let ts: Vec<f64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut r = EventRing::with_capacity(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.first_seq(), 6);
        // Oldest-first order of the retained suffix.
        let ts: Vec<f64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut r = EventRing::with_capacity(0);
        r.push(ev(0));
        r.push(ev(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().next().unwrap().t_ns, 1.0);
    }
}
