//! Windowed time-series collector.
//!
//! The driver closes a window every N simulation events (accesses, allocs,
//! frees) by handing the collector a [`WindowCut`] of *cumulative*
//! machine/policy state; the collector differences consecutive cuts into
//! per-window rates ([`WindowSample`]) — throughput, per-tier hit ratios,
//! migration bandwidth — and carries the policy's point-in-time gauges and
//! histogram bin state along verbatim.
//!
//! rHR/eHR come from the policy's `rhr`/`ehr` timeline gauges when the
//! policy estimates them (MEMTIS); for policies that don't, rHR falls back
//! to the machine-measured within-window fast-tier hit ratio and eHR
//! mirrors it.

/// Cumulative run state at a window boundary, captured by the driver.
#[derive(Debug)]
pub struct WindowCut<'a> {
    /// Simulation events processed so far.
    pub events: u64,
    /// Simulated wall-clock time (ns).
    pub wall_ns: f64,
    /// Accesses executed so far.
    pub accesses: u64,
    /// Cumulative LLC-missing accesses served per tier.
    pub tier_hits: &'a [u64],
    /// Cumulative bytes copied by migrations.
    pub migrated_bytes: u64,
    /// Policy timeline gauges (name, value) at the boundary.
    pub gauges: Vec<(&'static str, f64)>,
    /// Policy histogram bin occupancy (4 KiB pages per bin); empty for
    /// policies without a classification histogram.
    pub hist_bins: Vec<u64>,
}

/// One closed telemetry window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Zero-based window index.
    pub index: u64,
    /// Cumulative simulation events at the window close.
    pub end_event: u64,
    /// Simulated wall-clock time at the window close (ns).
    pub wall_ns: f64,
    /// Cumulative accesses at the window close.
    pub accesses: u64,
    /// Accesses executed within the window.
    pub window_accesses: u64,
    /// Accesses per second of simulated time within the window.
    pub window_throughput: f64,
    /// Within-window fast-tier hit ratio (machine-measured).
    pub fast_hit_ratio: f64,
    /// Within-window hit ratio per tier (machine-measured).
    pub tier_hit_ratios: Vec<f64>,
    /// Real fast-tier hit ratio (policy-estimated when available).
    pub rhr: f64,
    /// Estimated base-page-only hit ratio (policy-estimated when available).
    pub ehr: f64,
    /// Bytes migrated within the window.
    pub migrated_bytes: u64,
    /// Migration bandwidth within the window (bytes per simulated second).
    pub migration_bw: f64,
    /// Histogram bin occupancy at the window close.
    pub hist_bins: Vec<u64>,
    /// Policy timeline gauges at the window close.
    pub gauges: Vec<(&'static str, f64)>,
}

impl WindowSample {
    /// Looks up a policy gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// Differencing collector: turns cumulative [`WindowCut`]s into
/// [`WindowSample`]s every `every` simulation events.
#[derive(Debug)]
pub struct WindowCollector {
    every: u64,
    samples: Vec<WindowSample>,
    last_events: u64,
    last_wall: f64,
    last_accesses: u64,
    last_tier_hits: Vec<u64>,
    last_migrated_bytes: u64,
}

impl WindowCollector {
    /// Creates a collector closing a window every `every` events (min 1).
    pub fn new(every: u64) -> Self {
        WindowCollector {
            every: every.max(1),
            samples: Vec::new(),
            last_events: 0,
            last_wall: 0.0,
            last_accesses: 0,
            last_tier_hits: Vec::new(),
            last_migrated_bytes: 0,
        }
    }

    /// Window length in simulation events.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether the current window is complete at `events` total events.
    #[inline]
    pub fn due(&self, events: u64) -> bool {
        events - self.last_events >= self.every
    }

    /// Events remaining at `events` total events before [`due`] becomes
    /// true. Batched drivers cap a burst at this length so a window cut can
    /// never fall in the middle of one.
    ///
    /// [`due`]: WindowCollector::due
    #[inline]
    pub fn events_until_due(&self, events: u64) -> u64 {
        (self.last_events + self.every).saturating_sub(events)
    }

    /// Whether any events accumulated since the last boundary (a final
    /// partial window should be closed).
    pub fn has_partial(&self, events: u64) -> bool {
        events > self.last_events
    }

    /// Closed windows so far.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Consumes the collector, returning all closed windows.
    pub fn into_samples(self) -> Vec<WindowSample> {
        self.samples
    }

    /// Closes the current window at `cut` and returns the new sample.
    pub fn close(&mut self, cut: WindowCut<'_>) -> &WindowSample {
        let wdur_ns = cut.wall_ns - self.last_wall;
        let window_accesses = cut.accesses - self.last_accesses;
        let window_throughput = if wdur_ns > 0.0 {
            window_accesses as f64 / (wdur_ns * 1e-9)
        } else {
            0.0
        };
        let mut whits: Vec<u64> = Vec::with_capacity(cut.tier_hits.len());
        for (i, &h) in cut.tier_hits.iter().enumerate() {
            let prev = self.last_tier_hits.get(i).copied().unwrap_or(0);
            whits.push(h - prev);
        }
        let wtotal: u64 = whits.iter().sum();
        let tier_hit_ratios: Vec<f64> = whits
            .iter()
            .map(|&h| {
                if wtotal == 0 {
                    0.0
                } else {
                    h as f64 / wtotal as f64
                }
            })
            .collect();
        let fast_hit_ratio = tier_hit_ratios.first().copied().unwrap_or(0.0);
        let migrated_bytes = cut.migrated_bytes - self.last_migrated_bytes;
        let migration_bw = if wdur_ns > 0.0 {
            migrated_bytes as f64 / (wdur_ns * 1e-9)
        } else {
            0.0
        };
        let find = |name: &str| cut.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        let rhr = find("rhr").unwrap_or(fast_hit_ratio);
        let ehr = find("ehr").unwrap_or(rhr);

        self.last_events = cut.events;
        self.last_wall = cut.wall_ns;
        self.last_accesses = cut.accesses;
        self.last_tier_hits = cut.tier_hits.to_vec();
        self.last_migrated_bytes = cut.migrated_bytes;

        self.samples.push(WindowSample {
            index: self.samples.len() as u64,
            end_event: cut.events,
            wall_ns: cut.wall_ns,
            accesses: cut.accesses,
            window_accesses,
            window_throughput,
            fast_hit_ratio,
            tier_hit_ratios,
            rhr,
            ehr,
            migrated_bytes,
            migration_bw,
            hist_bins: cut.hist_bins,
            gauges: cut.gauges,
        });
        self.samples.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(events: u64, wall: f64, acc: u64, hits: &[u64], mig: u64) -> WindowCut<'_> {
        WindowCut {
            events,
            wall_ns: wall,
            accesses: acc,
            tier_hits: hits,
            migrated_bytes: mig,
            gauges: Vec::new(),
            hist_bins: Vec::new(),
        }
    }

    #[test]
    fn windows_difference_cumulative_state() {
        let mut c = WindowCollector::new(100);
        assert!(!c.due(99));
        assert!(c.due(100));
        let hits1 = [80u64, 20];
        c.close(cut(100, 1e6, 90, &hits1, 4096));
        let hits2 = [120u64, 80];
        let s = c.close(cut(200, 3e6, 190, &hits2, 12_288)).clone();
        assert_eq!(s.index, 1);
        assert_eq!(s.window_accesses, 100);
        // 100 accesses over 2 ms = 50k/s.
        assert!((s.window_throughput - 50_000.0).abs() < 1e-6);
        // Window hits: fast 40, capacity 60.
        assert!((s.fast_hit_ratio - 0.4).abs() < 1e-12);
        assert!((s.tier_hit_ratios[1] - 0.6).abs() < 1e-12);
        assert_eq!(s.migrated_bytes, 8192);
        assert!((s.migration_bw - 8192.0 / 2e-3).abs() < 1e-6);
        assert_eq!(c.samples().len(), 2);
    }

    #[test]
    fn rhr_ehr_prefer_policy_gauges() {
        let mut c = WindowCollector::new(10);
        let hits = [5u64, 5];
        let mut k = cut(10, 1e6, 10, &hits, 0);
        k.gauges = vec![("rhr", 0.9), ("ehr", 0.95)];
        let s = c.close(k);
        assert_eq!(s.rhr, 0.9);
        assert_eq!(s.ehr, 0.95);
        assert_eq!(s.gauge("ehr"), Some(0.95));
        // Without gauges, fall back to the machine-measured ratio.
        let hits2 = [15u64, 5];
        let s = c.close(cut(20, 2e6, 20, &hits2, 0));
        assert!((s.rhr - 1.0).abs() < 1e-12);
        assert_eq!(s.rhr, s.ehr);
    }

    #[test]
    fn zero_duration_windows_are_safe() {
        let mut c = WindowCollector::new(1);
        let hits: [u64; 0] = [];
        let s = c.close(cut(1, 0.0, 0, &hits, 0));
        assert_eq!(s.window_throughput, 0.0);
        assert_eq!(s.fast_hit_ratio, 0.0);
        assert_eq!(s.migration_bw, 0.0);
    }
}
