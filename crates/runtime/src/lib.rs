//! # memtis-runtime — real-thread background daemons
//!
//! The deterministic simulation driver (in `memtis-sim`) interleaves daemon
//! work with the access stream for reproducibility. This crate mirrors the
//! *actual* kernel architecture with real concurrency: the application
//! thread executes accesses, a `ksampled` thread drains a bounded PEBS
//! buffer and updates the MEMTIS histograms, and a `kmigrated` thread wakes
//! periodically to promote/demote/split — all communicating over
//! `crossbeam` channels with `parking_lot`-locked shared state.
//!
//! Two properties of the paper's design surface naturally here:
//!
//! - **Nothing blocks the application**: samples are pushed with
//!   `try_send`; when the buffer is full the sample is *dropped* (counted),
//!   exactly like a PEBS buffer overflow, rather than stalling the app.
//! - **All migration happens asynchronously** in the `kmigrated` thread.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_sim::engine::EngineEvent;
use memtis_sim::faults::{
    FaultInjector, FaultPlan, SampleFate, TickFate, DRIVER_FAULT_SALT, RUNTIME_TICK_FAULT_SALT,
};
use memtis_sim::obs::{Profiler, SpanId, SpanStat};
use memtis_sim::prelude::{
    Access, AccessOutcome, CostAccounting, CostSink, FaultCounters, Machine, MachineConfig,
    PolicyOps, SimResult, TierId, TieringPolicy,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A sampled access forwarded to `ksampled`.
#[derive(Debug, Clone, Copy)]
struct SampleMsg {
    access: Access,
    outcome: AccessOutcome,
}

/// Counters exposed by the runtime.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Accesses executed by the application side.
    pub accesses: AtomicU64,
    /// Samples delivered to `ksampled`.
    pub samples_delivered: AtomicU64,
    /// Samples dropped because the PEBS buffer was full.
    pub samples_dropped: AtomicU64,
    /// `kmigrated` wakeups.
    pub migration_wakeups: AtomicU64,
    /// Samples discarded by fault injection (on top of buffer overflows).
    pub fault_samples_dropped: AtomicU64,
    /// Samples delivered twice by fault injection.
    pub fault_samples_duped: AtomicU64,
    /// `kmigrated` wakeups skipped by fault injection.
    pub fault_ticks_skipped: AtomicU64,
    /// `kmigrated` wakeups delayed by fault injection.
    pub fault_ticks_delayed: AtomicU64,
}

/// Handle to a running tiered-memory runtime.
pub struct Runtime {
    machine: Arc<Mutex<Machine>>,
    policy: Arc<Mutex<MemtisPolicy>>,
    sample_tx: Sender<SampleMsg>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Shared counters.
    pub stats: Arc<RuntimeStats>,
    /// Phase self-profiler shared with both daemon threads: `ksampled`
    /// delivery shows up as `sampling_drain`, `kmigrated` as `policy_tick`
    /// plus `migration_pump`.
    pub profiler: Arc<Profiler>,
}

impl Runtime {
    /// Starts the runtime: spawns `ksampled` and `kmigrated`.
    ///
    /// `wakeup` is the `kmigrated` period in real (host) time, standing in
    /// for the paper's 500 ms.
    pub fn start(machine_cfg: MachineConfig, memtis_cfg: MemtisConfig, wakeup: Duration) -> Self {
        Self::start_with_faults(machine_cfg, memtis_cfg, wakeup, &FaultPlan::default())
    }

    /// Like [`Runtime::start`], but with a seeded fault plan. Machine-level
    /// faults (forced aborts, injected dirty stores, link outages, tier
    /// pressure) are applied inside `kmigrated`'s pump; `ksampled` rolls
    /// sample drops/duplicates and `kmigrated` rolls wakeup skips/delays
    /// from independent per-thread RNG streams. Real-thread scheduling is
    /// inherently nondeterministic, so — unlike the simulation driver —
    /// only the fault *rates* are reproducible here, not exact schedules.
    pub fn start_with_faults(
        machine_cfg: MachineConfig,
        memtis_cfg: MemtisConfig,
        wakeup: Duration,
        plan: &FaultPlan,
    ) -> Self {
        let mut machine = Machine::new(machine_cfg);
        if !plan.is_inert() {
            machine.install_faults(plan);
        }
        let sample_faults =
            (!plan.is_inert()).then(|| FaultInjector::new(*plan, DRIVER_FAULT_SALT));
        let tick_faults =
            (!plan.is_inert()).then(|| FaultInjector::new(*plan, RUNTIME_TICK_FAULT_SALT));
        let machine = Arc::new(Mutex::new(machine));
        let policy = Arc::new(Mutex::new(MemtisPolicy::new(memtis_cfg)));
        let (tx, rx): (Sender<SampleMsg>, Receiver<SampleMsg>) = bounded(4096);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RuntimeStats::default());
        let profiler = Arc::new(Profiler::new());

        let mut threads = Vec::new();

        // ksampled: drain the PEBS buffer, update histograms/thresholds.
        {
            let machine = Arc::clone(&machine);
            let policy = Arc::clone(&policy);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let profiler = Arc::clone(&profiler);
            let mut faults = sample_faults;
            threads.push(
                std::thread::Builder::new()
                    .name("ksampled".into())
                    .spawn(move || {
                        let mut acct = CostAccounting::default();
                        loop {
                            match rx.recv_timeout(Duration::from_millis(5)) {
                                Ok(msg) => {
                                    let fate = match faults.as_mut() {
                                        Some(inj) => inj.sample_fate(
                                            stats.samples_delivered.load(Ordering::Relaxed) as f64,
                                            msg.access.vaddr.0,
                                        ),
                                        None => SampleFate::Deliver,
                                    };
                                    if fate == SampleFate::Drop {
                                        stats.fault_samples_dropped.fetch_add(1, Ordering::Relaxed);
                                        continue;
                                    }
                                    let deliveries =
                                        if fate == SampleFate::Duplicate { 2 } else { 1 };
                                    if fate == SampleFate::Duplicate {
                                        stats.fault_samples_duped.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let _span = profiler.enter(SpanId::SamplingDrain);
                                    let mut m = machine.lock();
                                    let mut p = policy.lock();
                                    for _ in 0..deliveries {
                                        let mut ops = PolicyOps::new(
                                            &mut m,
                                            &mut acct,
                                            CostSink::Daemon,
                                            0.0,
                                        );
                                        p.on_access(&mut ops, &msg.access, &msg.outcome);
                                    }
                                    stats.samples_delivered.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(RecvTimeoutError::Timeout) => {
                                    if shutdown.load(Ordering::Acquire) && rx.is_empty() {
                                        return;
                                    }
                                }
                                // All senders are gone: no sample can ever
                                // arrive again, so exit instead of spinning
                                // on the timeout forever. (The old `Err(_)`
                                // arm treated this like a timeout and leaked
                                // the thread when the Runtime was dropped
                                // without an explicit shutdown.)
                                Err(RecvTimeoutError::Disconnected) => return,
                            }
                        }
                    })
                    .expect("spawn ksampled"),
            );
        }

        // kmigrated: periodic promotion/demotion/split in the background.
        {
            let machine = Arc::clone(&machine);
            let policy = Arc::clone(&policy);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let profiler = Arc::clone(&profiler);
            let mut faults = tick_faults;
            threads.push(
                std::thread::Builder::new()
                    .name("kmigrated".into())
                    .spawn(move || {
                        let mut acct = CostAccounting::default();
                        let start = std::time::Instant::now();
                        while !shutdown.load(Ordering::Acquire) {
                            // Sleep in small quanta so shutdown stays
                            // responsive even with long wakeup periods.
                            let mut slept = Duration::ZERO;
                            while slept < wakeup && !shutdown.load(Ordering::Acquire) {
                                let quantum = (wakeup - slept).min(Duration::from_millis(5));
                                std::thread::sleep(quantum);
                                slept += quantum;
                            }
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            // Host wall time stands in for the simulated
                            // clock: it is monotone, which is all the
                            // engine's arbitration needs here.
                            let mut now_ns = start.elapsed().as_nanos() as f64;
                            match faults.as_mut().map(|inj| inj.tick_fate(now_ns)) {
                                Some(TickFate::Skip) => {
                                    // The wakeup never fired this period.
                                    stats.fault_ticks_skipped.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                Some(TickFate::Delay(extra_ns)) => {
                                    stats.fault_ticks_delayed.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_nanos(extra_ns as u64));
                                    now_ns = start.elapsed().as_nanos() as f64;
                                }
                                Some(TickFate::Run) | None => {}
                            }
                            let mut m = machine.lock();
                            let mut p = policy.lock();
                            {
                                let _span = profiler.enter(SpanId::PolicyTick);
                                let mut ops =
                                    PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, now_ns);
                                p.tick(&mut ops);
                            }
                            // With a bandwidth-limited link, `tick` only
                            // enqueued transfers; advance the engine and
                            // report completions/aborts back to the policy.
                            let _span = profiler.enter(SpanId::MigrationPump);
                            for ev in m.pump_transfers(now_ns) {
                                if let EngineEvent::Ended(end) = ev {
                                    let mut ops =
                                        PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, now_ns);
                                    p.on_transfer_end(&mut ops, &end);
                                }
                            }
                            stats.migration_wakeups.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn kmigrated"),
            );
        }

        Runtime {
            machine,
            policy,
            sample_tx: tx,
            shutdown,
            threads,
            stats,
            profiler,
        }
    }

    /// Snapshot of the daemon phase-attribution table (calls and host ns
    /// per span). Monotone; safe to read while the daemons run.
    pub fn profile_stats(&self) -> Vec<SpanStat> {
        self.profiler.stats()
    }

    /// Maps a region (application side), asking the policy for placement.
    pub fn alloc_region(&self, start: u64, bytes: u64, thp: bool) -> SimResult<()> {
        use memtis_sim::addr::{PageSize, VirtAddr, HUGE_PAGE_SIZE};
        let mut m = self.machine.lock();
        let mut p = self.policy.lock();
        let mut acct = CostAccounting::default();
        let mut cur = start;
        while cur < start + bytes {
            let vpage = VirtAddr(cur).base_page();
            let (size, step) = if thp
                && cur.is_multiple_of(HUGE_PAGE_SIZE)
                && start + bytes - cur >= HUGE_PAGE_SIZE
            {
                (PageSize::Huge, HUGE_PAGE_SIZE)
            } else {
                (PageSize::Base, 4096)
            };
            let tier = {
                let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
                p.alloc_tier(&mut ops, vpage, size)
            };
            let order = [
                tier,
                if tier == TierId::FAST {
                    TierId::CAPACITY
                } else {
                    TierId::FAST
                },
            ];
            let (t, _) = m.alloc_and_map_fallback(vpage, size, &order)?;
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, vpage, size, t);
            cur += step;
        }
        Ok(())
    }

    /// Executes one access on the application path. The only daemon
    /// interaction is a non-blocking sample push.
    pub fn access(&self, access: Access) -> SimResult<AccessOutcome> {
        let outcome = {
            let mut m = self.machine.lock();
            m.access(access)?
        };
        self.stats.accesses.fetch_add(1, Ordering::Relaxed);
        // Hardware would only buffer qualifying events; forward those.
        if access.is_store() || outcome.llc_miss {
            match self.sample_tx.try_send(SampleMsg { access, outcome }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // PEBS buffer overflow: the sample is lost, the app is
                    // never blocked.
                    self.stats.samples_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
        Ok(outcome)
    }

    /// Where a page currently resides.
    pub fn locate(
        &self,
        vpage: memtis_sim::addr::VirtPage,
    ) -> Option<(TierId, memtis_sim::addr::PageSize)> {
        self.machine.lock().locate(vpage)
    }

    /// Runs `f` against the policy state (inspection).
    pub fn with_policy<R>(&self, f: impl FnOnce(&MemtisPolicy) -> R) -> R {
        f(&self.policy.lock())
    }

    /// Machine statistics snapshot.
    pub fn machine_stats(&self) -> memtis_sim::stats::MachineStats {
        self.machine.lock().stats.clone()
    }

    /// Machine-level fault-injection tallies (all zero without a plan).
    pub fn fault_counters(&self) -> FaultCounters {
        self.machine.lock().fault_counters()
    }

    /// Stops the daemons and joins their threads.
    pub fn shutdown(mut self) -> Arc<RuntimeStats> {
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        Arc::clone(&self.stats)
    }
}

impl Drop for Runtime {
    /// Dropping the runtime without calling [`Runtime::shutdown`] used to
    /// leak both daemon threads (`ksampled` kept polling its 5 ms timeout
    /// because the shutdown flag was never raised). Stop and join them here;
    /// after an explicit `shutdown()` the thread list is already empty and
    /// this is a no-op.
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::addr::{VirtPage, HUGE_PAGE_SIZE};

    fn small_cfg() -> (MachineConfig, MemtisConfig) {
        let mc = MachineConfig::dram_nvm(2 * HUGE_PAGE_SIZE, 16 * HUGE_PAGE_SIZE);
        let pc = MemtisConfig {
            load_period: 1,
            store_period: 1,
            adapt_interval: 100,
            cooling_interval: 800,
            control_interval: 1_000_000,
            ..MemtisConfig::sim_scaled()
        };
        (mc, pc)
    }

    #[test]
    fn background_promotion_happens_without_app_involvement() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_millis(2));
        // Fill the fast tier with a cold region, put the hot page in
        // capacity.
        rt.alloc_region(0, 2 * HUGE_PAGE_SIZE, true).unwrap();
        rt.alloc_region(1 << 30, HUGE_PAGE_SIZE, true).unwrap();
        let hot_page = VirtPage((1 << 30) / 4096);
        assert_eq!(rt.locate(hot_page).unwrap().0, TierId::CAPACITY);
        // Hammer the hot page from the app thread only.
        for i in 0..3000u64 {
            rt.access(Access::store((1 << 30) + (i % 512) * 4096))
                .unwrap();
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Give the daemons a moment to act, then check placement.
        let mut promoted = false;
        for _ in 0..500 {
            std::thread::sleep(Duration::from_millis(2));
            if rt.locate(hot_page).map(|(t, _)| t) == Some(TierId::FAST) {
                promoted = true;
                break;
            }
        }
        let stats = rt.shutdown();
        assert!(promoted, "kmigrated should promote the hot page");
        assert!(stats.samples_delivered.load(Ordering::Relaxed) > 0);
        assert!(stats.migration_wakeups.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn background_promotion_completes_through_async_engine() {
        let (mut mc, pc) = small_cfg();
        // Bandwidth-limit the link so promotions go through the in-flight
        // engine (a huge-page pass takes ~131 us of wall time here) and
        // must be finalized by kmigrated's pump on a later wakeup.
        mc.migration.bandwidth_limit = Some(16.0);
        let rt = Runtime::start(mc, pc, Duration::from_millis(2));
        rt.alloc_region(0, 2 * HUGE_PAGE_SIZE, true).unwrap();
        rt.alloc_region(1 << 30, HUGE_PAGE_SIZE, true).unwrap();
        let hot_page = VirtPage((1 << 30) / 4096);
        assert_eq!(rt.locate(hot_page).unwrap().0, TierId::CAPACITY);
        for i in 0..3000u64 {
            rt.access(Access::load((1 << 30) + (i % 512) * 4096))
                .unwrap();
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut promoted = false;
        for _ in 0..500 {
            std::thread::sleep(Duration::from_millis(2));
            if rt.locate(hot_page).map(|(t, _)| t) == Some(TierId::FAST) {
                promoted = true;
                break;
            }
        }
        let stats = rt.machine_stats();
        rt.shutdown();
        assert!(
            promoted,
            "async promotion should complete in the background"
        );
        assert!(
            stats.migration.in_flight_peak >= 1,
            "promotion must have gone through the engine"
        );
    }

    #[test]
    fn full_buffer_drops_samples_instead_of_blocking() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_secs(3600));
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        // Flood faster than ksampled can drain; the app must never block.
        let start = std::time::Instant::now();
        for i in 0..200_000u64 {
            rt.access(Access::store((i % 512) * 4096)).unwrap();
        }
        assert!(start.elapsed() < Duration::from_secs(30));
        let stats = rt.shutdown();
        let delivered = stats.samples_delivered.load(Ordering::Relaxed);
        let dropped = stats.samples_dropped.load(Ordering::Relaxed);
        assert_eq!(stats.accesses.load(Ordering::Relaxed), 200_000);
        assert!(delivered + dropped > 0);
    }

    /// The daemons self-profile: after a run that delivered samples and
    /// fired wakeups, the shared profiler must attribute host time to
    /// `sampling_drain`, `policy_tick`, and `migration_pump`.
    #[test]
    fn daemons_accumulate_phase_profile() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_millis(1));
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        for i in 0..5_000u64 {
            rt.access(Access::store((i % 512) * 4096)).unwrap();
            if i % 256 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        std::thread::sleep(Duration::from_millis(20));
        let stats = rt.profile_stats();
        rt.shutdown();
        let get = |id: SpanId| stats.iter().find(|s| s.id == id).unwrap();
        assert!(get(SpanId::SamplingDrain).calls > 0);
        assert!(get(SpanId::PolicyTick).calls > 0);
        assert!(get(SpanId::MigrationPump).calls > 0);
        assert!(get(SpanId::PolicyTick).ns > 0);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_millis(1));
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        rt.access(Access::load(0)).unwrap();
        let _ = rt.shutdown();
    }

    /// Regression (PR 4): dropping the runtime without an explicit
    /// `shutdown()` must stop the daemons rather than leaking them. The
    /// `Drop` impl joins both threads, so merely reaching the end of this
    /// test without hanging proves they exited.
    #[test]
    fn drop_without_shutdown_stops_daemons() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_millis(1));
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        for i in 0..100u64 {
            rt.access(Access::store((i % 512) * 4096)).unwrap();
        }
        drop(rt);
    }

    /// Regression (PR 4): `ksampled` must exit when every sender is gone,
    /// even if the shutdown flag was never raised. Before the fix the
    /// `Err(_)` arm treated `Disconnected` like `Timeout` and the thread
    /// spun forever.
    #[test]
    fn ksampled_exits_when_sender_disconnects() {
        let (mc, pc) = small_cfg();
        let mut rt = Runtime::start(mc, pc, Duration::from_secs(3600));
        // Replace the runtime's sender with a dummy so the real channel
        // disconnects while the shutdown flag stays false.
        let (dummy_tx, _dummy_rx) = bounded::<SampleMsg>(1);
        rt.sample_tx = dummy_tx;
        let ksampled = rt
            .threads
            .iter()
            .position(|t| t.thread().name() == Some("ksampled"))
            .expect("ksampled thread present");
        let handle = rt.threads.swap_remove(ksampled);
        let start = std::time::Instant::now();
        handle.join().expect("ksampled exits on disconnect");
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    /// Fault plans drive the real-thread daemons too: machine-level faults
    /// through kmigrated's pump, sample drops in ksampled, tick skips in
    /// kmigrated.
    #[test]
    fn fault_plan_perturbs_real_thread_daemons() {
        let (mc, pc) = small_cfg();
        let plan = FaultPlan {
            seed: 7,
            sample_drop: 0.5,
            tick_skip: 0.5,
            ..FaultPlan::default()
        };
        let rt = Runtime::start_with_faults(mc, pc, Duration::from_millis(1), &plan);
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        for i in 0..20_000u64 {
            rt.access(Access::store((i % 512) * 4096)).unwrap();
            if i % 256 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        std::thread::sleep(Duration::from_millis(50));
        let stats = rt.shutdown();
        assert!(
            stats.fault_samples_dropped.load(Ordering::Relaxed) > 0,
            "50% sample-drop plan must discard some samples"
        );
        assert!(
            stats.fault_ticks_skipped.load(Ordering::Relaxed) > 0,
            "50% tick-skip plan must skip some wakeups"
        );
    }
}
