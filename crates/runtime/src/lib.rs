//! # memtis-runtime — real-thread background daemons
//!
//! The deterministic simulation driver (in `memtis-sim`) interleaves daemon
//! work with the access stream for reproducibility. This crate mirrors the
//! *actual* kernel architecture with real concurrency: the application
//! thread executes accesses, a `ksampled` thread drains a bounded PEBS
//! buffer and updates the MEMTIS histograms, and a `kmigrated` thread wakes
//! periodically to promote/demote/split — all communicating over
//! `crossbeam` channels with `parking_lot`-locked shared state.
//!
//! Two properties of the paper's design surface naturally here:
//!
//! - **Nothing blocks the application**: samples are pushed with
//!   `try_send`; when the buffer is full the sample is *dropped* (counted),
//!   exactly like a PEBS buffer overflow, rather than stalling the app.
//! - **All migration happens asynchronously** in the `kmigrated` thread.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use memtis_core::{MemtisConfig, MemtisPolicy};
use memtis_sim::engine::EngineEvent;
use memtis_sim::prelude::{
    Access, AccessOutcome, CostAccounting, CostSink, Machine, MachineConfig, PolicyOps, SimResult,
    TierId, TieringPolicy,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A sampled access forwarded to `ksampled`.
#[derive(Debug, Clone, Copy)]
struct SampleMsg {
    access: Access,
    outcome: AccessOutcome,
}

/// Counters exposed by the runtime.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Accesses executed by the application side.
    pub accesses: AtomicU64,
    /// Samples delivered to `ksampled`.
    pub samples_delivered: AtomicU64,
    /// Samples dropped because the PEBS buffer was full.
    pub samples_dropped: AtomicU64,
    /// `kmigrated` wakeups.
    pub migration_wakeups: AtomicU64,
}

/// Handle to a running tiered-memory runtime.
pub struct Runtime {
    machine: Arc<Mutex<Machine>>,
    policy: Arc<Mutex<MemtisPolicy>>,
    sample_tx: Sender<SampleMsg>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Shared counters.
    pub stats: Arc<RuntimeStats>,
}

impl Runtime {
    /// Starts the runtime: spawns `ksampled` and `kmigrated`.
    ///
    /// `wakeup` is the `kmigrated` period in real (host) time, standing in
    /// for the paper's 500 ms.
    pub fn start(machine_cfg: MachineConfig, memtis_cfg: MemtisConfig, wakeup: Duration) -> Self {
        let machine = Arc::new(Mutex::new(Machine::new(machine_cfg)));
        let policy = Arc::new(Mutex::new(MemtisPolicy::new(memtis_cfg)));
        let (tx, rx): (Sender<SampleMsg>, Receiver<SampleMsg>) = bounded(4096);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RuntimeStats::default());

        let mut threads = Vec::new();

        // ksampled: drain the PEBS buffer, update histograms/thresholds.
        {
            let machine = Arc::clone(&machine);
            let policy = Arc::clone(&policy);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            threads.push(
                std::thread::Builder::new()
                    .name("ksampled".into())
                    .spawn(move || {
                        let mut acct = CostAccounting::default();
                        loop {
                            match rx.recv_timeout(Duration::from_millis(5)) {
                                Ok(msg) => {
                                    let mut m = machine.lock();
                                    let mut p = policy.lock();
                                    let mut ops =
                                        PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
                                    p.on_access(&mut ops, &msg.access, &msg.outcome);
                                    stats.samples_delivered.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    if shutdown.load(Ordering::Acquire) && rx.is_empty() {
                                        return;
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn ksampled"),
            );
        }

        // kmigrated: periodic promotion/demotion/split in the background.
        {
            let machine = Arc::clone(&machine);
            let policy = Arc::clone(&policy);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            threads.push(
                std::thread::Builder::new()
                    .name("kmigrated".into())
                    .spawn(move || {
                        let mut acct = CostAccounting::default();
                        let start = std::time::Instant::now();
                        while !shutdown.load(Ordering::Acquire) {
                            // Sleep in small quanta so shutdown stays
                            // responsive even with long wakeup periods.
                            let mut slept = Duration::ZERO;
                            while slept < wakeup && !shutdown.load(Ordering::Acquire) {
                                let quantum = (wakeup - slept).min(Duration::from_millis(5));
                                std::thread::sleep(quantum);
                                slept += quantum;
                            }
                            if shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            // Host wall time stands in for the simulated
                            // clock: it is monotone, which is all the
                            // engine's arbitration needs here.
                            let now_ns = start.elapsed().as_nanos() as f64;
                            let mut m = machine.lock();
                            let mut p = policy.lock();
                            let mut ops =
                                PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, now_ns);
                            p.tick(&mut ops);
                            // With a bandwidth-limited link, `tick` only
                            // enqueued transfers; advance the engine and
                            // report completions/aborts back to the policy.
                            for ev in m.pump_transfers(now_ns) {
                                if let EngineEvent::Ended(end) = ev {
                                    let mut ops =
                                        PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, now_ns);
                                    p.on_transfer_end(&mut ops, &end);
                                }
                            }
                            stats.migration_wakeups.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn kmigrated"),
            );
        }

        Runtime {
            machine,
            policy,
            sample_tx: tx,
            shutdown,
            threads,
            stats,
        }
    }

    /// Maps a region (application side), asking the policy for placement.
    pub fn alloc_region(&self, start: u64, bytes: u64, thp: bool) -> SimResult<()> {
        use memtis_sim::addr::{PageSize, VirtAddr, HUGE_PAGE_SIZE};
        let mut m = self.machine.lock();
        let mut p = self.policy.lock();
        let mut acct = CostAccounting::default();
        let mut cur = start;
        while cur < start + bytes {
            let vpage = VirtAddr(cur).base_page();
            let (size, step) = if thp
                && cur.is_multiple_of(HUGE_PAGE_SIZE)
                && start + bytes - cur >= HUGE_PAGE_SIZE
            {
                (PageSize::Huge, HUGE_PAGE_SIZE)
            } else {
                (PageSize::Base, 4096)
            };
            let tier = {
                let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
                p.alloc_tier(&mut ops, vpage, size)
            };
            let order = [
                tier,
                if tier == TierId::FAST {
                    TierId::CAPACITY
                } else {
                    TierId::FAST
                },
            ];
            let (t, _) = m.alloc_and_map_fallback(vpage, size, &order)?;
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            p.on_alloc(&mut ops, vpage, size, t);
            cur += step;
        }
        Ok(())
    }

    /// Executes one access on the application path. The only daemon
    /// interaction is a non-blocking sample push.
    pub fn access(&self, access: Access) -> SimResult<AccessOutcome> {
        let outcome = {
            let mut m = self.machine.lock();
            m.access(access)?
        };
        self.stats.accesses.fetch_add(1, Ordering::Relaxed);
        // Hardware would only buffer qualifying events; forward those.
        if access.is_store() || outcome.llc_miss {
            match self.sample_tx.try_send(SampleMsg { access, outcome }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // PEBS buffer overflow: the sample is lost, the app is
                    // never blocked.
                    self.stats.samples_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
        Ok(outcome)
    }

    /// Where a page currently resides.
    pub fn locate(
        &self,
        vpage: memtis_sim::addr::VirtPage,
    ) -> Option<(TierId, memtis_sim::addr::PageSize)> {
        self.machine.lock().locate(vpage)
    }

    /// Runs `f` against the policy state (inspection).
    pub fn with_policy<R>(&self, f: impl FnOnce(&MemtisPolicy) -> R) -> R {
        f(&self.policy.lock())
    }

    /// Machine statistics snapshot.
    pub fn machine_stats(&self) -> memtis_sim::stats::MachineStats {
        self.machine.lock().stats.clone()
    }

    /// Stops the daemons and joins their threads.
    pub fn shutdown(mut self) -> Arc<RuntimeStats> {
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::addr::{VirtPage, HUGE_PAGE_SIZE};

    fn small_cfg() -> (MachineConfig, MemtisConfig) {
        let mc = MachineConfig::dram_nvm(2 * HUGE_PAGE_SIZE, 16 * HUGE_PAGE_SIZE);
        let pc = MemtisConfig {
            load_period: 1,
            store_period: 1,
            adapt_interval: 100,
            cooling_interval: 800,
            control_interval: 1_000_000,
            ..MemtisConfig::sim_scaled()
        };
        (mc, pc)
    }

    #[test]
    fn background_promotion_happens_without_app_involvement() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_millis(2));
        // Fill the fast tier with a cold region, put the hot page in
        // capacity.
        rt.alloc_region(0, 2 * HUGE_PAGE_SIZE, true).unwrap();
        rt.alloc_region(1 << 30, HUGE_PAGE_SIZE, true).unwrap();
        let hot_page = VirtPage((1 << 30) / 4096);
        assert_eq!(rt.locate(hot_page).unwrap().0, TierId::CAPACITY);
        // Hammer the hot page from the app thread only.
        for i in 0..3000u64 {
            rt.access(Access::store((1 << 30) + (i % 512) * 4096))
                .unwrap();
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Give the daemons a moment to act, then check placement.
        let mut promoted = false;
        for _ in 0..500 {
            std::thread::sleep(Duration::from_millis(2));
            if rt.locate(hot_page).map(|(t, _)| t) == Some(TierId::FAST) {
                promoted = true;
                break;
            }
        }
        let stats = rt.shutdown();
        assert!(promoted, "kmigrated should promote the hot page");
        assert!(stats.samples_delivered.load(Ordering::Relaxed) > 0);
        assert!(stats.migration_wakeups.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn background_promotion_completes_through_async_engine() {
        let (mut mc, pc) = small_cfg();
        // Bandwidth-limit the link so promotions go through the in-flight
        // engine (a huge-page pass takes ~131 us of wall time here) and
        // must be finalized by kmigrated's pump on a later wakeup.
        mc.migration.bandwidth_limit = Some(16.0);
        let rt = Runtime::start(mc, pc, Duration::from_millis(2));
        rt.alloc_region(0, 2 * HUGE_PAGE_SIZE, true).unwrap();
        rt.alloc_region(1 << 30, HUGE_PAGE_SIZE, true).unwrap();
        let hot_page = VirtPage((1 << 30) / 4096);
        assert_eq!(rt.locate(hot_page).unwrap().0, TierId::CAPACITY);
        for i in 0..3000u64 {
            rt.access(Access::load((1 << 30) + (i % 512) * 4096))
                .unwrap();
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut promoted = false;
        for _ in 0..500 {
            std::thread::sleep(Duration::from_millis(2));
            if rt.locate(hot_page).map(|(t, _)| t) == Some(TierId::FAST) {
                promoted = true;
                break;
            }
        }
        let stats = rt.machine_stats();
        rt.shutdown();
        assert!(
            promoted,
            "async promotion should complete in the background"
        );
        assert!(
            stats.migration.in_flight_peak >= 1,
            "promotion must have gone through the engine"
        );
    }

    #[test]
    fn full_buffer_drops_samples_instead_of_blocking() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_secs(3600));
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        // Flood faster than ksampled can drain; the app must never block.
        let start = std::time::Instant::now();
        for i in 0..200_000u64 {
            rt.access(Access::store((i % 512) * 4096)).unwrap();
        }
        assert!(start.elapsed() < Duration::from_secs(30));
        let stats = rt.shutdown();
        let delivered = stats.samples_delivered.load(Ordering::Relaxed);
        let dropped = stats.samples_dropped.load(Ordering::Relaxed);
        assert_eq!(stats.accesses.load(Ordering::Relaxed), 200_000);
        assert!(delivered + dropped > 0);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let (mc, pc) = small_cfg();
        let rt = Runtime::start(mc, pc, Duration::from_millis(1));
        rt.alloc_region(0, HUGE_PAGE_SIZE, true).unwrap();
        rt.access(Access::load(0)).unwrap();
        let _ = rt.shutdown();
    }
}
