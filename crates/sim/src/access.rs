//! Memory-access records flowing from workloads through the machine.

use crate::addr::{PageSize, TierId, VirtAddr, VirtPage};

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

/// One memory access issued by the simulated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The virtual address touched.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// A load of `vaddr`.
    pub fn load(vaddr: u64) -> Self {
        Access {
            vaddr: VirtAddr(vaddr),
            kind: AccessKind::Load,
        }
    }

    /// A store to `vaddr`.
    pub fn store(vaddr: u64) -> Self {
        Access {
            vaddr: VirtAddr(vaddr),
            kind: AccessKind::Store,
        }
    }

    /// Whether this access is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.kind == AccessKind::Store
    }
}

/// What happened when the machine executed one access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Total latency charged to the application for this access (ns),
    /// including translation, cache, memory, and any fault handling.
    pub latency_ns: f64,
    /// The 4 KiB virtual page touched.
    pub vpage: VirtPage,
    /// Size of the mapping that served the access.
    pub page_size: PageSize,
    /// Tier that served the access (meaningful whether or not the LLC hit;
    /// it is the tier the page resides on).
    pub tier: TierId,
    /// Whether the access missed the LLC and paid the tier latency. PEBS
    /// samples exactly these (LLC-miss loads) plus retired stores.
    pub llc_miss: bool,
    /// Whether the TLB missed and a page walk was performed.
    pub tlb_miss: bool,
    /// Whether a NUMA-hint protection fault fired (the policy's
    /// `on_hint_fault` will be invoked by the driver).
    pub hint_fault: bool,
    /// Whether a demand-paging fault fired (page was unmapped and the driver
    /// mapped it on the fly).
    pub demand_fault: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = Access::load(0x1000);
        assert_eq!(l.kind, AccessKind::Load);
        assert!(!l.is_store());
        let s = Access::store(0x2000);
        assert!(s.is_store());
        assert_eq!(s.vaddr, VirtAddr(0x2000));
    }
}
