//! Memory-access records flowing from workloads through the machine.

use crate::addr::{PageSize, TierId, VirtAddr, VirtPage};

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

/// One memory access issued by the simulated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The virtual address touched.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// A load of `vaddr`.
    pub fn load(vaddr: u64) -> Self {
        Access {
            vaddr: VirtAddr(vaddr),
            kind: AccessKind::Load,
        }
    }

    /// A store to `vaddr`.
    pub fn store(vaddr: u64) -> Self {
        Access {
            vaddr: VirtAddr(vaddr),
            kind: AccessKind::Store,
        }
    }

    /// Whether this access is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.kind == AccessKind::Store
    }
}

/// What happened when the machine executed one access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Total latency charged to the application for this access (ns),
    /// including translation, cache, memory, and any fault handling.
    pub latency_ns: f64,
    /// The 4 KiB virtual page touched.
    pub vpage: VirtPage,
    /// Size of the mapping that served the access.
    pub page_size: PageSize,
    /// Tier that served the access (meaningful whether or not the LLC hit;
    /// it is the tier the page resides on).
    pub tier: TierId,
    /// Whether the access missed the LLC and paid the tier latency. PEBS
    /// samples exactly these (LLC-miss loads) plus retired stores.
    pub llc_miss: bool,
    /// Whether the TLB missed and a page walk was performed.
    pub tlb_miss: bool,
    /// Whether a NUMA-hint protection fault fired (the policy's
    /// `on_hint_fault` will be invoked by the driver).
    pub hint_fault: bool,
    /// Whether a demand-paging fault fired (page was unmapped and the driver
    /// mapped it on the fly).
    pub demand_fault: bool,
}

/// One executed access awaiting deferred policy delivery: the access, what
/// happened, and the simulated wall clock at which the per-event driver loop
/// would have delivered it to [`TieringPolicy::on_access`].
///
/// [`TieringPolicy::on_access`]: crate::policy::TieringPolicy::on_access
#[derive(Debug, Clone, Copy)]
pub struct AccessRecord {
    /// The access as issued by the workload.
    pub access: Access,
    /// The machine's outcome for it.
    pub outcome: AccessOutcome,
    /// Wall clock (ns) at delivery time — before this access's own latency
    /// advanced the clock, exactly as the per-event loop timestamps it.
    pub now_ns: f64,
}

/// Which classes of executed accesses a deferring driver must materialize
/// as [`AccessRecord`]s for batched policy delivery.
///
/// The classes partition every access by the two fields policy samplers
/// discriminate on: load vs store, and LLC hit vs miss. A policy whose
/// `on_access` provably ignores a class (e.g. a PEBS-style sampler
/// programmed for LLC-miss loads and retired stores never observes an
/// LLC-hit load) can waive record collection for it; the machine still
/// executes those accesses — state, statistics, and clocks advance
/// normally — and the driver merely skips buffering and replaying their
/// records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordFilter {
    /// Materialize loads served by the LLC.
    pub llc_hit_loads: bool,
    /// Materialize loads that missed the LLC and paid a tier latency.
    pub llc_miss_loads: bool,
    /// Materialize stores.
    pub stores: bool,
}

impl RecordFilter {
    /// Record every access (required by any policy that replays records
    /// one-by-one through `on_access`).
    pub const ALL: RecordFilter = RecordFilter {
        llc_hit_loads: true,
        llc_miss_loads: true,
        stores: true,
    };

    /// Record nothing (policies that ignore accesses entirely).
    pub const NONE: RecordFilter = RecordFilter {
        llc_hit_loads: false,
        llc_miss_loads: false,
        stores: false,
    };

    /// Whether an access with this kind and outcome must be recorded.
    #[inline]
    pub fn keeps(&self, kind: AccessKind, llc_miss: bool) -> bool {
        match (kind, llc_miss) {
            (AccessKind::Load, false) => self.llc_hit_loads,
            (AccessKind::Load, true) => self.llc_miss_loads,
            (AccessKind::Store, _) => self.stores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = Access::load(0x1000);
        assert_eq!(l.kind, AccessKind::Load);
        assert!(!l.is_store());
        let s = Access::store(0x2000);
        assert!(s.is_store());
        assert_eq!(s.vaddr, VirtAddr(0x2000));
    }
}
