//! Address and page-number types for the simulated machine.
//!
//! The simulator models an x86-64-like virtual memory layout with 4 KiB base
//! pages and 2 MiB huge pages. All types are thin newtype wrappers over `u64`
//! so that virtual addresses, physical addresses, virtual page numbers, and
//! physical frame numbers cannot be mixed up by accident.

use std::fmt;

/// Log2 of the base page size (4 KiB).
pub const BASE_PAGE_SHIFT: u32 = 12;
/// Size of a base page in bytes (4 KiB).
pub const BASE_PAGE_SIZE: u64 = 1 << BASE_PAGE_SHIFT;
/// Log2 of the huge page size (2 MiB).
pub const HUGE_PAGE_SHIFT: u32 = 21;
/// Size of a huge page in bytes (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 1 << HUGE_PAGE_SHIFT;
/// Number of 4 KiB subpages constituting one 2 MiB huge page (512 on x86-64).
///
/// The paper compensates base-page hotness by this factor: a huge page is
/// `nr_subpages` times more likely to be sampled than a base page (§4.1.2).
pub const NR_SUBPAGES: u64 = HUGE_PAGE_SIZE / BASE_PAGE_SIZE;
/// Size of a cache line in bytes.
pub const CACHE_LINE_SIZE: u64 = 64;

/// Page size selector for mappings, TLB entries, and migrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// A 4 KiB base page.
    Base,
    /// A 2 MiB huge page.
    Huge,
}

impl PageSize {
    /// Returns the page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base => BASE_PAGE_SIZE,
            PageSize::Huge => HUGE_PAGE_SIZE,
        }
    }

    /// Returns the page shift (log2 of the size in bytes).
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base => BASE_PAGE_SHIFT,
            PageSize::Huge => HUGE_PAGE_SHIFT,
        }
    }

    /// Number of page-table levels walked on a TLB miss for this size.
    ///
    /// Huge pages terminate the walk one level early (PMD), which is one of
    /// the two address-translation benefits the paper attributes to them.
    #[inline]
    pub const fn walk_levels(self) -> u32 {
        match self {
            PageSize::Base => 4,
            PageSize::Huge => 3,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base => write!(f, "4KiB"),
            PageSize::Huge => write!(f, "2MiB"),
        }
    }
}

/// A virtual address in the (single) simulated application address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Returns the 4 KiB virtual page containing this address.
    #[inline]
    pub const fn base_page(self) -> VirtPage {
        VirtPage(self.0 >> BASE_PAGE_SHIFT)
    }

    /// Returns the 2 MiB-aligned virtual page that would contain this address.
    #[inline]
    pub const fn huge_page(self) -> VirtPage {
        VirtPage((self.0 >> HUGE_PAGE_SHIFT) << (HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT))
    }

    /// Byte offset of this address within its 4 KiB page.
    #[inline]
    pub const fn base_offset(self) -> u64 {
        self.0 & (BASE_PAGE_SIZE - 1)
    }

    /// Byte offset of this address within its 2 MiB page.
    #[inline]
    pub const fn huge_offset(self) -> u64 {
        self.0 & (HUGE_PAGE_SIZE - 1)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

/// A virtual page number, always expressed in 4 KiB units.
///
/// A huge page is identified by the `VirtPage` of its first subpage (which is
/// 512-aligned). Using a single unit for both sizes keeps policy-side metadata
/// maps simple and mirrors how the kernel indexes `struct page`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtPage(pub u64);

impl VirtPage {
    /// First byte address of this page.
    #[inline]
    pub const fn addr(self) -> VirtAddr {
        VirtAddr(self.0 << BASE_PAGE_SHIFT)
    }

    /// The containing huge page (512-aligned page number).
    #[inline]
    pub const fn huge_aligned(self) -> VirtPage {
        VirtPage(self.0 & !(NR_SUBPAGES - 1))
    }

    /// Whether this page number is 2 MiB aligned.
    #[inline]
    pub const fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(NR_SUBPAGES)
    }

    /// Index of this subpage within its containing huge page (0..512).
    #[inline]
    pub const fn subpage_index(self) -> usize {
        (self.0 & (NR_SUBPAGES - 1)) as usize
    }

    /// The `n`-th page after this one.
    #[inline]
    pub const fn add(self, n: u64) -> VirtPage {
        VirtPage(self.0 + n)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn{:#x}", self.0)
    }
}

/// A physical address in the simulated machine (global across all tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the cache-line number of this physical address.
    #[inline]
    pub const fn cache_line(self) -> u64 {
        self.0 / CACHE_LINE_SIZE
    }
}

/// A physical frame number in 4 KiB units, global across all tiers.
///
/// Each tier owns a contiguous, disjoint frame range, so the tier of a frame
/// can be recovered from the number alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Frame(pub u64);

impl Frame {
    /// First physical byte address of this frame.
    #[inline]
    pub const fn addr(self) -> PhysAddr {
        PhysAddr(self.0 << BASE_PAGE_SHIFT)
    }

    /// The `n`-th frame after this one.
    #[inline]
    pub const fn add(self, n: u64) -> Frame {
        Frame(self.0 + n)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn{:#x}", self.0)
    }
}

/// Identifier of a memory tier (0 = fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TierId(pub u8);

impl TierId {
    /// The fast (DRAM) tier.
    pub const FAST: TierId = TierId(0);
    /// The capacity (NVM / CXL) tier in two-tier configurations.
    pub const CAPACITY: TierId = TierId(1);
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants() {
        assert_eq!(BASE_PAGE_SIZE, 4096);
        assert_eq!(HUGE_PAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(NR_SUBPAGES, 512);
        assert_eq!(PageSize::Base.bytes(), 4096);
        assert_eq!(PageSize::Huge.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn walk_levels_favor_huge_pages() {
        assert_eq!(PageSize::Base.walk_levels(), 4);
        assert_eq!(PageSize::Huge.walk_levels(), 3);
    }

    #[test]
    fn virt_addr_page_decomposition() {
        let a = VirtAddr(0x40_2135);
        assert_eq!(a.base_page(), VirtPage(0x402));
        assert_eq!(a.base_offset(), 0x135);
        assert_eq!(a.huge_offset(), 0x40_2135 % HUGE_PAGE_SIZE);
        assert_eq!(a.huge_page(), VirtPage(0x400));
    }

    #[test]
    fn huge_alignment() {
        let p = VirtPage(512 * 3 + 17);
        assert!(!p.is_huge_aligned());
        assert_eq!(p.huge_aligned(), VirtPage(512 * 3));
        assert_eq!(p.subpage_index(), 17);
        assert!(p.huge_aligned().is_huge_aligned());
    }

    #[test]
    fn frame_addressing() {
        let f = Frame(7);
        assert_eq!(f.addr(), PhysAddr(7 * 4096));
        assert_eq!(f.add(2), Frame(9));
        assert_eq!(PhysAddr(128).cache_line(), 2);
    }
}
