//! Last-level cache model.
//!
//! A direct-mapped tag array over physical cache-line numbers. Only the LLC
//! is modeled explicitly — upper-level (L1/L2) hits are folded into the cost
//! model — because the quantities that matter to tiering are *LLC misses*:
//! they are what PEBS samples and what pays the tier latency.
//!
//! The cache is physically indexed, so migrating a page naturally invalidates
//! its old lines (their tags can never match again) and the destination
//! starts cold, as on real hardware.

use crate::addr::PhysAddr;

/// LLC statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct LlcStats {
    /// Accesses that hit in the LLC.
    pub hits: u64,
    /// Accesses that missed and were served by a memory tier.
    pub misses: u64,
}

impl LlcStats {
    /// Accumulates `other` into `self` (used to fold per-lane LLC slices
    /// into one machine-wide view).
    pub fn absorb(&mut self, other: &LlcStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Miss ratio in [0, 1]; zero when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Direct-mapped last-level cache.
#[derive(Debug)]
pub struct Llc {
    /// Tag per set; `u64::MAX` marks an empty set.
    tags: Vec<u64>,
    mask: u64,
    /// Running statistics.
    pub stats: LlcStats,
}

const EMPTY: u64 = u64::MAX;

impl Llc {
    /// Creates an LLC of approximately `bytes` capacity (rounded down to a
    /// power-of-two number of 64-byte lines, minimum one line).
    pub fn new(bytes: u64) -> Self {
        let lines = (bytes / crate::addr::CACHE_LINE_SIZE).max(1);
        let lines = if lines.is_power_of_two() {
            lines
        } else {
            (lines.next_power_of_two()) / 2
        }
        .max(1);
        Llc {
            tags: vec![EMPTY; lines as usize],
            mask: lines - 1,
            stats: LlcStats::default(),
        }
    }

    /// Number of lines in the cache.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Performs one access; returns `true` on hit. Misses allocate the line
    /// (write-allocate for stores as well).
    #[inline]
    pub fn access(&mut self, paddr: PhysAddr) -> bool {
        let line = paddr.cache_line();
        let set = (line & self.mask) as usize;
        if self.tags[set] == line {
            self.stats.hits += 1;
            true
        } else {
            self.tags[set] = line;
            self.stats.misses += 1;
            false
        }
    }

    /// Drops all cached lines.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_round_to_power_of_two_lines() {
        assert_eq!(Llc::new(64 * 100).lines(), 64);
        assert_eq!(Llc::new(64 * 128).lines(), 128);
        assert_eq!(Llc::new(1).lines(), 1);
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = Llc::new(64 * 64);
        assert!(!c.access(PhysAddr(0)));
        assert!(c.access(PhysAddr(32))); // Same line.
        assert!(!c.access(PhysAddr(64))); // Next line.
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = Llc::new(64 * 4); // 4 lines.
        assert!(!c.access(PhysAddr(0)));
        assert!(!c.access(PhysAddr(4 * 64))); // Maps to set 0, evicts line 0.
        assert!(!c.access(PhysAddr(0))); // Miss again.
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = Llc::new(64 * 256);
        // Touch 128 distinct lines twice: second round all hits.
        for round in 0..2 {
            for i in 0..128u64 {
                let hit = c.access(PhysAddr(i * 64));
                if round == 1 {
                    assert!(hit);
                }
            }
        }
        assert_eq!(c.stats.misses, 128);
        assert_eq!(c.stats.hits, 128);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = Llc::new(64 * 16);
        c.access(PhysAddr(0));
        c.flush();
        assert!(!c.access(PhysAddr(0)));
    }
}
