//! Machine configuration: tier specifications, cache/TLB geometry, cost model.
//!
//! Latency numbers default to the paper's testbed (§6.1): local DRAM, Intel
//! Optane DCPMM (load ≈ 300 ns), and emulated CXL memory (load ≈ 177 ns).

use crate::addr::{TierId, HUGE_PAGE_SIZE};

/// Kind of memory backing a tier, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// Local DDR4 DRAM.
    Dram,
    /// Non-volatile memory (Optane DCPMM-like).
    Nvm,
    /// CXL-attached DRAM (CXL 1.1 directly attached).
    Cxl,
}

impl MemoryKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MemoryKind::Dram => "DRAM",
            MemoryKind::Nvm => "NVM",
            MemoryKind::Cxl => "CXL",
        }
    }
}

/// Specification of one memory tier.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// What kind of memory this tier is.
    pub kind: MemoryKind,
    /// Capacity in bytes. Rounded down to a whole number of huge pages.
    pub capacity: u64,
    /// Latency of a load that misses the LLC and is served by this tier (ns).
    pub load_ns: f64,
    /// Latency of a store that misses the LLC and is served by this tier (ns).
    pub store_ns: f64,
    /// Migration copy bandwidth in bytes per nanosecond (== GB/s).
    pub copy_bw_bytes_per_ns: f64,
}

impl TierSpec {
    /// Local DRAM with the given capacity (load ≈ 100 ns).
    pub fn dram(capacity: u64) -> Self {
        TierSpec {
            kind: MemoryKind::Dram,
            capacity,
            load_ns: 100.0,
            store_ns: 100.0,
            copy_bw_bytes_per_ns: 16.0,
        }
    }

    /// Optane-like NVM with the given capacity (load ≈ 300 ns, slower stores).
    pub fn nvm(capacity: u64) -> Self {
        TierSpec {
            kind: MemoryKind::Nvm,
            capacity,
            load_ns: 300.0,
            store_ns: 400.0,
            copy_bw_bytes_per_ns: 8.0,
        }
    }

    /// Emulated CXL-attached memory (load ≈ 177 ns, per Pond's 70–90 ns adder).
    pub fn cxl(capacity: u64) -> Self {
        TierSpec {
            kind: MemoryKind::Cxl,
            capacity,
            load_ns: 177.0,
            store_ns: 185.0,
            copy_bw_bytes_per_ns: 12.0,
        }
    }

    /// Capacity rounded down to whole huge pages, in bytes.
    pub fn usable_capacity(&self) -> u64 {
        (self.capacity / HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE
    }
}

/// Address-translation and cache cost parameters.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of one page-table level access during a walk (ns). A 4 KiB
    /// translation walks 4 levels, a 2 MiB translation walks 3.
    pub walk_level_ns: f64,
    /// Latency of an LLC hit (ns); applies to every access that hits.
    pub llc_hit_ns: f64,
    /// Base pipeline cost of an access that hits in L1/L2 (ns).
    pub l12_hit_ns: f64,
    /// Fraction of accesses that are filtered by L1/L2 before reaching the
    /// LLC model. The simulator only models the LLC; upper-level hits cost
    /// [`CostModel::l12_hit_ns`].
    pub l12_hit_fraction: f64,
    /// Cost of a TLB shootdown (IPI + flush) charged when a mapping changes
    /// under a live translation (ns).
    pub tlb_shootdown_ns: f64,
    /// Cost of taking any page fault (trap + handler entry/exit), excluding
    /// policy work (ns).
    pub fault_overhead_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            walk_level_ns: 25.0,
            llc_hit_ns: 30.0,
            l12_hit_ns: 4.0,
            l12_hit_fraction: 0.0,
            // Per-event costs are scaled with the simulator's time
            // compression: runs execute ~100x fewer accesses per page than
            // the paper's minutes-long executions, so per-event trap and
            // shootdown costs shrink so that *per-access* policy overhead
            // ratios match the real systems'.
            // Background migration daemons batch pages per flush, so the
            // per-page amortized shootdown is far below a full IPI round.
            tlb_shootdown_ns: 200.0,
            fault_overhead_ns: 300.0,
        }
    }
}

/// TLB geometry (modeled per page size, unified L2-STLB style).
#[derive(Debug, Clone)]
pub struct TlbSpec {
    /// Number of 4 KiB TLB entries.
    pub base_entries: usize,
    /// Number of 2 MiB TLB entries.
    pub huge_entries: usize,
    /// Associativity for both structures.
    pub ways: usize,
}

impl Default for TlbSpec {
    fn default() -> Self {
        // Skylake-SP-like STLB: 1536 entries for 4 KiB, 1536 shared for 2 MiB.
        TlbSpec {
            base_entries: 1536,
            huge_entries: 1536,
            ways: 12,
        }
    }
}

/// Asynchronous-migration engine knobs.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Cap on migration copy bandwidth per tier-pair link, in bytes per
    /// nanosecond. `None` disables the asynchronous engine entirely:
    /// migrations complete instantaneously, exactly as in the synchronous
    /// model — this is the bit-exact regression oracle.
    pub bandwidth_limit: Option<f64>,
    /// Admission bound on queued (not yet copying) transfers; enqueues past
    /// this bound fail with [`crate::error::SimError::QueueFull`].
    pub queue_depth: usize,
    /// Copy restarts tolerated when stores keep dirtying an in-flight page
    /// before the transfer aborts.
    pub max_recopies: u32,
    /// Extra latency charged to an LLC-missing demand access served by a
    /// tier whose migration link is actively copying (ns).
    pub contention_penalty_ns: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            bandwidth_limit: None,
            queue_depth: 128,
            max_recopies: 2,
            contention_penalty_ns: 25.0,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Ordered tiers, fastest first. `tiers[0]` is the fast tier.
    pub tiers: Vec<TierSpec>,
    /// LLC capacity in bytes (modeled as a direct-mapped tag array).
    pub llc_bytes: u64,
    /// TLB geometry.
    pub tlb: TlbSpec,
    /// Translation / fault / shootdown cost parameters.
    pub costs: CostModel,
    /// Number of physical cores; application threads plus daemon threads
    /// share them (used by the daemon CPU-contention model).
    pub cores: u32,
    /// Number of application threads (paper default: 20, stressing all cores).
    pub app_threads: u32,
    /// Maximum cores chargeable to background daemon work per window. Real
    /// tiering daemons are a handful of kernel threads (`ksampled` plus one
    /// `kmigrated` per tier); queued work beyond this capacity drains later
    /// instead of consuming more cores.
    pub daemon_core_cap: f64,
    /// Asynchronous-migration engine knobs.
    pub migration: MigrationConfig,
}

impl MachineConfig {
    /// Two-tier DRAM + NVM machine with the given tier capacities in bytes.
    pub fn dram_nvm(fast: u64, capacity: u64) -> Self {
        MachineConfig {
            tiers: vec![TierSpec::dram(fast), TierSpec::nvm(capacity)],
            ..MachineConfig::default_geometry()
        }
    }

    /// Two-tier DRAM + CXL machine with the given tier capacities in bytes.
    pub fn dram_cxl(fast: u64, capacity: u64) -> Self {
        MachineConfig {
            tiers: vec![TierSpec::dram(fast), TierSpec::cxl(capacity)],
            ..MachineConfig::default_geometry()
        }
    }

    fn default_geometry() -> Self {
        MachineConfig {
            tiers: Vec::new(),
            // Scaled-down LLC (paper machine: 27.5 MiB); the default sim
            // scale shrinks working sets by 64x, so shrink the LLC too.
            llc_bytes: 27_500_000 / 64,
            tlb: TlbSpec::default(),
            costs: CostModel::default(),
            cores: 20,
            app_threads: 20,
            daemon_core_cap: 3.0,
            migration: MigrationConfig::default(),
        }
    }

    /// The spec of a tier.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range.
    pub fn tier(&self, tier: TierId) -> &TierSpec {
        &self.tiers[tier.0 as usize]
    }

    /// Load-latency gap between the capacity tier and the fast tier (ns),
    /// `ΔL` in the paper's split formula (eq. 2).
    pub fn latency_gap_ns(&self) -> f64 {
        self.tier(TierId::CAPACITY).load_ns - self.tier(TierId::FAST).load_ns
    }

    /// Scales every tier's migration copy bandwidth by `f`.
    ///
    /// Used by the experiment harness to apply the simulator's time
    /// compression: a run covers ~100x fewer accesses per page than the
    /// paper's executions, so migration (tier-fill) time must shrink by the
    /// same factor to keep the migrated-bytes-to-run-length ratio — and
    /// thus the relative cost of page movement — in the paper's regime.
    pub fn with_bandwidth_scale(mut self, f: f64) -> Self {
        for t in &mut self.tiers {
            t.copy_bw_bytes_per_ns *= f;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HUGE_PAGE_SIZE;

    #[test]
    fn presets_have_expected_latencies() {
        let m = MachineConfig::dram_nvm(1 << 30, 8 << 30);
        assert_eq!(m.tier(TierId::FAST).load_ns, 100.0);
        assert_eq!(m.tier(TierId::CAPACITY).load_ns, 300.0);
        assert_eq!(m.latency_gap_ns(), 200.0);

        let c = MachineConfig::dram_cxl(1 << 30, 8 << 30);
        assert_eq!(c.tier(TierId::CAPACITY).load_ns, 177.0);
        assert!(c.latency_gap_ns() < m.latency_gap_ns());
    }

    #[test]
    fn usable_capacity_rounds_to_huge_pages() {
        let t = TierSpec::dram(HUGE_PAGE_SIZE * 3 + 123);
        assert_eq!(t.usable_capacity(), HUGE_PAGE_SIZE * 3);
    }

    #[test]
    fn nvm_stores_slower_than_loads() {
        let t = TierSpec::nvm(1 << 30);
        assert!(t.store_ns > t.load_ns);
    }
}
