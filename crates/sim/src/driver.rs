//! The simulation driver: feeds a workload's event stream through the
//! machine and a tiering policy, accounting application and daemon time.
//!
//! ## Time model
//!
//! The workload represents `app_threads` application threads issuing an
//! aggregate access stream; wall-clock time advances by `latency /
//! app_threads` per access (perfect thread overlap). Policy work is charged
//! to one of two sinks (see [`crate::policy::CostSink`]): application-side
//! costs (fault handlers, allocation-path migration) stretch wall time
//! directly, while daemon costs consume cores. At each timeline window the
//! driver converts daemon CPU into an application slowdown only when the
//! application threads plus daemon threads oversubscribe the cores — this
//! reproduces the paper's observation that HeMem's sampling thread hurts at
//! 20 app threads but not at 16 (§6.2.9).

use crate::access::{Access, AccessOutcome, AccessRecord, RecordFilter};
use crate::addr::{PageSize, TierId, VirtAddr, VirtPage, HUGE_PAGE_SIZE, NR_SUBPAGES};
use crate::config::MachineConfig;
use crate::engine::EngineEvent;
use crate::error::{SimError, SimResult};
use crate::faults::{
    FaultCounters, FaultInjector, FaultPlan, SampleFate, TickFate, DRIVER_FAULT_SALT,
};
use crate::machine::{BatchClock, BatchStop, Machine};
use crate::policy::{abort_failure, CostAccounting, CostSink, PolicyOps, TieringPolicy};
use crate::shard::{self, lane_of, LaneScratch, NUM_LANES};
use crate::stats::MachineStats;
use memtis_obs::profile::{SpanGuard, SpanId, SpanStat};
use memtis_obs::{
    Event, EventKind, FlightRecorder, HistStats, LatHist, NopObserver, Observer, ShootdownCause,
    WindowCollector, WindowCut, WindowSample,
};

/// One event produced by a workload generator.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadEvent {
    /// Execute a memory access.
    Access(Access),
    /// Map a virtual region. `thp` marks the region THP-eligible (the driver
    /// also honors the global THP switch).
    Alloc {
        /// Start address (2 MiB-aligned for THP-eligible regions).
        addr: VirtAddr,
        /// Region length in bytes.
        bytes: u64,
        /// Whether THP may back this region with huge pages.
        thp: bool,
    },
    /// Unmap a virtual region previously allocated.
    Free {
        /// Start address.
        addr: VirtAddr,
        /// Region length in bytes.
        bytes: u64,
    },
}

/// Default main-loop batching granularity (events per [`AccessStream::fill`]
/// call). Large enough to amortize per-chunk work over the ~1600-access tick
/// intervals typical of bench configs, small enough that the chunk buffers
/// stay cache-resident.
pub const DEFAULT_CHUNK: usize = 1024;

/// A source of workload events.
pub trait AccessStream {
    /// The next event, or `None` when the workload is finished.
    fn next_event(&mut self) -> Option<WorkloadEvent>;

    /// Fills `buf` with upcoming events, returning how many were written;
    /// `0` means the stream is finished. Must produce exactly the sequence
    /// repeated [`next_event`] calls would.
    ///
    /// The default delegates to [`next_event`]. Because default trait
    /// methods are compiled once per implementation, even this fallback
    /// dispatches `next_event` statically inside the loop — the driver pays
    /// one virtual `fill` call per chunk instead of one per event.
    /// Generators with a cheap bulk path override it.
    ///
    /// [`next_event`]: AccessStream::next_event
    fn fill(&mut self, buf: &mut [WorkloadEvent]) -> usize {
        let mut n = 0;
        while n < buf.len() {
            match self.next_event() {
                Some(ev) => {
                    buf[n] = ev;
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Workload name for reports.
    fn name(&self) -> &str;
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Global transparent-huge-page switch.
    pub thp_enabled: bool,
    /// Background tick period in simulated ns (kmigrated-style wakeups).
    pub tick_interval_ns: f64,
    /// Timeline snapshot period in simulated ns.
    pub timeline_interval_ns: f64,
    /// Stop after this many accesses even if the stream continues.
    pub max_accesses: Option<u64>,
    /// Telemetry window length in workload events (accesses + allocs +
    /// frees). A window closes every this-many events; a final partial
    /// window covers the tail of the run.
    pub window_events: u64,
    /// Migration-link bandwidth cap override (bytes/ns). `Some(v > 0)`
    /// engages the asynchronous migration engine with that cap;
    /// `Some(v <= 0)` forces instantaneous migration; `None` keeps the
    /// machine config's setting.
    pub migration_bw: Option<f64>,
    /// Migration admission-queue depth override; `None` keeps the machine
    /// config's setting.
    pub migration_queue: Option<usize>,
    /// Fault-injection plan. `None` — and any inert plan — leaves every
    /// code path bit-exact with a normal run.
    pub faults: Option<FaultPlan>,
    /// Main-loop batching granularity in events. Values above 1 pull events
    /// through [`AccessStream::fill`] in chunks of this size and execute
    /// access runs through the batched pipeline; `0` or `1` forces the
    /// legacy one-event-at-a-time loop (the bit-exactness oracle). Both
    /// paths produce byte-identical [`RunReport`]s.
    pub chunk: usize,
    /// Sharded execution: `Some(s)` partitions the address space into
    /// [`NUM_LANES`] fixed lanes and drives each chunked burst across `s`
    /// worker threads (lanes are grouped into `s` contiguous shards), with a
    /// deterministic merge at the end of every burst. Requires `chunk > 1`.
    /// Reports, traces, and window series are byte-identical for every `s`
    /// at a fixed `chunk`; `None` keeps the unsharded pipeline.
    pub shards: Option<usize>,
    /// Heartbeat period in workload events: every this-many events the
    /// driver prints a compact one-line JSON status to *stderr* (stdout
    /// output and the report stay untouched), so hours-long soaks are
    /// inspectable mid-run. `None` disables.
    pub heartbeat_events: Option<u64>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            thp_enabled: true,
            tick_interval_ns: 100_000.0,
            timeline_interval_ns: 2_000_000.0,
            max_accesses: None,
            window_events: 100_000,
            migration_bw: None,
            migration_queue: None,
            faults: None,
            chunk: DEFAULT_CHUNK,
            shards: None,
            heartbeat_events: None,
        }
    }
}

/// Periodic snapshot of run state (Fig. 9 / Fig. 11 timelines).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Wall-clock time of the snapshot (ns).
    pub wall_ns: f64,
    /// Cumulative accesses executed.
    pub accesses: u64,
    /// Accesses per wall-clock second within the window.
    pub window_throughput: f64,
    /// Fast-tier hit ratio (LLC-missing accesses) within the window.
    pub window_fast_hit_ratio: f64,
    /// Application RSS at snapshot time (bytes).
    pub rss_bytes: u64,
    /// Fast-tier bytes in use.
    pub fast_used_bytes: u64,
    /// Policy-specific metrics.
    pub policy: Vec<(&'static str, f64)>,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Total wall-clock time (ns), the performance headline.
    pub wall_ns: f64,
    /// Sum of raw access latencies (ns), before dividing across threads.
    pub app_access_ns: f64,
    /// Application-side policy overhead (fault handlers etc., ns).
    pub app_extra_ns: f64,
    /// Background daemon CPU consumed (ns).
    pub daemon_ns: f64,
    /// Accesses executed.
    pub accesses: u64,
    /// Machine counters at the end of the run.
    pub stats: MachineStats,
    /// TLB counters.
    pub tlb: crate::tlb::TlbStats,
    /// LLC counters.
    pub llc: crate::cache::LlcStats,
    /// Peak application RSS (bytes).
    pub rss_peak_bytes: u64,
    /// Final application RSS (bytes).
    pub rss_final_bytes: u64,
    /// Timeline snapshots.
    pub timeline: Vec<Snapshot>,
    /// Telemetry windows (every [`DriverConfig::window_events`] events),
    /// produced by the shared [`WindowCollector`] regardless of observer.
    pub windows: Vec<WindowSample>,
    /// Workload events processed (accesses + allocs + frees).
    pub sim_events: u64,
    /// Histogram bin underflows the policy detected (metadata/histogram
    /// desync; must be zero on healthy runs).
    pub hist_underflows: u64,
    /// Fault-injection tallies (all zero on normal runs).
    pub faults: FaultCounters,
    /// Flight-recorder latency summary: flat `(key, value)` rows of
    /// percentiles/counts per class (demand by tier/page-size, transfer,
    /// queue-wait, abort-to-retry). Empty unless the observer attached the
    /// flight recorder. Simulated-time quantities only, so the rows are
    /// deterministic and chunk/shard-invariant.
    pub lat: Vec<(String, f64)>,
    /// Per-window flight-recorder summaries, parallel to `windows` (cut by
    /// differencing cumulative histogram snapshots). Empty unless the
    /// flight recorder is attached.
    pub lat_windows: Vec<Vec<(String, f64)>>,
    /// *Host* wall-clock time the run took (ns) — simulator self-throughput,
    /// not simulated time. Tracks the perf trajectory of the simulator
    /// itself across PRs (see BENCH_*.json).
    pub host_elapsed_ns: u64,
}

impl RunReport {
    /// Accesses per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall_ns <= 0.0 {
            0.0
        } else {
            self.accesses as f64 / (self.wall_ns * 1e-9)
        }
    }

    /// Simulator self-throughput: workload events per second of *host*
    /// wall-clock time.
    pub fn self_events_per_sec(&self) -> f64 {
        if self.host_elapsed_ns == 0 {
            0.0
        } else {
            self.sim_events as f64 / (self.host_elapsed_ns as f64 * 1e-9)
        }
    }

    /// Daemon CPU usage as a fraction of one core over the run.
    pub fn daemon_core_usage(&self) -> f64 {
        if self.wall_ns <= 0.0 {
            0.0
        } else {
            self.daemon_ns / self.wall_ns
        }
    }
}

struct WindowState {
    start_wall: f64,
    start_accesses: u64,
    start_daemon_ns: f64,
    start_fast_hits: u64,
    start_total_hits: u64,
}

/// Per-run sharded-execution state: the lane scratch pool plus cumulative
/// barrier tallies. Lives outside `RunReport` so reports stay byte-identical
/// across shard counts; the host-side scaling numbers surface through
/// [`Simulation::shard_metrics`].
struct ShardRun {
    /// Worker-thread count (lane groups per burst).
    shards: usize,
    /// One scratch buffer per lane, reused across bursts.
    lanes: Vec<LaneScratch>,
    /// Parallel bursts merged so far.
    bursts: u64,
    /// Accesses that spilled from a stopped lane to the serial path.
    spills: u64,
    /// Host ns the coordinator spent inside the worker phase, summed over
    /// bursts (on a saturated host this is the serialized lane work).
    busy_ns: u64,
    /// Accesses executed through the lane phase.
    lane_accesses: u64,
    /// Sum over bursts of the most-loaded shard's access count: the lane
    /// phase's critical path in access units, deterministic per shard count.
    crit_accesses: u64,
}

/// Host-side scaling metrics of a sharded run (see
/// [`Simulation::shard_metrics`]). These are *host* timings — like
/// [`RunReport::host_elapsed_ns`] they vary run to run and are kept out of
/// the deterministic report.
#[derive(Debug, Clone, Copy)]
pub struct ShardMetrics {
    /// Worker-thread count the run was configured with.
    pub shards: usize,
    /// Parallel bursts merged.
    pub bursts: u64,
    /// Accesses that spilled from a stopped lane to the serial path.
    pub spills: u64,
    /// Host ns the coordinator spent inside the parallel worker phase,
    /// summed over bursts. On a saturated (or single-core) host the scoped
    /// workers serialize, so this is the total lane work plus spawn
    /// overhead; per-worker clocks would mostly measure scheduler wait.
    pub busy_ns: u64,
    /// Accesses executed through the lane phase (spills excluded).
    pub lane_accesses: u64,
    /// Sum over bursts of the most-loaded shard's access count: the lane
    /// phase's critical path in access units. Deterministic for a given
    /// shard count — only the host timings above vary run to run.
    pub crit_accesses: u64,
}

impl ShardMetrics {
    /// Projects `host_ns` (a measured wall time for the whole run) onto a
    /// host with one core per shard: the worker phase shrinks from its
    /// serialized wall time to its critical-path share, everything else
    /// (coordinator fold, ticks, policy work) stays serial. Amdahl-style,
    /// using the observed per-shard access loads as the work model.
    pub fn projected_ns(&self, host_ns: f64) -> f64 {
        if self.lane_accesses == 0 {
            return host_ns;
        }
        let crit_frac = self.crit_accesses as f64 / self.lane_accesses as f64;
        host_ns - self.busy_ns as f64 * (1.0 - crit_frac)
    }
}

/// The simulation: one machine, one policy, one workload stream.
///
/// Generic over an [`Observer`]; the default [`NopObserver`] compiles the
/// instrumentation away entirely. Build a traced simulation with
/// [`Simulation::with_observer`].
pub struct Simulation<P: TieringPolicy, O: Observer = NopObserver> {
    machine: Machine,
    policy: P,
    obs: O,
    cfg: DriverConfig,
    acct: CostAccounting,
    wall_ns: f64,
    app_access_ns: f64,
    accesses: u64,
    sim_events: u64,
    next_tick: f64,
    next_snapshot: f64,
    rss_peak: u64,
    timeline: Vec<Snapshot>,
    window: WindowState,
    wcol: WindowCollector,
    /// Driver-level fault injector (sample drop/dup, tick skip/delay).
    drv_faults: Option<FaultInjector>,
    /// Whether any fault injector (machine or driver level) is installed.
    has_faults: bool,
    /// Policy-reported histogram underflows already surfaced as events.
    hist_underflows_seen: u64,
    /// Sharded-execution state (`None` on unsharded runs).
    shard: Option<ShardRun>,
    /// Flight-recorder snapshot at the last window cut, for differencing
    /// cumulative histograms into per-window series.
    flight_prev: FlightRecorder,
    /// Per-window flight-recorder summaries collected so far.
    lat_windows: Vec<Vec<(String, f64)>>,
    /// Heartbeat period in events (`u64::MAX` disables) and next due point.
    hb_every: u64,
    hb_next: u64,
    /// Host start time, for heartbeat events/sec.
    host_start: std::time::Instant,
}

/// Human tier label for flight-recorder report keys.
fn tier_label(tier: usize) -> String {
    match tier {
        0 => "fast".to_string(),
        1 => "cap".to_string(),
        n => format!("tier{n}"),
    }
}

/// Appends the standard percentile rows of one histogram summary under
/// `prefix`.
fn lat_rows(out: &mut Vec<(String, f64)>, prefix: &str, s: &HistStats) {
    out.push((format!("{prefix}_count"), s.count as f64));
    out.push((format!("{prefix}_p50_ns"), s.p50 as f64));
    out.push((format!("{prefix}_p90_ns"), s.p90 as f64));
    out.push((format!("{prefix}_p99_ns"), s.p99 as f64));
    out.push((format!("{prefix}_p999_ns"), s.p999 as f64));
    out.push((format!("{prefix}_mean_ns"), s.mean));
    out.push((format!("{prefix}_max_ns"), s.max as f64));
}

/// Flattens a flight recorder into the report's `(key, value)` rows:
/// overall demand, each non-empty `(tier, page-size)` demand class, and
/// the migration transfer / queue-wait / abort-to-retry histograms.
///
/// With `prev = Some(snapshot)` the rows cover the window since that
/// snapshot, computed via single-pass difference stats — the per-window
/// cut never materialises difference histograms (the recorder must be
/// flushed; the caller does so). With `prev = None` the rows cover the
/// whole run. A demand class gets rows iff it saw samples in the covered
/// span; the aggregate rows are always present.
fn flight_rows_since(cur: &FlightRecorder, prev: Option<&FlightRecorder>) -> Vec<(String, f64)> {
    let class_stats = |h: &LatHist, p: Option<&LatHist>| match p {
        Some(p) => h.stats_since(p),
        None => h.stats(),
    };
    let mut out = Vec::new();
    let all = match prev {
        Some(p) => cur.demand_all_stats_since(p),
        None => cur.demand_all_stats(),
    };
    lat_rows(&mut out, "demand", &all);
    for t in 0..cur.demand_tiers() {
        for (huge, sfx) in [(false, "base"), (true, "huge")] {
            if let Some(h) = cur.demand(t as u8, huge) {
                let s = class_stats(h, prev.and_then(|p| p.demand(t as u8, huge)));
                if s.count > 0 {
                    lat_rows(&mut out, &format!("demand_{}_{}", tier_label(t), sfx), &s);
                }
            }
        }
    }
    for (name, h, p) in [
        ("transfer", &cur.transfer, prev.map(|p| &p.transfer)),
        ("queue_wait", &cur.queue_wait, prev.map(|p| &p.queue_wait)),
        (
            "abort_retry",
            &cur.abort_retry,
            prev.map(|p| &p.abort_retry),
        ),
    ] {
        lat_rows(&mut out, name, &class_stats(h, p));
    }
    out
}

impl<P: TieringPolicy> Simulation<P, NopObserver> {
    /// Creates an untraced simulation over a fresh machine.
    pub fn new(machine_cfg: MachineConfig, policy: P, cfg: DriverConfig) -> Self {
        Self::with_observer(machine_cfg, policy, cfg, NopObserver)
    }
}

impl<P: TieringPolicy, O: Observer> Simulation<P, O> {
    /// Creates a simulation routing trace events and window samples to
    /// `obs`.
    pub fn with_observer(
        mut machine_cfg: MachineConfig,
        policy: P,
        cfg: DriverConfig,
        obs: O,
    ) -> Self {
        if let Some(bw) = cfg.migration_bw {
            machine_cfg.migration.bandwidth_limit = if bw > 0.0 { Some(bw) } else { None };
        }
        if let Some(q) = cfg.migration_queue {
            machine_cfg.migration.queue_depth = q;
        }
        let mut machine = Machine::new(machine_cfg);
        let drv_faults = match &cfg.faults {
            Some(plan) if !plan.is_inert() => {
                machine.install_faults(plan);
                Some(FaultInjector::new(*plan, DRIVER_FAULT_SALT))
            }
            _ => None,
        };
        let has_faults = drv_faults.is_some();
        let shard = match cfg.shards {
            Some(s) if cfg.chunk > 1 => {
                machine.enable_lanes();
                Some(ShardRun {
                    shards: s.max(1),
                    lanes: (0..NUM_LANES).map(|_| LaneScratch::default()).collect(),
                    bursts: 0,
                    spills: 0,
                    busy_ns: 0,
                    lane_accesses: 0,
                    crit_accesses: 0,
                })
            }
            _ => None,
        };
        if obs.enabled() && obs.flight_enabled() {
            machine.attach_flight();
        }
        let next_tick = cfg.tick_interval_ns;
        let next_snapshot = cfg.timeline_interval_ns;
        let wcol = WindowCollector::new(cfg.window_events);
        let hb_every = cfg.heartbeat_events.unwrap_or(u64::MAX).max(1);
        Simulation {
            machine,
            policy,
            obs,
            cfg,
            acct: CostAccounting::default(),
            wall_ns: 0.0,
            app_access_ns: 0.0,
            accesses: 0,
            sim_events: 0,
            next_tick,
            next_snapshot,
            rss_peak: 0,
            timeline: Vec::new(),
            window: WindowState {
                start_wall: 0.0,
                start_accesses: 0,
                start_daemon_ns: 0.0,
                start_fast_hits: 0,
                start_total_hits: 0,
            },
            wcol,
            drv_faults,
            has_faults,
            hist_underflows_seen: 0,
            shard,
            flight_prev: FlightRecorder::new(),
            lat_windows: Vec::new(),
            hb_every,
            hb_next: hb_every,
            host_start: std::time::Instant::now(),
        }
    }

    /// Read access to the machine (tests, inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Read access to the policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Read access to the observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Consumes the simulation, returning the observer (for export).
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// The flight recorder's cumulative histograms, if attached.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.machine.flight()
    }

    /// The self-profiler's attribution table (host time per phase), if the
    /// observer carries a profiler. `None` on untraced runs.
    pub fn profile_stats(&self) -> Option<Vec<SpanStat>> {
        self.obs.profiler().map(|p| p.stats())
    }

    /// Opens a self-profiling span if the observer carries a profiler.
    /// The guard owns its `Arc`, so the borrow of `obs` ends here.
    #[inline]
    fn span(obs: &O, id: SpanId) -> Option<SpanGuard> {
        obs.profiler().map(|p| p.enter(id))
    }

    fn ops<'a>(
        machine: &'a mut Machine,
        acct: &'a mut CostAccounting,
        obs: &'a mut O,
        sink: CostSink,
        now: f64,
    ) -> PolicyOps<'a> {
        if obs.enabled() {
            PolicyOps::with_observer(machine, acct, sink, now, Some(obs as &mut dyn Observer))
        } else {
            // NopObserver resolves here at compile time: no dyn pointer is
            // ever attached, keeping the untraced path identical to PR-1.
            PolicyOps::new(machine, acct, sink, now)
        }
    }

    fn threads(&self) -> f64 {
        self.machine.config().app_threads.max(1) as f64
    }

    fn alloc_one(&mut self, vpage: VirtPage, size: PageSize) -> SimResult<()> {
        let mut ops = Self::ops(
            &mut self.machine,
            &mut self.acct,
            &mut self.obs,
            CostSink::App,
            self.wall_ns,
        );
        let pref = self.policy.alloc_tier(&mut ops, vpage, size);
        let order: Vec<TierId> = {
            let n = self.machine.tier_count() as u8;
            std::iter::once(pref)
                .chain((0..n).map(TierId).filter(|t| *t != pref))
                .collect()
        };
        match self.machine.alloc_and_map_fallback(vpage, size, &order) {
            Ok((tier, _frame)) => {
                let mut ops = Self::ops(
                    &mut self.machine,
                    &mut self.acct,
                    &mut self.obs,
                    CostSink::App,
                    self.wall_ns,
                );
                self.policy.on_alloc(&mut ops, vpage, size, tier);
                Ok(())
            }
            Err(SimError::GlobalOutOfMemory) if size == PageSize::Huge => {
                // Physical fragmentation: fall back to base pages.
                for i in 0..NR_SUBPAGES {
                    self.alloc_one(vpage.add(i), PageSize::Base)?;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn handle_alloc(&mut self, addr: VirtAddr, bytes: u64, thp: bool) -> SimResult<()> {
        let use_thp = thp && self.cfg.thp_enabled;
        let mut cur = addr.0;
        let end = addr.0 + bytes;
        while cur < end {
            let vpage = VirtAddr(cur).base_page();
            let remaining = end - cur;
            if use_thp && cur.is_multiple_of(HUGE_PAGE_SIZE) && remaining >= HUGE_PAGE_SIZE {
                self.alloc_one(vpage, PageSize::Huge)?;
                cur += HUGE_PAGE_SIZE;
            } else {
                self.alloc_one(vpage, PageSize::Base)?;
                cur += PageSize::Base.bytes();
            }
        }
        self.rss_peak = self.rss_peak.max(self.machine.rss_bytes());
        Ok(())
    }

    fn handle_free(&mut self, addr: VirtAddr, bytes: u64) -> SimResult<()> {
        let mut cur = addr.0;
        let end = addr.0 + bytes;
        while cur < end {
            let vpage = VirtAddr(cur).base_page();
            match self.machine.locate(vpage) {
                Some((_, PageSize::Huge)) if vpage.is_huge_aligned() => {
                    let cost = self.machine.unmap_and_free(vpage, PageSize::Huge)?;
                    self.acct.app_extra_ns += cost;
                    self.emit_unmap_shootdown(vpage);
                    let mut ops = Self::ops(
                        &mut self.machine,
                        &mut self.acct,
                        &mut self.obs,
                        CostSink::App,
                        self.wall_ns,
                    );
                    self.policy.on_free(&mut ops, vpage, PageSize::Huge);
                    cur += HUGE_PAGE_SIZE;
                }
                Some((_, PageSize::Base)) => {
                    let cost = self.machine.unmap_and_free(vpage, PageSize::Base)?;
                    self.acct.app_extra_ns += cost;
                    self.emit_unmap_shootdown(vpage);
                    let mut ops = Self::ops(
                        &mut self.machine,
                        &mut self.acct,
                        &mut self.obs,
                        CostSink::App,
                        self.wall_ns,
                    );
                    self.policy.on_free(&mut ops, vpage, PageSize::Base);
                    cur += PageSize::Base.bytes();
                }
                _ => {
                    // Hole (e.g. a zero subpage freed by a split): skip.
                    cur += PageSize::Base.bytes();
                }
            }
        }
        Ok(())
    }

    /// Traces the TLB shootdown a workload unmap performed.
    #[inline]
    fn emit_unmap_shootdown(&mut self, vpage: VirtPage) {
        if self.obs.enabled() {
            self.obs.record(Event::new(
                self.wall_ns,
                EventKind::TlbShootdown {
                    vpage: vpage.0,
                    cause: ShootdownCause::Unmap,
                },
            ));
        }
    }

    fn handle_access(&mut self, access: Access) -> SimResult<()> {
        let outcome = match self.machine.access(access) {
            Ok(o) => o,
            Err(SimError::NotMapped(vpage)) => {
                // Demand fault: map a base page where the policy prefers.
                self.acct.app_extra_ns += self.machine.config().costs.fault_overhead_ns;
                self.machine.stats.demand_faults += 1;
                self.alloc_one(vpage, PageSize::Base)?;
                let mut o = self.machine.access(access)?;
                o.demand_fault = true;
                o
            }
            Err(e) => return Err(e),
        };

        let app_before = self.acct.app_extra_ns;
        if outcome.hint_fault {
            let mut ops = Self::ops(
                &mut self.machine,
                &mut self.acct,
                &mut self.obs,
                CostSink::App,
                self.wall_ns,
            );
            self.policy.on_hint_fault(&mut ops, outcome.vpage);
        }
        self.notify_access(&access, &outcome);
        let fault_work = self.acct.app_extra_ns - app_before;

        self.app_access_ns += outcome.latency_ns;
        self.wall_ns += (outcome.latency_ns + fault_work) / self.threads();
        self.accesses += 1;
        Ok(())
    }

    /// Delivers one executed access to the policy (daemon context),
    /// applying the fault injector's sample fate — drop the sample before
    /// the policy sees it (lossy perf buffer), deliver it, or deliver it
    /// twice (replayed record). The *single* `policy.on_access` call site:
    /// both the per-event path and the batched fault tails route through
    /// here, so the fate logic cannot diverge between them.
    fn notify_access(&mut self, access: &Access, outcome: &AccessOutcome) {
        let fate = match self.drv_faults.as_mut() {
            Some(inj) => inj.sample_fate(self.wall_ns, outcome.vpage.0),
            None => SampleFate::Deliver,
        };
        if fate != SampleFate::Drop {
            let mut ops = Self::ops(
                &mut self.machine,
                &mut self.acct,
                &mut self.obs,
                CostSink::Daemon,
                self.wall_ns,
            );
            self.policy.on_access(&mut ops, access, outcome);
        }
        if fate == SampleFate::Duplicate {
            let mut ops = Self::ops(
                &mut self.machine,
                &mut self.acct,
                &mut self.obs,
                CostSink::Daemon,
                self.wall_ns,
            );
            self.policy.on_access(&mut ops, access, outcome);
        }
    }

    /// Advances the asynchronous migration engine to the current wall
    /// clock: starts queued transfers as links free up, finalizes finished
    /// copies, and reports terminal transfers back to the policy (daemon
    /// context). No-op while the engine is idle, so unlimited-bandwidth
    /// runs never enter this path.
    fn pump_transfers(&mut self) {
        // Machine-level faults (outages, pressure, forced aborts) are
        // applied inside the machine's pump and may need to run even while
        // the engine is idle.
        if self.machine.transfers_idle() && !self.machine.has_fault_injection() {
            return;
        }
        let _span = Self::span(&self.obs, SpanId::MigrationPump);
        let events = self.machine.pump_transfers(self.wall_ns);
        if events.is_empty() {
            return;
        }
        let shootdown_ns = self.machine.config().costs.tlb_shootdown_ns;
        for ev in events {
            match ev {
                EngineEvent::Started {
                    vpage,
                    from,
                    to,
                    bytes,
                    ..
                } => {
                    if self.obs.enabled() {
                        self.obs.record(Event::new(
                            self.wall_ns,
                            EventKind::MigrationStarted {
                                vpage: vpage.0,
                                from: from.0,
                                to: to.0,
                                bytes,
                            },
                        ));
                    }
                }
                EngineEvent::Ended(end) => {
                    match end.aborted {
                        None => {
                            // The remap (PTE update + TLB shootdown) runs on
                            // the migration daemon, off the app critical path.
                            self.acct.daemon_ns += shootdown_ns;
                            if self.obs.enabled() {
                                self.obs.record(Event::new(
                                    self.wall_ns,
                                    EventKind::MigrationCompleted {
                                        vpage: end.vpage.0,
                                        from: end.from.0,
                                        to: end.to.0,
                                        bytes: end.bytes,
                                    },
                                ));
                            }
                        }
                        Some(cause) => {
                            if self.obs.enabled() {
                                self.obs.record(Event::new(
                                    self.wall_ns,
                                    EventKind::MigrationAborted {
                                        vpage: end.vpage.0,
                                        to: end.to.0,
                                        bytes: end.bytes,
                                        wasted_bytes: end.wasted_bytes,
                                        cause: abort_failure(cause),
                                    },
                                ));
                            }
                        }
                    }
                    let mut ops = Self::ops(
                        &mut self.machine,
                        &mut self.acct,
                        &mut self.obs,
                        CostSink::Daemon,
                        self.wall_ns,
                    );
                    self.policy.on_transfer_end(&mut ops, &end);
                }
            }
        }
    }

    fn run_due_ticks(&mut self) {
        while self.wall_ns >= self.next_tick {
            let mut now = self.next_tick;
            if let Some(inj) = self.drv_faults.as_mut() {
                match inj.tick_fate(now) {
                    TickFate::Skip => {
                        // The wakeup never fired; the next one keeps cadence.
                        self.next_tick += self.cfg.tick_interval_ns;
                        continue;
                    }
                    TickFate::Delay(extra_ns) => now += extra_ns,
                    TickFate::Run => {}
                }
            }
            let _span = Self::span(&self.obs, SpanId::PolicyTick);
            let mut ops = Self::ops(
                &mut self.machine,
                &mut self.acct,
                &mut self.obs,
                CostSink::Daemon,
                now,
            );
            self.policy.tick(&mut ops);
            self.next_tick += self.cfg.tick_interval_ns;
        }
    }

    /// Drains pending fault records (machine- and driver-level) into the
    /// trace ring. The drain happens even untraced so the bounded logs
    /// cannot alter behavior between traced and untraced runs.
    fn emit_fault_records(&mut self) {
        let machine_recs = self.machine.drain_fault_log();
        let driver_recs = match self.drv_faults.as_mut() {
            Some(inj) => inj.drain_log(),
            None => Vec::new(),
        };
        if !self.obs.enabled() {
            return;
        }
        for r in machine_recs.into_iter().chain(driver_recs) {
            self.obs.record(Event::new(
                r.t_ns,
                EventKind::FaultInjected {
                    fault: r.kind,
                    vpage: r.vpage,
                },
            ));
        }
    }

    /// Surfaces newly-detected histogram underflows as trace events.
    fn note_hist_underflows(&mut self) {
        let total = self.policy.hist_underflows();
        if total > self.hist_underflows_seen {
            let count = total - self.hist_underflows_seen;
            self.hist_underflows_seen = total;
            if self.obs.enabled() {
                self.obs
                    .record(Event::new(self.wall_ns, EventKind::HistUnderflow { count }));
            }
        }
    }

    fn close_window(&mut self) {
        let wdur = self.wall_ns - self.window.start_wall;
        if wdur <= 0.0 {
            return;
        }
        // Daemon CPU contention: daemons steal cores from the app only when
        // the machine is oversubscribed.
        let cores = self.machine.config().cores as f64;
        let threads = self.threads();
        let wdaemon = self.acct.daemon_ns - self.window.start_daemon_ns;
        // Daemon work runs on a bounded set of kernel threads; work beyond
        // that capacity queues rather than consuming extra cores.
        let dcores = ((wdaemon / wdur).min(self.machine.config().daemon_core_cap)
            + self.policy.dedicated_daemon_cores())
        .min(cores - 1.0);
        let available = cores - dcores;
        let speed = (available.min(threads)) / threads;
        let stretch = wdur * (1.0 / speed - 1.0);
        self.wall_ns += stretch;

        let accesses = self.accesses - self.window.start_accesses;
        let fast_hits = self.machine.stats.tier_hits.first().copied().unwrap_or(0);
        let total_hits: u64 = self.machine.stats.tier_hits.iter().sum();
        let wfast = fast_hits - self.window.start_fast_hits;
        let wtotal = total_hits - self.window.start_total_hits;
        let mut policy_metrics = Vec::new();
        self.policy.timeline(&mut policy_metrics);
        let wall_total = self.wall_ns;
        self.timeline.push(Snapshot {
            wall_ns: wall_total,
            accesses: self.accesses,
            window_throughput: accesses as f64 / ((wdur + stretch) * 1e-9),
            window_fast_hit_ratio: if wtotal == 0 {
                0.0
            } else {
                wfast as f64 / wtotal as f64
            },
            rss_bytes: self.machine.rss_bytes(),
            fast_used_bytes: self.machine.used_bytes(TierId::FAST),
            policy: policy_metrics,
        });
        self.window = WindowState {
            start_wall: self.wall_ns,
            start_accesses: self.accesses,
            start_daemon_ns: self.acct.daemon_ns,
            start_fast_hits: fast_hits,
            start_total_hits: total_hits,
        };
    }

    /// Closes the current telemetry window at the present cumulative state
    /// and notifies the observer.
    fn cut_telemetry_window(&mut self) {
        let _span = Self::span(&self.obs, SpanId::WindowCut);
        self.note_hist_underflows();
        // Epoch-barrier telemetry: cumulative burst/spill tallies at the
        // cut. Both values are shard-count-invariant, so traces stay
        // byte-identical across `--shards` values.
        if let Some(sh) = &self.shard {
            if self.obs.enabled() {
                self.obs.record(Event::new(
                    self.wall_ns,
                    EventKind::ShardBarrier {
                        bursts: sh.bursts,
                        spills: sh.spills,
                    },
                ));
            }
        }
        let mut gauges = Vec::new();
        self.policy.timeline(&mut gauges);
        let mut hist_bins = Vec::new();
        self.policy.histogram_bins(&mut hist_bins);
        let sample = self.wcol.close(WindowCut {
            events: self.sim_events,
            wall_ns: self.wall_ns,
            accesses: self.accesses,
            tier_hits: &self.machine.stats.tier_hits,
            migrated_bytes: self.machine.stats.migration.migrated_bytes,
            gauges,
            hist_bins,
        });
        self.obs.on_window(sample);
        // Cut the flight recorder's window by single-pass difference stats
        // against the last cut's snapshot (no histograms are materialised,
        // and the snapshot reuses its allocations). `WindowSample` itself
        // stays untouched so traced and untraced window series still match.
        if self.machine.flight_attached() {
            let cur = self.machine.flight().expect("checked attached");
            self.lat_windows
                .push(flight_rows_since(cur, Some(&self.flight_prev)));
            self.flight_prev.snapshot_from(cur);
        }
    }

    /// Processes one workload event plus the per-event bookkeeping the main
    /// loop performs after it. Returns `true` when the run should stop
    /// (`max_accesses` reached).
    fn step_event(&mut self, ev: WorkloadEvent) -> SimResult<bool> {
        self.sim_events += 1;
        match ev {
            WorkloadEvent::Access(a) => self.handle_access(a)?,
            WorkloadEvent::Alloc { addr, bytes, thp } => self.handle_alloc(addr, bytes, thp)?,
            WorkloadEvent::Free { addr, bytes } => self.handle_free(addr, bytes)?,
        }
        self.pump_transfers();
        if self.has_faults {
            self.emit_fault_records();
        }
        Ok(self.post_event_checks())
    }

    /// The boundary checks the main loop runs after every event: due ticks,
    /// timeline snapshots, telemetry-window cuts, the access budget, and
    /// the RSS peak. Returns `true` when `max_accesses` is reached. The
    /// batched loop hoists this from per-event to per-burst, having sized
    /// each burst so no check could have fired mid-burst.
    fn post_event_checks(&mut self) -> bool {
        if self.wall_ns >= self.next_tick {
            self.run_due_ticks();
        }
        if self.wall_ns >= self.next_snapshot {
            self.close_window();
            self.next_snapshot = self.wall_ns + self.cfg.timeline_interval_ns;
        }
        if self.wcol.due(self.sim_events) {
            self.cut_telemetry_window();
        }
        if self.sim_events >= self.hb_next {
            self.emit_heartbeat();
        }
        if let Some(max) = self.cfg.max_accesses {
            if self.accesses >= max {
                return true;
            }
        }
        self.rss_peak = self.rss_peak.max(self.machine.rss_bytes());
        false
    }

    /// Prints the periodic one-line JSON status to stderr (never stdout —
    /// reports and exported traces stay unperturbed). Host-time rate plus
    /// instantaneous simulated-state gauges; flight-recorder p99 when the
    /// recorder is attached, 0 otherwise.
    fn emit_heartbeat(&mut self) {
        while self.hb_next <= self.sim_events {
            self.hb_next += self.hb_every;
        }
        let elapsed = self.host_start.elapsed().as_secs_f64().max(1e-9);
        let eps = self.sim_events as f64 / elapsed;
        let p99 = self
            .machine
            .flight()
            .map(|f| f.demand_all_stats().p99)
            .unwrap_or(0);
        eprintln!(
            "{{\"schema\":\"memtis-heartbeat-v1\",\"sim_events\":{},\"events_per_sec\":{:.0},\
             \"wall_ns\":{:.0},\"inflight\":{},\"queue_depth\":{},\"p99_demand_ns\":{},\
             \"rss_bytes\":{}}}",
            self.sim_events,
            eps,
            self.wall_ns,
            self.machine.transfers_in_flight(),
            self.machine.transfer_queue_len(),
            p99,
            self.machine.rss_bytes(),
        );
    }

    /// The batched main loop: pulls events in [`DriverConfig::chunk`]-sized
    /// chunks and executes runs of consecutive accesses through
    /// [`Machine::access_batch`], hoisting the per-event boundary checks to
    /// run granularity.
    ///
    /// Byte-exactness with the per-event loop rests on three invariants:
    ///
    /// 1. Deferral engages only on *quiet* runs — no migration engine
    ///    (`bandwidth_limit` unset, so `pump_transfers` is a no-op and
    ///    per-access fault work is exactly `0.0`), no fault injection
    ///    (every sample fate is `Deliver`, no fault records) — under a
    ///    policy declaring [`TieringPolicy::batch_safe`]. Anything else
    ///    funnels through [`Simulation::step_event`] unchanged.
    /// 2. A burst is sized so no boundary check could fire between two of
    ///    its accesses: the clock stops at the next tick/snapshot boundary,
    ///    and the length is capped by the window collector's
    ///    remaining-event budget and the remaining access budget. The
    ///    checks then run once after the burst — the first point the
    ///    per-event loop could have seen them fire.
    /// 3. Deferred `on_access` deliveries replay in order, each at its
    ///    recorded pre-update wall clock, before any boundary work or
    ///    fault tail that follows the burst.
    ///
    /// Hint faults stop the burst (the machine has executed the access;
    /// the legacy tail replays its policy hooks and clock update here) and
    /// demand faults stop it before any side effect (the event re-runs
    /// through `step_event`).
    fn run_chunked(&mut self, workload: &mut dyn AccessStream) -> SimResult<()> {
        let chunk = self.cfg.chunk;
        let mut buf = vec![WorkloadEvent::Access(Access::load(0)); chunk];
        let mut records: Vec<AccessRecord> = Vec::with_capacity(chunk);
        let defer = self.machine.config().migration.bandwidth_limit.is_none()
            && !self.has_faults
            && self.policy.batch_safe();
        // Constant for the run, per the `batch_record_filter` contract.
        let filter = self.policy.batch_record_filter();
        'outer: loop {
            let n = workload.fill(&mut buf);
            if n == 0 {
                break;
            }
            let mut i = 0;
            while i < n {
                if !defer || !matches!(buf[i], WorkloadEvent::Access(_)) {
                    let ev = buf[i];
                    i += 1;
                    if self.step_event(ev)? {
                        break 'outer;
                    }
                    continue;
                }
                let mut limit = (n - i) as u64;
                limit = limit.min(self.wcol.events_until_due(self.sim_events));
                if let Some(max) = self.cfg.max_accesses {
                    // `max(1)`: if the budget is already exhausted (only
                    // possible with `max_accesses: Some(0)`), the per-event
                    // loop still executes one event before its check.
                    limit = limit.min(max.saturating_sub(self.accesses).max(1));
                }
                debug_assert!(limit >= 1, "burst sizing must always make progress");
                if self.shard.is_some() {
                    let (consumed, stop) =
                        self.run_sharded_burst(&buf[i..i + limit as usize], &mut records, filter)?;
                    i += consumed;
                    if stop {
                        break 'outer;
                    }
                    continue;
                }
                let mut clock = BatchClock {
                    wall_ns: self.wall_ns,
                    app_access_ns: self.app_access_ns,
                    threads: self.threads(),
                    stop_wall_ns: self.next_tick.min(self.next_snapshot),
                };
                records.clear();
                let (consumed, stop) = {
                    let _span = Self::span(&self.obs, SpanId::BatchExec);
                    self.machine.access_batch(
                        &buf[i..i + limit as usize],
                        &mut records,
                        &mut clock,
                        filter,
                    )
                };
                self.wall_ns = clock.wall_ns;
                self.app_access_ns = clock.app_access_ns;
                self.accesses += consumed as u64;
                self.sim_events += consumed as u64;
                i += consumed;
                if !records.is_empty() {
                    let _span = Self::span(&self.obs, SpanId::SamplingDrain);
                    let mut ops = Self::ops(
                        &mut self.machine,
                        &mut self.acct,
                        &mut self.obs,
                        CostSink::Daemon,
                        self.wall_ns,
                    );
                    self.policy.on_access_batch(&mut ops, &records);
                }
                match stop {
                    BatchStop::Clean => {
                        if consumed > 0 && self.post_event_checks() {
                            break 'outer;
                        }
                    }
                    BatchStop::Hint(outcome) => {
                        // The access executed (trap cost included in its
                        // latency); replay the per-event tail.
                        let WorkloadEvent::Access(access) = buf[i] else {
                            unreachable!("hint stop only fires on an access event");
                        };
                        self.sim_events += 1;
                        i += 1;
                        let app_before = self.acct.app_extra_ns;
                        {
                            let mut ops = Self::ops(
                                &mut self.machine,
                                &mut self.acct,
                                &mut self.obs,
                                CostSink::App,
                                self.wall_ns,
                            );
                            self.policy.on_hint_fault(&mut ops, outcome.vpage);
                        }
                        self.notify_access(&access, &outcome);
                        let fault_work = self.acct.app_extra_ns - app_before;
                        self.app_access_ns += outcome.latency_ns;
                        self.wall_ns += (outcome.latency_ns + fault_work) / self.threads();
                        self.accesses += 1;
                        self.pump_transfers();
                        if self.post_event_checks() {
                            break 'outer;
                        }
                    }
                    BatchStop::NotMapped => {
                        // No side effects yet: the demand fault replays
                        // whole through the per-event path.
                        let ev = buf[i];
                        i += 1;
                        if self.step_event(ev)? {
                            break 'outer;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes one sharded burst: the Access-only prefix of `events` runs
    /// through the lane executors ([`shard::run_burst`], across the
    /// configured worker threads), then the coordinator merges the results
    /// deterministically. Returns `(events consumed, stop)`.
    ///
    /// Determinism across shard counts rests on the lanes being pure
    /// functions of the burst-start machine snapshot (see [`crate::shard`]):
    ///
    /// 1. **Partition** — accesses are distributed to their lanes in stream
    ///    order (lane order within a lane equals stream order).
    /// 2. **Parallel execute** — lanes run against `&PageTable` read-only;
    ///    reference-bit updates are buffered per lane.
    /// 3. **Commit** — deferred reference bits are OR-folded into the page
    ///    table in fixed lane order, then outcomes are folded back *in
    ///    original stream order* via per-lane cursors: record filtering,
    ///    stats, and the wall clock all advance exactly as a single-threaded
    ///    replay would. An access whose lane stopped early (unmapped page or
    ///    armed hint) spills to the serial [`Simulation::handle_access`]
    ///    path, after flushing the pending record batch so the policy sees
    ///    deliveries in stream order.
    fn run_sharded_burst(
        &mut self,
        events: &[WorkloadEvent],
        records: &mut Vec<AccessRecord>,
        filter: RecordFilter,
    ) -> SimResult<(usize, bool)> {
        let mut sh = self
            .shard
            .take()
            .expect("sharded burst without shard state");
        let m = events
            .iter()
            .position(|ev| !matches!(ev, WorkloadEvent::Access(_)))
            .unwrap_or(events.len());
        debug_assert!(m >= 1, "sharded burst must start with an access");
        for sc in sh.lanes.iter_mut() {
            sc.reset();
        }
        for ev in &events[..m] {
            let WorkloadEvent::Access(a) = *ev else {
                unreachable!("non-access event inside the access prefix");
            };
            sh.lanes[lane_of(a.vaddr.base_page())].push(a);
        }
        let phase_start = std::time::Instant::now();
        {
            let _span = Self::span(&self.obs, SpanId::ShardBarrier);
            shard::run_burst(&mut self.machine, &mut sh.lanes, sh.shards);
        }
        let phase_ns = phase_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        shard::apply_deferred_bits(&mut self.machine, &mut sh.lanes);
        // Per-shard load split (deterministic, matching `run_burst`'s
        // contiguous lane grouping) for the Amdahl projection in
        // [`ShardMetrics::projected_ns`].
        let per = NUM_LANES.div_ceil(sh.shards.max(1));
        let (mut burst_load, mut burst_crit) = (0u64, 0u64);
        for group in sh.lanes.chunks(per) {
            let load: u64 = group.iter().map(|sc| sc.outcome_count() as u64).sum();
            burst_load += load;
            burst_crit = burst_crit.max(load);
        }

        records.clear();
        let fold_span = Self::span(&self.obs, SpanId::ShardFold);
        let mut cursors = [0usize; NUM_LANES];
        let threads = self.threads();
        for ev in &events[..m] {
            let WorkloadEvent::Access(access) = *ev else {
                unreachable!("non-access event inside the access prefix");
            };
            let lane = lane_of(access.vaddr.base_page());
            let c = cursors[lane];
            cursors[lane] += 1;
            if c < sh.lanes[lane].outcome_count() {
                let outcome = sh.lanes[lane].outcome(c);
                if filter.keeps(access.kind, outcome.llc_miss) {
                    records.push(AccessRecord {
                        access,
                        outcome,
                        now_ns: self.wall_ns,
                    });
                }
                if outcome.llc_miss {
                    self.machine.stats.count_tier_hit(outcome.tier);
                }
                if access.is_store() {
                    self.machine.stats.stores += 1;
                } else {
                    self.machine.stats.loads += 1;
                }
                // Lane outcomes bypass `Machine::access`, so the fold is
                // the flight recorder's tap for them (spills below record
                // through the serial path instead).
                self.machine.flight_record_demand(
                    outcome.tier,
                    outcome.page_size,
                    outcome.latency_ns,
                );
                self.app_access_ns += outcome.latency_ns;
                self.wall_ns += outcome.latency_ns / threads;
                self.accesses += 1;
                self.sim_events += 1;
            } else {
                // The lane stopped before this access (unmapped page or
                // armed hint): flush pending policy deliveries so stream
                // order holds, then replay serially.
                sh.spills += 1;
                self.flush_record_batch(records);
                self.sim_events += 1;
                self.handle_access(access)?;
            }
        }
        self.flush_record_batch(records);
        drop(fold_span);
        sh.bursts += 1;
        sh.busy_ns += phase_ns;
        sh.lane_accesses += burst_load;
        sh.crit_accesses += burst_crit;
        self.shard = Some(sh);
        let stop = self.post_event_checks();
        Ok((m, stop))
    }

    /// Delivers the pending record batch to the policy (daemon context) and
    /// clears it. No-op on an empty batch.
    fn flush_record_batch(&mut self, records: &mut Vec<AccessRecord>) {
        if records.is_empty() {
            return;
        }
        let _span = Self::span(&self.obs, SpanId::SamplingDrain);
        let mut ops = Self::ops(
            &mut self.machine,
            &mut self.acct,
            &mut self.obs,
            CostSink::Daemon,
            self.wall_ns,
        );
        self.policy.on_access_batch(&mut ops, records);
        records.clear();
    }

    /// Host-side scaling metrics of the sharded pipeline, or `None` on an
    /// unsharded run. Host timings, not simulated time: use these to gauge
    /// parallel speedup without perturbing the deterministic report.
    pub fn shard_metrics(&self) -> Option<ShardMetrics> {
        self.shard.as_ref().map(|sh| ShardMetrics {
            shards: sh.shards,
            bursts: sh.bursts,
            spills: sh.spills,
            busy_ns: sh.busy_ns,
            lane_accesses: sh.lane_accesses,
            crit_accesses: sh.crit_accesses,
        })
    }

    /// Runs the workload to completion (or `max_accesses`) and reports.
    /// The simulation (machine and policy) remains inspectable afterwards.
    pub fn run(&mut self, workload: &mut dyn AccessStream) -> SimResult<RunReport> {
        let host_start = std::time::Instant::now();
        let events_at_start = self.sim_events;
        {
            let mut ops = Self::ops(
                &mut self.machine,
                &mut self.acct,
                &mut self.obs,
                CostSink::Daemon,
                0.0,
            );
            self.policy.init(&mut ops);
        }
        if self.cfg.chunk > 1 {
            self.run_chunked(workload)?;
        } else {
            while let Some(ev) = workload.next_event() {
                if self.step_event(ev)? {
                    break;
                }
            }
        }
        self.pump_transfers();
        if self.has_faults {
            self.emit_fault_records();
        }
        self.note_hist_underflows();
        self.close_window();
        if self.wcol.has_partial(self.sim_events) {
            self.cut_telemetry_window();
        }

        let mut fault_counters = self.machine.fault_counters();
        if let Some(inj) = self.drv_faults.as_ref() {
            fault_counters.merge(&inj.counters);
        }
        Ok(RunReport {
            workload: workload.name().to_string(),
            policy: self.policy.descriptor().name.to_string(),
            wall_ns: self.wall_ns,
            app_access_ns: self.app_access_ns,
            app_extra_ns: self.acct.app_extra_ns,
            daemon_ns: self.acct.daemon_ns,
            accesses: self.accesses,
            stats: self.machine.stats.clone(),
            tlb: self.machine.tlb_stats(),
            llc: self.machine.llc_stats(),
            rss_peak_bytes: self.rss_peak.max(self.machine.rss_bytes()),
            rss_final_bytes: self.machine.rss_bytes(),
            timeline: std::mem::take(&mut self.timeline),
            windows: self.wcol.samples().to_vec(),
            sim_events: self.sim_events - events_at_start,
            hist_underflows: self.hist_underflows_seen,
            faults: fault_counters,
            lat: self
                .machine
                .flight()
                .map(|f| flight_rows_since(f, None))
                .unwrap_or_default(),
            lat_windows: self.lat_windows.clone(),
            host_elapsed_ns: host_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HUGE_PAGE_SIZE;
    use crate::policy::NoopPolicy;

    /// A scripted stream for tests.
    pub struct Script {
        events: std::vec::IntoIter<WorkloadEvent>,
    }

    impl Script {
        pub fn new(events: Vec<WorkloadEvent>) -> Self {
            Script {
                events: events.into_iter(),
            }
        }
    }

    impl AccessStream for Script {
        fn next_event(&mut self) -> Option<WorkloadEvent> {
            self.events.next()
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    fn cfg() -> MachineConfig {
        MachineConfig::dram_nvm(2 * HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE)
    }

    #[test]
    fn alloc_access_free_cycle() {
        let mut wl = Script::new(vec![
            WorkloadEvent::Alloc {
                addr: VirtAddr(0),
                bytes: HUGE_PAGE_SIZE,
                thp: true,
            },
            WorkloadEvent::Access(Access::load(4096)),
            WorkloadEvent::Access(Access::store(8192)),
            WorkloadEvent::Free {
                addr: VirtAddr(0),
                bytes: HUGE_PAGE_SIZE,
            },
        ]);
        let mut sim = Simulation::new(cfg(), NoopPolicy, DriverConfig::default());
        let r = sim.run(&mut wl).unwrap();
        assert_eq!(r.accesses, 2);
        assert_eq!(r.rss_final_bytes, 0);
        assert_eq!(r.rss_peak_bytes, HUGE_PAGE_SIZE);
        assert!(r.wall_ns > 0.0);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.sim_events, 4);
        assert!(r.self_events_per_sec() > 0.0);
    }

    #[test]
    fn thp_disabled_maps_base_pages() {
        let mut wl = Script::new(vec![WorkloadEvent::Alloc {
            addr: VirtAddr(0),
            bytes: HUGE_PAGE_SIZE,
            thp: true,
        }]);
        let mut sim = Simulation::new(
            cfg(),
            NoopPolicy,
            DriverConfig {
                thp_enabled: false,
                ..Default::default()
            },
        );
        let r = sim.run(&mut wl).unwrap();
        assert_eq!(r.rss_final_bytes, HUGE_PAGE_SIZE);
        let _ = r;
    }

    #[test]
    fn demand_fault_maps_missing_page() {
        let mut wl = Script::new(vec![WorkloadEvent::Access(Access::load(123 * 4096))]);
        let mut sim = Simulation::new(cfg(), NoopPolicy, DriverConfig::default());
        let r = sim.run(&mut wl).unwrap();
        assert_eq!(r.accesses, 1);
        assert_eq!(r.stats.demand_faults, 1);
        assert_eq!(r.rss_final_bytes, 4096);
        assert!(r.app_extra_ns >= 300.0);
    }

    #[test]
    fn spillover_to_capacity_tier() {
        // 2 MiB fast tier, allocate 3 huge pages: 1 fast + 2 capacity.
        let mc = MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 8 * HUGE_PAGE_SIZE);
        let mut wl = Script::new(vec![WorkloadEvent::Alloc {
            addr: VirtAddr(0),
            bytes: 3 * HUGE_PAGE_SIZE,
            thp: true,
        }]);
        let mut sim = Simulation::new(mc, NoopPolicy, DriverConfig::default());
        let r = sim.run(&mut wl).unwrap();
        assert_eq!(r.rss_final_bytes, 3 * HUGE_PAGE_SIZE);
    }

    #[test]
    fn wall_time_divides_across_threads() {
        let mut one = Script::new(vec![
            WorkloadEvent::Alloc {
                addr: VirtAddr(0),
                bytes: HUGE_PAGE_SIZE,
                thp: true,
            },
            WorkloadEvent::Access(Access::load(0)),
        ]);
        let mut mc = cfg();
        mc.app_threads = 1;
        let r1 = Simulation::new(mc.clone(), NoopPolicy, DriverConfig::default())
            .run(&mut one)
            .unwrap();
        let mut twenty = Script::new(vec![
            WorkloadEvent::Alloc {
                addr: VirtAddr(0),
                bytes: HUGE_PAGE_SIZE,
                thp: true,
            },
            WorkloadEvent::Access(Access::load(0)),
        ]);
        mc.app_threads = 20;
        let r20 = Simulation::new(mc, NoopPolicy, DriverConfig::default())
            .run(&mut twenty)
            .unwrap();
        assert!(r20.wall_ns < r1.wall_ns);
        assert!((r1.wall_ns / r20.wall_ns - 20.0).abs() < 0.5);
    }

    /// Promotes page 0 once from the first tick and records every terminal
    /// transfer it is told about.
    struct PromoteOnce {
        asked: bool,
        ended: Vec<crate::engine::TransferEnd>,
    }

    impl PromoteOnce {
        fn new() -> Self {
            PromoteOnce {
                asked: false,
                ended: Vec::new(),
            }
        }
    }

    impl TieringPolicy for PromoteOnce {
        fn descriptor(&self) -> crate::policy::PolicyDescriptor {
            NoopPolicy.descriptor()
        }
        fn alloc_tier(
            &mut self,
            _ops: &mut PolicyOps<'_>,
            _vpage: VirtPage,
            _size: PageSize,
        ) -> TierId {
            TierId::CAPACITY
        }
        fn tick(&mut self, ops: &mut PolicyOps<'_>) {
            if !self.asked && ops.migrate(VirtPage(0), TierId::FAST).is_ok() {
                self.asked = true;
            }
        }
        fn on_transfer_end(&mut self, _ops: &mut PolicyOps<'_>, end: &crate::engine::TransferEnd) {
            self.ended.push(*end);
        }
    }

    fn promote_workload() -> Script {
        let mut events = vec![WorkloadEvent::Alloc {
            addr: VirtAddr(0),
            bytes: HUGE_PAGE_SIZE,
            thp: false,
        }];
        for i in 0..5_000u64 {
            events.push(WorkloadEvent::Access(Access::load((i % 512) * 4096)));
        }
        Script::new(events)
    }

    #[test]
    fn run_loop_pumps_async_transfers_to_completion() {
        let mut sim = Simulation::new(
            cfg(),
            PromoteOnce::new(),
            DriverConfig {
                migration_bw: Some(1.0),
                tick_interval_ns: 10_000.0,
                ..Default::default()
            },
        );
        let r = sim.run(&mut promote_workload()).unwrap();
        assert!(sim.policy().asked);
        // The transfer finished inside the run and was reported back.
        assert!(sim.machine().transfers_idle());
        assert_eq!(sim.policy().ended.len(), 1);
        assert!(sim.policy().ended[0].aborted.is_none());
        assert_eq!(sim.machine().locate(VirtPage(0)).unwrap().0, TierId::FAST);
        assert_eq!(r.stats.migration.promoted_4k, 1);
        assert_eq!(r.stats.migration.aborted, 0);
    }

    #[test]
    fn unlimited_bandwidth_run_matches_legacy_sync_path() {
        // `migration_bw: None` (the default) must reproduce the
        // pre-engine instantaneous semantics bit-exactly: this is the
        // regression oracle for the whole refactor.
        let run = |cfg_driver: DriverConfig| {
            let mut sim = Simulation::new(cfg(), PromoteOnce::new(), cfg_driver);
            sim.run(&mut promote_workload()).unwrap()
        };
        let legacy = run(DriverConfig {
            tick_interval_ns: 10_000.0,
            ..Default::default()
        });
        let explicit_off = run(DriverConfig {
            migration_bw: Some(0.0),
            tick_interval_ns: 10_000.0,
            ..Default::default()
        });
        assert_eq!(legacy.wall_ns, explicit_off.wall_ns);
        assert_eq!(legacy.app_access_ns, explicit_off.app_access_ns);
        assert_eq!(legacy.daemon_ns, explicit_off.daemon_ns);
        assert_eq!(
            format!("{:?}", legacy.stats),
            format!("{:?}", explicit_off.stats)
        );
        // Sync completion never calls the terminal hook.
        let mut sim = Simulation::new(
            cfg(),
            PromoteOnce::new(),
            DriverConfig {
                tick_interval_ns: 10_000.0,
                ..Default::default()
            },
        );
        sim.run(&mut promote_workload()).unwrap();
        assert!(sim.policy().asked);
        assert!(sim.policy().ended.is_empty());
    }

    /// Debug-formats a report with the host timing zeroed — the only field
    /// allowed to differ between two byte-identical runs.
    fn report_sig(mut r: RunReport) -> String {
        r.host_elapsed_ns = 0;
        format!("{r:?}")
    }

    /// A deterministic event mix: same-page access runs (coalesced path),
    /// loads/stores, demand faults past the mapped range, and occasional
    /// frees.
    fn mixed_events(n: usize) -> Vec<WorkloadEvent> {
        let mut events = vec![WorkloadEvent::Alloc {
            addr: VirtAddr(0),
            bytes: 2 * HUGE_PAGE_SIZE,
            thp: true,
        }];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut i = 0u64;
        while events.len() < n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = x >> 33;
            let page = r % 1200; // ~15% past the 1024 mapped pages
            let addr = page * 4096 + (r % 500) * 8;
            let ev = if r.is_multiple_of(7) {
                WorkloadEvent::Access(Access::store(addr))
            } else {
                WorkloadEvent::Access(Access::load(addr))
            };
            for _ in 0..=(r % 3) {
                events.push(ev);
            }
            i += 1;
            if i.is_multiple_of(289) {
                events.push(WorkloadEvent::Free {
                    addr: VirtAddr(1040 * 4096),
                    bytes: 4 * 4096,
                });
            }
        }
        events
    }

    /// Batch-safe policy that arms NUMA hints from ticks and charges
    /// app-side fault work — exercising the batched loop's hint tail and
    /// its fault-work clock arithmetic.
    struct ArmHints {
        next: u64,
    }

    impl TieringPolicy for ArmHints {
        fn descriptor(&self) -> crate::policy::PolicyDescriptor {
            NoopPolicy.descriptor()
        }
        fn batch_safe(&self) -> bool {
            true
        }
        fn tick(&mut self, ops: &mut PolicyOps<'_>) {
            for _ in 0..4 {
                ops.set_hint(VirtPage(self.next % 1024));
                self.next = self.next.wrapping_add(97);
            }
        }
        fn on_hint_fault(&mut self, ops: &mut PolicyOps<'_>, _vpage: VirtPage) {
            ops.charge(75.0);
        }
    }

    #[test]
    fn chunked_loop_matches_per_event_loop_byte_for_byte() {
        let run = |chunk: usize| {
            let mut wl = Script::new(mixed_events(6_000));
            let mut sim = Simulation::new(
                cfg(),
                ArmHints { next: 5 },
                DriverConfig {
                    tick_interval_ns: 5_000.0,
                    timeline_interval_ns: 20_000.0,
                    window_events: 37,
                    max_accesses: Some(5_500),
                    chunk,
                    ..Default::default()
                },
            );
            report_sig(sim.run(&mut wl).unwrap())
        };
        let legacy = run(1);
        for chunk in [2, 7, 64, DEFAULT_CHUNK] {
            assert_eq!(legacy, run(chunk), "chunk {chunk} diverged from legacy");
        }
    }

    #[test]
    fn chunked_loop_matches_for_non_batch_safe_policy() {
        // PromoteOnce keeps the default `batch_safe() == false`, so the
        // chunked loop must funnel every event through the per-event path
        // — with and without the async migration engine.
        for bw in [None, Some(1.0)] {
            let run = |chunk: usize| {
                let mut sim = Simulation::new(
                    cfg(),
                    PromoteOnce::new(),
                    DriverConfig {
                        tick_interval_ns: 10_000.0,
                        migration_bw: bw,
                        chunk,
                        ..Default::default()
                    },
                );
                report_sig(sim.run(&mut promote_workload()).unwrap())
            };
            assert_eq!(run(1), run(DEFAULT_CHUNK), "bw {bw:?} diverged");
        }
    }

    #[test]
    fn sharded_run_is_shard_count_invariant() {
        // `--shards N` must reproduce `--shards 1` byte-for-byte at the same
        // chunk: the lanes are the unit of determinism, shards are only a
        // thread grouping over them.
        let run = |chunk: usize, shards: usize| {
            let mut wl = Script::new(mixed_events(6_000));
            let mut sim = Simulation::new(
                cfg(),
                ArmHints { next: 5 },
                DriverConfig {
                    tick_interval_ns: 5_000.0,
                    timeline_interval_ns: 20_000.0,
                    window_events: 37,
                    max_accesses: Some(5_500),
                    chunk,
                    shards: Some(shards),
                    ..Default::default()
                },
            );
            let sig = report_sig(sim.run(&mut wl).unwrap());
            let metrics = sim.shard_metrics().expect("sharded run has metrics");
            assert!(metrics.bursts > 0, "sharded path never engaged");
            sig
        };
        for chunk in [7, 64, DEFAULT_CHUNK] {
            let serial = run(chunk, 1);
            for shards in [2, 3, 8] {
                assert_eq!(
                    serial,
                    run(chunk, shards),
                    "chunk {chunk} shards {shards} diverged from shards 1"
                );
            }
        }
    }

    #[test]
    fn sharded_run_matches_unsharded_when_serial_semantics_apply() {
        // With chunk 1 the shards knob is ignored outright (per-event loop).
        let run = |shards: Option<usize>| {
            let mut wl = Script::new(mixed_events(3_000));
            let mut sim = Simulation::new(
                cfg(),
                NoopPolicy,
                DriverConfig {
                    chunk: 1,
                    shards,
                    ..Default::default()
                },
            );
            report_sig(sim.run(&mut wl).unwrap())
        };
        assert_eq!(run(None), run(Some(4)));
    }

    #[test]
    fn default_fill_matches_next_event() {
        let evs = mixed_events(100);
        let mut bulk = Script::new(evs.clone());
        let mut single = Script::new(evs);
        let mut buf = vec![WorkloadEvent::Access(Access::load(0)); 7];
        loop {
            let n = bulk.fill(&mut buf);
            if n == 0 {
                assert!(single.next_event().is_none());
                break;
            }
            for ev in &buf[..n] {
                let expect = single.next_event().unwrap();
                assert_eq!(format!("{ev:?}"), format!("{expect:?}"));
            }
        }
    }

    #[test]
    fn timeline_snapshots_accumulate() {
        let mut events = vec![WorkloadEvent::Alloc {
            addr: VirtAddr(0),
            bytes: HUGE_PAGE_SIZE,
            thp: true,
        }];
        for i in 0..20_000u64 {
            events.push(WorkloadEvent::Access(Access::load((i % 512) * 4096)));
        }
        let mut wl = Script::new(events);
        let mut sim = Simulation::new(
            cfg(),
            NoopPolicy,
            DriverConfig {
                timeline_interval_ns: 10_000.0,
                ..Default::default()
            },
        );
        let r = sim.run(&mut wl).unwrap();
        assert!(r.timeline.len() >= 2, "timeline: {}", r.timeline.len());
        assert!(r.throughput() > 0.0);
        // Snapshots are monotonic in time and accesses.
        for w in r.timeline.windows(2) {
            assert!(w[1].wall_ns >= w[0].wall_ns);
            assert!(w[1].accesses >= w[0].accesses);
        }
    }
}
