//! Asynchronous migration engine: bandwidth-arbitrated, abortable in-flight
//! transfers.
//!
//! Real `kmigrated` threads move pages *over time*: a migration occupies the
//! copy bandwidth of the link between two tiers, can be overtaken by a
//! hotness change, and must cope with the application writing the page
//! mid-copy. This module models that as **copy-then-remap** transfers
//! (Nomad-style transactional migration):
//!
//! 1. **Enqueued** — the destination frame is reserved immediately (so tier
//!    accounting reflects the commitment), but the page keeps translating to
//!    its source frame. Admission is bounded by
//!    [`crate::config::MigrationConfig::queue_depth`].
//! 2. **Copying** — each tier pair forms one *link* whose bandwidth is the
//!    minimum of the two tiers' copy bandwidths, optionally capped by
//!    [`crate::config::MigrationConfig::bandwidth_limit`]. One transfer
//!    copies per link at a time; the next is chosen by highest priority,
//!    then FIFO. Reads keep hitting the source copy for the whole duration.
//! 3. **Completed** — when the copy pass finishes clean, the machine remaps
//!    the page to the reserved frame, frees the source frame, and performs
//!    the TLB shootdown.
//! 4. **Dirtied / aborted** — a store to an in-flight page marks the pass
//!    dirty; a dirty pass is re-copied up to
//!    [`crate::config::MigrationConfig::max_recopies`] times, then the
//!    transfer aborts and the reservation is released. Policies may also
//!    abort transfers explicitly (e.g. MEMTIS cancelling a promotion whose
//!    page cooled below the hot threshold).
//!
//! Progress advances only inside [`crate::machine::Machine::pump_transfers`],
//! which the driver calls on the simulated wall clock — never host time —
//! so transfer interleaving is deterministic: same seed, same schedule.
//! With `bandwidth_limit = None` the engine is never engaged and migrations
//! retain the legacy instantaneous semantics bit-exactly.

use crate::addr::{Frame, PageSize, TierId, VirtPage, BASE_PAGE_SIZE};
use crate::machine::MigrateOutcome;

/// Identifier of a queued or in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub u64);

impl std::fmt::Display for TransferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xfer{}", self.0)
    }
}

/// Why a transfer ended without remapping the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// The issuing policy aborted the transfer (e.g. the page cooled below
    /// the hot threshold while its promotion was still in flight).
    Cancelled,
    /// Stores kept dirtying the source page past the re-copy budget.
    Dirty,
    /// The mapping changed under the transfer (unmap, split, collapse, or
    /// re-allocation), so the copied data no longer describes the page.
    Superseded,
}

impl AbortCause {
    /// Stable snake_case label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Cancelled => "cancelled",
            AbortCause::Dirty => "dirty",
            AbortCause::Superseded => "superseded",
        }
    }
}

/// Result of asking the machine to migrate a page.
///
/// With an unlimited migration link the move completes synchronously and the
/// caller gets the familiar [`MigrateOutcome`]; under bandwidth arbitration
/// the move is admitted as an in-flight transfer instead and completes (or
/// aborts) during a later pump.
#[derive(Debug, Clone, Copy)]
pub enum MigrationHandle {
    /// The migration completed synchronously (unlimited-bandwidth mode).
    Done(MigrateOutcome),
    /// The migration was admitted and is pending or copying.
    InFlight {
        /// Handle for abort / tracking.
        id: TransferId,
        /// Source tier at admission time.
        from: TierId,
        /// Destination tier.
        to: TierId,
        /// Bytes the transfer will copy.
        bytes: u64,
    },
}

impl MigrationHandle {
    /// Bytes moved (or committed to move).
    pub fn bytes(&self) -> u64 {
        match self {
            MigrationHandle::Done(out) => out.bytes,
            MigrationHandle::InFlight { bytes, .. } => *bytes,
        }
    }

    /// The synchronous outcome, if the migration already completed.
    pub fn outcome(&self) -> Option<&MigrateOutcome> {
        match self {
            MigrationHandle::Done(out) => Some(out),
            MigrationHandle::InFlight { .. } => None,
        }
    }

    /// The transfer id, if the migration is in flight.
    pub fn transfer_id(&self) -> Option<TransferId> {
        match self {
            MigrationHandle::Done(_) => None,
            MigrationHandle::InFlight { id, .. } => Some(*id),
        }
    }

    /// Whether the migration completed synchronously.
    pub fn is_done(&self) -> bool {
        matches!(self, MigrationHandle::Done(_))
    }
}

/// Terminal record of a transfer, reported back to the issuing policy.
#[derive(Debug, Clone, Copy)]
pub struct TransferEnd {
    /// The transfer's id.
    pub id: TransferId,
    /// Page the transfer covered.
    pub vpage: VirtPage,
    /// Mapping size at admission.
    pub size: PageSize,
    /// Source tier.
    pub from: TierId,
    /// Destination tier.
    pub to: TierId,
    /// Bytes the transfer was to copy.
    pub bytes: u64,
    /// Copy work discarded (whole passes; an interrupted pass counts full).
    pub wasted_bytes: u64,
    /// `None` if the page was remapped; otherwise why the transfer died.
    pub aborted: Option<AbortCause>,
}

/// Engine progress notification surfaced by
/// [`crate::machine::Machine::pump_transfers`].
#[derive(Debug, Clone, Copy)]
pub enum EngineEvent {
    /// A queued transfer won its link and began copying.
    Started {
        /// The transfer's id.
        id: TransferId,
        /// Page being copied.
        vpage: VirtPage,
        /// Source tier.
        from: TierId,
        /// Destination tier.
        to: TierId,
        /// Bytes being copied.
        bytes: u64,
    },
    /// A transfer finished — remapped on success, reservation released on
    /// abort.
    Ended(TransferEnd),
}

/// One queued or copying transfer.
#[derive(Debug, Clone)]
pub(crate) struct Transfer {
    pub id: TransferId,
    pub vpage: VirtPage,
    pub size: PageSize,
    pub from: TierId,
    pub to: TierId,
    pub src_frame: Frame,
    pub dst_frame: Frame,
    pub bytes: u64,
    pub priority: u8,
    pub enqueued_ns: f64,
    /// Admission order; breaks priority ties deterministically.
    seq: u64,
    /// Whether a copy pass has begun.
    pub started: bool,
    /// Time the first copy pass began (valid once started; unlike
    /// `start_ns` it survives dirty re-copies, so `end_ns -
    /// first_start_ns` is the full copy latency including restarts).
    pub first_start_ns: f64,
    /// Time the current copy pass began (valid once started).
    pub start_ns: f64,
    /// Time the current copy pass will finish (valid once started).
    pub end_ns: f64,
    /// A store dirtied the source during the current pass.
    pub dirty: bool,
    /// Copy passes restarted because the source was dirtied.
    pub recopies: u32,
    /// Copy passes whose work was discarded (restarts + aborted passes).
    pub wasted_passes: u32,
}

impl Transfer {
    fn pages(&self) -> u64 {
        self.bytes / BASE_PAGE_SIZE
    }

    /// Whether this transfer's page range overlaps `[vpage, vpage+pages)`.
    pub(crate) fn overlaps(&self, vpage: VirtPage, size: PageSize) -> bool {
        let a0 = self.vpage.0;
        let a1 = a0 + self.pages();
        let b0 = vpage.0;
        let b1 = b0 + size.bytes() / BASE_PAGE_SIZE;
        a0 < b1 && b0 < a1
    }

    pub(crate) fn wasted_bytes(&self) -> u64 {
        self.wasted_passes as u64 * self.bytes
    }

    pub(crate) fn end(&self, aborted: Option<AbortCause>) -> TransferEnd {
        TransferEnd {
            id: self.id,
            vpage: self.vpage,
            size: self.size,
            from: self.from,
            to: self.to,
            bytes: self.bytes,
            wasted_bytes: self.wasted_bytes(),
            aborted,
        }
    }
}

/// Internal pump step handed to the machine for finalization.
#[derive(Debug)]
pub(crate) enum PumpOutcome {
    Started {
        id: TransferId,
        vpage: VirtPage,
        from: TierId,
        to: TierId,
        bytes: u64,
        /// Enqueue → copy-start wait (sim ns), for the flight recorder.
        wait_ns: f64,
    },
    /// A copy pass finished clean; the machine remaps (or supersedes).
    CopyDone(Transfer),
    /// The re-copy budget ran out; the machine releases the reservation.
    DirtyAborted(Transfer),
}

/// One migration link (unordered tier pair) and its current occupant.
#[derive(Debug)]
struct Link {
    key: (u8, u8),
    /// Time up to which the link's bandwidth is committed.
    free_ns: f64,
    active: Option<Transfer>,
}

fn link_key(a: TierId, b: TierId) -> (u8, u8) {
    (a.0.min(b.0), a.0.max(b.0))
}

/// Transfer table: admission queue plus per-link active copies.
#[derive(Debug)]
pub(crate) struct MigrationEngine {
    queue_depth: usize,
    max_recopies: u32,
    pending: Vec<Transfer>,
    links: Vec<Link>,
    next_id: u64,
    next_seq: u64,
}

impl MigrationEngine {
    pub(crate) fn new(queue_depth: usize, max_recopies: u32) -> Self {
        MigrationEngine {
            queue_depth,
            max_recopies,
            pending: Vec::new(),
            links: Vec::new(),
            next_id: 0,
            next_seq: 0,
        }
    }

    /// No transfers queued or copying.
    pub(crate) fn is_idle(&self) -> bool {
        self.pending.is_empty() && !self.has_active()
    }

    pub(crate) fn has_active(&self) -> bool {
        self.links.iter().any(|l| l.active.is_some())
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.pending.len()
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.pending.len() + self.links.iter().filter(|l| l.active.is_some()).count()
    }

    pub(crate) fn has_queue_capacity(&self) -> bool {
        self.pending.len() < self.queue_depth
    }

    fn iter_all(&self) -> impl Iterator<Item = &Transfer> {
        self.pending
            .iter()
            .chain(self.links.iter().filter_map(|l| l.active.as_ref()))
    }

    /// Any transfer overlapping the given page range.
    pub(crate) fn find_overlapping(&self, vpage: VirtPage, size: PageSize) -> Option<TransferId> {
        self.iter_all()
            .find(|t| t.overlaps(vpage, size))
            .map(|t| t.id)
    }

    /// The transfer covering the base page `vpage`, if any.
    pub(crate) fn transfer_for(&self, vpage: VirtPage) -> Option<TransferId> {
        self.find_overlapping(vpage, PageSize::Base)
    }

    /// Marks the active transfer covering `vpage` (if any) dirty: the copy
    /// pass in progress will be discarded and re-run or aborted.
    pub(crate) fn note_store(&mut self, vpage: VirtPage) {
        for l in &mut self.links {
            if let Some(t) = l.active.as_mut() {
                if t.overlaps(vpage, PageSize::Base) {
                    t.dirty = true;
                }
            }
        }
    }

    /// Models a transient link outage beginning at `now_ns`: every active
    /// copy pass still in progress finishes `extra_ns` later, and idle
    /// links stay unusable until the outage lifts. Passes that already
    /// finished (`end_ns <= now_ns`) are not delayed — their copy completed
    /// before the outage hit; they finalize during the following pump.
    pub(crate) fn delay_active(&mut self, now_ns: f64, extra_ns: f64) {
        for l in &mut self.links {
            match l.active.as_mut() {
                Some(t) if t.end_ns > now_ns => t.end_ns += extra_ns,
                Some(_) => {}
                None => l.free_ns = l.free_ns.max(now_ns) + extra_ns,
            }
        }
    }

    /// Ids of every queued and active transfer, in deterministic order
    /// (admission order, then link-key order).
    pub(crate) fn transfer_ids(&self) -> Vec<TransferId> {
        self.iter_all().map(|t| t.id).collect()
    }

    /// Head pages of active copy passes, in deterministic link-key order.
    pub(crate) fn active_pages(&self) -> Vec<VirtPage> {
        self.links
            .iter()
            .filter_map(|l| l.active.as_ref().map(|t| t.vpage))
            .collect()
    }

    /// Whether `tier` is an endpoint of a link with an active copy.
    pub(crate) fn link_busy_for(&self, tier: TierId) -> bool {
        self.links
            .iter()
            .any(|l| l.active.is_some() && (l.key.0 == tier.0 || l.key.1 == tier.0))
    }

    /// Admits a validated transfer into the pending queue.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit(
        &mut self,
        vpage: VirtPage,
        size: PageSize,
        from: TierId,
        to: TierId,
        src_frame: Frame,
        dst_frame: Frame,
        priority: u8,
        now_ns: f64,
    ) -> TransferId {
        let id = TransferId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Transfer {
            id,
            vpage,
            size,
            from,
            to,
            src_frame,
            dst_frame,
            bytes: size.bytes(),
            priority,
            enqueued_ns: now_ns,
            seq,
            started: false,
            first_start_ns: 0.0,
            start_ns: 0.0,
            end_ns: 0.0,
            dirty: false,
            recopies: 0,
            wasted_passes: 0,
        });
        id
    }

    /// Removes a transfer by id (pending or active). An interrupted copy
    /// pass counts as a wasted pass; the link is freed at `now_ns`.
    pub(crate) fn remove(&mut self, id: TransferId, now_ns: f64) -> Option<Transfer> {
        if let Some(i) = self.pending.iter().position(|t| t.id == id) {
            return Some(self.pending.remove(i));
        }
        for l in &mut self.links {
            if l.active.as_ref().is_some_and(|t| t.id == id) {
                let mut t = l.active.take().unwrap();
                t.wasted_passes += 1;
                l.free_ns = l.free_ns.max(now_ns.min(t.end_ns));
                return Some(t);
            }
        }
        None
    }

    /// Ensures a link exists for every queued transfer, keeping the link
    /// list sorted by key so pump order is deterministic.
    fn ensure_links(&mut self) {
        for t in &self.pending {
            let key = link_key(t.from, t.to);
            if !self.links.iter().any(|l| l.key == key) {
                self.links.push(Link {
                    key,
                    free_ns: 0.0,
                    active: None,
                });
                self.links.sort_by_key(|l| l.key);
            }
        }
    }

    /// Index of the best pending transfer for `key`: highest priority, then
    /// admission order.
    fn best_pending_for(&self, key: (u8, u8)) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, t) in self.pending.iter().enumerate() {
            if link_key(t.from, t.to) != key {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cur = &self.pending[b];
                    if (t.priority, std::cmp::Reverse(t.seq))
                        > (cur.priority, std::cmp::Reverse(cur.seq))
                    {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Advances all links to `now_ns`. `bw_of(from, to)` yields the link
    /// bandwidth in bytes/ns. Returns starts, clean copy completions (for
    /// the machine to remap), and dirty aborts, in deterministic order.
    pub(crate) fn pump(
        &mut self,
        now_ns: f64,
        bw_of: impl Fn(TierId, TierId) -> f64,
    ) -> Vec<PumpOutcome> {
        let mut out = Vec::new();
        self.ensure_links();
        for li in 0..self.links.len() {
            loop {
                if self.links[li].active.is_none() {
                    let Some(idx) = self.best_pending_for(self.links[li].key) else {
                        break;
                    };
                    let mut t = self.pending.remove(idx);
                    let bw = bw_of(t.from, t.to);
                    t.start_ns = self.links[li].free_ns.max(t.enqueued_ns);
                    t.first_start_ns = t.start_ns;
                    t.end_ns = t.start_ns + t.bytes as f64 / bw;
                    t.started = true;
                    out.push(PumpOutcome::Started {
                        id: t.id,
                        vpage: t.vpage,
                        from: t.from,
                        to: t.to,
                        bytes: t.bytes,
                        wait_ns: t.start_ns - t.enqueued_ns,
                    });
                    self.links[li].active = Some(t);
                }
                let t = self.links[li].active.as_mut().expect("just activated");
                if t.end_ns > now_ns {
                    break;
                }
                // The current copy pass finished at `t.end_ns`.
                if t.dirty {
                    t.wasted_passes += 1;
                    if t.recopies < self.max_recopies {
                        t.recopies += 1;
                        t.dirty = false;
                        let bw = bw_of(t.from, t.to);
                        t.start_ns = t.end_ns;
                        t.end_ns = t.start_ns + t.bytes as f64 / bw;
                    } else {
                        let t = self.links[li].active.take().expect("active");
                        self.links[li].free_ns = t.end_ns;
                        out.push(PumpOutcome::DirtyAborted(t));
                    }
                } else {
                    let t = self.links[li].active.take().expect("active");
                    self.links[li].free_ns = t.end_ns;
                    out.push(PumpOutcome::CopyDone(t));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(e: &mut MigrationEngine, vpage: u64, prio: u8, now: f64) -> TransferId {
        e.admit(
            VirtPage(vpage),
            PageSize::Base,
            TierId::CAPACITY,
            TierId::FAST,
            Frame(1000 + vpage),
            Frame(vpage),
            prio,
            now,
        )
    }

    #[test]
    fn one_transfer_copies_per_link_in_priority_order() {
        let mut e = MigrationEngine::new(16, 2);
        let a = admit(&mut e, 1, 0, 0.0);
        let b = admit(&mut e, 2, 5, 0.0);
        // 4096 bytes at 1 byte/ns = 4096 ns per transfer.
        let out = e.pump(4096.0, |_, _| 1.0);
        // b (higher priority) starts first and completes at t=4096; a then
        // starts but has not finished.
        let started: Vec<TransferId> = out
            .iter()
            .filter_map(|o| match o {
                PumpOutcome::Started { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![b, a]);
        let done: Vec<TransferId> = out
            .iter()
            .filter_map(|o| match o {
                PumpOutcome::CopyDone(t) => Some(t.id),
                _ => None,
            })
            .collect();
        assert_eq!(done, vec![b]);
        assert!(!e.is_idle());
        let out2 = e.pump(8192.0, |_, _| 1.0);
        assert!(matches!(&out2[..], [PumpOutcome::CopyDone(t)] if t.id == a));
        assert!(e.is_idle());
    }

    #[test]
    fn dirty_pass_recopies_then_aborts() {
        let mut e = MigrationEngine::new(16, 1);
        let id = admit(&mut e, 7, 0, 0.0);
        e.pump(10.0, |_, _| 1.0); // start copying
        e.note_store(VirtPage(7));
        let out = e.pump(4096.0, |_, _| 1.0);
        // First pass dirty -> restarted, still copying.
        assert!(out
            .iter()
            .all(|o| !matches!(o, PumpOutcome::DirtyAborted(_))));
        e.note_store(VirtPage(7));
        let out = e.pump(8192.0, |_, _| 1.0);
        assert!(
            matches!(&out[..], [PumpOutcome::DirtyAborted(t)] if t.id == id && t.wasted_passes == 2)
        );
        assert!(e.is_idle());
    }

    #[test]
    fn remove_pending_and_active() {
        let mut e = MigrationEngine::new(16, 2);
        let a = admit(&mut e, 1, 0, 0.0);
        let b = admit(&mut e, 2, 0, 0.0);
        e.pump(10.0, |_, _| 1.0); // a active, b pending
        let tb = e.remove(b, 10.0).unwrap();
        assert_eq!(tb.wasted_passes, 0, "pending removal wastes nothing");
        let ta = e.remove(a, 10.0).unwrap();
        assert_eq!(ta.wasted_passes, 1, "interrupted pass counts");
        assert!(e.is_idle());
        assert!(e.remove(a, 10.0).is_none());
    }

    #[test]
    fn overlap_detection_covers_huge_ranges() {
        let mut e = MigrationEngine::new(16, 2);
        e.admit(
            VirtPage(512),
            PageSize::Huge,
            TierId::CAPACITY,
            TierId::FAST,
            Frame(512),
            Frame(0),
            0,
            0.0,
        );
        assert!(e.find_overlapping(VirtPage(700), PageSize::Base).is_some());
        assert!(e.find_overlapping(VirtPage(512), PageSize::Huge).is_some());
        assert!(e.find_overlapping(VirtPage(0), PageSize::Huge).is_none());
        assert!(e.transfer_for(VirtPage(1024)).is_none());
    }

    #[test]
    fn queue_capacity_is_bounded() {
        let mut e = MigrationEngine::new(2, 2);
        admit(&mut e, 1, 0, 0.0);
        admit(&mut e, 2, 0, 0.0);
        assert!(!e.has_queue_capacity());
        e.pump(1.0, |_, _| 1.0); // one becomes active
        assert!(e.has_queue_capacity());
    }
}
