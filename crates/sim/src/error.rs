//! Error type shared across the simulator.

use crate::addr::{PageSize, TierId, VirtPage};
use std::fmt;

/// Result alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A tier has no free frame of the requested size.
    OutOfMemory {
        /// The tier that could not satisfy the allocation.
        tier: TierId,
        /// The requested frame size.
        size: PageSize,
    },
    /// No tier could satisfy an allocation (machine-wide OOM).
    GlobalOutOfMemory,
    /// The virtual page is not mapped.
    NotMapped(VirtPage),
    /// The virtual page is already mapped.
    AlreadyMapped(VirtPage),
    /// The operation expected a huge mapping but found a base mapping (or
    /// vice versa).
    WrongPageSize {
        /// The page the operation targeted.
        vpage: VirtPage,
        /// The size the operation expected.
        expected: PageSize,
    },
    /// A huge-page operation was attempted on a non-2 MiB-aligned page.
    Unaligned(VirtPage),
    /// Migration target equals the current tier.
    SameTier(TierId),
    /// The migration admission queue is full; retry after the engine drains.
    QueueFull,
    /// The page already has an in-flight (or queued) transfer covering it.
    InFlight(VirtPage),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { tier, size } => {
                write!(f, "{tier} out of memory for a {size} frame")
            }
            SimError::GlobalOutOfMemory => write!(f, "no tier can satisfy the allocation"),
            SimError::NotMapped(p) => write!(f, "{p} is not mapped"),
            SimError::AlreadyMapped(p) => write!(f, "{p} is already mapped"),
            SimError::WrongPageSize { vpage, expected } => {
                write!(f, "{vpage} is not mapped as a {expected} page")
            }
            SimError::Unaligned(p) => write!(f, "{p} is not 2MiB-aligned"),
            SimError::SameTier(t) => write!(f, "page already resides on {t}"),
            SimError::QueueFull => write!(f, "migration admission queue is full"),
            SimError::InFlight(p) => write!(f, "{p} already has an in-flight transfer"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfMemory {
            tier: TierId::FAST,
            size: PageSize::Huge,
        };
        assert!(e.to_string().contains("tier0"));
        assert!(e.to_string().contains("2MiB"));
        assert!(SimError::NotMapped(VirtPage(4))
            .to_string()
            .contains("vpn0x4"));
    }
}
