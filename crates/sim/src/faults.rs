//! Seeded, deterministic fault injection.
//!
//! MEMTIS's design premise is that tiering work tolerates lossy inputs:
//! dropped PEBS samples, aborted migrations, delayed daemon wakeups. Those
//! failure paths exist in this repo (engine aborts, dirty re-copies, queue
//! back-pressure) but are exercised only incidentally. This module makes
//! them reproducible on demand: a [`FaultPlan`] describes *what* to perturb
//! and *how often*, and a [`FaultInjector`] applies the plan with a
//! counter-based RNG derived from the plan seed, so the same seed and plan
//! produce bit-identical runs.
//!
//! Fault classes and where they fire:
//!
//! | fault            | site                                   | mechanism |
//! |------------------|----------------------------------------|-----------|
//! | forced abort     | `Machine::pump_transfers`              | abort a random queued/active transfer (`AbortCause::Cancelled`) |
//! | injected dirty   | `Machine::pump_transfers`              | `note_store` on an active copy pass |
//! | link outage      | `Machine::pump_transfers`              | active passes and links lose `duration_ns` of bandwidth |
//! | pressure spike   | `Machine::pump_transfers`              | steal fast-tier frames for a window |
//! | sample drop/dup  | driver `handle_access` / runtime `ksampled` | skip or double-deliver a sample to the policy |
//! | tick skip/delay  | driver `run_due_ticks` / runtime `kmigrated` | skip a wakeup, or run it late |
//!
//! Determinism rules: time-driven faults (outages, pressure) fire on the
//! simulated clock only; probability-driven faults consume the RNG only
//! when their probability is non-zero, so an inert plan never perturbs the
//! RNG stream — and an inert plan is never installed at all, keeping
//! zero-fault runs bit-exact with no-plan runs by construction.

use crate::addr::{Frame, PageSize};
use memtis_obs::FaultKind;

/// Retained [`FaultRecord`]s per injector; later faults still count but are
/// not individually logged.
const FAULT_LOG_CAP: usize = 4096;

/// A transient migration-link outage: every `period_ns`, all links lose
/// `duration_ns` of bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Interval between outages (simulated ns).
    pub period_ns: f64,
    /// Bandwidth lost per outage (simulated ns of link time).
    pub duration_ns: f64,
}

/// A tier-capacity pressure spike: every `period_ns`, up to `bytes` of
/// fast-tier frames are stolen for `duration_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureSpec {
    /// Interval between spikes (simulated ns).
    pub period_ns: f64,
    /// How long stolen frames are held (simulated ns).
    pub duration_ns: f64,
    /// Fast-tier bytes to steal (rounded down to whole huge pages).
    pub bytes: u64,
}

/// What to perturb and how often. All probabilities are per-opportunity:
/// `abort_per_pump` is rolled once per engine pump, `sample_drop` once per
/// observed sample, and so on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed every injector RNG derives from.
    pub seed: u64,
    /// Probability per pump of forcibly aborting a random transfer.
    pub abort_per_pump: f64,
    /// Probability per pump of dirtying a random active copy pass.
    pub dirty_per_pump: f64,
    /// Probability of dropping a PEBS sample before the policy sees it.
    pub sample_drop: f64,
    /// Probability of delivering a PEBS sample twice.
    pub sample_dup: f64,
    /// Probability of skipping a `kmigrated` wakeup outright.
    pub tick_skip: f64,
    /// Probability of delaying a `kmigrated` wakeup.
    pub tick_delay: f64,
    /// How late a delayed wakeup runs (simulated ns).
    pub tick_delay_ns: f64,
    /// Periodic link outages, if any.
    pub outage: Option<OutageSpec>,
    /// Periodic tier-capacity pressure spikes, if any.
    pub pressure: Option<PressureSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            abort_per_pump: 0.0,
            dirty_per_pump: 0.0,
            sample_drop: 0.0,
            sample_dup: 0.0,
            tick_skip: 0.0,
            tick_delay: 0.0,
            tick_delay_ns: 200_000.0,
            outage: None,
            pressure: None,
        }
    }
}

impl FaultPlan {
    /// Whether the plan perturbs nothing. Inert plans are never installed,
    /// so they are bit-exact with running no plan at all.
    pub fn is_inert(&self) -> bool {
        self.abort_per_pump == 0.0
            && self.dirty_per_pump == 0.0
            && self.sample_drop == 0.0
            && self.sample_dup == 0.0
            && self.tick_skip == 0.0
            && self.tick_delay == 0.0
            && self.outage.is_none()
            && self.pressure.is_none()
    }

    /// Parses the `--faults` CLI spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed=N`, `abort=P`, `dirty=P`, `drop=P`, `dup=P`, `skip=P`,
    /// `delay=P`, `delay-ns=NS`, `outage=PERIOD:DURATION` (ns),
    /// `pressure=PERIOD:DURATION:BYTES`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {part:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |field: &mut f64| -> Result<(), String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("bad probability {value:?} for {key}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {key}={p} outside [0, 1]"));
                }
                *field = p;
                Ok(())
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "abort" => prob(&mut plan.abort_per_pump)?,
                "dirty" => prob(&mut plan.dirty_per_pump)?,
                "drop" => prob(&mut plan.sample_drop)?,
                "dup" => prob(&mut plan.sample_dup)?,
                "skip" => prob(&mut plan.tick_skip)?,
                "delay" => prob(&mut plan.tick_delay)?,
                "delay-ns" => {
                    plan.tick_delay_ns = value
                        .parse()
                        .map_err(|_| format!("bad delay-ns {value:?}"))?;
                }
                "outage" => {
                    let (p, d) = value
                        .split_once(':')
                        .ok_or_else(|| format!("outage wants PERIOD:DURATION, got {value:?}"))?;
                    plan.outage = Some(OutageSpec {
                        period_ns: p.parse().map_err(|_| format!("bad outage period {p:?}"))?,
                        duration_ns: d
                            .parse()
                            .map_err(|_| format!("bad outage duration {d:?}"))?,
                    });
                }
                "pressure" => {
                    let mut it = value.splitn(3, ':');
                    let (p, d, b) = match (it.next(), it.next(), it.next()) {
                        (Some(p), Some(d), Some(b)) => (p, d, b),
                        _ => {
                            return Err(format!(
                                "pressure wants PERIOD:DURATION:BYTES, got {value:?}"
                            ))
                        }
                    };
                    plan.pressure = Some(PressureSpec {
                        period_ns: p
                            .parse()
                            .map_err(|_| format!("bad pressure period {p:?}"))?,
                        duration_ns: d
                            .parse()
                            .map_err(|_| format!("bad pressure duration {d:?}"))?,
                        bytes: b.parse().map_err(|_| format!("bad pressure bytes {b:?}"))?,
                    });
                }
                _ => return Err(format!("unknown fault key {key:?}")),
            }
        }
        Ok(plan)
    }
}

/// SplitMix64: a tiny, dependency-free, statistically solid generator. The
/// whole fault layer keys off it so runs replay exactly from the plan seed.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial. A zero probability consumes no randomness, so
    /// disabled fault classes leave the RNG stream untouched.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform index in `[0, n)`. `n` must be non-zero.
    pub fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Per-class fault tallies, surfaced in `RunReport` and the soak summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transfers forcibly aborted.
    pub forced_aborts: u64,
    /// Dirty stores injected into active copy passes.
    pub injected_dirty: u64,
    /// Link outage windows applied.
    pub link_outages: u64,
    /// PEBS samples dropped.
    pub sample_drops: u64,
    /// PEBS samples duplicated.
    pub sample_dups: u64,
    /// Daemon wakeups skipped.
    pub tick_skips: u64,
    /// Daemon wakeups delayed.
    pub tick_delays: u64,
    /// Pressure spikes begun.
    pub pressure_spikes: u64,
}

impl FaultCounters {
    /// Total perturbations applied.
    pub fn total(&self) -> u64 {
        self.forced_aborts
            + self.injected_dirty
            + self.link_outages
            + self.sample_drops
            + self.sample_dups
            + self.tick_skips
            + self.tick_delays
            + self.pressure_spikes
    }

    /// Accumulates another tally (driver + machine injectors).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.forced_aborts += other.forced_aborts;
        self.injected_dirty += other.injected_dirty;
        self.link_outages += other.link_outages;
        self.sample_drops += other.sample_drops;
        self.sample_dups += other.sample_dups;
        self.tick_skips += other.tick_skips;
        self.tick_delays += other.tick_delays;
        self.pressure_spikes += other.pressure_spikes;
    }
}

/// One applied perturbation, drained by the driver into the trace ring as
/// an `EventKind::FaultInjected`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// Simulated time the fault was applied.
    pub t_ns: f64,
    /// What was perturbed.
    pub kind: FaultKind,
    /// Virtual page the fault targeted (0 when not page-scoped).
    pub vpage: u64,
}

/// What to do with one observed PEBS sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// Deliver normally.
    Deliver,
    /// Drop before the policy sees it.
    Drop,
    /// Deliver twice.
    Duplicate,
}

/// What to do with one due daemon wakeup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TickFate {
    /// Run on time.
    Run,
    /// Skip outright.
    Skip,
    /// Run this many ns late.
    Delay(f64),
}

/// Applies a [`FaultPlan`]: rolls the probability faults, tracks the
/// time-driven schedules, tallies counters, and keeps a bounded record log.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: FaultRng,
    /// Tallies by fault class.
    pub counters: FaultCounters,
    log: Vec<FaultRecord>,
    next_outage_ns: f64,
    next_pressure_ns: f64,
    pressure_off_ns: f64,
    /// Fast-tier huge frames currently stolen by a pressure spike.
    pub(crate) pressure_frames: Vec<Frame>,
}

impl FaultInjector {
    /// Builds an injector whose RNG stream is `plan.seed ^ salt`. Distinct
    /// salts keep the machine-level and driver-level streams independent.
    pub fn new(plan: FaultPlan, salt: u64) -> Self {
        let rng = FaultRng::new(plan.seed ^ salt);
        let next_outage_ns = plan.outage.map_or(f64::INFINITY, |o| o.period_ns);
        let next_pressure_ns = plan.pressure.map_or(f64::INFINITY, |p| p.period_ns);
        FaultInjector {
            plan,
            rng,
            counters: FaultCounters::default(),
            log: Vec::new(),
            next_outage_ns,
            next_pressure_ns,
            pressure_off_ns: f64::INFINITY,
            pressure_frames: Vec::new(),
        }
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records an applied fault (tally + bounded log).
    pub fn record(&mut self, t_ns: f64, kind: FaultKind, vpage: u64) {
        match kind {
            FaultKind::ForcedAbort => self.counters.forced_aborts += 1,
            FaultKind::InjectedDirty => self.counters.injected_dirty += 1,
            FaultKind::LinkOutage => self.counters.link_outages += 1,
            FaultKind::SampleDrop => self.counters.sample_drops += 1,
            FaultKind::SampleDup => self.counters.sample_dups += 1,
            FaultKind::TickSkip => self.counters.tick_skips += 1,
            FaultKind::TickDelay => self.counters.tick_delays += 1,
            FaultKind::PressureSpike => self.counters.pressure_spikes += 1,
            FaultKind::PressureRelease => {}
        }
        if self.log.len() < FAULT_LOG_CAP {
            self.log.push(FaultRecord { t_ns, kind, vpage });
        }
    }

    /// Takes the pending fault records (for trace emission).
    pub fn drain_log(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.log)
    }

    /// Rolls the fate of one observed PEBS sample.
    pub fn sample_fate(&mut self, t_ns: f64, vpage: u64) -> SampleFate {
        if self.rng.chance(self.plan.sample_drop) {
            self.record(t_ns, FaultKind::SampleDrop, vpage);
            return SampleFate::Drop;
        }
        if self.rng.chance(self.plan.sample_dup) {
            self.record(t_ns, FaultKind::SampleDup, vpage);
            return SampleFate::Duplicate;
        }
        SampleFate::Deliver
    }

    /// Rolls the fate of one due daemon wakeup.
    pub fn tick_fate(&mut self, t_ns: f64) -> TickFate {
        if self.rng.chance(self.plan.tick_skip) {
            self.record(t_ns, FaultKind::TickSkip, 0);
            return TickFate::Skip;
        }
        if self.rng.chance(self.plan.tick_delay) {
            self.record(t_ns, FaultKind::TickDelay, 0);
            return TickFate::Delay(self.plan.tick_delay_ns);
        }
        TickFate::Run
    }

    /// Returns the outage duration if an outage window is due at `now_ns`,
    /// advancing the schedule past `now_ns` (overlapping missed windows
    /// collapse into one — an outage on an idle engine perturbs nothing).
    pub fn outage_due(&mut self, now_ns: f64) -> Option<f64> {
        let o = self.plan.outage?;
        if now_ns < self.next_outage_ns {
            return None;
        }
        while self.next_outage_ns <= now_ns {
            self.next_outage_ns += o.period_ns;
        }
        Some(o.duration_ns)
    }

    /// Whether a pressure spike should begin at `now_ns`.
    pub fn pressure_should_start(&mut self, now_ns: f64) -> Option<PressureSpec> {
        let p = self.plan.pressure?;
        if !self.pressure_frames.is_empty() || now_ns < self.next_pressure_ns {
            return None;
        }
        while self.next_pressure_ns <= now_ns {
            self.next_pressure_ns += p.period_ns;
        }
        self.pressure_off_ns = now_ns + p.duration_ns;
        Some(p)
    }

    /// Whether the active pressure spike should end at `now_ns`.
    pub fn pressure_should_end(&mut self, now_ns: f64) -> bool {
        if self.pressure_frames.is_empty() || now_ns < self.pressure_off_ns {
            return false;
        }
        self.pressure_off_ns = f64::INFINITY;
        true
    }

    /// Probability roll for a forced transfer abort this pump.
    pub fn roll_abort(&mut self) -> bool {
        self.rng.chance(self.plan.abort_per_pump)
    }

    /// Probability roll for an injected dirty store this pump.
    pub fn roll_dirty(&mut self) -> bool {
        self.rng.chance(self.plan.dirty_per_pump)
    }

    /// Uniform index in `[0, n)` from the injector's RNG stream.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.pick(n)
    }

    /// Bytes of fast-tier capacity currently stolen by a pressure spike.
    pub fn reserved_bytes(&self) -> u64 {
        self.pressure_frames.len() as u64 * PageSize::Huge.bytes()
    }
}

/// RNG salt for the machine-level injector (aborts, dirt, outages,
/// pressure).
pub const MACHINE_FAULT_SALT: u64 = 0x4D41_4348_494E_455F; // "MACHINE_"
/// RNG salt for the driver/runtime-level injector (samples, ticks).
pub const DRIVER_FAULT_SALT: u64 = 0x4452_4956_4552_5F5F; // "DRIVER__"
/// RNG salt for the real-thread runtime's `kmigrated` injector (ticks),
/// kept separate from `ksampled`'s so the two daemons draw independent
/// streams.
pub const RUNTIME_TICK_FAULT_SALT: u64 = 0x5255_4E54_494D_455F; // "RUNTIME_"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_parse_roundtrips() {
        assert!(FaultPlan::default().is_inert());
        let plan = FaultPlan::parse(
            "seed=7,abort=0.1,dirty=0.2,drop=0.3,dup=0.05,skip=0.01,delay=0.02,\
             delay-ns=1e5,outage=1e6:2e4,pressure=5e6:1e6:4194304",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert!(!plan.is_inert());
        assert_eq!(plan.abort_per_pump, 0.1);
        assert_eq!(plan.sample_dup, 0.05);
        assert_eq!(plan.tick_delay_ns, 1e5);
        let o = plan.outage.unwrap();
        assert_eq!((o.period_ns, o.duration_ns), (1e6, 2e4));
        let p = plan.pressure.unwrap();
        assert_eq!((p.period_ns, p.duration_ns, p.bytes), (5e6, 1e6, 4194304));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("abort=2.0").is_err());
        assert!(FaultPlan::parse("abort").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("outage=123").is_err());
        assert!(FaultPlan::parse("pressure=1:2").is_err());
    }

    #[test]
    fn rng_is_deterministic_and_zero_prob_consumes_nothing() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = FaultRng::new(42);
        for _ in 0..100 {
            assert!(!c.chance(0.0));
        }
        assert_eq!(c.next_u64(), seq_a[0]);
    }

    #[test]
    fn injector_schedules_are_time_driven() {
        let plan = FaultPlan {
            outage: Some(OutageSpec {
                period_ns: 1000.0,
                duration_ns: 10.0,
            }),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 0);
        assert_eq!(inj.outage_due(999.0), None);
        assert_eq!(inj.outage_due(1000.0), Some(10.0));
        // The schedule advanced; the same instant does not re-fire, and a
        // long gap collapses missed windows into one.
        assert_eq!(inj.outage_due(1000.0), None);
        assert_eq!(inj.outage_due(10_500.0), Some(10.0));
        assert_eq!(inj.outage_due(10_600.0), None);
    }

    #[test]
    fn sample_and_tick_fates_replay_from_the_seed() {
        let plan = FaultPlan {
            seed: 99,
            sample_drop: 0.3,
            sample_dup: 0.3,
            tick_skip: 0.2,
            tick_delay: 0.2,
            ..FaultPlan::default()
        };
        let run = |plan: &FaultPlan| {
            let mut inj = FaultInjector::new(*plan, 1);
            let fates: Vec<SampleFate> = (0..64).map(|i| inj.sample_fate(i as f64, i)).collect();
            let ticks: Vec<TickFate> = (0..64).map(|i| inj.tick_fate(i as f64)).collect();
            (fates, ticks, inj.counters)
        };
        let (f1, t1, c1) = run(&plan);
        let (f2, t2, c2) = run(&plan);
        assert_eq!(f1, f2);
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        assert!(c1.sample_drops > 0 && c1.sample_dups > 0);
        assert_eq!(
            c1.total(),
            c1.sample_drops + c1.sample_dups + c1.tick_skips + c1.tick_delays
        );
    }
}
