//! # memtis-sim — simulated tiered-memory machine
//!
//! User-space substrate standing in for the kernel/hardware stack the MEMTIS
//! paper (SOSP '23) was built on: per-tier physical frame allocators, a
//! 4-level page table with 2 MiB huge mappings, TLB and LLC models, a
//! migration engine, and a simulation driver that executes workload access
//! streams under a pluggable [`policy::TieringPolicy`].
//!
//! The cost model charges each access its address-translation cost (TLB hit,
//! or a 3-/4-level walk) plus its memory cost (LLC hit, or the owning tier's
//! load/store latency), and attributes policy work to either the application
//! critical path or background-daemon CPU — the distinction at the center of
//! the paper's analysis of prior tiering systems.
//!
//! ## Quick example
//!
//! ```
//! use memtis_sim::prelude::*;
//!
//! let cfg = MachineConfig::dram_nvm(4 * HUGE_PAGE_SIZE, 16 * HUGE_PAGE_SIZE);
//! let mut machine = Machine::new(cfg);
//! machine
//!     .alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
//!     .unwrap();
//! let out = machine.access(Access::load(0)).unwrap();
//! assert_eq!(out.tier, TierId::CAPACITY);
//! ```

pub use memtis_obs as obs;

pub mod access;
pub mod addr;
pub mod cache;
pub mod config;
pub mod driver;
pub mod engine;
pub mod error;
pub mod faults;
pub mod machine;
pub mod page_table;
pub mod policy;
pub mod shard;
pub mod stats;
pub mod tier;
pub mod tlb;
pub mod util;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::access::{Access, AccessKind, AccessOutcome, AccessRecord, RecordFilter};
    pub use crate::addr::{
        Frame, PageSize, PhysAddr, TierId, VirtAddr, VirtPage, BASE_PAGE_SIZE, HUGE_PAGE_SIZE,
        NR_SUBPAGES,
    };
    pub use crate::config::{
        CostModel, MachineConfig, MemoryKind, MigrationConfig, TierSpec, TlbSpec,
    };
    pub use crate::driver::{
        AccessStream, DriverConfig, RunReport, ShardMetrics, Simulation, Snapshot, WorkloadEvent,
        DEFAULT_CHUNK,
    };
    pub use crate::engine::{AbortCause, EngineEvent, MigrationHandle, TransferEnd, TransferId};
    pub use crate::error::{SimError, SimResult};
    pub use crate::faults::{
        FaultCounters, FaultInjector, FaultPlan, FaultRecord, FaultRng, OutageSpec, PressureSpec,
        SampleFate, TickFate,
    };
    pub use crate::machine::{BatchClock, BatchStop, Machine, MigrateOutcome, SplitOutcome};
    pub use crate::policy::{
        CostAccounting, CostSink, NoopPolicy, PolicyDescriptor, PolicyOps, TieringPolicy,
    };
    pub use crate::shard::{lane_of, LaneState, NUM_LANES};
    pub use crate::stats::{MachineStats, MigrationStats};
    pub use crate::util::{DetHashMap, DetHashSet, Fnv1a, FNV1A_BASIS, FNV1A_PRIME};
    pub use memtis_obs::{
        Event, EventKind, FaultKind, MigrationFailure, NopObserver, Observer, ShootdownCause,
        ThresholdCause, TracingObserver, WindowCollector, WindowCut, WindowSample,
    };
}
