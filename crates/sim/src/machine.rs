//! The simulated tiered-memory machine.
//!
//! [`Machine`] owns the per-tier frame allocators, the page table, the TLB,
//! and the LLC, and executes individual accesses with a full cost breakdown:
//! translation (TLB hit, or a 3-/4-level walk), cache (LLC hit), and memory
//! (tier load/store latency on an LLC miss). It also exposes the mutating
//! operations tiering policies perform — migration, huge-page split/collapse,
//! NUMA-hint arming — each returning the nanosecond cost the caller must
//! attribute to either the application critical path or a background daemon.

use crate::access::{Access, AccessOutcome, AccessRecord, RecordFilter};
use crate::addr::{Frame, PageSize, TierId, VirtPage, BASE_PAGE_SIZE, NR_SUBPAGES};
use crate::cache::Llc;
use crate::config::MachineConfig;
use crate::engine::{
    AbortCause, EngineEvent, MigrationEngine, MigrationHandle, PumpOutcome, Transfer, TransferEnd,
    TransferId,
};
use crate::error::{SimError, SimResult};
use crate::faults::{FaultCounters, FaultInjector, FaultPlan, FaultRecord, MACHINE_FAULT_SALT};
use crate::page_table::{EntryMut, PageTable, Translation};
use crate::stats::MachineStats;
use crate::tier::TierAllocator;
use crate::tlb::Tlb;
use memtis_obs::{FaultKind, FlightRecorder};

/// Per-PTE update cost during a split or collapse (ns).
const PTE_UPDATE_NS: f64 = 15.0;

/// Outcome of a huge-page split.
#[derive(Debug, Clone, Copy)]
pub struct SplitOutcome {
    /// Never-written subpages that were unmapped and freed.
    pub zero_subpages_freed: u32,
    /// Cost of the operation (ns).
    pub cost_ns: f64,
}

/// Outcome of a migration or collapse.
#[derive(Debug, Clone, Copy)]
pub struct MigrateOutcome {
    /// Cost of the operation (ns), dominated by the data copy.
    pub cost_ns: f64,
    /// Tier the page came from.
    pub from: TierId,
    /// Tier the page now resides on.
    pub to: TierId,
    /// Bytes copied by the operation.
    pub bytes: u64,
}

/// Driver clock state threaded through [`Machine::access_batch`] so the
/// machine can fold wall-clock accumulation into the chunk loop with the
/// exact arithmetic the per-event driver uses.
#[derive(Debug, Clone, Copy)]
pub struct BatchClock {
    /// Simulated wall-clock time (ns); advanced by `latency / threads` per
    /// access, bitwise-identical to the per-event loop's quiet-mode update.
    pub wall_ns: f64,
    /// Cumulative application access time (ns); advanced by raw latency.
    pub app_access_ns: f64,
    /// Application thread count (the per-access wall divisor).
    pub threads: f64,
    /// The batch stops as soon as `wall_ns` reaches this (the driver's next
    /// tick or snapshot boundary), so no timer can fire mid-burst.
    pub stop_wall_ns: f64,
}

/// Why [`Machine::access_batch`] stopped consuming its slice.
#[derive(Debug, Clone, Copy)]
pub enum BatchStop {
    /// The slice was exhausted, or the clock reached `stop_wall_ns`; every
    /// consumed access was recorded.
    Clean,
    /// The access at index `consumed` took a NUMA-hint fault. It *executed*
    /// (its outcome is carried here) but was not recorded or clocked — the
    /// driver replays the legacy hint tail (policy hooks, fault-work
    /// accounting) for it.
    Hint(AccessOutcome),
    /// The access at index `consumed` hit an unmapped page and had no side
    /// effects; the driver demand-faults it through the per-event path.
    NotMapped,
}

/// One resolved mapping memoized by [`Machine::access_coalesced`].
#[derive(Clone, Copy)]
struct CoalesceMemo {
    /// Base vpage of the mapping (huge-aligned for a huge mapping).
    key: VirtPage,
    /// Frame of `key` (first subpage frame for a huge mapping).
    base_frame: Frame,
    size: PageSize,
    tier: TierId,
    /// TLB way the translation is resident in plus the [`Tlb::epoch`] that
    /// located it, once a repeat has looked it up; repeats at the same
    /// epoch replay the hit without re-scanning the set.
    ///
    /// [`Tlb::epoch`]: crate::tlb::Tlb::epoch
    tlb_way: Option<(usize, u64)>,
}

/// Per-burst mapping memo for [`Machine::access_coalesced`]: a small
/// direct-mapped cache over 2 MiB virtual regions, so workloads that
/// interleave a handful of concurrently-advancing region cursors (each
/// staying inside one huge page for hundreds of its accesses) coalesce as
/// well as strictly consecutive same-page runs do. Collisions simply evict —
/// this is a pure performance memo; the evicted mapping re-resolves through
/// the full path.
#[derive(Default)]
struct CoalesceCache {
    ways: [Option<CoalesceMemo>; Self::WAYS],
}

impl CoalesceCache {
    /// Power of two; roms interleaves 4 weighted regions, and a little slack
    /// keeps unrelated scans from thrashing them.
    const WAYS: usize = 8;

    /// Slot for the 2 MiB virtual region containing `vpage`.
    #[inline]
    fn slot(vpage: VirtPage) -> usize {
        (vpage.0 as usize >> 9) & (Self::WAYS - 1)
    }
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) tiers: Vec<TierAllocator>,
    pub(crate) pt: PageTable,
    tlb: Tlb,
    llc: Llc,
    /// Per-lane TLB/LLC slices; `Some` iff sharded lane routing is enabled
    /// (see [`Machine::enable_lanes`]). While enabled, every access routes
    /// its TLB and LLC traffic through the lane owning its 2 MiB region and
    /// the monolithic `tlb`/`llc` above sit idle.
    pub(crate) lanes: Option<Vec<crate::shard::LaneState>>,
    engine: MigrationEngine,
    /// Installed fault injector (chaos runs only; `None` on normal runs).
    faults: Option<FaultInjector>,
    /// Flight-recorder latency histograms; `None` (no cost beyond one
    /// branch) unless an observer with the flight recorder is attached.
    flight: Option<Box<FlightRecorder>>,
    /// Demand-tap skip-sampler state (see [`FLIGHT_DEMAND_SAMPLE_MEAN`]):
    /// accesses left to skip before the next sample (`u64::MAX` while no
    /// recorder is attached), and the xorshift state drawing the next gap.
    /// Observer-side only — never feeds back into simulation results.
    flight_skip: u64,
    flight_rng: u64,
    /// Running counters.
    pub stats: MachineStats,
}

/// Routes to the TLB owning `vpage`: the lane slice when lanes are enabled,
/// the monolithic TLB otherwise. A free function over disjoint `Machine`
/// fields so callers can keep `cfg`/`stats`/`tiers` borrowed alongside.
#[inline]
fn route_tlb<'a>(
    lanes: &'a mut Option<Vec<crate::shard::LaneState>>,
    tlb: &'a mut Tlb,
    vpage: VirtPage,
) -> &'a mut Tlb {
    match lanes {
        Some(ls) => &mut ls[crate::shard::lane_of(vpage)].tlb,
        None => tlb,
    }
}

/// Routes to the LLC owning `vpage` (see [`route_tlb`]).
#[inline]
fn route_llc<'a>(
    lanes: &'a mut Option<Vec<crate::shard::LaneState>>,
    llc: &'a mut Llc,
    vpage: VirtPage,
) -> &'a mut Llc {
    match lanes {
        Some(ls) => &mut ls[crate::shard::lane_of(vpage)].llc,
        None => llc,
    }
}

/// Mean inter-sample gap of the flight recorder's demand-latency tap.
///
/// Recording every access costs ~6-8% of the hot loop (the histogram index
/// plus three read-modify-writes per access dominate), far over the flight
/// recorder's ≤2% budget. MEMTIS itself profiles through sampled PEBS
/// events, so the tap follows the same discipline: deterministic
/// skip-sampling, with gaps drawn uniformly from
/// `[0, 2 * FLIGHT_DEMAND_SAMPLE_MEAN)` by a seeded xorshift — one sample
/// per ~16.5 accesses on average. Subsampling error on the reported
/// percentiles is negligible at bench scale (thousands of samples per
/// telemetry window), and the gap schedule depends only on access stream
/// order, so sharded, chunked, and serial-fold runs record byte-identical
/// histograms. Migration-side histograms (transfer, queue-wait,
/// abort-to-retry) stay exact: those events are orders of magnitude rarer.
pub const FLIGHT_DEMAND_SAMPLE_MEAN: u64 = 16;

/// Seed for the demand-tap gap sequence (the 64-bit golden ratio constant).
const FLIGHT_RNG_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Machine {
    /// Builds a machine from the configuration. Tier frame ranges are laid
    /// out contiguously, fastest tier first.
    pub fn new(cfg: MachineConfig) -> Self {
        let mut tiers = Vec::with_capacity(cfg.tiers.len());
        let mut next_frame = 0u64;
        for (i, spec) in cfg.tiers.iter().enumerate() {
            let alloc = TierAllocator::new(TierId(i as u8), next_frame, spec.usable_capacity());
            next_frame = alloc.frame_end();
            tiers.push(alloc);
        }
        Machine {
            tlb: Tlb::new(&cfg.tlb),
            llc: Llc::new(cfg.llc_bytes),
            tiers,
            pt: PageTable::new(),
            stats: MachineStats::default(),
            engine: MigrationEngine::new(cfg.migration.queue_depth, cfg.migration.max_recopies),
            faults: None,
            flight: None,
            flight_skip: u64::MAX,
            flight_rng: FLIGHT_RNG_SEED,
            lanes: None,
            cfg,
        }
    }

    /// Attaches the flight recorder: from now on demand accesses and
    /// migration lifecycle points feed its latency histograms. Idempotent.
    /// Never attached on untraced runs, so they stay byte-identical.
    pub fn attach_flight(&mut self) {
        if self.flight.is_none() {
            self.flight = Some(Box::default());
            self.flight_skip = 0;
        }
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_deref()
    }

    /// Whether the flight recorder is attached.
    pub fn flight_attached(&self) -> bool {
        self.flight.is_some()
    }

    /// Feeds one demand access to the flight recorder through the
    /// deterministic skip-sampler (see [`FLIGHT_DEMAND_SAMPLE_MEAN`]).
    /// Called from the serial and coalesced access paths and from the
    /// sharded coordinator fold — always in stream order, so every
    /// execution mode (chunk size, shard count) draws the identical sample
    /// schedule and records byte-identical histograms.
    /// The skip counter doubles as the attached/detached gate: it holds
    /// `u64::MAX` while no recorder is attached (the untraced tap is one
    /// predictable decrement-and-branch), and [`Machine::attach_flight`]
    /// arms it at zero so the first access is always sampled. Should the
    /// unattached countdown ever reach zero, the cold half tolerates the
    /// missing recorder and simply draws the next gap.
    #[inline]
    pub fn flight_record_demand(&mut self, tier: TierId, size: PageSize, latency_ns: f64) {
        if self.flight_skip > 0 {
            self.flight_skip -= 1;
            return;
        }
        self.flight_demand_sample(tier, size, latency_ns);
    }

    /// Cold half of the demand tap: one call per ~16 accesses records the
    /// sample and draws the next skip gap.
    #[inline(never)]
    fn flight_demand_sample(&mut self, tier: TierId, size: PageSize, latency_ns: f64) {
        if let Some(f) = self.flight.as_mut() {
            f.record_demand(tier.0, size == PageSize::Huge, latency_ns);
        }
        // xorshift64: cheap, full-period, and seeded by a constant so the
        // gap sequence is a pure function of the access stream position.
        let mut x = self.flight_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.flight_rng = x;
        self.flight_skip = x % (2 * FLIGHT_DEMAND_SAMPLE_MEAN);
    }

    /// Switches the machine to per-lane TLB/LLC routing: the configured TLB
    /// entry counts and LLC capacity are divided across
    /// [`crate::shard::NUM_LANES`] lanes keyed by 2 MiB region, so each
    /// lane's microarchitectural state depends only on its own access
    /// subsequence — the property that makes sharded runs independent of
    /// the shard count. Must be called before any access; idempotent.
    pub fn enable_lanes(&mut self) {
        if self.lanes.is_none() {
            self.lanes = Some(crate::shard::build_lanes(&self.cfg));
        }
    }

    /// Whether per-lane routing is enabled.
    pub fn lanes_enabled(&self) -> bool {
        self.lanes.is_some()
    }

    /// Installs the machine-level faults of `plan` (forced aborts, injected
    /// dirty stores, link outages, pressure spikes). Inert plans install
    /// nothing, so zero-fault runs stay bit-exact with no-plan runs.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        if !plan.is_inert() {
            self.faults = Some(FaultInjector::new(*plan, MACHINE_FAULT_SALT));
        }
    }

    /// Whether a fault injector is installed.
    pub fn has_fault_injection(&self) -> bool {
        self.faults.is_some()
    }

    /// Fast-tier bytes currently stolen by a pressure spike.
    pub fn fault_reserved_bytes(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.reserved_bytes())
    }

    /// Machine-level fault tallies (zero when no injector is installed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map_or(FaultCounters::default(), |f| f.counters)
    }

    /// Takes the pending machine-level fault records for trace emission.
    pub fn drain_fault_log(&mut self) -> Vec<FaultRecord> {
        self.faults.as_mut().map_or(Vec::new(), |f| f.drain_log())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of tiers.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// The tier owning `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame belongs to no tier.
    pub fn tier_of_frame(&self, frame: Frame) -> TierId {
        for t in &self.tiers {
            if t.owns(frame) {
                return t.tier();
            }
        }
        panic!("{frame} belongs to no tier");
    }

    /// Free bytes on a tier.
    pub fn free_bytes(&self, tier: TierId) -> u64 {
        self.tiers[tier.0 as usize].free_bytes()
    }

    /// Capacity of a tier in bytes.
    pub fn capacity_bytes(&self, tier: TierId) -> u64 {
        self.tiers[tier.0 as usize].capacity_bytes()
    }

    /// Used bytes on a tier.
    pub fn used_bytes(&self, tier: TierId) -> u64 {
        self.tiers[tier.0 as usize].used_bytes()
    }

    /// Application resident set size implied by mappings.
    pub fn rss_bytes(&self) -> u64 {
        self.pt.rss_bytes()
    }

    /// Mapped 2 MiB pages (for the huge-page ratio statistic).
    pub fn mapped_huge_pages(&self) -> u64 {
        self.pt.mapped_huge_pages()
    }

    /// Mapped 4 KiB pages.
    pub fn mapped_base_pages(&self) -> u64 {
        self.pt.mapped_base_pages()
    }

    /// Translation of `vpage` (tier, mapping size), if mapped.
    pub fn locate(&self, vpage: VirtPage) -> Option<(TierId, PageSize)> {
        let t = self.pt.translate(vpage)?;
        Some((self.tier_of_frame(t.frame), t.size))
    }

    /// Raw translation of `vpage`.
    pub fn translate(&self, vpage: VirtPage) -> Option<Translation> {
        self.pt.translate(vpage)
    }

    /// The huge entry at `vpage`'s huge page, if huge-mapped (read-only view
    /// used by splitters to inspect per-subpage written bits).
    pub fn huge_entry(&self, vpage: VirtPage) -> Option<&crate::page_table::HugeEntry> {
        self.pt.huge_entry(vpage)
    }

    /// TLB statistics (folded across lane slices when lanes are enabled).
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        let mut s = self.tlb.stats;
        if let Some(lanes) = &self.lanes {
            for l in lanes {
                s.absorb(&l.tlb.stats);
            }
        }
        s
    }

    /// LLC statistics (folded across lane slices when lanes are enabled).
    pub fn llc_stats(&self) -> crate::cache::LlcStats {
        let mut s = self.llc.stats;
        if let Some(lanes) = &self.lanes {
            for l in lanes {
                s.absorb(&l.llc.stats);
            }
        }
        s
    }

    /// Allocates a frame on `tier` and maps `vpage` to it.
    pub fn alloc_and_map(
        &mut self,
        vpage: VirtPage,
        size: PageSize,
        tier: TierId,
    ) -> SimResult<Frame> {
        let frame = self.tiers[tier.0 as usize].alloc(size)?;
        let res = match size {
            PageSize::Base => self.pt.map_base(vpage, frame),
            PageSize::Huge => self.pt.map_huge(vpage, frame),
        };
        if let Err(e) = res {
            self.tiers[tier.0 as usize].free(frame, size);
            return Err(e);
        }
        Ok(frame)
    }

    /// Allocates on the first tier (in `order`) with a free frame.
    pub fn alloc_and_map_fallback(
        &mut self,
        vpage: VirtPage,
        size: PageSize,
        order: &[TierId],
    ) -> SimResult<(TierId, Frame)> {
        for &t in order {
            match self.alloc_and_map(vpage, size, t) {
                Ok(f) => return Ok((t, f)),
                Err(SimError::OutOfMemory { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(SimError::GlobalOutOfMemory)
    }

    /// Unmaps `vpage` and frees its frame. Returns the shootdown cost (ns).
    pub fn unmap_and_free(&mut self, vpage: VirtPage, size: PageSize) -> SimResult<f64> {
        match size {
            PageSize::Base => {
                let pte = self.pt.unmap_base(vpage)?;
                let tier = self.tier_of_frame(pte.frame);
                self.tiers[tier.0 as usize].free_base(pte.frame);
            }
            PageSize::Huge => {
                let h = self.pt.unmap_huge(vpage)?;
                let tier = self.tier_of_frame(h.frame);
                self.tiers[tier.0 as usize].free_huge(h.frame);
            }
        }
        route_tlb(&mut self.lanes, &mut self.tlb, vpage).invalidate(vpage, size);
        self.stats.shootdowns += 1;
        Ok(self.cfg.costs.tlb_shootdown_ns)
    }

    /// Arms the NUMA-hint bit on the mapping covering `vpage`; the next
    /// access will fault into the policy. Returns false if unmapped.
    pub fn set_hint(&mut self, vpage: VirtPage) -> bool {
        match self.pt.entry_mut(vpage) {
            Some(EntryMut::Base(p)) => {
                p.hint = true;
                true
            }
            Some(EntryMut::Huge(h)) => {
                h.hint = true;
                true
            }
            None => false,
        }
    }

    /// Visits every mapped page-table entry (scanning substrates, cooling).
    pub fn scan_entries(&mut self, f: impl FnMut(VirtPage, EntryMut<'_>)) {
        self.pt.for_each_entry(f)
    }

    /// Executes one access. Returns `Err(NotMapped)` on a demand fault; the
    /// driver maps the page and retries.
    ///
    /// This is the single-walk fast path: one [`PageTable::walk_mut`]
    /// descent (often skipped entirely by the table's one-entry walk cache)
    /// yields the translation *and* the mutable entry on which the hint bit
    /// is cleared and the accessed/dirty bits are set — where the machine
    /// formerly walked the table up to three times per access. Outcomes,
    /// statistics, and page-table state are bit-identical to
    /// [`Machine::access_reference`], the retained triple-walk
    /// implementation (enforced by a property test).
    #[inline]
    pub fn access(&mut self, access: Access) -> SimResult<AccessOutcome> {
        self.access_with_frame(access).map(|(out, _)| out)
    }

    /// [`Machine::access`] plus the resolved frame, which the batched path
    /// needs to seed its same-page coalescing cache without a second walk.
    #[inline]
    fn access_with_frame(&mut self, access: Access) -> SimResult<(AccessOutcome, Frame)> {
        let vpage = access.vaddr.base_page();
        let is_store = access.is_store();

        // One walk: read the translation, clear the hint bit, and set the
        // reference bits (harvested by page-table-scanning policies) in a
        // single pass over the entry.
        let (frame, size, hint_fault) =
            match self.pt.walk_mut(vpage).ok_or(SimError::NotMapped(vpage))? {
                EntryMut::Base(p) => {
                    let hint = p.hint;
                    p.hint = false;
                    p.accessed = true;
                    if is_store {
                        p.dirty = true;
                        p.ever_written = true;
                    }
                    (p.frame, PageSize::Base, hint)
                }
                EntryMut::Huge(h) => {
                    let hint = h.hint;
                    h.hint = false;
                    h.accessed = true;
                    if is_store {
                        h.dirty = true;
                        h.mark_subpage_written(vpage.subpage_index());
                    }
                    (
                        h.frame.add(vpage.subpage_index() as u64),
                        PageSize::Huge,
                        hint,
                    )
                }
            };

        // A store to a page whose copy is in flight dirties the pass: the
        // engine must re-copy (or abort) before it can remap.
        if is_store && self.engine.has_active() {
            self.engine.note_store(vpage);
        }

        let mut latency = 0.0;

        // NUMA-hint fault: trap cost, then the access proceeds (the driver
        // notifies the policy afterwards).
        if hint_fault {
            latency += self.cfg.costs.fault_overhead_ns;
            self.stats.hint_faults += 1;
        }

        // Address translation.
        let tlb = route_tlb(&mut self.lanes, &mut self.tlb, vpage);
        let tlb_hit = tlb.lookup(vpage, size);
        if !tlb_hit {
            latency += size.walk_levels() as f64 * self.cfg.costs.walk_level_ns;
            tlb.insert(vpage, size);
        }

        // Cache and memory.
        let paddr = crate::addr::PhysAddr(frame.addr().0 + access.vaddr.base_offset());
        let tier = self.tier_of_frame(frame);
        let llc_hit = route_llc(&mut self.lanes, &mut self.llc, vpage).access(paddr);
        if llc_hit {
            latency += self.cfg.costs.llc_hit_ns;
        } else {
            let spec = self.cfg.tier(tier);
            latency += if is_store {
                spec.store_ns
            } else {
                spec.load_ns
            };
            // Demand accesses contend with an active migration copy on
            // this tier's link. Never fires in unlimited-bandwidth mode
            // (the engine is never engaged), preserving legacy costs.
            if self.engine.has_active() && self.engine.link_busy_for(tier) {
                latency += self.cfg.migration.contention_penalty_ns;
            }
            self.stats.count_tier_hit(tier);
        }

        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        self.flight_record_demand(tier, size, latency);

        Ok((
            AccessOutcome {
                latency_ns: latency,
                vpage,
                page_size: size,
                tier,
                llc_miss: !llc_hit,
                tlb_miss: !tlb_hit,
                hint_fault,
                demand_fault: false,
            },
            frame,
        ))
    }

    /// Executes the run of [`WorkloadEvent::Access`] events at the head of
    /// `events` in one call, coalescing consecutive same-mapping loads and
    /// folding wall-clock accounting into the loop. Stops — without
    /// consuming it — at the first non-access event.
    ///
    /// Each clean access the `filter` keeps is appended to `out` (stamped
    /// with the wall clock *before* its own latency advances it — the
    /// instant the per-event loop would deliver it to the policy); every
    /// access, kept or waived, executes and advances `clock` exactly as the
    /// per-event driver does. Returns how many events were consumed and
    /// why the call stopped; see [`BatchStop`] for the fault cases, which
    /// the driver finishes through the legacy per-event path.
    ///
    /// Bit-exactness of the coalesced fast path: the batch's first access
    /// to a mapping clears the hint bit and sets the accessed/dirty bits,
    /// so the walk on each repeat is pure recomputation — but the TLB and
    /// LLC are stateful (stamp updates, set rotation) and are still driven
    /// per access; see [`Machine::access_coalesced`]. Stores always take
    /// the full path (subpage dirty bookkeeping), as does any access while
    /// the migration engine holds active transfers (in-flight dirty
    /// tracking, link contention).
    ///
    /// [`WorkloadEvent::Access`]: crate::driver::WorkloadEvent::Access
    pub fn access_batch(
        &mut self,
        events: &[crate::driver::WorkloadEvent],
        out: &mut Vec<AccessRecord>,
        clock: &mut BatchClock,
        filter: RecordFilter,
    ) -> (usize, BatchStop) {
        let engine_active = self.engine.has_active();
        let mut cache = CoalesceCache::default();
        for (i, ev) in events.iter().enumerate() {
            let crate::driver::WorkloadEvent::Access(access) = *ev else {
                return (i, BatchStop::Clean);
            };
            let res = if engine_active {
                self.access(access)
            } else {
                self.access_coalesced(access, &mut cache)
            };
            let outcome = match res {
                Ok(out) => out,
                Err(_) => return (i, BatchStop::NotMapped),
            };
            if outcome.hint_fault {
                return (i, BatchStop::Hint(outcome));
            }
            if filter.keeps(access.kind, outcome.llc_miss) {
                out.push(AccessRecord {
                    access,
                    outcome,
                    now_ns: clock.wall_ns,
                });
            }
            clock.app_access_ns += outcome.latency_ns;
            clock.wall_ns += outcome.latency_ns / clock.threads;
            if clock.wall_ns >= clock.stop_wall_ns {
                return (i + 1, BatchStop::Clean);
            }
        }
        (events.len(), BatchStop::Clean)
    }

    /// One access with a mapping memo: an access to a mapping some earlier
    /// access in this batch resolved — the same base page, or any subpage of
    /// the same huge page — skips the hint handling and tier lookup, and for
    /// loads the page walk as well (a repeat store still walks, through the
    /// table's walk cache, for its dirty bookkeeping). Only sound with the
    /// migration engine idle (the caller checks).
    ///
    /// Coalescing a repeat is exact because the mapping's reference/hint
    /// bits live on the one shared entry (already set and cleared by the
    /// batch's first access to it, so a repeat load's walk would be pure
    /// recomputation — and nothing re-arms hints or remaps pages mid-batch:
    /// policy delivery is deferred, boundary work is hoisted, the engine is
    /// idle), a huge mapping's subpage frames are contiguous from the cached
    /// base frame, and a huge frame block lives wholly in one tier. The
    /// stateful structures — TLB, LLC, page-table dirty bits, statistics —
    /// still tick per access; a repeat *can* miss the TLB (another region's
    /// insert may have evicted it) and then pays the walk latency exactly
    /// as the full path would.
    #[inline(always)]
    fn access_coalesced(
        &mut self,
        access: Access,
        cache: &mut CoalesceCache,
    ) -> SimResult<AccessOutcome> {
        let vpage = access.vaddr.base_page();
        let slot = CoalesceCache::slot(vpage);
        if let Some(memo) = cache.ways[slot].as_mut() {
            let CoalesceMemo {
                key,
                base_frame,
                size,
                tier,
                ..
            } = *memo;
            let (same, frame) = match size {
                PageSize::Base => (key == vpage, base_frame),
                PageSize::Huge => (
                    key == vpage.huge_aligned(),
                    base_frame.add(vpage.subpage_index() as u64),
                ),
            };
            if same {
                let is_store = access.is_store();
                if is_store {
                    // Dirty bookkeeping is per-subpage state the memo cannot
                    // carry; take the (walk-cache-accelerated) walk exactly
                    // as the full path would. The hint is guaranteed clear.
                    match self.pt.walk_mut(vpage) {
                        Some(EntryMut::Base(p)) => {
                            debug_assert!(!p.hint, "hint re-armed mid-batch");
                            p.hint = false;
                            p.accessed = true;
                            p.dirty = true;
                            p.ever_written = true;
                        }
                        Some(EntryMut::Huge(h)) => {
                            debug_assert!(!h.hint, "hint re-armed mid-batch");
                            h.hint = false;
                            h.accessed = true;
                            h.dirty = true;
                            h.mark_subpage_written(vpage.subpage_index());
                        }
                        None => unreachable!("memoized mapping unmapped mid-batch"),
                    }
                }
                // The first repeat memoizes the TLB hit way; later repeats
                // replay the hit without re-scanning the set, as long as no
                // insert/invalidate/flush has moved entries since (epoch
                // check).
                let mut latency = 0.0;
                let tlb = route_tlb(&mut self.lanes, &mut self.tlb, vpage);
                let tlb_hit = match memo.tlb_way {
                    Some((way, epoch)) if epoch == tlb.epoch() => {
                        tlb.touch_hit(size, way);
                        true
                    }
                    _ => {
                        let way = tlb.lookup_memo(vpage, size);
                        memo.tlb_way = way.map(|w| (w, tlb.epoch()));
                        way.is_some()
                    }
                };
                if !tlb_hit {
                    latency += size.walk_levels() as f64 * self.cfg.costs.walk_level_ns;
                    tlb.insert(vpage, size);
                }
                let paddr = crate::addr::PhysAddr(frame.addr().0 + access.vaddr.base_offset());
                let llc_hit = route_llc(&mut self.lanes, &mut self.llc, vpage).access(paddr);
                if llc_hit {
                    latency += self.cfg.costs.llc_hit_ns;
                } else {
                    let spec = self.cfg.tier(tier);
                    latency += if is_store {
                        spec.store_ns
                    } else {
                        spec.load_ns
                    };
                    self.stats.count_tier_hit(tier);
                }
                if is_store {
                    self.stats.stores += 1;
                } else {
                    self.stats.loads += 1;
                }
                self.flight_record_demand(tier, size, latency);
                return Ok(AccessOutcome {
                    latency_ns: latency,
                    vpage,
                    page_size: size,
                    tier,
                    llc_miss: !llc_hit,
                    tlb_miss: !tlb_hit,
                    hint_fault: false,
                    demand_fault: false,
                });
            }
        }
        let (out, frame) = self.access_with_frame(access)?;
        let (key, base_frame) = match out.page_size {
            PageSize::Base => (vpage, frame),
            PageSize::Huge => (
                vpage.huge_aligned(),
                Frame(frame.0 - vpage.subpage_index() as u64),
            ),
        };
        cache.ways[slot] = Some(CoalesceMemo {
            key,
            base_frame,
            size: out.page_size,
            tier: out.tier,
            tlb_way: None,
        });
        Ok(out)
    }

    /// The original triple-walk implementation of [`Machine::access`], kept
    /// as the bit-exactness oracle for the fast path: the equivalence
    /// property test and the `hotpath` benchmark drive one machine through
    /// `access` and an identical twin through `access_reference` and demand
    /// byte-identical outcomes, statistics, and page-table state.
    #[inline]
    pub fn access_reference(&mut self, access: Access) -> SimResult<AccessOutcome> {
        let vpage = access.vaddr.base_page();
        let tr = self.pt.translate(vpage).ok_or(SimError::NotMapped(vpage))?;
        let mut latency = 0.0;
        let mut hint_fault = false;

        // NUMA-hint fault: trap cost, then the access proceeds.
        if tr.hint {
            hint_fault = true;
            latency += self.cfg.costs.fault_overhead_ns;
            self.stats.hint_faults += 1;
            match self.pt.entry_mut(vpage) {
                Some(EntryMut::Base(p)) => p.hint = false,
                Some(EntryMut::Huge(h)) => h.hint = false,
                None => unreachable!(),
            }
        }

        // Address translation.
        let tlb = route_tlb(&mut self.lanes, &mut self.tlb, vpage);
        let tlb_hit = tlb.lookup(vpage, tr.size);
        if !tlb_hit {
            latency += tr.size.walk_levels() as f64 * self.cfg.costs.walk_level_ns;
            tlb.insert(vpage, tr.size);
        }

        // Reference bits (harvested by page-table-scanning policies).
        match self.pt.entry_mut(vpage) {
            Some(EntryMut::Base(p)) => {
                p.accessed = true;
                if access.is_store() {
                    p.dirty = true;
                    p.ever_written = true;
                }
            }
            Some(EntryMut::Huge(h)) => {
                h.accessed = true;
                if access.is_store() {
                    h.dirty = true;
                    h.mark_subpage_written(vpage.subpage_index());
                }
            }
            None => unreachable!(),
        }

        // Mirror of the fast path's in-flight dirty hook.
        if access.is_store() && self.engine.has_active() {
            self.engine.note_store(vpage);
        }

        // Cache and memory.
        let paddr = crate::addr::PhysAddr(tr.frame.addr().0 + access.vaddr.base_offset());
        let tier = self.tier_of_frame(tr.frame);
        let llc_hit = route_llc(&mut self.lanes, &mut self.llc, vpage).access(paddr);
        if llc_hit {
            latency += self.cfg.costs.llc_hit_ns;
        } else {
            let spec = self.cfg.tier(tier);
            latency += if access.is_store() {
                spec.store_ns
            } else {
                spec.load_ns
            };
            if self.engine.has_active() && self.engine.link_busy_for(tier) {
                latency += self.cfg.migration.contention_penalty_ns;
            }
            self.stats.count_tier_hit(tier);
        }

        if access.is_store() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        Ok(AccessOutcome {
            latency_ns: latency,
            vpage,
            page_size: tr.size,
            tier,
            llc_miss: !llc_hit,
            tlb_miss: !tlb_hit,
            hint_fault,
            demand_fault: false,
        })
    }

    /// Migrates the page covering `vpage` to `dst`, preserving entry flags.
    ///
    /// For a huge mapping, `vpage` must be 2 MiB-aligned and the whole page
    /// moves. Fails with `OutOfMemory` if `dst` has no free frame (callers
    /// demote first to make room). Failed attempts are counted in
    /// [`crate::stats::MigrationStats::failed`].
    pub fn migrate(&mut self, vpage: VirtPage, dst: TierId) -> SimResult<MigrateOutcome> {
        match self.migrate_inner(vpage, dst) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.stats.migration.failed += 1;
                Err(e)
            }
        }
    }

    fn migrate_inner(&mut self, vpage: VirtPage, dst: TierId) -> SimResult<MigrateOutcome> {
        let tr = self.pt.translate(vpage).ok_or(SimError::NotMapped(vpage))?;
        if tr.size == PageSize::Huge && !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        let src = self.tier_of_frame(tr.frame);
        if src == dst {
            return Err(SimError::SameTier(src));
        }
        let new_frame = self.tiers[dst.0 as usize].alloc(tr.size)?;
        // Migration remaps the page: drop the walk cache per the fast-path
        // invalidation rule (map/unmap/migrate/split/collapse).
        self.pt.invalidate_walk_cache();
        let old_frame = match self.pt.entry_mut(vpage) {
            Some(EntryMut::Base(p)) => std::mem::replace(&mut p.frame, new_frame),
            Some(EntryMut::Huge(h)) => std::mem::replace(&mut h.frame, new_frame),
            None => unreachable!(),
        };
        self.tiers[src.0 as usize].free(old_frame, tr.size);
        route_tlb(&mut self.lanes, &mut self.tlb, vpage).invalidate(vpage, tr.size);
        self.stats.shootdowns += 1;

        let bytes = tr.size.bytes();
        let cost = self.transfer_cost_ns(src, dst, bytes, 0);

        let pages_4k = bytes / BASE_PAGE_SIZE;
        if dst.0 < src.0 {
            self.stats.migration.promoted_4k += pages_4k;
        } else {
            self.stats.migration.demoted_4k += pages_4k;
        }
        self.stats.migration.migrated_bytes += bytes;

        Ok(MigrateOutcome {
            cost_ns: cost,
            from: src,
            to: dst,
            bytes,
        })
    }

    /// Splits the huge page at `vpage` in place (same frames become 512
    /// individually-managed base pages). When `free_zero_subpages` is set,
    /// never-written subpages are unmapped and freed, reclaiming THP bloat
    /// (§4.3.3).
    pub fn split_huge(
        &mut self,
        vpage: VirtPage,
        free_zero_subpages: bool,
    ) -> SimResult<SplitOutcome> {
        let old = self.pt.split_huge(vpage)?;
        let tier = self.tier_of_frame(old.frame);
        self.tiers[tier.0 as usize].split_used_huge(old.frame);
        route_tlb(&mut self.lanes, &mut self.tlb, vpage).invalidate(vpage, PageSize::Huge);
        self.stats.shootdowns += 1;
        self.stats.migration.splits += 1;

        let mut freed = 0u32;
        if free_zero_subpages {
            for i in 0..NR_SUBPAGES as usize {
                if !old.subpage_written(i) {
                    let sub = vpage.add(i as u64);
                    let pte = self.pt.unmap_base(sub).expect("subpage just mapped");
                    self.tiers[tier.0 as usize].free_base(pte.frame);
                    freed += 1;
                }
            }
            self.stats.migration.zero_subpages_freed += freed as u64;
        }

        let cost = self.transfer_cost_ns(tier, tier, 0, NR_SUBPAGES as u32);
        Ok(SplitOutcome {
            zero_subpages_freed: freed,
            cost_ns: cost,
        })
    }

    /// Collapses 512 base mappings at `vpage` into one huge page on `tier`,
    /// allocating a fresh huge frame and copying (khugepaged-style). Failed
    /// attempts are counted in [`crate::stats::MigrationStats::failed`].
    pub fn collapse_huge(&mut self, vpage: VirtPage, tier: TierId) -> SimResult<MigrateOutcome> {
        match self.collapse_huge_inner(vpage, tier) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.stats.migration.failed += 1;
                Err(e)
            }
        }
    }

    fn collapse_huge_inner(&mut self, vpage: VirtPage, tier: TierId) -> SimResult<MigrateOutcome> {
        if !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        let new_frame = self.tiers[tier.0 as usize].alloc_huge()?;
        let old = match self.pt.collapse_huge(vpage, new_frame) {
            Ok(o) => o,
            Err(e) => {
                self.tiers[tier.0 as usize].free_huge(new_frame);
                return Err(e);
            }
        };
        let mut src = tier;
        for pte in &old {
            let t = self.tier_of_frame(pte.frame);
            src = t;
            self.tiers[t.0 as usize].free_base(pte.frame);
        }
        route_tlb(&mut self.lanes, &mut self.tlb, vpage).invalidate(vpage, PageSize::Base);
        self.stats.shootdowns += 1;
        self.stats.migration.collapses += 1;

        let bytes = PageSize::Huge.bytes();
        let cost = self.transfer_cost_ns(tier, tier, bytes, NR_SUBPAGES as u32);
        Ok(MigrateOutcome {
            cost_ns: cost,
            from: src,
            to: tier,
            bytes,
        })
    }

    /// Cost of moving `bytes` between `src` and `dst` plus the remap work:
    /// `bytes / min(bw) + shootdown + pte_updates * per-PTE cost` (ns).
    ///
    /// Single source of truth for the migrate / split / collapse cost
    /// formulas and the engine's copy-duration model, so the synchronous
    /// legacy path and the asynchronous engine cannot drift.
    pub fn transfer_cost_ns(&self, src: TierId, dst: TierId, bytes: u64, pte_updates: u32) -> f64 {
        let bw = self
            .cfg
            .tier(src)
            .copy_bw_bytes_per_ns
            .min(self.cfg.tier(dst).copy_bw_bytes_per_ns);
        bytes as f64 / bw + self.cfg.costs.tlb_shootdown_ns + pte_updates as f64 * PTE_UPDATE_NS
    }

    /// Copy bandwidth of the migration link between `src` and `dst`:
    /// the slower tier's copy bandwidth, capped by the engine's
    /// [`crate::config::MigrationConfig::bandwidth_limit`].
    fn migration_link_bw(&self, src: TierId, dst: TierId) -> f64 {
        let link = self
            .cfg
            .tier(src)
            .copy_bw_bytes_per_ns
            .min(self.cfg.tier(dst).copy_bw_bytes_per_ns);
        match self.cfg.migration.bandwidth_limit {
            Some(cap) => link.min(cap),
            None => link,
        }
    }

    /// Requests a migration of the page covering `vpage` to `dst`.
    ///
    /// With no [`crate::config::MigrationConfig::bandwidth_limit`] this
    /// delegates to [`Machine::migrate`] and completes synchronously
    /// (bit-exact legacy semantics). Under bandwidth arbitration the
    /// destination frame is reserved and a transfer is admitted instead;
    /// it completes or aborts during a later [`Machine::pump_transfers`].
    /// Higher `priority` transfers win the link first.
    ///
    /// Validation failures count in
    /// [`crate::stats::MigrationStats::failed`]; admission-control
    /// rejections ([`SimError::QueueFull`], [`SimError::InFlight`]) do not —
    /// they are back-pressure, not errors.
    pub fn enqueue_migration(
        &mut self,
        vpage: VirtPage,
        dst: TierId,
        priority: u8,
        now_ns: f64,
    ) -> SimResult<MigrationHandle> {
        if self.cfg.migration.bandwidth_limit.is_none() {
            return self.migrate(vpage, dst).map(MigrationHandle::Done);
        }
        match self.enqueue_inner(vpage, dst, priority, now_ns) {
            Ok(h) => {
                // A re-enqueue of a previously aborted page closes its
                // abort-to-retry lag measurement.
                if let Some(f) = self.flight.as_mut() {
                    f.note_enqueue(vpage.0, now_ns);
                }
                Ok(h)
            }
            Err(e) => {
                if !matches!(e, SimError::QueueFull | SimError::InFlight(_)) {
                    self.stats.migration.failed += 1;
                }
                Err(e)
            }
        }
    }

    fn enqueue_inner(
        &mut self,
        vpage: VirtPage,
        dst: TierId,
        priority: u8,
        now_ns: f64,
    ) -> SimResult<MigrationHandle> {
        let tr = self.pt.translate(vpage).ok_or(SimError::NotMapped(vpage))?;
        if tr.size == PageSize::Huge && !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        let src = self.tier_of_frame(tr.frame);
        if src == dst {
            return Err(SimError::SameTier(src));
        }
        if self.engine.find_overlapping(vpage, tr.size).is_some() {
            return Err(SimError::InFlight(vpage));
        }
        if !self.engine.has_queue_capacity() {
            return Err(SimError::QueueFull);
        }
        // Reserve the destination frame up front so tier accounting always
        // reflects committed transfers; released again on abort.
        let dst_frame = self.tiers[dst.0 as usize].alloc(tr.size)?;
        let id = self.engine.admit(
            vpage, tr.size, src, dst, tr.frame, dst_frame, priority, now_ns,
        );
        let in_flight = self.engine.in_flight() as u64;
        if in_flight > self.stats.migration.in_flight_peak {
            self.stats.migration.in_flight_peak = in_flight;
        }
        Ok(MigrationHandle::InFlight {
            id,
            from: src,
            to: dst,
            bytes: tr.size.bytes(),
        })
    }

    /// Aborts a queued or copying transfer, releasing its destination
    /// reservation. Returns `None` if the id is unknown (already finished).
    pub fn abort_transfer(&mut self, id: TransferId, now_ns: f64) -> Option<TransferEnd> {
        let t = self.engine.remove(id, now_ns)?;
        Some(self.abort_common(t, AbortCause::Cancelled, now_ns))
    }

    /// No transfers queued or copying.
    pub fn transfers_idle(&self) -> bool {
        self.engine.is_idle()
    }

    /// Queued (not yet copying) transfers.
    pub fn transfer_queue_len(&self) -> usize {
        self.engine.queue_len()
    }

    /// Queued plus copying transfers.
    pub fn transfers_in_flight(&self) -> usize {
        self.engine.in_flight()
    }

    /// The transfer covering base page `vpage`, if any.
    pub fn transfer_for(&self, vpage: VirtPage) -> Option<TransferId> {
        self.engine.transfer_for(vpage)
    }

    /// Advances the migration engine to simulated time `now_ns`, starting
    /// queued copies as links free up and finalizing finished ones
    /// (remapping the page, or releasing the reservation on abort). Returns
    /// the lifecycle events in deterministic order. Copy-then-remap: until
    /// a transfer completes here, accesses keep translating to the source
    /// frame.
    pub fn pump_transfers(&mut self, now_ns: f64) -> Vec<EngineEvent> {
        let mut fault_events = if self.faults.is_some() {
            self.apply_faults(now_ns)
        } else {
            Vec::new()
        };
        if self.engine.is_idle() {
            return fault_events;
        }
        let outcomes = {
            let engine = &mut self.engine;
            let cfg = &self.cfg;
            engine.pump(now_ns, |a, b| {
                let link = cfg
                    .tier(a)
                    .copy_bw_bytes_per_ns
                    .min(cfg.tier(b).copy_bw_bytes_per_ns);
                match cfg.migration.bandwidth_limit {
                    Some(cap) => link.min(cap),
                    None => link,
                }
            })
        };
        let mut events = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            match o {
                PumpOutcome::Started {
                    id,
                    vpage,
                    from,
                    to,
                    bytes,
                    wait_ns,
                } => {
                    if let Some(f) = self.flight.as_mut() {
                        f.record_queue_wait(wait_ns);
                    }
                    events.push(EngineEvent::Started {
                        id,
                        vpage,
                        from,
                        to,
                        bytes,
                    })
                }
                PumpOutcome::CopyDone(t) => {
                    if self.finalize_transfer(&t) {
                        if let Some(f) = self.flight.as_mut() {
                            f.record_transfer(t.end_ns - t.first_start_ns);
                        }
                        self.stats.migration.recopies += t.recopies as u64;
                        events.push(EngineEvent::Ended(t.end(None)));
                    } else {
                        // The mapping changed under the copy; the data no
                        // longer describes the page.
                        let end_ns = t.end_ns;
                        events.push(EngineEvent::Ended(self.abort_common(
                            t,
                            AbortCause::Superseded,
                            end_ns,
                        )));
                    }
                }
                PumpOutcome::DirtyAborted(t) => {
                    let end_ns = t.end_ns;
                    events.push(EngineEvent::Ended(self.abort_common(
                        t,
                        AbortCause::Dirty,
                        end_ns,
                    )));
                }
            }
        }
        if fault_events.is_empty() {
            events
        } else {
            fault_events.extend(events);
            fault_events
        }
    }

    /// Applies the machine-level faults due at `now_ns`: link outages and
    /// pressure spikes on the simulated clock, forced aborts and injected
    /// dirty stores by per-pump probability rolls. Returns terminal events
    /// for forcibly-aborted transfers so callers route them to
    /// `Policy::on_transfer_end` exactly like engine-originated aborts.
    fn apply_faults(&mut self, now_ns: f64) -> Vec<EngineEvent> {
        let Some(mut inj) = self.faults.take() else {
            return Vec::new();
        };
        let mut events = Vec::new();
        if let Some(duration) = inj.outage_due(now_ns) {
            self.engine.delay_active(now_ns, duration);
            inj.record(now_ns, FaultKind::LinkOutage, 0);
        }
        if let Some(spec) = inj.pressure_should_start(now_ns) {
            let huge = PageSize::Huge.bytes();
            while inj.reserved_bytes() + huge <= spec.bytes {
                match self.tiers[TierId::FAST.0 as usize].alloc(PageSize::Huge) {
                    Ok(frame) => inj.pressure_frames.push(frame),
                    Err(_) => break,
                }
            }
            inj.record(now_ns, FaultKind::PressureSpike, 0);
        }
        if inj.pressure_should_end(now_ns) {
            for frame in inj.pressure_frames.drain(..) {
                self.tiers[TierId::FAST.0 as usize].free(frame, PageSize::Huge);
            }
            inj.record(now_ns, FaultKind::PressureRelease, 0);
        }
        if inj.roll_abort() {
            let ids = self.engine.transfer_ids();
            if !ids.is_empty() {
                let id = ids[inj.pick(ids.len())];
                if let Some(end) = self.abort_transfer(id, now_ns) {
                    inj.record(now_ns, FaultKind::ForcedAbort, end.vpage.0);
                    events.push(EngineEvent::Ended(end));
                }
            }
        }
        if inj.roll_dirty() {
            let pages = self.engine.active_pages();
            if !pages.is_empty() {
                let vpage = pages[inj.pick(pages.len())];
                self.engine.note_store(vpage);
                inj.record(now_ns, FaultKind::InjectedDirty, vpage.0);
            }
        }
        self.faults = Some(inj);
        events
    }

    /// Remaps a cleanly-copied transfer. Returns false if the mapping
    /// changed since admission (unmapped, resized, or re-allocated), in
    /// which case the caller aborts the transfer instead.
    fn finalize_transfer(&mut self, t: &Transfer) -> bool {
        let Some(tr) = self.pt.translate(t.vpage) else {
            return false;
        };
        if tr.size != t.size || tr.frame != t.src_frame {
            return false;
        }
        // Remap exactly as the synchronous path does.
        self.pt.invalidate_walk_cache();
        let old_frame = match self.pt.entry_mut(t.vpage) {
            Some(EntryMut::Base(p)) => std::mem::replace(&mut p.frame, t.dst_frame),
            Some(EntryMut::Huge(h)) => std::mem::replace(&mut h.frame, t.dst_frame),
            None => unreachable!(),
        };
        self.tiers[t.from.0 as usize].free(old_frame, t.size);
        route_tlb(&mut self.lanes, &mut self.tlb, t.vpage).invalidate(t.vpage, t.size);
        self.stats.shootdowns += 1;
        let pages_4k = t.bytes / BASE_PAGE_SIZE;
        if t.to.0 < t.from.0 {
            self.stats.migration.promoted_4k += pages_4k;
        } else {
            self.stats.migration.demoted_4k += pages_4k;
        }
        self.stats.migration.migrated_bytes += t.bytes;
        true
    }

    fn abort_common(&mut self, t: Transfer, cause: AbortCause, abort_ns: f64) -> TransferEnd {
        self.tiers[t.to.0 as usize].free(t.dst_frame, t.size);
        self.stats.migration.recopies += t.recopies as u64;
        self.stats.migration.aborted += 1;
        self.stats.migration.aborted_bytes += t.wasted_bytes();
        if let Some(f) = self.flight.as_mut() {
            f.note_abort(t.vpage.0, abort_ns);
        }
        t.end(Some(cause))
    }

    /// Exposes the link bandwidth model for tests and benches.
    pub fn effective_link_bw(&self, src: TierId, dst: TierId) -> f64 {
        self.migration_link_bw(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::addr::HUGE_PAGE_SIZE;

    fn machine() -> Machine {
        Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            16 * HUGE_PAGE_SIZE,
        ))
    }

    #[test]
    fn tier_layout_is_contiguous_and_disjoint() {
        let m = machine();
        assert_eq!(m.tier_count(), 2);
        assert_eq!(m.tier_of_frame(Frame(0)), TierId::FAST);
        assert_eq!(m.tier_of_frame(Frame(4 * 512 - 1)), TierId::FAST);
        assert_eq!(m.tier_of_frame(Frame(4 * 512)), TierId::CAPACITY);
        assert_eq!(m.capacity_bytes(TierId::FAST), 4 * HUGE_PAGE_SIZE);
        assert_eq!(m.capacity_bytes(TierId::CAPACITY), 16 * HUGE_PAGE_SIZE);
    }

    #[test]
    fn access_unmapped_faults() {
        let mut m = machine();
        assert!(matches!(
            m.access(Access::load(0x1000)),
            Err(SimError::NotMapped(_))
        ));
    }

    #[test]
    fn access_cost_breakdown() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        // First access: TLB miss (4-level walk) + LLC miss + NVM load.
        let o1 = m.access(Access::load(0)).unwrap();
        assert!(o1.tlb_miss && o1.llc_miss);
        assert_eq!(o1.tier, TierId::CAPACITY);
        assert_eq!(o1.latency_ns, 4.0 * 25.0 + 300.0);
        // Same line again: TLB hit + LLC hit.
        let o2 = m.access(Access::load(8)).unwrap();
        assert!(!o2.tlb_miss && !o2.llc_miss);
        assert_eq!(o2.latency_ns, 30.0);
        // A store misses the line but hits the TLB: NVM store latency.
        let o3 = m.access(Access::store(64)).unwrap();
        assert!(o3.llc_miss && !o3.tlb_miss);
        assert_eq!(o3.latency_ns, 400.0);
    }

    #[test]
    fn access_batch_matches_sequential_accesses() {
        let mut batched = machine();
        let mut oracle = machine();
        for m in [&mut batched, &mut oracle] {
            m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
                .unwrap();
            m.alloc_and_map(VirtPage(512), PageSize::Base, TierId::CAPACITY)
                .unwrap();
        }
        // Same-page load runs (coalesced), interleaved stores and page
        // changes (full path).
        let accesses = vec![
            Access::load(64),
            Access::load(128),
            Access::load(8),
            Access::store(512 * 4096),
            Access::load(512 * 4096 + 32),
            Access::load(512 * 4096 + 8),
            Access::load(4096 * 3),
            Access::store(4096 * 3 + 16),
            Access::load(4096 * 3 + 24),
        ];
        let threads = 4.0;
        let mut clock = BatchClock {
            wall_ns: 0.0,
            app_access_ns: 0.0,
            threads,
            stop_wall_ns: f64::INFINITY,
        };
        let mut recs = Vec::new();
        let events: Vec<_> = accesses
            .iter()
            .map(|&a| crate::driver::WorkloadEvent::Access(a))
            .collect();
        let (n, stop) = batched.access_batch(&events, &mut recs, &mut clock, RecordFilter::ALL);
        assert_eq!(n, accesses.len());
        assert!(matches!(stop, BatchStop::Clean));

        let mut wall = 0.0f64;
        let mut app = 0.0f64;
        for (rec, &a) in recs.iter().zip(&accesses) {
            let o = oracle.access(a).unwrap();
            assert_eq!(rec.now_ns.to_bits(), wall.to_bits());
            assert_eq!(rec.outcome.latency_ns.to_bits(), o.latency_ns.to_bits());
            assert_eq!(rec.outcome.vpage, o.vpage);
            assert_eq!(rec.outcome.tier, o.tier);
            assert_eq!(rec.outcome.llc_miss, o.llc_miss);
            assert_eq!(rec.outcome.tlb_miss, o.tlb_miss);
            app += o.latency_ns;
            wall += o.latency_ns / threads;
        }
        assert_eq!(clock.wall_ns.to_bits(), wall.to_bits());
        assert_eq!(clock.app_access_ns.to_bits(), app.to_bits());
        assert_eq!(
            format!("{:?}", batched.stats),
            format!("{:?}", oracle.stats)
        );
    }

    #[test]
    fn access_batch_stops_at_hint_fault_and_unmapped() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
            .unwrap();
        m.set_hint(VirtPage(0));
        let events = [
            crate::driver::WorkloadEvent::Access(Access::load(64)),
            crate::driver::WorkloadEvent::Access(Access::load(0)),
        ];
        let mut clock = BatchClock {
            wall_ns: 0.0,
            app_access_ns: 0.0,
            threads: 1.0,
            stop_wall_ns: f64::INFINITY,
        };
        let mut recs = Vec::new();
        // Index 0 takes the hint fault: executed but not recorded/clocked.
        let (n, stop) = m.access_batch(&events, &mut recs, &mut clock, RecordFilter::ALL);
        assert_eq!(n, 0);
        assert!(recs.is_empty());
        assert_eq!(clock.wall_ns, 0.0);
        match stop {
            BatchStop::Hint(out) => assert!(out.hint_fault),
            other => panic!("expected hint stop, got {other:?}"),
        }
        assert_eq!(m.stats.hint_faults, 1);
        // An unmapped page stops the batch with no side effects; a
        // non-access event stops it cleanly without being consumed.
        let events = [
            crate::driver::WorkloadEvent::Access(Access::load(0)),
            crate::driver::WorkloadEvent::Access(Access::load(99 * 4096)),
        ];
        let (n, stop) = m.access_batch(&events, &mut recs, &mut clock, RecordFilter::ALL);
        assert_eq!(n, 1);
        assert!(matches!(stop, BatchStop::NotMapped));
        assert_eq!(recs.len(), 1);
        let events = [
            crate::driver::WorkloadEvent::Access(Access::load(0)),
            crate::driver::WorkloadEvent::Free {
                addr: crate::addr::VirtAddr(0),
                bytes: 4096,
            },
            crate::driver::WorkloadEvent::Access(Access::load(0)),
        ];
        recs.clear();
        let (n, stop) = m.access_batch(&events, &mut recs, &mut clock, RecordFilter::ALL);
        assert_eq!(n, 1);
        assert!(matches!(stop, BatchStop::Clean));
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn access_batch_filter_waives_records_not_execution() {
        let mut filtered = machine();
        let mut full = machine();
        for m in [&mut filtered, &mut full] {
            m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
                .unwrap();
        }
        let events = [
            crate::driver::WorkloadEvent::Access(Access::load(0)),
            crate::driver::WorkloadEvent::Access(Access::load(0)),
            crate::driver::WorkloadEvent::Access(Access::store(64)),
            crate::driver::WorkloadEvent::Access(Access::load(0)),
        ];
        let mk_clock = || BatchClock {
            wall_ns: 0.0,
            app_access_ns: 0.0,
            threads: 1.0,
            stop_wall_ns: f64::INFINITY,
        };
        let filter = RecordFilter {
            llc_hit_loads: false,
            ..RecordFilter::ALL
        };
        let mut recs = Vec::new();
        let mut clock = mk_clock();
        let (n, _) = filtered.access_batch(&events, &mut recs, &mut clock, filter);
        assert_eq!(n, events.len());
        // The second and fourth loads hit the line the first access pulled
        // in; only the miss load and the store are materialized.
        assert_eq!(recs.len(), 2);
        assert!(recs
            .iter()
            .all(|r| r.outcome.llc_miss || r.access.is_store()));
        // Execution is unaffected: clocks and machine statistics match the
        // unfiltered run, and each kept record keeps its original timestamp.
        let mut full_recs = Vec::new();
        let mut full_clock = mk_clock();
        full.access_batch(&events, &mut full_recs, &mut full_clock, RecordFilter::ALL);
        assert_eq!(full_recs.len(), events.len());
        assert_eq!(clock.wall_ns.to_bits(), full_clock.wall_ns.to_bits());
        assert_eq!(format!("{:?}", filtered.stats), format!("{:?}", full.stats));
        let kept: Vec<_> = full_recs
            .iter()
            .filter(|r| filter.keeps(r.access.kind, r.outcome.llc_miss))
            .collect();
        assert_eq!(
            format!("{recs:?}"),
            format!("{:?}", kept.iter().map(|r| **r).collect::<Vec<_>>())
        );
    }

    #[test]
    fn access_batch_respects_stop_wall() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
            .unwrap();
        let events = [
            crate::driver::WorkloadEvent::Access(Access::load(0)),
            crate::driver::WorkloadEvent::Access(Access::load(8)),
            crate::driver::WorkloadEvent::Access(Access::load(16)),
        ];
        // First access costs 4*25 + 100 = 200 ns at 1 thread; stop there.
        let mut clock = BatchClock {
            wall_ns: 0.0,
            app_access_ns: 0.0,
            threads: 1.0,
            stop_wall_ns: 150.0,
        };
        let mut recs = Vec::new();
        let (n, stop) = m.access_batch(&events, &mut recs, &mut clock, RecordFilter::ALL);
        assert_eq!(n, 1);
        assert!(matches!(stop, BatchStop::Clean));
        assert!(clock.wall_ns >= 150.0);
    }

    #[test]
    fn huge_mapping_walks_three_levels() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        let o = m.access(Access::load(5 * 4096)).unwrap();
        assert_eq!(o.page_size, PageSize::Huge);
        assert_eq!(o.latency_ns, 3.0 * 25.0 + 100.0);
    }

    #[test]
    fn store_marks_subpage_written() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.access(Access::store(17 * 4096 + 5)).unwrap();
        let h = m.huge_entry(VirtPage(0)).unwrap();
        assert!(h.subpage_written(17));
        assert!(!h.subpage_written(16));
    }

    #[test]
    fn migrate_moves_page_and_preserves_flags() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(3), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        m.access(Access::store(3 * 4096)).unwrap();
        let out = m.migrate(VirtPage(3), TierId::FAST).unwrap();
        assert_eq!(out.from, TierId::CAPACITY);
        assert_eq!(out.to, TierId::FAST);
        assert!(out.cost_ns > 0.0);
        let (tier, size) = m.locate(VirtPage(3)).unwrap();
        assert_eq!(tier, TierId::FAST);
        assert_eq!(size, PageSize::Base);
        // The ever-written bit survived.
        if let Some(EntryMut::Base(p)) = m.pt.entry_mut(VirtPage(3)) {
            assert!(p.ever_written);
        } else {
            panic!("expected base mapping");
        }
        assert_eq!(m.stats.migration.promoted_4k, 1);
        // Free space accounting moved between tiers.
        assert_eq!(m.free_bytes(TierId::CAPACITY), 16 * HUGE_PAGE_SIZE);
    }

    #[test]
    fn migrate_to_full_tier_fails() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        assert!(matches!(
            m.migrate(VirtPage(512), TierId::FAST),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn split_frees_zero_subpages() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        // Write only 3 subpages.
        for i in [0u64, 7, 500] {
            m.access(Access::store(i * 4096)).unwrap();
        }
        let rss_before = m.rss_bytes();
        let out = m.split_huge(VirtPage(0), true).unwrap();
        assert_eq!(out.zero_subpages_freed, 509);
        assert_eq!(m.rss_bytes(), rss_before - 509 * 4096);
        // Written subpages still mapped, now as base pages, same tier.
        assert_eq!(m.locate(VirtPage(7)), Some((TierId::FAST, PageSize::Base)));
        assert_eq!(m.locate(VirtPage(1)), None);
        // Freed frames are allocatable again.
        assert_eq!(m.free_bytes(TierId::FAST), 3 * HUGE_PAGE_SIZE + 509 * 4096);
    }

    #[test]
    fn split_then_migrate_subpages_individually() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        for i in 0..512u64 {
            m.access(Access::store(i * 4096)).unwrap();
        }
        m.split_huge(VirtPage(0), true).unwrap();
        let out = m.migrate(VirtPage(9), TierId::FAST).unwrap();
        assert_eq!(out.to, TierId::FAST);
        assert_eq!(m.locate(VirtPage(9)), Some((TierId::FAST, PageSize::Base)));
        assert_eq!(
            m.locate(VirtPage(10)),
            Some((TierId::CAPACITY, PageSize::Base))
        );
    }

    #[test]
    fn collapse_gathers_scattered_subpages() {
        let mut m = machine();
        for i in 0..512u64 {
            let tier = if i % 2 == 0 {
                TierId::FAST
            } else {
                TierId::CAPACITY
            };
            m.alloc_and_map(VirtPage(i), PageSize::Base, tier).unwrap();
        }
        let out = m.collapse_huge(VirtPage(0), TierId::FAST).unwrap();
        assert_eq!(out.to, TierId::FAST);
        assert_eq!(m.locate(VirtPage(77)), Some((TierId::FAST, PageSize::Huge)));
        assert_eq!(m.mapped_huge_pages(), 1);
        assert_eq!(m.mapped_base_pages(), 0);
    }

    #[test]
    fn hint_fault_fires_once() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
            .unwrap();
        assert!(m.set_hint(VirtPage(0)));
        let o1 = m.access(Access::load(0)).unwrap();
        assert!(o1.hint_fault);
        assert!(o1.latency_ns >= 300.0);
        let o2 = m.access(Access::load(0)).unwrap();
        assert!(!o2.hint_fault);
        assert_eq!(m.stats.hint_faults, 1);
    }

    #[test]
    fn fallback_allocation_order() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 2 * HUGE_PAGE_SIZE));
        let order = [TierId::FAST, TierId::CAPACITY];
        let (t1, _) = m
            .alloc_and_map_fallback(VirtPage(0), PageSize::Huge, &order)
            .unwrap();
        assert_eq!(t1, TierId::FAST);
        let (t2, _) = m
            .alloc_and_map_fallback(VirtPage(512), PageSize::Huge, &order)
            .unwrap();
        assert_eq!(t2, TierId::CAPACITY);
        let (t3, _) = m
            .alloc_and_map_fallback(VirtPage(1024), PageSize::Huge, &order)
            .unwrap();
        assert_eq!(t3, TierId::CAPACITY);
        assert!(matches!(
            m.alloc_and_map_fallback(VirtPage(1536), PageSize::Huge, &order),
            Err(SimError::GlobalOutOfMemory)
        ));
    }

    #[test]
    fn unmap_and_free_returns_space() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        let before = m.free_bytes(TierId::FAST);
        m.unmap_and_free(VirtPage(0), PageSize::Huge).unwrap();
        assert_eq!(m.free_bytes(TierId::FAST), before + HUGE_PAGE_SIZE);
        assert_eq!(m.rss_bytes(), 0);
    }

    #[test]
    fn fast_path_matches_reference_on_mixed_sequence() {
        // Deterministic smoke version of the equivalence property test:
        // identical machines, one driven by the fast path and one by the
        // reference path, must agree on every outcome and final stats.
        let mut fast = machine();
        let mut refm = machine();
        for m in [&mut fast, &mut refm] {
            m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
                .unwrap();
            m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::CAPACITY)
                .unwrap();
            m.alloc_and_map(VirtPage(2048), PageSize::Base, TierId::CAPACITY)
                .unwrap();
            m.set_hint(VirtPage(512));
        }
        let mut x = 12345u64;
        for step in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = match x % 3 {
                0 => (x >> 8) % (512 * 4096),
                1 => 512 * 4096 + (x >> 8) % (512 * 4096),
                _ => 2048 * 4096 + (x >> 8) % 4096,
            };
            let acc = if x.is_multiple_of(5) {
                Access::store(addr)
            } else {
                Access::load(addr)
            };
            let a = fast.access(acc).unwrap();
            let b = refm.access_reference(acc).unwrap();
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "diverged at step {step}"
            );
            if step == 2000 {
                // Interleave a migration to exercise cache invalidation.
                let _ = fast.migrate(VirtPage(2048), TierId::FAST);
                let _ = refm.migrate(VirtPage(2048), TierId::FAST);
            }
        }
        assert_eq!(format!("{:?}", fast.stats), format!("{:?}", refm.stats));
        assert_eq!(
            format!("{:?}", fast.tlb_stats()),
            format!("{:?}", refm.tlb_stats())
        );
        assert_eq!(
            format!("{:?}", fast.llc_stats()),
            format!("{:?}", refm.llc_stats())
        );
    }

    fn async_machine() -> Machine {
        let mut cfg = MachineConfig::dram_nvm(4 * HUGE_PAGE_SIZE, 16 * HUGE_PAGE_SIZE);
        cfg.migration.bandwidth_limit = Some(1.0); // 1 byte/ns -> 4096 ns per base page
        Machine::new(cfg)
    }

    #[test]
    fn unlimited_enqueue_is_bit_identical_to_sync_migrate() {
        // The regression oracle: with no bandwidth limit the enqueue path
        // must reproduce the synchronous path exactly — same outcome, same
        // stats, same machine state.
        let mut sync = machine();
        let mut asy = machine();
        for m in [&mut sync, &mut asy] {
            m.alloc_and_map(VirtPage(3), PageSize::Base, TierId::CAPACITY)
                .unwrap();
            m.access(Access::store(3 * 4096)).unwrap();
        }
        let a = sync.migrate(VirtPage(3), TierId::FAST).unwrap();
        let b = asy
            .enqueue_migration(VirtPage(3), TierId::FAST, 7, 123.0)
            .unwrap();
        assert!(b.is_done());
        assert_eq!(format!("{a:?}"), format!("{:?}", *b.outcome().unwrap()));
        assert_eq!(format!("{:?}", sync.stats), format!("{:?}", asy.stats));
        assert!(asy.transfers_idle());
        assert!(asy.pump_transfers(1e9).is_empty());
    }

    #[test]
    fn async_transfer_copies_then_remaps() {
        let mut m = async_machine();
        m.alloc_and_map(VirtPage(3), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        let h = m
            .enqueue_migration(VirtPage(3), TierId::FAST, 0, 0.0)
            .unwrap();
        let id = h.transfer_id().expect("in flight");
        assert_eq!(m.transfer_for(VirtPage(3)), Some(id));
        // The destination frame is reserved immediately...
        assert_eq!(m.free_bytes(TierId::FAST), 4 * HUGE_PAGE_SIZE - 4096);
        // ...but the page still translates to the source tier mid-copy.
        let ev = m.pump_transfers(100.0);
        assert!(matches!(&ev[..], [EngineEvent::Started { .. }]));
        assert_eq!(
            m.locate(VirtPage(3)),
            Some((TierId::CAPACITY, PageSize::Base))
        );
        assert_eq!(m.stats.migration.promoted_4k, 0);
        // At 1 byte/ns the 4096-byte copy finishes at t=4096.
        let ev = m.pump_transfers(5000.0);
        assert!(matches!(&ev[..], [EngineEvent::Ended(e)] if e.id == id && e.aborted.is_none()));
        assert_eq!(m.locate(VirtPage(3)), Some((TierId::FAST, PageSize::Base)));
        assert_eq!(m.stats.migration.promoted_4k, 1);
        assert_eq!(m.stats.migration.in_flight_peak, 1);
        assert_eq!(m.free_bytes(TierId::CAPACITY), 16 * HUGE_PAGE_SIZE);
        assert!(m.transfers_idle());
    }

    #[test]
    fn store_mid_copy_forces_recopy_then_abort() {
        let mut cfg = MachineConfig::dram_nvm(4 * HUGE_PAGE_SIZE, 16 * HUGE_PAGE_SIZE);
        cfg.migration.bandwidth_limit = Some(1.0);
        cfg.migration.max_recopies = 1;
        let mut m = Machine::new(cfg);
        m.alloc_and_map(VirtPage(3), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        m.enqueue_migration(VirtPage(3), TierId::FAST, 0, 0.0)
            .unwrap();
        m.pump_transfers(10.0);
        m.access(Access::store(3 * 4096)).unwrap(); // dirties pass 1
        let ev = m.pump_transfers(4096.0);
        assert!(ev.is_empty(), "dirty pass restarts silently");
        m.access(Access::store(3 * 4096)).unwrap(); // dirties pass 2
        let ev = m.pump_transfers(8192.0);
        assert!(matches!(
            &ev[..],
            [EngineEvent::Ended(e)] if e.aborted == Some(AbortCause::Dirty) && e.wasted_bytes == 2 * 4096
        ));
        // Reservation released; page untouched on its source tier.
        assert_eq!(m.free_bytes(TierId::FAST), 4 * HUGE_PAGE_SIZE);
        assert_eq!(
            m.locate(VirtPage(3)),
            Some((TierId::CAPACITY, PageSize::Base))
        );
        assert_eq!(m.stats.migration.aborted, 1);
        assert_eq!(m.stats.migration.aborted_bytes, 2 * 4096);
        assert_eq!(m.stats.migration.recopies, 1);
    }

    #[test]
    fn abort_releases_reservation_and_duplicates_are_rejected() {
        let mut m = async_machine();
        m.alloc_and_map(VirtPage(3), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        let h = m
            .enqueue_migration(VirtPage(3), TierId::FAST, 0, 0.0)
            .unwrap();
        assert!(matches!(
            m.enqueue_migration(VirtPage(3), TierId::FAST, 0, 0.0),
            Err(SimError::InFlight(_))
        ));
        let end = m.abort_transfer(h.transfer_id().unwrap(), 5.0).unwrap();
        assert_eq!(end.aborted, Some(AbortCause::Cancelled));
        assert_eq!(m.free_bytes(TierId::FAST), 4 * HUGE_PAGE_SIZE);
        assert_eq!(m.stats.migration.aborted, 1);
        // A fresh enqueue is accepted again.
        assert!(m
            .enqueue_migration(VirtPage(3), TierId::FAST, 0, 6.0)
            .is_ok());
    }

    #[test]
    fn unmap_during_copy_supersedes_transfer() {
        let mut m = async_machine();
        m.alloc_and_map(VirtPage(3), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        m.enqueue_migration(VirtPage(3), TierId::FAST, 0, 0.0)
            .unwrap();
        m.pump_transfers(10.0);
        m.unmap_and_free(VirtPage(3), PageSize::Base).unwrap();
        let ev = m.pump_transfers(1e9);
        assert!(matches!(
            &ev[..],
            [EngineEvent::Ended(e)] if e.aborted == Some(AbortCause::Superseded)
        ));
        assert_eq!(m.free_bytes(TierId::FAST), 4 * HUGE_PAGE_SIZE);
        assert_eq!(m.free_bytes(TierId::CAPACITY), 16 * HUGE_PAGE_SIZE);
        assert_eq!(m.rss_bytes(), 0);
    }

    #[test]
    fn queue_admission_is_bounded() {
        let mut cfg = MachineConfig::dram_nvm(4 * HUGE_PAGE_SIZE, 16 * HUGE_PAGE_SIZE);
        cfg.migration.bandwidth_limit = Some(1.0);
        cfg.migration.queue_depth = 2;
        let mut m = Machine::new(cfg);
        for v in 0..3u64 {
            m.alloc_and_map(VirtPage(v), PageSize::Base, TierId::CAPACITY)
                .unwrap();
        }
        m.enqueue_migration(VirtPage(0), TierId::FAST, 0, 0.0)
            .unwrap();
        m.enqueue_migration(VirtPage(1), TierId::FAST, 0, 0.0)
            .unwrap();
        assert!(matches!(
            m.enqueue_migration(VirtPage(2), TierId::FAST, 0, 0.0),
            Err(SimError::QueueFull)
        ));
        // Back-pressure is not a failure.
        assert_eq!(m.stats.migration.failed, 0);
        // Once one transfer starts copying, a queue slot frees up.
        m.pump_transfers(1.0);
        assert!(m
            .enqueue_migration(VirtPage(2), TierId::FAST, 0, 1.0)
            .is_ok());
        assert_eq!(m.stats.migration.in_flight_peak, 3);
    }

    #[test]
    fn contention_penalty_applies_only_while_copying() {
        let mut m = async_machine();
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        m.alloc_and_map(VirtPage(1), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        let quiet = m.access(Access::load(0)).unwrap();
        m.enqueue_migration(VirtPage(1), TierId::FAST, 0, 0.0)
            .unwrap();
        m.pump_transfers(10.0); // transfer now copying on the DRAM<->NVM link
        let contended = m.access(Access::load(2 * 64)).unwrap();
        assert!(contended.llc_miss);
        assert_eq!(
            contended.latency_ns,
            quiet.latency_ns - 4.0 * 25.0 + 25.0,
            "TLB now hits; the LLC miss pays the contention penalty"
        );
    }

    #[test]
    fn access_kinds_counted() {
        let mut m = machine();
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
            .unwrap();
        m.access(Access {
            vaddr: crate::addr::VirtAddr(0),
            kind: AccessKind::Load,
        })
        .unwrap();
        m.access(Access::store(0)).unwrap();
        assert_eq!(m.stats.loads, 1);
        assert_eq!(m.stats.stores, 1);
    }
}
