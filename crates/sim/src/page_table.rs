//! Four-level radix page table with 4 KiB and 2 MiB mappings.
//!
//! The layout mirrors x86-64: a 2 MiB mapping occupies one L2 (PMD) slot and
//! terminates the walk one level early; splitting replaces the PMD entry with
//! a table of 512 PTEs over the *same* physical frames (in-place THP split,
//! as in the kernel), and collapsing installs a PMD entry over a freshly
//! allocated huge frame.
//!
//! Each entry carries the bits tiering systems rely on: the hardware
//! `accessed`/`dirty` bits (harvested and cleared by page-table-scanning
//! policies), a `hint` bit emulating AutoNUMA-style protection faults, and a
//! sticky `ever_written` bit per 4 KiB subpage that the huge-page splitter
//! uses to free all-zero subpages (§4.3.3 of the paper).

use crate::addr::{Frame, PageSize, VirtPage, NR_SUBPAGES};
use crate::error::{SimError, SimResult};
use std::ptr::NonNull;

const FANOUT: usize = 512;
const SUBPAGE_WORDS: usize = (NR_SUBPAGES as usize) / 64;

/// A 4 KiB page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical frame.
    pub frame: Frame,
    /// Hardware accessed bit (set on every access, cleared by scanners).
    pub accessed: bool,
    /// Hardware dirty bit (set on stores, cleared by scanners).
    pub dirty: bool,
    /// Sticky "was ever stored to" bit; never cleared, survives migration.
    pub ever_written: bool,
    /// NUMA-hint protection: next access traps to the policy.
    pub hint: bool,
}

impl Pte {
    /// A fresh entry mapping `frame` with all bits clear.
    pub fn new(frame: Frame) -> Self {
        Pte {
            frame,
            accessed: false,
            dirty: false,
            ever_written: false,
            hint: false,
        }
    }
}

/// A 2 MiB page-table entry (PMD level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HugeEntry {
    /// First frame of the 512-frame contiguous physical block.
    pub frame: Frame,
    /// Hardware accessed bit for the whole huge page. Note that hardware
    /// cannot report *which* subpage was touched — the paper's motivation
    /// for PEBS-based subpage tracking.
    pub accessed: bool,
    /// Hardware dirty bit for the whole huge page.
    pub dirty: bool,
    /// NUMA-hint protection for the whole huge page.
    pub hint: bool,
    /// Sticky per-subpage "ever stored to" bitmap (simulator-side knowledge
    /// standing in for the kernel's zero-subpage detection at split time).
    pub sub_written: [u64; SUBPAGE_WORDS],
}

impl HugeEntry {
    /// A fresh huge entry mapping the block starting at `frame`.
    pub fn new(frame: Frame) -> Self {
        HugeEntry {
            frame,
            accessed: false,
            dirty: false,
            hint: false,
            sub_written: [0; SUBPAGE_WORDS],
        }
    }

    /// Whether subpage `idx` (0..512) was ever stored to.
    pub fn subpage_written(&self, idx: usize) -> bool {
        self.sub_written[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Marks subpage `idx` as stored to.
    pub fn mark_subpage_written(&mut self, idx: usize) {
        self.sub_written[idx / 64] |= 1 << (idx % 64);
    }

    /// Number of subpages ever stored to.
    pub fn written_subpages(&self) -> u32 {
        self.sub_written.iter().map(|w| w.count_ones()).sum()
    }
}

/// Result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The exact 4 KiB frame backing the accessed page (for a huge mapping,
    /// `huge_frame + subpage_index`).
    pub frame: Frame,
    /// The mapping size the translation used.
    pub size: PageSize,
    /// Whether the entry had the NUMA-hint bit set (a real access would trap).
    pub hint: bool,
}

#[derive(Debug)]
struct L1Table {
    entries: Vec<Option<Pte>>,
    mapped: u16,
}

impl L1Table {
    fn new() -> Self {
        L1Table {
            entries: vec![None; FANOUT],
            mapped: 0,
        }
    }
}

#[derive(Debug)]
enum L2Slot {
    Empty,
    Huge(HugeEntry),
    Table(Box<L1Table>),
}

#[derive(Debug)]
struct L2Table {
    slots: Vec<L2Slot>,
}

impl L2Table {
    fn new() -> Self {
        L2Table {
            slots: (0..FANOUT).map(|_| L2Slot::Empty).collect(),
        }
    }
}

#[derive(Debug, Default)]
struct L3Table {
    entries: Vec<Option<Box<L2Table>>>,
}

#[derive(Debug, Default)]
struct L4Table {
    entries: Vec<Option<Box<L3Table>>>,
}

/// Mutable view over a mapped entry, produced by the scan API.
pub enum EntryMut<'a> {
    /// A base-page entry.
    Base(&'a mut Pte),
    /// A huge-page entry.
    Huge(&'a mut HugeEntry),
}

/// Sentinel meaning "this walk-cache way holds nothing".
const NO_REGION: u64 = u64::MAX;

/// Number of ways in the software walk cache. Power of two so the way index
/// is a mask; 1024 regions cover 2 GiB of virtual space, comfortably more
/// than the simulated working sets hop across between structural changes.
const WALK_CACHE_WAYS: usize = 1024;

/// One way of the walk cache; valid while `gen` matches the cache's current
/// generation *and* `region` matches the probe.
#[derive(Debug, Clone, Copy)]
struct WalkCacheWay {
    /// `vpn >> 9` of the cached region, or [`NO_REGION`].
    region: u64,
    /// Generation this way was filled in.
    gen: u64,
    /// Pointer into this table's own heap allocations; only dereferenced
    /// while both tags above match, and the cache generation is bumped
    /// before any structural change can invalidate the pointee.
    slot: NonNull<L2Slot>,
}

/// Direct-mapped software walk cache: remembers the L2 (PMD) slot of
/// recently walked 2 MiB regions (way = `region & 1023`), so repeated
/// accesses inside cached regions skip the L4→L3→L2 descent entirely.
///
/// This is **simulator-speed machinery**, not the simulated TLB — it never
/// affects costs or statistics. Correctness rule: any operation that can
/// move, replace, or free an L2 slot (map/unmap/split/collapse — and, at the
/// machine level, migrate) must call [`PageTable::invalidate_walk_cache`],
/// which bumps the generation counter — an O(1) drop of *every* way — and
/// is what keeps the fast path bit-exact with an uncached walk.
#[derive(Debug)]
struct WalkCache {
    ways: Box<[WalkCacheWay]>,
    /// Current generation; ways filled under an older generation are stale.
    gen: u64,
}

impl WalkCache {
    fn empty() -> Self {
        WalkCache {
            ways: vec![
                WalkCacheWay {
                    region: NO_REGION,
                    gen: 0,
                    slot: NonNull::dangling(),
                };
                WALK_CACHE_WAYS
            ]
            .into_boxed_slice(),
            gen: 1,
        }
    }
}

/// The four-level page table of the simulated address space.
#[derive(Debug)]
pub struct PageTable {
    root: L4Table,
    mapped_base: u64,
    mapped_huge: u64,
    walk_cache: WalkCache,
}

// SAFETY: `walk_cache.slot` points into heap allocations exclusively owned
// by this `PageTable` (boxed tables never move when the struct itself is
// moved between threads), so sending the table to another thread cannot
// leave the pointer dangling. The cache is only read through `&mut self`.
unsafe impl Send for PageTable {}

// SAFETY: all `&self` methods (`translate`, `l2_slot`, `huge_entry`, the
// counters) are pure reads of the boxed tables and never dereference
// `walk_cache.slot`; the raw pointer is only created and followed inside
// `walk_mut(&mut self)`, which shared references cannot call. Concurrent
// shared readers therefore never race with each other, which is exactly the
// sharded lane phase's access pattern (read-only translate under
// `&PageTable`, all mutation deferred to the single-threaded coordinator).
unsafe impl Sync for PageTable {}

#[inline]
fn idx(vpn: u64, level: u32) -> usize {
    // `level` 1..=4; level 1 indexes the PTE table.
    ((vpn >> (9 * (level - 1))) & (FANOUT as u64 - 1)) as usize
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            root: L4Table {
                entries: (0..FANOUT).map(|_| None).collect(),
            },
            mapped_base: 0,
            mapped_huge: 0,
            walk_cache: WalkCache::empty(),
        }
    }

    /// Drops every way of the walk cache in O(1) by bumping the generation
    /// counter. Must be called by every operation that structurally changes
    /// the table (and by machine-level remaps such as migration, per the
    /// fast-path invalidation rule).
    #[inline]
    pub fn invalidate_walk_cache(&mut self) {
        self.walk_cache.gen += 1;
    }

    /// Number of mapped 4 KiB entries.
    pub fn mapped_base_pages(&self) -> u64 {
        self.mapped_base
    }

    /// Number of mapped 2 MiB entries.
    pub fn mapped_huge_pages(&self) -> u64 {
        self.mapped_huge
    }

    /// Resident set size in bytes implied by current mappings.
    pub fn rss_bytes(&self) -> u64 {
        self.mapped_base * PageSize::Base.bytes() + self.mapped_huge * PageSize::Huge.bytes()
    }

    fn l2_slot(&self, vpn: u64) -> Option<&L2Slot> {
        let l3 = self.root.entries[idx(vpn, 4)].as_ref()?;
        let l2 = l3.entries.get(idx(vpn, 3))?.as_ref()?;
        Some(&l2.slots[idx(vpn, 2)])
    }

    fn l2_slot_mut(&mut self, vpn: u64, create: bool) -> Option<&mut L2Slot> {
        let l3_slot = &mut self.root.entries[idx(vpn, 4)];
        if l3_slot.is_none() {
            if !create {
                return None;
            }
            *l3_slot = Some(Box::new(L3Table {
                entries: (0..FANOUT).map(|_| None).collect(),
            }));
        }
        let l3 = l3_slot.as_mut().unwrap();
        if l3.entries.is_empty() {
            l3.entries = (0..FANOUT).map(|_| None).collect();
        }
        let l2_slot = &mut l3.entries[idx(vpn, 3)];
        if l2_slot.is_none() {
            if !create {
                return None;
            }
            *l2_slot = Some(Box::new(L2Table::new()));
        }
        Some(&mut l2_slot.as_mut().unwrap().slots[idx(vpn, 2)])
    }

    /// Translates a virtual page to its backing frame.
    pub fn translate(&self, vpage: VirtPage) -> Option<Translation> {
        match self.l2_slot(vpage.0)? {
            L2Slot::Empty => None,
            L2Slot::Huge(h) => Some(Translation {
                frame: h.frame.add(vpage.subpage_index() as u64),
                size: PageSize::Huge,
                hint: h.hint,
            }),
            L2Slot::Table(t) => {
                let pte = t.entries[idx(vpage.0, 1)].as_ref()?;
                Some(Translation {
                    frame: pte.frame,
                    size: PageSize::Base,
                    hint: pte.hint,
                })
            }
        }
    }

    /// Single-walk access fast path: one descent yields the mutable entry
    /// covering `vpage`, from which the caller reads the translation *and*
    /// updates accessed/dirty/hint bits — replacing the former
    /// translate + entry_mut + entry_mut triple walk.
    ///
    /// Calls landing in a cached 2 MiB region skip the descent via the
    /// direct-mapped walk cache (see [`WalkCache`]); results are
    /// bit-identical to an uncached walk because every structural mutation
    /// invalidates the cache.
    #[inline]
    pub fn walk_mut(&mut self, vpage: VirtPage) -> Option<EntryMut<'_>> {
        let region = vpage.0 >> 9;
        let way_idx = (region as usize) & (WALK_CACHE_WAYS - 1);
        let way = self.walk_cache.ways[way_idx];
        let ptr = if way.region == region && way.gen == self.walk_cache.gen {
            way.slot
        } else {
            let p = NonNull::from(self.l2_slot_mut(vpage.0, false)?);
            let gen = self.walk_cache.gen;
            self.walk_cache.ways[way_idx] = WalkCacheWay {
                region,
                gen,
                slot: p,
            };
            p
        };
        // SAFETY: the pointer was produced from this table's own slot
        // storage and the cache is invalidated before any operation that
        // could move or free that storage; `&mut self` guarantees no other
        // live borrow of the table.
        let slot = unsafe { &mut *ptr.as_ptr() };
        match slot {
            L2Slot::Empty => None,
            L2Slot::Huge(h) => Some(EntryMut::Huge(h)),
            L2Slot::Table(t) => t.entries[idx(vpage.0, 1)].as_mut().map(EntryMut::Base),
        }
    }

    /// Maps a 4 KiB page to `frame`.
    pub fn map_base(&mut self, vpage: VirtPage, frame: Frame) -> SimResult<()> {
        self.invalidate_walk_cache();
        let slot = self.l2_slot_mut(vpage.0, true).unwrap();
        match slot {
            L2Slot::Huge(_) => return Err(SimError::AlreadyMapped(vpage)),
            L2Slot::Empty => *slot = L2Slot::Table(Box::new(L1Table::new())),
            L2Slot::Table(_) => {}
        }
        let L2Slot::Table(t) = slot else {
            unreachable!()
        };
        let e = &mut t.entries[idx(vpage.0, 1)];
        if e.is_some() {
            return Err(SimError::AlreadyMapped(vpage));
        }
        *e = Some(Pte::new(frame));
        t.mapped += 1;
        self.mapped_base += 1;
        Ok(())
    }

    /// Maps a 2 MiB page (2 MiB-aligned `vpage`) to the block at `frame`.
    pub fn map_huge(&mut self, vpage: VirtPage, frame: Frame) -> SimResult<()> {
        if !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        self.invalidate_walk_cache();
        let slot = self.l2_slot_mut(vpage.0, true).unwrap();
        match slot {
            L2Slot::Huge(_) => Err(SimError::AlreadyMapped(vpage)),
            L2Slot::Table(t) if t.mapped > 0 => Err(SimError::AlreadyMapped(vpage)),
            _ => {
                *slot = L2Slot::Huge(HugeEntry::new(frame));
                self.mapped_huge += 1;
                Ok(())
            }
        }
    }

    /// Unmaps a 4 KiB page, returning the old entry.
    pub fn unmap_base(&mut self, vpage: VirtPage) -> SimResult<Pte> {
        self.invalidate_walk_cache();
        let slot = self
            .l2_slot_mut(vpage.0, false)
            .ok_or(SimError::NotMapped(vpage))?;
        match slot {
            L2Slot::Table(t) => {
                let e = t.entries[idx(vpage.0, 1)]
                    .take()
                    .ok_or(SimError::NotMapped(vpage))?;
                t.mapped -= 1;
                self.mapped_base -= 1;
                Ok(e)
            }
            L2Slot::Huge(_) => Err(SimError::WrongPageSize {
                vpage,
                expected: PageSize::Base,
            }),
            L2Slot::Empty => Err(SimError::NotMapped(vpage)),
        }
    }

    /// Unmaps a 2 MiB page, returning the old entry.
    pub fn unmap_huge(&mut self, vpage: VirtPage) -> SimResult<HugeEntry> {
        if !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        self.invalidate_walk_cache();
        let slot = self
            .l2_slot_mut(vpage.0, false)
            .ok_or(SimError::NotMapped(vpage))?;
        match std::mem::replace(slot, L2Slot::Empty) {
            L2Slot::Huge(h) => {
                self.mapped_huge -= 1;
                Ok(h)
            }
            other => {
                *slot = other;
                Err(SimError::WrongPageSize {
                    vpage,
                    expected: PageSize::Huge,
                })
            }
        }
    }

    /// Returns a mutable reference to the entry covering `vpage`, if mapped.
    pub fn entry_mut(&mut self, vpage: VirtPage) -> Option<EntryMut<'_>> {
        match self.l2_slot_mut(vpage.0, false)? {
            L2Slot::Huge(h) => Some(EntryMut::Huge(h)),
            L2Slot::Table(t) => t.entries[idx(vpage.0, 1)].as_mut().map(EntryMut::Base),
            L2Slot::Empty => None,
        }
    }

    /// Returns the huge entry at `vpage`, if it is huge-mapped.
    pub fn huge_entry(&self, vpage: VirtPage) -> Option<&HugeEntry> {
        match self.l2_slot(vpage.huge_aligned().0)? {
            L2Slot::Huge(h) => Some(h),
            _ => None,
        }
    }

    /// Splits the huge mapping at `vpage` in place: the PMD entry is replaced
    /// by 512 PTEs over the same physical frames. Returns the old huge entry;
    /// subpage PTEs inherit `accessed`/`dirty` and per-subpage `ever_written`.
    pub fn split_huge(&mut self, vpage: VirtPage) -> SimResult<HugeEntry> {
        if !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        self.invalidate_walk_cache();
        let slot = self
            .l2_slot_mut(vpage.0, false)
            .ok_or(SimError::NotMapped(vpage))?;
        let L2Slot::Huge(h) = slot else {
            return Err(SimError::WrongPageSize {
                vpage,
                expected: PageSize::Huge,
            });
        };
        let h = h.clone();
        let mut t = Box::new(L1Table::new());
        for i in 0..NR_SUBPAGES as usize {
            t.entries[i] = Some(Pte {
                frame: h.frame.add(i as u64),
                accessed: h.accessed,
                dirty: h.dirty && h.subpage_written(i),
                ever_written: h.subpage_written(i),
                hint: h.hint,
            });
        }
        t.mapped = NR_SUBPAGES as u16;
        *slot = L2Slot::Table(t);
        self.mapped_huge -= 1;
        self.mapped_base += NR_SUBPAGES;
        Ok(h)
    }

    /// Collapses 512 base mappings into one huge mapping over `new_frame`.
    /// All 512 subpages must currently be base-mapped. Returns the old PTEs
    /// (whose frames the caller must free after copying).
    pub fn collapse_huge(&mut self, vpage: VirtPage, new_frame: Frame) -> SimResult<Vec<Pte>> {
        if !vpage.is_huge_aligned() {
            return Err(SimError::Unaligned(vpage));
        }
        self.invalidate_walk_cache();
        let slot = self
            .l2_slot_mut(vpage.0, false)
            .ok_or(SimError::NotMapped(vpage))?;
        let L2Slot::Table(t) = slot else {
            return Err(SimError::WrongPageSize {
                vpage,
                expected: PageSize::Base,
            });
        };
        if t.mapped as u64 != NR_SUBPAGES {
            return Err(SimError::NotMapped(vpage));
        }
        // Collect without unwrap: a hole reports the exact unmapped subpage
        // instead of panicking, even if the `mapped` counter were ever
        // inconsistent with the entries.
        let mut ptes: Vec<Pte> = Vec::with_capacity(FANOUT);
        for (i, e) in t.entries.iter().enumerate() {
            match e {
                Some(p) => ptes.push(*p),
                None => return Err(SimError::NotMapped(vpage.add(i as u64))),
            }
        }
        let mut h = HugeEntry::new(new_frame);
        for (i, p) in ptes.iter().enumerate() {
            h.accessed |= p.accessed;
            h.dirty |= p.dirty;
            if p.ever_written {
                h.mark_subpage_written(i);
            }
        }
        *slot = L2Slot::Huge(h);
        self.mapped_huge += 1;
        self.mapped_base -= NR_SUBPAGES;
        Ok(ptes)
    }

    /// Visits every mapped entry (PT-scan substrate, cooling walks).
    ///
    /// Huge entries are visited once with the 2 MiB-aligned page number.
    pub fn for_each_entry(&mut self, mut f: impl FnMut(VirtPage, EntryMut<'_>)) {
        for (i4, l3) in self.root.entries.iter_mut().enumerate() {
            let Some(l3) = l3 else { continue };
            for (i3, l2) in l3.entries.iter_mut().enumerate() {
                let Some(l2) = l2 else { continue };
                for (i2, slot) in l2.slots.iter_mut().enumerate() {
                    let base = ((i4 as u64) << 27) | ((i3 as u64) << 18) | ((i2 as u64) << 9);
                    match slot {
                        L2Slot::Empty => {}
                        L2Slot::Huge(h) => f(VirtPage(base), EntryMut::Huge(h)),
                        L2Slot::Table(t) => {
                            if t.mapped == 0 {
                                continue;
                            }
                            for (i1, e) in t.entries.iter_mut().enumerate() {
                                if let Some(p) = e {
                                    f(VirtPage(base | i1 as u64), EntryMut::Base(p));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_map_translate_unmap() {
        let mut pt = PageTable::new();
        let p = VirtPage(0x1234);
        assert!(pt.translate(p).is_none());
        pt.map_base(p, Frame(99)).unwrap();
        let t = pt.translate(p).unwrap();
        assert_eq!(t.frame, Frame(99));
        assert_eq!(t.size, PageSize::Base);
        assert_eq!(pt.rss_bytes(), 4096);
        assert_eq!(pt.map_base(p, Frame(1)), Err(SimError::AlreadyMapped(p)));
        let old = pt.unmap_base(p).unwrap();
        assert_eq!(old.frame, Frame(99));
        assert!(pt.translate(p).is_none());
        assert_eq!(pt.rss_bytes(), 0);
    }

    #[test]
    fn huge_map_translates_subpages() {
        let mut pt = PageTable::new();
        let hp = VirtPage(512 * 7);
        pt.map_huge(hp, Frame(1024)).unwrap();
        for i in [0u64, 1, 100, 511] {
            let t = pt.translate(hp.add(i)).unwrap();
            assert_eq!(t.frame, Frame(1024 + i));
            assert_eq!(t.size, PageSize::Huge);
        }
        assert_eq!(pt.rss_bytes(), 2 * 1024 * 1024);
        assert_eq!(pt.mapped_huge_pages(), 1);
    }

    #[test]
    fn huge_map_requires_alignment_and_emptiness() {
        let mut pt = PageTable::new();
        assert_eq!(
            pt.map_huge(VirtPage(3), Frame(0)),
            Err(SimError::Unaligned(VirtPage(3)))
        );
        pt.map_base(VirtPage(512), Frame(5)).unwrap();
        assert_eq!(
            pt.map_huge(VirtPage(512), Frame(0)),
            Err(SimError::AlreadyMapped(VirtPage(512)))
        );
        // An L1 table emptied by unmaps can be replaced by a huge mapping.
        pt.unmap_base(VirtPage(512)).unwrap();
        pt.map_huge(VirtPage(512), Frame(0)).unwrap();
    }

    #[test]
    fn split_preserves_translation_and_written_bits() {
        let mut pt = PageTable::new();
        let hp = VirtPage(0);
        pt.map_huge(hp, Frame(2048)).unwrap();
        if let Some(EntryMut::Huge(h)) = pt.entry_mut(hp) {
            h.accessed = true;
            h.mark_subpage_written(3);
            h.mark_subpage_written(511);
        } else {
            panic!("expected huge entry");
        }
        let old = pt.split_huge(hp).unwrap();
        assert_eq!(old.frame, Frame(2048));
        assert_eq!(old.written_subpages(), 2);
        // Same frames, now base-mapped.
        for i in 0..512u64 {
            let t = pt.translate(hp.add(i)).unwrap();
            assert_eq!(t.frame, Frame(2048 + i));
            assert_eq!(t.size, PageSize::Base);
        }
        // `ever_written` propagated exactly to the written subpages.
        let check = |pt: &mut PageTable, i: u64| match pt.entry_mut(hp.add(i)) {
            Some(EntryMut::Base(p)) => p.ever_written,
            _ => panic!("expected base entry"),
        };
        assert!(check(&mut pt, 3));
        assert!(check(&mut pt, 511));
        assert!(!check(&mut pt, 0));
        assert_eq!(pt.mapped_base_pages(), 512);
        assert_eq!(pt.mapped_huge_pages(), 0);
    }

    #[test]
    fn collapse_restores_huge_mapping() {
        let mut pt = PageTable::new();
        let hp = VirtPage(1024);
        for i in 0..512u64 {
            pt.map_base(hp.add(i), Frame(9000 + i)).unwrap();
        }
        if let Some(EntryMut::Base(p)) = pt.entry_mut(hp.add(10)) {
            p.ever_written = true;
        }
        let old = pt.collapse_huge(hp, Frame(4096)).unwrap();
        assert_eq!(old.len(), 512);
        assert_eq!(old[0].frame, Frame(9000));
        let t = pt.translate(hp.add(10)).unwrap();
        assert_eq!(t.frame, Frame(4096 + 10));
        assert_eq!(t.size, PageSize::Huge);
        assert!(pt.huge_entry(hp).unwrap().subpage_written(10));
        assert!(!pt.huge_entry(hp).unwrap().subpage_written(11));
    }

    #[test]
    fn collapse_requires_all_subpages() {
        let mut pt = PageTable::new();
        for i in 0..511u64 {
            pt.map_base(VirtPage(i), Frame(i)).unwrap();
        }
        assert!(pt.collapse_huge(VirtPage(0), Frame(0)).is_err());
    }

    #[test]
    fn for_each_entry_visits_all() {
        let mut pt = PageTable::new();
        pt.map_base(VirtPage(1), Frame(1)).unwrap();
        pt.map_base(VirtPage(0x40000000 / 4096), Frame(2)).unwrap();
        pt.map_huge(VirtPage(512 * 9), Frame(512)).unwrap();
        let mut seen = Vec::new();
        pt.for_each_entry(|v, e| {
            let huge = matches!(e, EntryMut::Huge(_));
            seen.push((v, huge));
        });
        seen.sort();
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&(VirtPage(512 * 9), true)));
        assert!(seen.contains(&(VirtPage(1), false)));
    }

    #[test]
    fn walk_mut_matches_translate() {
        let mut pt = PageTable::new();
        pt.map_base(VirtPage(7), Frame(70)).unwrap();
        pt.map_huge(VirtPage(1024), Frame(2048)).unwrap();
        for vp in [VirtPage(7), VirtPage(1024 + 33)] {
            let tr = pt.translate(vp).unwrap();
            let frame = match pt.walk_mut(vp).unwrap() {
                EntryMut::Base(p) => p.frame,
                EntryMut::Huge(h) => h.frame.add(vp.subpage_index() as u64),
            };
            assert_eq!(frame, tr.frame);
        }
        assert!(pt.walk_mut(VirtPage(999)).is_none());
    }

    #[test]
    fn walk_cache_hits_within_region_and_survives_entry_edits() {
        let mut pt = PageTable::new();
        pt.map_huge(VirtPage(0), Frame(0)).unwrap();
        // Populate the cache, then mutate through it repeatedly.
        for i in 0..32u64 {
            match pt.walk_mut(VirtPage(i)).unwrap() {
                EntryMut::Huge(h) => h.mark_subpage_written(i as usize),
                _ => panic!("expected huge entry"),
            }
        }
        assert_eq!(pt.huge_entry(VirtPage(0)).unwrap().written_subpages(), 32);
    }

    #[test]
    fn walk_cache_invalidated_by_structural_ops() {
        let mut pt = PageTable::new();
        pt.map_huge(VirtPage(0), Frame(0)).unwrap();
        // Warm the cache on region 0.
        assert!(pt.walk_mut(VirtPage(1)).is_some());
        // Split replaces the cached slot's variant in place.
        pt.split_huge(VirtPage(0)).unwrap();
        match pt.walk_mut(VirtPage(1)).unwrap() {
            EntryMut::Base(p) => assert_eq!(p.frame, Frame(1)),
            EntryMut::Huge(_) => panic!("stale cache returned huge entry"),
        }
        // Unmap must be observed too.
        pt.unmap_base(VirtPage(1)).unwrap();
        assert!(pt.walk_mut(VirtPage(1)).is_none());
        // Remap after collapse-like churn: map into a fresh region, then
        // back to region 0, alternating — the cache must follow.
        pt.map_base(VirtPage(512 * 5), Frame(4096)).unwrap();
        match pt.walk_mut(VirtPage(512 * 5)).unwrap() {
            EntryMut::Base(p) => assert_eq!(p.frame, Frame(4096)),
            EntryMut::Huge(_) => panic!("wrong entry"),
        }
        match pt.walk_mut(VirtPage(2)).unwrap() {
            EntryMut::Base(p) => assert_eq!(p.frame, Frame(2)),
            EntryMut::Huge(_) => panic!("wrong entry"),
        }
    }

    #[test]
    fn collapse_partial_region_errors_instead_of_panicking() {
        // Regression: collapse_huge used to `unwrap()` every subpage entry.
        let mut pt = PageTable::new();
        for i in 0..512u64 {
            if i != 100 {
                pt.map_base(VirtPage(i), Frame(i)).unwrap();
            }
        }
        assert_eq!(
            pt.collapse_huge(VirtPage(0), Frame(4096)),
            Err(SimError::NotMapped(VirtPage(0)))
        );
        // The table stays intact and usable: filling the hole lets the
        // collapse succeed.
        pt.map_base(VirtPage(100), Frame(100)).unwrap();
        let old = pt.collapse_huge(VirtPage(0), Frame(4096)).unwrap();
        assert_eq!(old.len(), 512);
        assert_eq!(pt.mapped_huge_pages(), 1);
    }

    #[test]
    fn unmap_wrong_size_reports_error() {
        let mut pt = PageTable::new();
        pt.map_huge(VirtPage(0), Frame(0)).unwrap();
        assert!(matches!(
            pt.unmap_base(VirtPage(0)),
            Err(SimError::WrongPageSize { .. })
        ));
        assert!(pt.unmap_huge(VirtPage(0)).is_ok());
    }
}
