//! The tiering-policy interface and the cost-attributing operations handle.
//!
//! A [`TieringPolicy`] observes allocations, sampled accesses, hint faults,
//! and periodic ticks, and reacts through a [`PolicyOps`] handle. Every
//! mutating machine operation performed through the handle is *charged*:
//! its nanosecond cost accumulates into either the application critical path
//! (fault-context hooks) or the background-daemon budget (tick/sample
//! context). This is how the simulator distinguishes systems that migrate in
//! the page-fault handler (AutoNUMA, TPP, ...) from MEMTIS, whose entire
//! pipeline runs in the background (§4.2.3).

use crate::access::{Access, AccessOutcome, AccessRecord, RecordFilter};
use crate::addr::{PageSize, TierId, VirtPage};
use crate::engine::{AbortCause, MigrationHandle, TransferEnd, TransferId};
use crate::error::{SimError, SimResult};
use crate::machine::{Machine, MigrateOutcome, SplitOutcome};
use crate::page_table::EntryMut;
use memtis_obs::profile::{SpanGuard, SpanId};
use memtis_obs::{Event, EventKind, MigrationFailure, Observer, ShootdownCause};

/// Cost of visiting one page-table entry during a scan (ns).
pub const SCAN_ENTRY_NS: f64 = 5.0;

/// Where an operation's cost is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSink {
    /// Application critical path (fault handlers, allocation path).
    App,
    /// Background daemon CPU (sampling threads, migration threads).
    Daemon,
}

/// Static description of a policy for the paper's Table 1 taxonomy.
#[derive(Debug, Clone)]
pub struct PolicyDescriptor {
    /// System name as used in the paper.
    pub name: &'static str,
    /// Access-tracking mechanism.
    pub mechanism: &'static str,
    /// Whether subpage (4 KiB within 2 MiB) accesses are tracked.
    pub subpage_tracking: bool,
    /// Promotion hotness metric.
    pub promotion_metric: &'static str,
    /// Demotion metric.
    pub demotion_metric: &'static str,
    /// How hotness thresholds are chosen.
    pub thresholding: &'static str,
    /// Which migrations run on the critical path ("None" if all background).
    pub critical_path_migration: &'static str,
    /// How page size is handled.
    pub page_size_handling: &'static str,
}

/// Accounting accumulators shared between the driver and [`PolicyOps`].
#[derive(Debug, Default, Clone)]
pub struct CostAccounting {
    /// Nanoseconds charged to the application critical path by policy work.
    pub app_extra_ns: f64,
    /// Nanoseconds of background-daemon CPU consumed.
    pub daemon_ns: f64,
}

/// Handle through which a policy inspects and mutates the machine.
pub struct PolicyOps<'a> {
    machine: &'a mut Machine,
    acct: &'a mut CostAccounting,
    sink: CostSink,
    now_ns: f64,
    obs: Option<&'a mut dyn Observer>,
}

impl<'a> PolicyOps<'a> {
    /// Creates a handle with no observer attached; used by the driver (and
    /// tests).
    pub fn new(
        machine: &'a mut Machine,
        acct: &'a mut CostAccounting,
        sink: CostSink,
        now_ns: f64,
    ) -> Self {
        PolicyOps {
            machine,
            acct,
            sink,
            now_ns,
            obs: None,
        }
    }

    /// Creates a handle that routes trace events to `obs`.
    pub fn with_observer(
        machine: &'a mut Machine,
        acct: &'a mut CostAccounting,
        sink: CostSink,
        now_ns: f64,
        obs: Option<&'a mut dyn Observer>,
    ) -> Self {
        PolicyOps {
            machine,
            acct,
            sink,
            now_ns,
            obs,
        }
    }

    /// Whether an enabled observer is attached. Emission sites check this
    /// before building an event, so untraced runs skip the construction.
    #[inline]
    pub fn tracing(&self) -> bool {
        match &self.obs {
            Some(o) => o.enabled(),
            None => false,
        }
    }

    /// Records a trace event at the current simulated time. No-op without
    /// an enabled observer.
    #[inline]
    pub fn emit(&mut self, kind: EventKind) {
        if let Some(o) = self.obs.as_deref_mut() {
            if o.enabled() {
                o.record(Event::new(self.now_ns, kind));
            }
        }
    }

    /// Opens a self-profiling span attributed to `id`, if the attached
    /// observer carries a profiler. `None` (no work at all) otherwise —
    /// in particular always `None` on untraced runs.
    #[inline]
    pub fn span(&self, id: SpanId) -> Option<SpanGuard> {
        self.obs
            .as_deref()
            .and_then(|o| o.profiler())
            .map(|p| p.enter(id))
    }

    /// Current simulated wall-clock time (ns).
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Rewinds/advances the handle's notion of "now" (ns). The batched
    /// driver builds one handle per chunk and replays each deferred access
    /// at its recorded delivery time, so charges and trace events carry the
    /// same timestamps the per-event loop would have produced.
    #[inline]
    pub fn set_now(&mut self, now_ns: f64) {
        self.now_ns = now_ns;
    }

    /// Which sink costs are currently charged to.
    pub fn sink(&self) -> CostSink {
        self.sink
    }

    /// Read-only view of the machine.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Charges `ns` of CPU time to the current sink.
    pub fn charge(&mut self, ns: f64) {
        match self.sink {
            CostSink::App => self.acct.app_extra_ns += ns,
            CostSink::Daemon => self.acct.daemon_ns += ns,
        }
    }

    /// Requests a migration at default (lowest) priority.
    ///
    /// This is the sync-completion shim most policies use: with the engine
    /// disabled (no bandwidth limit) the returned handle is always
    /// [`MigrationHandle::Done`] and behavior is identical to the old
    /// synchronous `migrate`; under bandwidth arbitration the move becomes
    /// an in-flight transfer whose completion or abort is reported through
    /// [`TieringPolicy::on_transfer_end`].
    pub fn migrate(&mut self, vpage: VirtPage, dst: TierId) -> SimResult<MigrationHandle> {
        self.enqueue_migration(vpage, dst, 0)
    }

    /// Requests a migration with an explicit arbitration priority (higher
    /// wins the link first; ties resolve in admission order).
    ///
    /// Synchronous completion charges the copy cost to the current sink and
    /// traces the legacy `Promotion`/`Demotion` + `TlbShootdown` pair.
    /// Asynchronous admission charges nothing here — the copy occupies link
    /// bandwidth, not daemon CPU — and traces `MigrationEnqueued`; failure
    /// traces `MigrationFailed` with the mapped cause.
    pub fn enqueue_migration(
        &mut self,
        vpage: VirtPage,
        dst: TierId,
        priority: u8,
    ) -> SimResult<MigrationHandle> {
        match self
            .machine
            .enqueue_migration(vpage, dst, priority, self.now_ns)
        {
            Ok(MigrationHandle::Done(out)) => {
                self.charge(out.cost_ns);
                if self.tracing() {
                    let kind = if out.to.0 < out.from.0 {
                        EventKind::Promotion {
                            vpage: vpage.0,
                            from: out.from.0,
                            to: out.to.0,
                            bytes: out.bytes,
                        }
                    } else {
                        EventKind::Demotion {
                            vpage: vpage.0,
                            from: out.from.0,
                            to: out.to.0,
                            bytes: out.bytes,
                        }
                    };
                    self.emit(kind);
                    self.emit(EventKind::TlbShootdown {
                        vpage: vpage.0,
                        cause: ShootdownCause::Migration,
                    });
                }
                Ok(MigrationHandle::Done(out))
            }
            Ok(
                h @ MigrationHandle::InFlight {
                    from, to, bytes, ..
                },
            ) => {
                if self.tracing() {
                    let queue_depth = self.machine.transfer_queue_len() as u64;
                    self.emit(EventKind::MigrationEnqueued {
                        vpage: vpage.0,
                        from: from.0,
                        to: to.0,
                        bytes,
                        queue_depth,
                    });
                }
                Ok(h)
            }
            Err(e) => {
                if self.tracing() {
                    self.emit(EventKind::MigrationFailed {
                        vpage: vpage.0,
                        to: dst.0,
                        cause: failure_cause(&e),
                    });
                }
                Err(e)
            }
        }
    }

    /// Aborts a queued or copying transfer (e.g. the page is no longer
    /// worth moving). Returns the terminal record, or `None` if the id is
    /// unknown — it already completed or aborted.
    pub fn abort_transfer(&mut self, id: TransferId) -> Option<TransferEnd> {
        let end = self.machine.abort_transfer(id, self.now_ns)?;
        if self.tracing() {
            self.emit(EventKind::MigrationAborted {
                vpage: end.vpage.0,
                to: end.to.0,
                bytes: end.bytes,
                wasted_bytes: end.wasted_bytes,
                cause: abort_failure(end.aborted.unwrap_or(AbortCause::Cancelled)),
            });
        }
        Some(end)
    }

    /// The transfer covering base page `vpage`, if any.
    pub fn transfer_for(&self, vpage: VirtPage) -> Option<TransferId> {
        self.machine.transfer_for(vpage)
    }

    /// Transfers currently queued behind the engine's links.
    pub fn transfer_queue_len(&self) -> usize {
        self.machine.transfer_queue_len()
    }

    /// Splits a huge page; the cost is charged to the current sink.
    pub fn split_huge(
        &mut self,
        vpage: VirtPage,
        free_zero_subpages: bool,
    ) -> SimResult<SplitOutcome> {
        let out = self.machine.split_huge(vpage, free_zero_subpages)?;
        self.charge(out.cost_ns);
        if self.tracing() {
            let tier = self.machine.locate(vpage).map(|(t, _)| t.0).unwrap_or(0);
            self.emit(EventKind::Split {
                vpage: vpage.0,
                tier,
                zero_subpages_freed: out.zero_subpages_freed,
            });
            self.emit(EventKind::TlbShootdown {
                vpage: vpage.0,
                cause: ShootdownCause::Split,
            });
        }
        Ok(out)
    }

    /// Collapses 512 base pages into a huge page on `tier`; cost charged.
    pub fn collapse_huge(&mut self, vpage: VirtPage, tier: TierId) -> SimResult<MigrateOutcome> {
        match self.machine.collapse_huge(vpage, tier) {
            Ok(out) => {
                self.charge(out.cost_ns);
                if self.tracing() {
                    self.emit(EventKind::Collapse {
                        vpage: vpage.0,
                        tier: out.to.0,
                    });
                    self.emit(EventKind::TlbShootdown {
                        vpage: vpage.0,
                        cause: ShootdownCause::Collapse,
                    });
                }
                Ok(out)
            }
            Err(e) => {
                if self.tracing() {
                    self.emit(EventKind::MigrationFailed {
                        vpage: vpage.0,
                        to: tier.0,
                        cause: failure_cause(&e),
                    });
                }
                Err(e)
            }
        }
    }

    /// Records that a queued migration candidate was dropped at
    /// re-validation (the page was freed, reclassified, or already moved
    /// since it was enqueued). Counts into
    /// [`crate::stats::MigrationStats::cancelled`] unconditionally — traced
    /// and untraced runs keep identical stats — and traces a
    /// `MigrationFailed { cause: Cancelled }` event.
    pub fn cancel_migration(&mut self, vpage: VirtPage, dst: TierId) {
        self.machine.stats.migration.cancelled += 1;
        if self.tracing() {
            self.emit(EventKind::MigrationFailed {
                vpage: vpage.0,
                to: dst.0,
                cause: MigrationFailure::Cancelled,
            });
        }
    }

    /// Arms a NUMA-hint fault on the mapping covering `vpage`.
    pub fn set_hint(&mut self, vpage: VirtPage) -> bool {
        self.machine.set_hint(vpage)
    }

    /// Scans all mapped page-table entries, charging [`SCAN_ENTRY_NS`] per
    /// visited entry — the cost that makes PT scanning unscalable for large
    /// memory (Insight #1).
    pub fn scan_entries(&mut self, mut f: impl FnMut(VirtPage, EntryMut<'_>)) {
        let mut n = 0u64;
        self.machine.scan_entries(|v, e| {
            n += 1;
            f(v, e)
        });
        self.charge(n as f64 * SCAN_ENTRY_NS);
    }

    /// Convenience: tier and mapping size of `vpage`.
    pub fn locate(&self, vpage: VirtPage) -> Option<(TierId, PageSize)> {
        self.machine.locate(vpage)
    }

    /// Free bytes on `tier`.
    pub fn free_bytes(&self, tier: TierId) -> u64 {
        self.machine.free_bytes(tier)
    }

    /// Capacity of `tier` in bytes.
    pub fn capacity_bytes(&self, tier: TierId) -> u64 {
        self.machine.capacity_bytes(tier)
    }
}

/// Maps a machine error to the traced migration-failure cause.
fn failure_cause(e: &SimError) -> MigrationFailure {
    match e {
        SimError::OutOfMemory { .. } | SimError::GlobalOutOfMemory => MigrationFailure::OutOfMemory,
        SimError::NotMapped(_) | SimError::WrongPageSize { .. } => MigrationFailure::NotMapped,
        SimError::Unaligned(_) => MigrationFailure::Unaligned,
        SimError::SameTier(_) => MigrationFailure::SameTier,
        _ => MigrationFailure::Other,
    }
}

/// Maps an engine abort cause to the traced migration-failure cause.
pub fn abort_failure(cause: AbortCause) -> MigrationFailure {
    match cause {
        AbortCause::Cancelled => MigrationFailure::Cancelled,
        AbortCause::Dirty => MigrationFailure::Dirty,
        AbortCause::Superseded => MigrationFailure::Superseded,
    }
}

/// A tiered-memory management policy.
///
/// All hooks receive a [`PolicyOps`] whose cost sink is pre-set by the
/// driver: `App` for `alloc_tier`/`on_hint_fault`/`on_demand_fault`, `Daemon`
/// for `on_access`/`tick`.
pub trait TieringPolicy {
    /// Taxonomy entry (paper Table 1).
    fn descriptor(&self) -> PolicyDescriptor;

    /// Called once before the run starts.
    fn init(&mut self, _ops: &mut PolicyOps<'_>) {}

    /// Chooses the tier for a new allocation. The driver falls back to other
    /// tiers if the preferred one is full.
    ///
    /// The default prefers the fast tier while it has room — the paper notes
    /// "MEMTIS allocates pages on the fast tier whenever available" and most
    /// compared systems behave likewise.
    fn alloc_tier(&mut self, ops: &mut PolicyOps<'_>, _vpage: VirtPage, size: PageSize) -> TierId {
        if ops.free_bytes(TierId::FAST) >= size.bytes() {
            TierId::FAST
        } else {
            TierId::CAPACITY
        }
    }

    /// Notification that a page was mapped (new allocation or demand fault).
    fn on_alloc(
        &mut self,
        _ops: &mut PolicyOps<'_>,
        _vpage: VirtPage,
        _size: PageSize,
        _tier: TierId,
    ) {
    }

    /// Notification that a page was unmapped by the workload.
    fn on_free(&mut self, _ops: &mut PolicyOps<'_>, _vpage: VirtPage, _size: PageSize) {}

    /// Observes one executed access (the outcome says whether it missed the
    /// LLC, which tier served it, etc.). Sampling-based policies filter here.
    fn on_access(&mut self, _ops: &mut PolicyOps<'_>, _access: &Access, _outcome: &AccessOutcome) {}

    /// Whether this policy's [`on_access`] may be deferred and replayed in
    /// batches.
    ///
    /// Contract: `on_access` must neither mutate the machine (no migrations,
    /// splits, hint arming — only [`PolicyOps::charge`]/[`PolicyOps::emit`]
    /// and machine *reads*) nor depend on machine state that executing the
    /// *next few accesses* would change (per-access stats, TLB/LLC contents,
    /// reference bits), and must never charge the `App` sink. The batched
    /// driver then executes a run of accesses in the machine first and
    /// delivers the deferred records afterwards via [`on_access_batch`],
    /// which is observationally identical under this contract. Policies that
    /// react to individual accesses in place (HeMem, TMTS) keep the default
    /// `false` and run per-event.
    ///
    /// [`on_access`]: TieringPolicy::on_access
    /// [`on_access_batch`]: TieringPolicy::on_access_batch
    fn batch_safe(&self) -> bool {
        false
    }

    /// Which access classes the deferring driver must record for
    /// [`on_access_batch`]. Only consulted when [`batch_safe`] is true, and
    /// must stay constant for the lifetime of a run. A policy that narrows
    /// this below [`RecordFilter::ALL`] must override `on_access_batch`
    /// consistently — the waived accesses still execute (machine state and
    /// clocks advance normally) but never appear in a batch, so the default
    /// record-by-record replay would silently diverge from per-event
    /// delivery if `on_access` reacted to them.
    ///
    /// [`batch_safe`]: TieringPolicy::batch_safe
    /// [`on_access_batch`]: TieringPolicy::on_access_batch
    fn batch_record_filter(&self) -> RecordFilter {
        RecordFilter::ALL
    }

    /// Delivers a run of deferred access records (daemon context).
    ///
    /// Only called when [`batch_safe`] returns true. The default replays
    /// each record through [`on_access`] at its recorded wall-clock time;
    /// sampling policies override this to skip whole unsampled runs in O(1).
    ///
    /// [`batch_safe`]: TieringPolicy::batch_safe
    /// [`on_access`]: TieringPolicy::on_access
    fn on_access_batch(&mut self, ops: &mut PolicyOps<'_>, batch: &[AccessRecord]) {
        for rec in batch {
            ops.set_now(rec.now_ns);
            self.on_access(ops, &rec.access, &rec.outcome);
        }
    }

    /// A NUMA-hint fault fired on `vpage` (the fault trap cost was already
    /// charged to the application by the machine).
    fn on_hint_fault(&mut self, _ops: &mut PolicyOps<'_>, _vpage: VirtPage) {}

    /// Periodic background tick (daemon context).
    fn tick(&mut self, _ops: &mut PolicyOps<'_>) {}

    /// An in-flight transfer this policy enqueued reached a terminal state:
    /// completed (`end.aborted == None`) or aborted. Called by the driver in
    /// daemon context as it pumps the migration engine. Policies tracking
    /// in-flight work (e.g. to clear an "in promotion queue" bit) clean up
    /// here; the default ignores it.
    fn on_transfer_end(&mut self, _ops: &mut PolicyOps<'_>, _end: &TransferEnd) {}

    /// Cores consumed by always-on dedicated daemon threads (e.g. HeMem's
    /// busy sampling thread), on top of work charged through [`PolicyOps`].
    fn dedicated_daemon_cores(&self) -> f64 {
        0.0
    }

    /// Policy-specific timeline metrics, sampled by the driver each snapshot
    /// (e.g. MEMTIS hot/warm/cold set sizes for Fig. 9).
    fn timeline(&self, _out: &mut Vec<(&'static str, f64)>) {}

    /// Classification-histogram bin occupancy (4 KiB pages per bin),
    /// captured into each telemetry window. Policies without an access
    /// histogram — everything except MEMTIS — leave `out` empty; this
    /// default is the shared observability surface all baselines inherit.
    fn histogram_bins(&self, _out: &mut Vec<u64>) {}

    /// Total histogram underflows (a `remove()` that found fewer pages in a
    /// bin than the policy's own metadata claimed — a desync bug, not an
    /// operational condition). Must stay zero on healthy runs; the driver
    /// surfaces it in [`crate::driver::RunReport`].
    fn hist_underflows(&self) -> u64 {
        0
    }
}

impl TieringPolicy for Box<dyn TieringPolicy> {
    fn descriptor(&self) -> PolicyDescriptor {
        (**self).descriptor()
    }
    fn init(&mut self, ops: &mut PolicyOps<'_>) {
        (**self).init(ops)
    }
    fn alloc_tier(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage, size: PageSize) -> TierId {
        (**self).alloc_tier(ops, vpage, size)
    }
    fn on_alloc(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage, size: PageSize, tier: TierId) {
        (**self).on_alloc(ops, vpage, size, tier)
    }
    fn on_free(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage, size: PageSize) {
        (**self).on_free(ops, vpage, size)
    }
    fn on_access(&mut self, ops: &mut PolicyOps<'_>, access: &Access, outcome: &AccessOutcome) {
        (**self).on_access(ops, access, outcome)
    }
    fn batch_safe(&self) -> bool {
        (**self).batch_safe()
    }
    fn batch_record_filter(&self) -> RecordFilter {
        (**self).batch_record_filter()
    }
    fn on_access_batch(&mut self, ops: &mut PolicyOps<'_>, batch: &[AccessRecord]) {
        (**self).on_access_batch(ops, batch)
    }
    fn on_hint_fault(&mut self, ops: &mut PolicyOps<'_>, vpage: VirtPage) {
        (**self).on_hint_fault(ops, vpage)
    }
    fn tick(&mut self, ops: &mut PolicyOps<'_>) {
        (**self).tick(ops)
    }
    fn on_transfer_end(&mut self, ops: &mut PolicyOps<'_>, end: &TransferEnd) {
        (**self).on_transfer_end(ops, end)
    }
    fn dedicated_daemon_cores(&self) -> f64 {
        (**self).dedicated_daemon_cores()
    }
    fn timeline(&self, out: &mut Vec<(&'static str, f64)>) {
        (**self).timeline(out)
    }
    fn histogram_bins(&self, out: &mut Vec<u64>) {
        (**self).histogram_bins(out)
    }
    fn hist_underflows(&self) -> u64 {
        (**self).hist_underflows()
    }
}

/// A no-op policy: pages stay wherever allocation placed them.
///
/// With a fast-tier-first default this is "first touch"; it is also the
/// building block for the all-DRAM / all-NVM static baselines.
#[derive(Debug, Default)]
pub struct NoopPolicy;

impl TieringPolicy for NoopPolicy {
    fn descriptor(&self) -> PolicyDescriptor {
        PolicyDescriptor {
            name: "FirstTouch",
            mechanism: "None",
            subpage_tracking: false,
            promotion_metric: "-",
            demotion_metric: "-",
            thresholding: "-",
            critical_path_migration: "None",
            page_size_handling: "None",
        }
    }

    fn batch_safe(&self) -> bool {
        true
    }

    /// `on_access` is a no-op, so no record is ever consumed.
    fn batch_record_filter(&self) -> RecordFilter {
        RecordFilter::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HUGE_PAGE_SIZE;
    use crate::config::MachineConfig;

    #[test]
    fn costs_route_to_the_selected_sink() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        let mut acct = CostAccounting::default();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            ops.charge(10.0);
        }
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            ops.charge(7.0);
        }
        assert_eq!(acct.app_extra_ns, 10.0);
        assert_eq!(acct.daemon_ns, 7.0);
    }

    #[test]
    fn migrate_through_ops_charges_cost() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        let mut acct = CostAccounting::default();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
        let out = ops.migrate(VirtPage(0), TierId::FAST).unwrap();
        let done = out.outcome().expect("unlimited mode completes in place");
        assert!(acct.daemon_ns >= done.cost_ns);
        assert_eq!(acct.app_extra_ns, 0.0);
    }

    #[test]
    fn bandwidth_limited_enqueue_is_uncharged_and_traced() {
        use memtis_obs::TracingObserver;
        let mut cfg = MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE);
        cfg.migration.bandwidth_limit = Some(1.0);
        let mut m = Machine::new(cfg);
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::CAPACITY)
            .unwrap();
        let mut acct = CostAccounting::default();
        let mut obs = TracingObserver::new();
        let handle = {
            let mut ops =
                PolicyOps::with_observer(&mut m, &mut acct, CostSink::Daemon, 0.0, Some(&mut obs));
            ops.migrate(VirtPage(0), TierId::FAST).unwrap()
        };
        assert!(!handle.is_done());
        // The copy occupies link bandwidth, not daemon CPU.
        assert_eq!(acct.daemon_ns, 0.0);
        assert!(obs
            .ring
            .iter()
            .any(|e| matches!(e.kind, EventKind::MigrationEnqueued { vpage: 0, .. })));
        // Aborting through the ops handle traces the terminal record.
        let id = handle.transfer_id().unwrap();
        let end = {
            let mut ops =
                PolicyOps::with_observer(&mut m, &mut acct, CostSink::Daemon, 0.0, Some(&mut obs));
            ops.abort_transfer(id).unwrap()
        };
        assert_eq!(end.aborted, Some(AbortCause::Cancelled));
        assert!(obs
            .ring
            .iter()
            .any(|e| matches!(e.kind, EventKind::MigrationAborted { vpage: 0, .. })));
    }

    #[test]
    fn scan_charges_per_entry() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        for i in 0..10u64 {
            m.alloc_and_map(VirtPage(i), PageSize::Base, TierId::FAST)
                .unwrap();
        }
        let mut acct = CostAccounting::default();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
        let mut n = 0;
        ops.scan_entries(|_, _| n += 1);
        assert_eq!(n, 10);
        assert_eq!(acct.daemon_ns, 10.0 * SCAN_ENTRY_NS);
    }

    #[test]
    fn failed_and_cancelled_migrations_are_counted() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        let mut acct = CostAccounting::default();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
        // Fast tier is full: the machine rejects and counts the attempt.
        assert!(ops.migrate(VirtPage(512), TierId::FAST).is_err());
        // A stale queue entry the policy drops before calling the machine.
        ops.cancel_migration(VirtPage(513), TierId::FAST);
        assert_eq!(m.stats.migration.failed, 1);
        assert_eq!(m.stats.migration.cancelled, 1);
    }

    #[test]
    fn migration_failures_emit_events_when_traced() {
        use memtis_obs::TracingObserver;
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::CAPACITY)
            .unwrap();
        let mut acct = CostAccounting::default();
        let mut obs = TracingObserver::new();
        {
            let mut ops =
                PolicyOps::with_observer(&mut m, &mut acct, CostSink::Daemon, 0.0, Some(&mut obs));
            assert!(ops.migrate(VirtPage(512), TierId::FAST).is_err());
            ops.cancel_migration(VirtPage(513), TierId::FAST);
        }
        let causes: Vec<MigrationFailure> = obs
            .ring
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MigrationFailed { cause, .. } => Some(cause),
                _ => None,
            })
            .collect();
        assert_eq!(
            causes,
            vec![MigrationFailure::OutOfMemory, MigrationFailure::Cancelled]
        );
    }

    #[test]
    fn default_alloc_tier_prefers_fast_until_full() {
        let mut m = Machine::new(MachineConfig::dram_nvm(HUGE_PAGE_SIZE, 4 * HUGE_PAGE_SIZE));
        let mut acct = CostAccounting::default();
        let mut p = NoopPolicy;
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
            assert_eq!(
                p.alloc_tier(&mut ops, VirtPage(0), PageSize::Huge),
                TierId::FAST
            );
        }
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::App, 0.0);
        assert_eq!(
            p.alloc_tier(&mut ops, VirtPage(512), PageSize::Huge),
            TierId::CAPACITY
        );
    }
}
