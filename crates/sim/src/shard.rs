//! Address-space sharding: intra-run parallelism with deterministic merges.
//!
//! A single simulation is partitioned into [`NUM_LANES`] fixed *lanes* by
//! 2 MiB virtual region (`lane = region_index mod 64`), each lane owning a
//! slice of the TLB and LLC (see [`LaneState`]). `--shards S` groups the
//! lanes into `S` contiguous chunks and runs each chunk on its own worker
//! thread during the *lane phase* of a burst; the coordinator then folds
//! the per-lane results back in original stream order.
//!
//! Determinism across shard counts is by construction: a lane's trajectory
//! is a pure function of (its access subsequence, the page-table snapshot at
//! burst start), independent of which thread runs it — so `--shards 1` and
//! `--shards N` produce byte-identical reports, traces, and window series.
//! The worker phase is read-only with respect to shared state: lanes
//! translate through `&PageTable` (no walk-cache use), read static tier
//! frame ranges, and buffer their page-table reference-bit updates as
//! [`DeferredBits`] which the coordinator ORs in (idempotent, lane order)
//! before any serial work. Everything effectful — policy delivery,
//! migrations, faults, allocation, the migration engine — stays
//! coordinator-owned and runs at burst barriers.

use crate::access::{Access, AccessOutcome};
use crate::addr::{Frame, PageSize, PhysAddr, TierId, VirtPage};
use crate::cache::Llc;
use crate::config::{MachineConfig, TlbSpec};
use crate::machine::Machine;
use crate::page_table::{EntryMut, PageTable};
use crate::tier::TierAllocator;
use crate::tlb::Tlb;

/// Number of address-space lanes. Fixed (not equal to the shard count) so
/// the partition — and with it every lane-local TLB/LLC trajectory — is
/// identical for every `--shards` value; shards are merely thread groupings
/// of lanes.
pub const NUM_LANES: usize = 64;

/// `NR_SUBPAGES / 64`: words in a huge page's subpage-written bitmap.
const SUBPAGE_WORDS: usize = (crate::addr::NR_SUBPAGES as usize) / 64;

/// The lane owning `vpage`: its 2 MiB region index reduced modulo
/// [`NUM_LANES`], then bit-reversed (6 bits). A huge page maps entirely to
/// one lane (region == huge page), so a lane never shares a mapping with
/// another lane. The bit-reversal spreads *contiguous* regions across every
/// contiguous lane grouping — shards take lanes in contiguous chunks, so a
/// small-footprint workload touching regions `0..R` still loads all shards
/// instead of piling into shard 0.
#[inline]
pub fn lane_of(vpage: VirtPage) -> usize {
    (((vpage.0 >> 9) & (NUM_LANES as u64 - 1)).reverse_bits() >> (64 - NUM_LANES.trailing_zeros()))
        as usize
}

/// Per-lane slice of the machine's stateful microarchitectural models. When
/// lanes are enabled the TLB and LLC capacities are divided evenly across
/// the 64 lanes, so total modeled capacity is preserved while each lane's
/// state depends only on its own access subsequence.
#[derive(Debug)]
pub struct LaneState {
    /// This lane's TLB slice.
    pub tlb: Tlb,
    /// This lane's LLC slice.
    pub llc: Llc,
}

/// Builds the 64 lane slices for a machine configuration: per-lane TLB
/// geometry is `entries / 64` (ways preserved, clamped by the TLB array),
/// per-lane LLC capacity is `llc_bytes / 64` (min one line).
pub(crate) fn build_lanes(cfg: &MachineConfig) -> Vec<LaneState> {
    let lane_spec = TlbSpec {
        base_entries: (cfg.tlb.base_entries / NUM_LANES).max(1),
        huge_entries: (cfg.tlb.huge_entries / NUM_LANES).max(1),
        ways: cfg.tlb.ways,
    };
    let lane_llc_bytes = (cfg.llc_bytes / NUM_LANES as u64).max(crate::addr::CACHE_LINE_SIZE);
    (0..NUM_LANES)
        .map(|_| LaneState {
            tlb: Tlb::new(&lane_spec),
            llc: Llc::new(lane_llc_bytes),
        })
        .collect()
}

/// Page-table reference-bit updates a lane buffered during the read-only
/// worker phase. All fields are OR-only (idempotent and commutative), so
/// applying them in fixed lane order at the barrier yields page-table state
/// independent of shard count.
#[derive(Debug, Clone)]
struct DeferredBits {
    /// The mapping's key page: the base page itself, or the huge-aligned
    /// page of a huge mapping.
    key: VirtPage,
    /// Whether any buffered access was a store (dirty / ever-written bits).
    wrote: bool,
    /// For huge mappings: which subpages were stored to.
    sub_written: [u64; SUBPAGE_WORDS],
}

/// One resolved mapping memoized by the lane executor, mirroring the
/// machine's batched-path coalescing memo but lane-local.
#[derive(Debug, Clone, Copy)]
struct LaneMemo {
    /// Base vpage of the mapping (huge-aligned for a huge mapping).
    key: VirtPage,
    /// Frame of `key` (first subpage frame for a huge mapping).
    base_frame: Frame,
    size: PageSize,
    tier: TierId,
    /// Memoized TLB hit way plus the lane-TLB epoch that located it.
    tlb_way: Option<(usize, u64)>,
    /// Index of this mapping's [`DeferredBits`] entry in the lane scratch.
    bits_idx: usize,
}

/// Ways in the lane-local mapping memo. Within a lane, consecutive regions
/// differ by multiples of [`NUM_LANES`] in region index, so the slot divides
/// that stride out first.
const MEMO_WAYS: usize = 4;

#[inline]
fn memo_slot(vpage: VirtPage) -> usize {
    ((vpage.0 as usize >> 9) / NUM_LANES) & (MEMO_WAYS - 1)
}

/// Per-lane, per-burst working storage: the lane's slice of the burst's
/// accesses, the outcomes its executor precomputed, and the page-table bit
/// updates it buffered. Reused across bursts to avoid reallocation.
#[derive(Debug, Default)]
pub struct LaneScratch {
    /// This lane's accesses, in stream order.
    accesses: Vec<Access>,
    /// Precomputed outcomes for a prefix of `accesses`. Shorter than
    /// `accesses` iff the lane stopped (hint-armed or unmapped page); the
    /// remainder spills to the coordinator's serial path during the fold.
    outcomes: Vec<AccessOutcome>,
    /// Buffered page-table bit updates, in memoization order.
    bits: Vec<DeferredBits>,
    memo: [Option<LaneMemo>; MEMO_WAYS],
}

impl LaneScratch {
    /// Queues one access for this lane (Phase A partitioning).
    #[inline]
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Number of precomputed outcomes (the committed prefix).
    #[inline]
    pub fn outcome_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of accesses queued this burst.
    #[inline]
    pub fn access_count(&self) -> usize {
        self.accesses.len()
    }

    /// The `idx`-th precomputed outcome.
    #[inline]
    pub fn outcome(&self, idx: usize) -> AccessOutcome {
        self.outcomes[idx]
    }

    /// Resets the scratch for a new burst.
    pub fn reset(&mut self) {
        self.accesses.clear();
        self.outcomes.clear();
        self.bits.clear();
        self.memo = [None; MEMO_WAYS];
    }
}

/// The tier owning `frame` (free-function form of
/// [`Machine::tier_of_frame`], usable while the machine is partially
/// borrowed and from worker threads).
#[inline]
fn tier_of(tiers: &[TierAllocator], frame: Frame) -> TierId {
    for t in tiers {
        if t.owns(frame) {
            return t.tier();
        }
    }
    panic!("{frame} belongs to no tier");
}

/// Executes one lane's access subsequence against the burst-start
/// page-table snapshot, precomputing outcomes and buffering bit updates.
/// Stops (leaving the rest of the lane to spill) at the first access whose
/// page is unmapped or hint-armed — those need coordinator-side effects.
fn run_lane(
    pt: &PageTable,
    tiers: &[TierAllocator],
    cfg: &MachineConfig,
    lane: &mut LaneState,
    sc: &mut LaneScratch,
) {
    for k in 0..sc.accesses.len() {
        let access = sc.accesses[k];
        let vpage = access.vaddr.base_page();
        let is_store = access.is_store();
        let slot = memo_slot(vpage);

        let (frame, size, tier, bits_idx) = match sc.memo[slot] {
            Some(m)
                if match m.size {
                    PageSize::Base => m.key == vpage,
                    PageSize::Huge => m.key == vpage.huge_aligned(),
                } =>
            {
                let frame = match m.size {
                    PageSize::Base => m.base_frame,
                    PageSize::Huge => m.base_frame.add(vpage.subpage_index() as u64),
                };
                (frame, m.size, m.tier, m.bits_idx)
            }
            _ => {
                let Some(tr) = pt.translate(vpage) else {
                    // Unmapped: the access demand-faults; the coordinator
                    // replays it (and the rest of this lane) serially.
                    return;
                };
                if tr.hint {
                    // Hint-armed: the fault runs policy hooks; spill.
                    return;
                }
                let tier = tier_of(tiers, tr.frame);
                let (key, base_frame) = match tr.size {
                    PageSize::Base => (vpage, tr.frame),
                    PageSize::Huge => (
                        vpage.huge_aligned(),
                        Frame(tr.frame.0 - vpage.subpage_index() as u64),
                    ),
                };
                let bits_idx = sc.bits.len();
                sc.bits.push(DeferredBits {
                    key,
                    wrote: false,
                    sub_written: [0; SUBPAGE_WORDS],
                });
                sc.memo[slot] = Some(LaneMemo {
                    key,
                    base_frame,
                    size: tr.size,
                    tier,
                    tlb_way: None,
                    bits_idx,
                });
                (tr.frame, tr.size, tier, bits_idx)
            }
        };

        if is_store {
            let b = &mut sc.bits[bits_idx];
            b.wrote = true;
            if size == PageSize::Huge {
                let idx = vpage.subpage_index();
                b.sub_written[idx / 64] |= 1 << (idx % 64);
            }
        }

        // Address translation against the lane TLB slice, with the same
        // epoch-checked way replay the machine's coalesced path uses.
        let mut latency = 0.0;
        let memo = sc.memo[slot].as_mut().expect("memo just ensured");
        let tlb_hit = match memo.tlb_way {
            Some((way, epoch)) if epoch == lane.tlb.epoch() => {
                lane.tlb.touch_hit(size, way);
                true
            }
            _ => {
                let way = lane.tlb.lookup_memo(vpage, size);
                memo.tlb_way = way.map(|w| (w, lane.tlb.epoch()));
                way.is_some()
            }
        };
        if !tlb_hit {
            latency += size.walk_levels() as f64 * cfg.costs.walk_level_ns;
            lane.tlb.insert(vpage, size);
        }

        // Cache and memory against the lane LLC slice. No migration-link
        // contention term: the sharded path only engages with the engine
        // disabled (unlimited bandwidth), where it never fires.
        let paddr = PhysAddr(frame.addr().0 + access.vaddr.base_offset());
        let llc_hit = lane.llc.access(paddr);
        if llc_hit {
            latency += cfg.costs.llc_hit_ns;
        } else {
            let spec = cfg.tier(tier);
            latency += if is_store {
                spec.store_ns
            } else {
                spec.load_ns
            };
        }

        sc.outcomes.push(AccessOutcome {
            latency_ns: latency,
            vpage,
            page_size: size,
            tier,
            llc_miss: !llc_hit,
            tlb_miss: !tlb_hit,
            hint_fault: false,
            demand_fault: false,
        });
    }
}

/// Runs the worker phase of one burst: the lanes, grouped into `shards`
/// contiguous chunks, execute concurrently against the frozen page table.
/// Shard 0 runs inline on the coordinator thread; shards 1..S run on scoped
/// worker threads. Host-side timing lives with the coordinator (see
/// `Simulation::shard_metrics`): per-thread clocks on an oversubscribed
/// host would mostly measure scheduler wait, not work.
pub(crate) fn run_burst(machine: &mut Machine, scratch: &mut [LaneScratch], shards: usize) {
    let pt = &machine.pt;
    let tiers = &machine.tiers[..];
    let cfg = &machine.cfg;
    let lanes = machine
        .lanes
        .as_mut()
        .expect("sharded burst requires enabled lanes");
    debug_assert_eq!(lanes.len(), NUM_LANES);
    debug_assert_eq!(scratch.len(), NUM_LANES);

    let run_chunk = |lc: &mut [LaneState], scc: &mut [LaneScratch]| {
        for (lane, sc) in lc.iter_mut().zip(scc.iter_mut()) {
            run_lane(pt, tiers, cfg, lane, sc);
        }
    };

    if shards <= 1 {
        run_chunk(&mut lanes[..], scratch);
        return;
    }

    let per = NUM_LANES.div_ceil(shards);
    std::thread::scope(|s| {
        let run_chunk = &run_chunk;
        let mut lane_chunks = lanes.chunks_mut(per);
        let mut sc_chunks = scratch.chunks_mut(per);
        let first_l = lane_chunks.next();
        let first_s = sc_chunks.next();
        let handles: Vec<_> = lane_chunks
            .zip(sc_chunks)
            .map(|(lc, scc)| s.spawn(move || run_chunk(lc, scc)))
            .collect();
        // The coordinator thread is shard 0.
        if let (Some(lc), Some(scc)) = (first_l, first_s) {
            run_chunk(lc, scc);
        }
        for h in handles {
            h.join().expect("shard worker panicked");
        }
    });
}

/// Applies every lane's buffered page-table bit updates, in lane order then
/// buffer order. Must run after the worker phase and before any serial
/// spill work, so spilled accesses observe the same reference bits the
/// per-event path would have left. OR-only, hence shard-count-invariant.
pub(crate) fn apply_deferred_bits(machine: &mut Machine, scratch: &mut [LaneScratch]) {
    for sc in scratch.iter_mut() {
        for b in sc.bits.drain(..) {
            match machine
                .pt
                .walk_mut(b.key)
                .expect("deferred mapping vanished mid-burst")
            {
                EntryMut::Base(p) => {
                    p.accessed = true;
                    if b.wrote {
                        p.dirty = true;
                        p.ever_written = true;
                    }
                }
                EntryMut::Huge(h) => {
                    h.accessed = true;
                    if b.wrote {
                        h.dirty = true;
                        for (w, mask) in b.sub_written.iter().enumerate() {
                            h.sub_written[w] |= mask;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HUGE_PAGE_SIZE;

    #[test]
    fn lane_assignment_is_per_region_and_stable() {
        // All subpages of one huge page land in one lane.
        let lane = lane_of(VirtPage(512 * 7));
        for i in 0..512u64 {
            assert_eq!(lane_of(VirtPage(512 * 7 + i)), lane);
        }
        // The mapping is a bijection over any 64 consecutive regions, and
        // adjacent regions land in *distant* lanes (bit-reversal), so every
        // contiguous lane grouping sees a share of a contiguous footprint.
        let lanes: std::collections::BTreeSet<usize> =
            (0..64u64).map(|r| lane_of(VirtPage(r * 512))).collect();
        assert_eq!(lanes.len(), NUM_LANES);
        assert_eq!(lane_of(VirtPage(0)), 0);
        assert_eq!(lane_of(VirtPage(512)), 32);
        assert_eq!(lane_of(VirtPage(2 * 512)), 16);
        assert_eq!(lane_of(VirtPage(3 * 512)), 48);
        assert_eq!(lane_of(VirtPage(512 * 64)), 0);
    }

    #[test]
    fn lane_executor_matches_per_shard_grouping() {
        // The same burst through 1 and 4 shard groupings leaves identical
        // lane state and outcomes (lanes are pure; shards are groupings).
        let build = || {
            let mut m = Machine::new(MachineConfig::dram_nvm(
                4 * HUGE_PAGE_SIZE,
                16 * HUGE_PAGE_SIZE,
            ));
            m.enable_lanes();
            for r in 0..4u64 {
                m.alloc_and_map(VirtPage(r * 512), PageSize::Huge, TierId::FAST)
                    .unwrap();
            }
            m
        };
        let accesses: Vec<Access> = (0..2000u64)
            .map(|i| {
                let addr = (i * 37) % (4 * HUGE_PAGE_SIZE);
                if i.is_multiple_of(5) {
                    Access::store(addr)
                } else {
                    Access::load(addr)
                }
            })
            .collect();
        let run = |shards: usize| {
            let mut m = build();
            let mut scratch: Vec<LaneScratch> =
                (0..NUM_LANES).map(|_| LaneScratch::default()).collect();
            for &a in &accesses {
                scratch[lane_of(a.vaddr.base_page())].push(a);
            }
            run_burst(&mut m, &mut scratch, shards);
            apply_deferred_bits(&mut m, &mut scratch);
            let outs: Vec<String> = scratch
                .iter()
                .map(|sc| format!("{:?}", sc.outcomes))
                .collect();
            (
                outs,
                format!("{:?}", m.tlb_stats()),
                format!("{:?}", m.llc_stats()),
            )
        };
        assert_eq!(run(1), run(4));
    }
}
