//! Machine-wide counters.

use crate::addr::TierId;

/// Migration counters for one (direction-less) tier pair.
#[derive(Debug, Default, Clone)]
pub struct MigrationStats {
    /// Pages promoted (moved toward tier 0), counted in 4 KiB units.
    pub promoted_4k: u64,
    /// Pages demoted (moved away from tier 0), counted in 4 KiB units.
    pub demoted_4k: u64,
    /// Total bytes copied by migrations.
    pub migrated_bytes: u64,
    /// Huge pages split.
    pub splits: u64,
    /// Huge pages collapsed.
    pub collapses: u64,
    /// Subpages freed as all-zero during splits.
    pub zero_subpages_freed: u64,
    /// Migration/collapse attempts that failed in the machine (destination
    /// out of memory, stale mapping, misalignment, same-tier target).
    pub failed: u64,
    /// Queued migrations dropped by the policy at re-validation (the page
    /// was freed, reclassified, or already moved since it was enqueued).
    pub cancelled: u64,
    /// In-flight transfers that ended without remapping the page (policy
    /// abort, dirty re-copy budget exhausted, or mapping superseded).
    pub aborted: u64,
    /// Copy work discarded by aborts, in bytes (whole passes; an
    /// interrupted pass counts as a full pass).
    pub aborted_bytes: u64,
    /// Copy passes restarted because a store dirtied the source mid-copy.
    pub recopies: u64,
    /// Peak number of simultaneously queued + copying transfers.
    pub in_flight_peak: u64,
}

impl MigrationStats {
    /// Total migration traffic in 4 KiB page units (promotions + demotions).
    pub fn traffic_4k(&self) -> u64 {
        self.promoted_4k + self.demoted_4k
    }
}

/// Counters accumulated by the machine while executing accesses.
#[derive(Debug, Default, Clone)]
pub struct MachineStats {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// LLC-missing accesses served per tier (index = tier id).
    pub tier_hits: Vec<u64>,
    /// Demand-paging faults taken.
    pub demand_faults: u64,
    /// NUMA-hint faults taken.
    pub hint_faults: u64,
    /// TLB shootdowns performed (remap, migration, split, collapse).
    pub shootdowns: u64,
    /// Migration counters.
    pub migration: MigrationStats,
}

impl MachineStats {
    /// Records an LLC-missing access served by `tier`.
    pub fn count_tier_hit(&mut self, tier: TierId) {
        let i = tier.0 as usize;
        if self.tier_hits.len() <= i {
            self.tier_hits.resize(i + 1, 0);
        }
        self.tier_hits[i] += 1;
    }

    /// Fraction of LLC-missing accesses served by the fast tier — the
    /// paper's *real hit ratio* (rHR) of fast-tier memory (§4.3.1).
    pub fn fast_tier_hit_ratio(&self) -> f64 {
        let total: u64 = self.tier_hits.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.tier_hits.first().unwrap_or(&0) as f64 / total as f64
    }

    /// Total accesses executed.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_tier_hit_ratio() {
        let mut s = MachineStats::default();
        assert_eq!(s.fast_tier_hit_ratio(), 0.0);
        for _ in 0..3 {
            s.count_tier_hit(TierId::FAST);
        }
        s.count_tier_hit(TierId::CAPACITY);
        assert!((s.fast_tier_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn migration_traffic_sums() {
        let m = MigrationStats {
            promoted_4k: 10,
            demoted_4k: 5,
            ..Default::default()
        };
        assert_eq!(m.traffic_4k(), 15);
    }
}
