//! Per-tier physical frame allocator.
//!
//! Each tier owns a contiguous range of 4 KiB frames, managed in 2 MiB blocks
//! (512 frames). A block is either wholly free (allocatable as one huge
//! frame), allocated as a huge frame, or *split* into base frames with a
//! per-block free bitmap. When every frame of a split block is freed, the
//! block coalesces back into a free huge block.
//!
//! The design mirrors what tiering policies see from the kernel buddy
//! allocator: huge-frame allocations need a fully free block, THP splits
//! convert a used huge block into 512 individually-freeable base frames, and
//! fragmentation can make huge allocations fail while base allocations
//! succeed.

use crate::addr::{Frame, PageSize, TierId, BASE_PAGE_SIZE, NR_SUBPAGES};
use crate::error::{SimError, SimResult};

const WORDS_PER_BITMAP: usize = (NR_SUBPAGES as usize) / 64;

/// State of one 2 MiB block within a tier.
#[derive(Debug, Clone)]
enum BlockState {
    /// The whole block is free and can be handed out as a huge frame.
    FreeHuge,
    /// The block is allocated as one huge frame.
    UsedHuge,
    /// The block is split into base frames; `bitmap` has a set bit per free
    /// frame and `free` counts them.
    Split {
        free: u16,
        bitmap: [u64; WORDS_PER_BITMAP],
    },
}

/// Frame allocator for a single memory tier.
#[derive(Debug)]
pub struct TierAllocator {
    tier: TierId,
    /// First global frame number owned by this tier.
    frame_start: u64,
    /// One past the last frame owned (cached: the block count is fixed at
    /// construction, and `owns` sits on the per-access hot path).
    frame_end: u64,
    /// Number of 2 MiB blocks in this tier.
    blocks: Vec<BlockState>,
    /// Stack of fully-free block indices.
    huge_free: Vec<u32>,
    /// Stack of *candidate* free base frames (may contain stale entries; the
    /// per-block bitmap is the source of truth).
    base_free: Vec<Frame>,
    /// Total free space in 4 KiB frame units.
    free_frames: u64,
}

impl TierAllocator {
    /// Creates an allocator owning `capacity_bytes` (rounded down to whole
    /// huge blocks) starting at global frame `frame_start`.
    pub fn new(tier: TierId, frame_start: u64, capacity_bytes: u64) -> Self {
        let n_blocks = (capacity_bytes / BASE_PAGE_SIZE / NR_SUBPAGES) as usize;
        TierAllocator {
            tier,
            frame_start,
            frame_end: frame_start + n_blocks as u64 * NR_SUBPAGES,
            blocks: vec![BlockState::FreeHuge; n_blocks],
            huge_free: (0..n_blocks as u32).rev().collect(),
            base_free: Vec::new(),
            free_frames: n_blocks as u64 * NR_SUBPAGES,
        }
    }

    /// The tier this allocator serves.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.blocks.len() as u64 * NR_SUBPAGES * BASE_PAGE_SIZE
    }

    /// Currently free space in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free_frames * BASE_PAGE_SIZE
    }

    /// Currently used space in bytes.
    pub fn used_bytes(&self) -> u64 {
        self.capacity_bytes() - self.free_bytes()
    }

    /// Whether `frame` belongs to this tier.
    pub fn owns(&self, frame: Frame) -> bool {
        frame.0 >= self.frame_start && frame.0 < self.frame_end
    }

    /// One past the last frame owned by this tier.
    pub fn frame_end(&self) -> u64 {
        self.frame_end
    }

    fn block_of(&self, frame: Frame) -> usize {
        debug_assert!(self.owns(frame));
        ((frame.0 - self.frame_start) / NR_SUBPAGES) as usize
    }

    fn block_base(&self, block: usize) -> Frame {
        Frame(self.frame_start + block as u64 * NR_SUBPAGES)
    }

    /// Allocates one frame of the given size.
    pub fn alloc(&mut self, size: PageSize) -> SimResult<Frame> {
        match size {
            PageSize::Huge => self.alloc_huge(),
            PageSize::Base => self.alloc_base(),
        }
    }

    /// Frees one frame of the given size.
    pub fn free(&mut self, frame: Frame, size: PageSize) {
        match size {
            PageSize::Huge => self.free_huge(frame),
            PageSize::Base => self.free_base(frame),
        }
    }

    /// Allocates a 2 MiB huge frame (512-frame aligned block).
    pub fn alloc_huge(&mut self) -> SimResult<Frame> {
        while let Some(b) = self.huge_free.pop() {
            // Skip stale entries: only a currently-FreeHuge block is valid.
            if matches!(self.blocks[b as usize], BlockState::FreeHuge) {
                self.blocks[b as usize] = BlockState::UsedHuge;
                self.free_frames -= NR_SUBPAGES;
                return Ok(self.block_base(b as usize));
            }
        }
        Err(SimError::OutOfMemory {
            tier: self.tier,
            size: PageSize::Huge,
        })
    }

    /// Allocates a single 4 KiB base frame, splitting a free huge block if no
    /// split block has a free frame.
    pub fn alloc_base(&mut self) -> SimResult<Frame> {
        while let Some(f) = self.base_free.pop() {
            let b = self.block_of(f);
            let block_base = self.block_base(b).0;
            if let BlockState::Split { free, bitmap } = &mut self.blocks[b] {
                let idx = (f.0 - block_base) as usize;
                let (w, bit) = (idx / 64, idx % 64);
                if bitmap[w] & (1 << bit) != 0 {
                    bitmap[w] &= !(1 << bit);
                    *free -= 1;
                    self.free_frames -= 1;
                    return Ok(f);
                }
            }
            // Stale entry (block coalesced or frame re-allocated): skip.
        }
        // No free base frame: break a whole free huge block.
        let huge = self.alloc_huge()?;
        // Mark the block split with frames 1..512 free; return frame 0.
        let b = self.block_of(huge);
        let mut bitmap = [u64::MAX; WORDS_PER_BITMAP];
        bitmap[0] &= !1;
        self.blocks[b] = BlockState::Split {
            free: (NR_SUBPAGES - 1) as u16,
            bitmap,
        };
        self.free_frames += NR_SUBPAGES - 1;
        for i in (1..NR_SUBPAGES).rev() {
            self.base_free.push(huge.add(i));
        }
        Ok(huge)
    }

    /// Frees a huge frame previously returned by [`TierAllocator::alloc_huge`].
    ///
    /// # Panics
    ///
    /// Panics if the block is not currently allocated as a huge frame.
    pub fn free_huge(&mut self, frame: Frame) {
        let b = self.block_of(frame);
        assert!(
            matches!(self.blocks[b], BlockState::UsedHuge),
            "free_huge on a block that is not UsedHuge"
        );
        self.blocks[b] = BlockState::FreeHuge;
        self.huge_free.push(b as u32);
        self.free_frames += NR_SUBPAGES;
    }

    /// Frees a base frame. Coalesces the block back to a free huge block when
    /// all 512 frames are free.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated as a base frame.
    pub fn free_base(&mut self, frame: Frame) {
        let b = self.block_of(frame);
        let base = self.block_base(b);
        let BlockState::Split { free, bitmap } = &mut self.blocks[b] else {
            panic!("free_base on a block that is not split");
        };
        let idx = (frame.0 - base.0) as usize;
        let (w, bit) = (idx / 64, idx % 64);
        assert_eq!(bitmap[w] & (1 << bit), 0, "double free of base frame");
        bitmap[w] |= 1 << bit;
        *free += 1;
        self.free_frames += 1;
        if *free as u64 == NR_SUBPAGES {
            // Coalesce. Stale base_free entries for this block are filtered
            // lazily on pop.
            self.blocks[b] = BlockState::FreeHuge;
            self.huge_free.push(b as u32);
        } else {
            self.base_free.push(frame);
        }
    }

    /// Converts an allocated huge block into 512 allocated base frames
    /// (in-place THP split). No frames are freed; they become individually
    /// freeable afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the block is not currently allocated as a huge frame.
    pub fn split_used_huge(&mut self, frame: Frame) {
        let b = self.block_of(frame);
        assert!(
            matches!(self.blocks[b], BlockState::UsedHuge),
            "split_used_huge on a block that is not UsedHuge"
        );
        self.blocks[b] = BlockState::Split {
            free: 0,
            bitmap: [0; WORDS_PER_BITMAP],
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HUGE_PAGE_SIZE;

    fn alloc_4blocks() -> TierAllocator {
        TierAllocator::new(TierId::FAST, 1024, 4 * HUGE_PAGE_SIZE)
    }

    #[test]
    fn capacity_and_initial_free() {
        let t = alloc_4blocks();
        assert_eq!(t.capacity_bytes(), 4 * HUGE_PAGE_SIZE);
        assert_eq!(t.free_bytes(), 4 * HUGE_PAGE_SIZE);
        assert!(t.owns(Frame(1024)));
        assert!(t.owns(Frame(1024 + 4 * 512 - 1)));
        assert!(!t.owns(Frame(1024 + 4 * 512)));
        assert!(!t.owns(Frame(0)));
    }

    #[test]
    fn huge_alloc_free_roundtrip() {
        let mut t = alloc_4blocks();
        let f = t.alloc_huge().unwrap();
        assert_eq!(f.0 % 512, 0);
        assert_eq!(t.free_bytes(), 3 * HUGE_PAGE_SIZE);
        t.free_huge(f);
        assert_eq!(t.free_bytes(), 4 * HUGE_PAGE_SIZE);
    }

    #[test]
    fn exhausting_huge_frames() {
        let mut t = alloc_4blocks();
        for _ in 0..4 {
            t.alloc_huge().unwrap();
        }
        assert!(matches!(t.alloc_huge(), Err(SimError::OutOfMemory { .. })));
        assert_eq!(t.free_bytes(), 0);
    }

    #[test]
    fn base_alloc_breaks_huge_block() {
        let mut t = alloc_4blocks();
        let f = t.alloc_base().unwrap();
        assert_eq!(t.free_bytes(), 4 * HUGE_PAGE_SIZE - BASE_PAGE_SIZE);
        // Subsequent base allocations come from the same block.
        let g = t.alloc_base().unwrap();
        assert_eq!(g.0 / 512, f.0 / 512);
        assert_ne!(f, g);
    }

    #[test]
    fn base_frames_coalesce_into_huge() {
        let mut t = TierAllocator::new(TierId::FAST, 0, HUGE_PAGE_SIZE);
        let frames: Vec<Frame> = (0..512).map(|_| t.alloc_base().unwrap()).collect();
        assert_eq!(t.free_bytes(), 0);
        assert!(t.alloc_huge().is_err());
        for f in frames {
            t.free_base(f);
        }
        assert_eq!(t.free_bytes(), HUGE_PAGE_SIZE);
        // The coalesced block is again allocatable as a huge frame.
        assert!(t.alloc_huge().is_ok());
    }

    #[test]
    fn stale_base_entries_are_skipped_after_coalesce() {
        let mut t = TierAllocator::new(TierId::FAST, 0, 2 * HUGE_PAGE_SIZE);
        let a = t.alloc_base().unwrap();
        t.free_base(a); // Block fully free again; stale stack entries remain.
        let h1 = t.alloc_huge().unwrap();
        let h2 = t.alloc_huge().unwrap();
        assert_ne!(h1, h2);
        // Both blocks allocated as huge; base allocation must now fail.
        assert!(t.alloc_base().is_err());
    }

    #[test]
    fn split_used_huge_enables_individual_frees() {
        let mut t = TierAllocator::new(TierId::FAST, 0, HUGE_PAGE_SIZE);
        let h = t.alloc_huge().unwrap();
        t.split_used_huge(h);
        assert_eq!(t.free_bytes(), 0);
        // Free half the subframes; they become allocatable as base frames.
        for i in 0..256 {
            t.free_base(h.add(i));
        }
        assert_eq!(t.free_bytes(), 256 * BASE_PAGE_SIZE);
        let f = t.alloc_base().unwrap();
        assert!(f.0 < 256);
        // Free everything; block coalesces and is huge-allocatable again.
        t.free_base(f);
        for i in 256..512 {
            t.free_base(h.add(i));
        }
        assert!(t.alloc_huge().is_ok());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_base_panics() {
        let mut t = alloc_4blocks();
        let f = t.alloc_base().unwrap();
        t.free_base(f);
        // Re-freeing after coalescing panics differently; force a split state.
        let g = t.alloc_base().unwrap();
        let _keep = t.alloc_base().unwrap();
        t.free_base(g);
        t.free_base(g);
    }
}
