//! Set-associative TLB model with separate 4 KiB and 2 MiB structures.
//!
//! Huge pages increase TLB reach two ways: one entry covers 512 base pages,
//! and a miss walks one fewer page-table level. Both effects are modeled;
//! they are the "address translation cost" side of the trade-off MEMTIS
//! balances against fast-tier capacity waste.

use crate::addr::{PageSize, VirtPage, NR_SUBPAGES};
use crate::config::TlbSpec;

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    /// Page-size-specific tag (vpn for 4 KiB, vpn/512 for 2 MiB) shifted
    /// left one, with the valid flag in bit 0 — one load and one compare
    /// match both on the per-access probe.
    tag_valid: u64,
    /// LRU timestamp.
    stamp: u64,
}

impl TlbEntry {
    #[inline]
    fn valid(&self) -> bool {
        self.tag_valid & 1 != 0
    }
}

/// Encodes `tag` as a valid entry key.
#[inline]
fn key(tag: u64) -> u64 {
    (tag << 1) | 1
}

const INVALID: TlbEntry = TlbEntry {
    tag_valid: 0,
    stamp: 0,
};

/// One set-associative lookup structure.
#[derive(Debug)]
struct TlbArray {
    sets: usize,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (every preset geometry),
    /// letting [`Self::set_of`] mask instead of divide on the hot path;
    /// `usize::MAX` otherwise.
    set_mask: usize,
    entries: Vec<TlbEntry>,
    clock: u64,
}

impl TlbArray {
    fn new(entries: usize, ways: usize) -> Self {
        let ways = ways.min(entries).max(1);
        let sets = (entries / ways).max(1);
        TlbArray {
            sets,
            ways,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            entries: vec![INVALID; sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn set_of(&self, tag: u64) -> usize {
        if self.set_mask != usize::MAX {
            (tag as usize) & self.set_mask
        } else {
            (tag as usize) % self.sets
        }
    }

    fn lookup(&mut self, tag: u64) -> bool {
        self.lookup_way(tag).is_some()
    }

    /// [`TlbArray::lookup`] returning the hit way's index into `entries`,
    /// so a caller that knows the tag stays resident can [`TlbArray::touch`]
    /// it without re-scanning the set.
    fn lookup_way(&mut self, tag: u64) -> Option<usize> {
        self.clock += 1;
        let k = key(tag);
        let s = self.set_of(tag) * self.ways;
        for (w, e) in self.entries[s..s + self.ways].iter_mut().enumerate() {
            if e.tag_valid == k {
                e.stamp = self.clock;
                return Some(s + w);
            }
        }
        None
    }

    /// Exactly the state transition of a [`TlbArray::lookup`] hit on the
    /// entry at `idx` — clock tick plus stamp refresh — minus the set scan.
    #[inline]
    fn touch(&mut self, idx: usize) {
        self.clock += 1;
        self.entries[idx].stamp = self.clock;
    }

    fn insert(&mut self, tag: u64) {
        self.clock += 1;
        let s = self.set_of(tag) * self.ways;
        let set = &mut self.entries[s..s + self.ways];
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid() { e.stamp + 1 } else { 0 })
            .unwrap();
        *victim = TlbEntry {
            tag_valid: key(tag),
            stamp: self.clock,
        };
    }

    fn invalidate(&mut self, tag: u64) {
        let k = key(tag);
        let s = self.set_of(tag) * self.ways;
        for e in &mut self.entries[s..s + self.ways] {
            if e.tag_valid == k {
                e.tag_valid &= !1;
            }
        }
    }

    fn flush(&mut self) {
        self.entries.fill(INVALID);
    }
}

/// TLB statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct TlbStats {
    /// Lookups that hit (either structure).
    pub hits: u64,
    /// Lookups that missed and required a page walk.
    pub misses: u64,
    /// Full or selective flushes performed (shootdowns).
    pub flushes: u64,
}

impl TlbStats {
    /// Accumulates `other` into `self` (used to fold per-lane TLB slices
    /// into one machine-wide view).
    pub fn absorb(&mut self, other: &TlbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.flushes += other.flushes;
    }

    /// Miss ratio in [0, 1]; zero when no lookups happened.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// The dual (4 KiB + 2 MiB) TLB.
#[derive(Debug)]
pub struct Tlb {
    base: TlbArray,
    huge: TlbArray,
    /// Bumped on every entry movement (insert, invalidate, flush); while it
    /// is unchanged, a way index returned by [`Tlb::lookup_memo`] still
    /// addresses the same resident translation. Lookups only refresh
    /// stamps in place and do not bump it.
    epoch: u64,
    /// Running statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from the configured geometry.
    pub fn new(spec: &TlbSpec) -> Self {
        Tlb {
            base: TlbArray::new(spec.base_entries, spec.ways),
            huge: TlbArray::new(spec.huge_entries, spec.ways),
            epoch: 0,
            stats: TlbStats::default(),
        }
    }

    /// Current entry-movement generation; see the `epoch` field.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    #[inline]
    fn tag(vpage: VirtPage, size: PageSize) -> u64 {
        match size {
            PageSize::Base => vpage.0,
            PageSize::Huge => vpage.0 / NR_SUBPAGES,
        }
    }

    /// Looks up a translation for `vpage`. The mapping size must be supplied
    /// by the caller (the page table knows it); a real TLB probes both
    /// structures in parallel.
    pub fn lookup(&mut self, vpage: VirtPage, size: PageSize) -> bool {
        let hit = match size {
            PageSize::Base => self.base.lookup(Self::tag(vpage, size)),
            PageSize::Huge => self.huge.lookup(Self::tag(vpage, size)),
        };
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// [`Tlb::lookup`] that additionally reports the hit way so the caller
    /// can replay future guaranteed hits on the same mapping with
    /// [`Tlb::touch_hit`]. State transition and statistics are identical to
    /// `lookup`.
    pub fn lookup_memo(&mut self, vpage: VirtPage, size: PageSize) -> Option<usize> {
        let way = match size {
            PageSize::Base => self.base.lookup_way(Self::tag(vpage, size)),
            PageSize::Huge => self.huge.lookup_way(Self::tag(vpage, size)),
        };
        if way.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        way
    }

    /// Replays a guaranteed-hit lookup of a still-resident translation whose
    /// way was memoized by [`Tlb::lookup_memo`]: the LRU clock, the entry
    /// stamp, and the hit counter advance exactly as a `lookup` hit would,
    /// without re-scanning the set. Only valid while [`Tlb::epoch`] is
    /// unchanged since the memoizing lookup — any insert, invalidate, or
    /// flush may have moved or evicted the entry.
    pub fn touch_hit(&mut self, size: PageSize, way: usize) {
        match size {
            PageSize::Base => self.base.touch(way),
            PageSize::Huge => self.huge.touch(way),
        }
        self.stats.hits += 1;
    }

    /// Inserts a translation after a walk.
    pub fn insert(&mut self, vpage: VirtPage, size: PageSize) {
        self.epoch += 1;
        match size {
            PageSize::Base => self.base.insert(Self::tag(vpage, size)),
            PageSize::Huge => self.huge.insert(Self::tag(vpage, size)),
        }
    }

    /// Invalidates the translation covering `vpage` at the given size
    /// (single-page shootdown on remap/migration).
    pub fn invalidate(&mut self, vpage: VirtPage, size: PageSize) {
        self.epoch += 1;
        self.stats.flushes += 1;
        match size {
            PageSize::Base => self.base.invalidate(Self::tag(vpage, size)),
            PageSize::Huge => self.huge.invalidate(Self::tag(vpage, size)),
        }
    }

    /// Flushes everything (full shootdown).
    pub fn flush_all(&mut self) {
        self.epoch += 1;
        self.stats.flushes += 1;
        self.base.flush();
        self.huge.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tlb() -> Tlb {
        Tlb::new(&TlbSpec {
            base_entries: 16,
            huge_entries: 8,
            ways: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = small_tlb();
        assert!(!t.lookup(VirtPage(5), PageSize::Base));
        t.insert(VirtPage(5), PageSize::Base);
        assert!(t.lookup(VirtPage(5), PageSize::Base));
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn huge_entry_covers_all_subpages() {
        let mut t = small_tlb();
        t.insert(VirtPage(512 * 3), PageSize::Huge);
        assert!(t.lookup(VirtPage(512 * 3 + 17), PageSize::Huge));
        assert!(t.lookup(VirtPage(512 * 3 + 511), PageSize::Huge));
        assert!(!t.lookup(VirtPage(512 * 4), PageSize::Huge));
    }

    #[test]
    fn lru_eviction_within_set() {
        // 16 entries / 4 ways = 4 sets; tags 0,4,8,... share set 0.
        let mut t = small_tlb();
        for i in 0..5 {
            t.insert(VirtPage(i * 4), PageSize::Base);
        }
        // Tag 0 was the LRU of set 0 and must be evicted.
        assert!(!t.lookup(VirtPage(0), PageSize::Base));
        assert!(t.lookup(VirtPage(16), PageSize::Base));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = small_tlb();
        t.insert(VirtPage(1), PageSize::Base);
        t.insert(VirtPage(512), PageSize::Huge);
        t.invalidate(VirtPage(1), PageSize::Base);
        assert!(!t.lookup(VirtPage(1), PageSize::Base));
        assert!(t.lookup(VirtPage(512), PageSize::Huge));
        t.flush_all();
        assert!(!t.lookup(VirtPage(512), PageSize::Huge));
        assert!(t.stats.flushes >= 2);
    }

    #[test]
    fn base_capacity_exceeded_by_huge_working_set() {
        // 16 base entries cannot cover a 64-page working set, but a few huge
        // entries can: the TLB-reach benefit of huge pages.
        let mut t = small_tlb();
        let pages: Vec<VirtPage> = (0..64).map(VirtPage).collect();
        for rounds in 0..3 {
            for &p in &pages {
                if !t.lookup(p, PageSize::Base) {
                    t.insert(p, PageSize::Base);
                }
            }
            let _ = rounds;
        }
        let base_misses = t.stats.misses;
        assert!(base_misses > 64, "base pages should keep missing");

        let mut t2 = small_tlb();
        for _ in 0..3 {
            for &p in &pages {
                if !t2.lookup(p, PageSize::Huge) {
                    t2.insert(p, PageSize::Huge);
                }
            }
        }
        // One huge entry covers all 64 pages: exactly one miss.
        assert_eq!(t2.stats.misses, 1);
    }
}
