//! Deterministic collection aliases.
//!
//! The simulator guarantees bit-identical results for identical seeds, but
//! `std::collections::HashMap`'s default hasher is randomly keyed per
//! process, which leaks into any code that *iterates* a map (cooling walks,
//! victim scans). These aliases pin the hasher to a fixed-key SipHash so
//! iteration order is stable across runs.

use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasherDefault;

/// A `HashMap` with a deterministic (fixed-key) hasher.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// A `HashSet` with a deterministic (fixed-key) hasher.
pub type DetHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<DefaultHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_stable() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7919 % 997, i);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
