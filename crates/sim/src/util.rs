//! Deterministic collection aliases and seed-derivation helpers.
//!
//! The simulator guarantees bit-identical results for identical seeds, but
//! `std::collections::HashMap`'s default hasher is randomly keyed per
//! process, which leaks into any code that *iterates* a map (cooling walks,
//! victim scans). These aliases pin the hasher to a fixed-key SipHash so
//! iteration order is stable across runs.
//!
//! [`Fnv1a`] is the shared coordinate-seed hash: every place that derives a
//! per-cell / per-case / per-shard RNG seed from a tuple of coordinates
//! (sweep cells, scaling-bench cases, shard salts) folds the coordinates
//! through the same 64-bit FNV-1a stream so seeds are stable, well mixed,
//! and independent of declaration order elsewhere.

use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasherDefault;

/// 64-bit FNV-1a offset basis.
pub const FNV1A_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming 64-bit FNV-1a hasher for deriving coordinate seeds.
///
/// Byte-wise xor-then-multiply, identical to the classic reference
/// algorithm; the builder-style `mix_*` methods make call sites read as a
/// list of coordinates. The digest depends on the exact byte stream, so
/// callers must keep field order and integer widths stable to preserve
/// historical seed values.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a new stream at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Self {
        Fnv1a(FNV1A_BASIS)
    }

    /// Folds raw bytes into the stream.
    #[inline]
    pub fn mix_bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV1A_PRIME);
        }
        self
    }

    /// Folds a `u64` coordinate (little-endian bytes) into the stream.
    #[inline]
    pub fn mix_u64(self, v: u64) -> Self {
        self.mix_bytes(&v.to_le_bytes())
    }

    /// Folds a `u32` coordinate (little-endian bytes) into the stream.
    #[inline]
    pub fn mix_u32(self, v: u32) -> Self {
        self.mix_bytes(&v.to_le_bytes())
    }

    /// Folds a string coordinate (UTF-8 bytes, no terminator) into the
    /// stream.
    #[inline]
    pub fn mix_str(self, s: &str) -> Self {
        self.mix_bytes(s.as_bytes())
    }

    /// Returns the current digest.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// A `HashMap` with a deterministic (fixed-key) hasher.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// A `HashSet` with a deterministic (fixed-key) hasher.
pub type DetHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<DefaultHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_stable() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7919 % 997, i);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a test vectors (64-bit).
        assert_eq!(Fnv1a::new().finish(), FNV1A_BASIS);
        assert_eq!(Fnv1a::new().mix_str("a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::new().mix_str("foobar").finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_mix_u64_equals_le_bytes() {
        let v = 0x0123_4567_89ab_cdefu64;
        assert_eq!(
            Fnv1a::new().mix_u64(v).finish(),
            Fnv1a::new().mix_bytes(&v.to_le_bytes()).finish()
        );
    }
}
