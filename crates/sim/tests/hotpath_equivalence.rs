//! Property test: the single-walk fast path (`Machine::access`) plus its
//! one-entry translation cache is *bit-exact* with the retained three-walk
//! reference path (`Machine::access_reference`) under random interleavings
//! of accesses with map/unmap/migrate/split/collapse/hint operations.
//!
//! Two identically configured machines replay the same operation sequence;
//! one uses the fast path, the other the reference path. After every step
//! the outcomes (including errors) must render identically, and at the end
//! the machine stats, TLB/LLC counters, and the full page-table state
//! (frames, accessed/dirty/hint bits, per-subpage write masks) must match.

use memtis_sim::page_table::EntryMut;
use memtis_sim::prelude::*;
use proptest::prelude::*;
use std::fmt::Write as _;

const REGIONS: u64 = 4;
const VPN_SPACE: u64 = REGIONS * 512;

fn machine() -> Machine {
    Machine::new(MachineConfig::dram_nvm(
        4 * HUGE_PAGE_SIZE,
        16 * HUGE_PAGE_SIZE,
    ))
}

/// Serializes every page-table entry (bits included) for comparison.
fn pt_state(m: &mut Machine) -> String {
    let mut s = String::new();
    m.scan_entries(|v, e| match e {
        EntryMut::Base(p) => {
            let _ = writeln!(s, "{} B {:?}", v.0, p);
        }
        EntryMut::Huge(h) => {
            let _ = writeln!(s, "{} H {:?}", v.0, h);
        }
    });
    s
}

/// Applies one non-access operation, returning a result fingerprint that
/// must match between the two machines.
fn apply_structural(m: &mut Machine, op: u8, vpn: u64, flag: bool) -> String {
    let vpage = VirtPage(vpn % VPN_SPACE);
    let tier = if flag { TierId::FAST } else { TierId::CAPACITY };
    match op {
        2 => format!("{:?}", m.alloc_and_map(vpage, PageSize::Base, tier)),
        3 => {
            let v = vpage.huge_aligned();
            format!("{:?}", m.alloc_and_map(v, PageSize::Huge, tier))
        }
        4 => match m.locate(vpage) {
            Some((_, size)) => {
                let v = if size == PageSize::Huge {
                    vpage.huge_aligned()
                } else {
                    vpage
                };
                format!("{:?}", m.unmap_and_free(v, size))
            }
            None => "unmapped".to_string(),
        },
        5 => match m.locate(vpage) {
            Some((_, size)) => {
                let v = if size == PageSize::Huge {
                    vpage.huge_aligned()
                } else {
                    vpage
                };
                format!("{:?}", m.migrate(v, tier))
            }
            None => "unmapped".to_string(),
        },
        6 => format!("{}", m.set_hint(vpage)),
        7 => {
            let v = vpage.huge_aligned();
            if flag {
                format!("{:?}", m.split_huge(v, true))
            } else {
                format!("{:?}", m.collapse_huge(v, TierId::FAST))
            }
        }
        _ => unreachable!("op space is 0..8"),
    }
}

proptest! {
    #[test]
    fn fast_path_is_bit_exact_with_reference(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..VPN_SPACE, proptest::bool::ANY),
            1..250,
        )
    ) {
        let mut fast = machine();
        let mut reference = machine();
        for &(op, vpn, flag) in &ops {
            if op < 2 {
                // Memory access: loads and stores, sub-page offsets varied.
                let addr = (vpn % VPN_SPACE) * 4096 + (vpn % 61) * 64;
                let a = if op == 0 {
                    Access::load(addr)
                } else {
                    Access::store(addr)
                };
                let via_fast = fast.access(a);
                let via_ref = reference.access_reference(a);
                prop_assert_eq!(format!("{via_fast:?}"), format!("{via_ref:?}"));
            } else {
                let r1 = apply_structural(&mut fast, op, vpn, flag);
                let r2 = apply_structural(&mut reference, op, vpn, flag);
                prop_assert_eq!(r1, r2);
            }
        }
        prop_assert_eq!(
            format!("{:?}", fast.stats),
            format!("{:?}", reference.stats)
        );
        prop_assert_eq!(
            format!("{:?}", fast.tlb_stats()),
            format!("{:?}", reference.tlb_stats())
        );
        prop_assert_eq!(
            format!("{:?}", fast.llc_stats()),
            format!("{:?}", reference.llc_stats())
        );
        prop_assert_eq!(pt_state(&mut fast), pt_state(&mut reference));
    }
}
