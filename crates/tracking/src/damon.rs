//! DAMON-style region-based access monitor (used for the paper's Figure 1).
//!
//! DAMON divides the monitored address space into regions, arms one sampling
//! page per region per sampling interval, and assumes every page in a region
//! has the region's access frequency. After each aggregation interval it
//! merges adjacent regions with similar access counts and splits regions to
//! stay within `[min_regions, max_regions]`. The trade-off the paper
//! illustrates — granularity vs interval vs CPU overhead — comes directly out
//! of this algorithm: finer granularity (more regions) at a short interval
//! costs CPU proportionally (72.85% in Figure 1c).

use memtis_sim::prelude::{VirtAddr, VirtPage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-region CPU cost of one sampling check (arm + later test, ns).
pub const REGION_CHECK_NS: f64 = 360.0;

/// DAMON configuration. Paper Figure 1 uses `s`-`m`-`X`: sampling interval
/// `s`, minimum `m` and maximum `X` regions. The aggregation interval is
/// 20 sampling intervals (DAMON's default ratio: 5 ms / 100 ms).
#[derive(Debug, Clone)]
pub struct DamonConfig {
    /// Sampling interval in simulated ns.
    pub sample_interval_ns: f64,
    /// Aggregation interval in simulated ns.
    pub aggregate_interval_ns: f64,
    /// Minimum number of regions.
    pub min_regions: usize,
    /// Maximum number of regions.
    pub max_regions: usize,
    /// Merge threshold: adjacent regions merge when their access counts
    /// differ by at most this value.
    pub merge_threshold: u32,
}

impl DamonConfig {
    /// The paper's `s`-`m`-`X` notation (sampling interval in ms).
    pub fn paper(sample_ms: f64, min_regions: usize, max_regions: usize) -> Self {
        DamonConfig {
            sample_interval_ns: sample_ms * 1e6,
            aggregate_interval_ns: sample_ms * 1e6 * 20.0,
            min_regions,
            max_regions,
            merge_threshold: 1,
        }
    }
}

/// One monitored region.
#[derive(Debug, Clone)]
pub struct Region {
    /// First page (4 KiB units).
    pub start: VirtPage,
    /// One-past-last page.
    pub end: VirtPage,
    /// Accesses counted in the current aggregation window (0..=checks).
    pub nr_accesses: u32,
    armed: VirtPage,
    touched: bool,
}

impl Region {
    /// Region length in pages.
    pub fn pages(&self) -> u64 {
        self.end.0 - self.start.0
    }
}

/// A snapshot row: region bounds and its aggregated access count.
#[derive(Debug, Clone, Copy)]
pub struct RegionSnapshot {
    /// First page.
    pub start: VirtPage,
    /// One-past-last page.
    pub end: VirtPage,
    /// Access count over the last aggregation window.
    pub nr_accesses: u32,
}

/// The DAMON monitor.
#[derive(Debug)]
pub struct Damon {
    cfg: DamonConfig,
    regions: Vec<Region>,
    rng: StdRng,
    next_sample_ns: f64,
    next_aggregate_ns: f64,
    /// CPU time consumed by the monitor (ns).
    pub cpu_ns: f64,
    /// Completed aggregation snapshots.
    pub history: Vec<(f64, Vec<RegionSnapshot>)>,
}

impl Damon {
    /// Creates a monitor over the given address ranges (byte ranges).
    pub fn new(cfg: DamonConfig, ranges: &[(VirtAddr, u64)], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut regions = Vec::new();
        for &(start, bytes) in ranges {
            let s = start.base_page();
            let e = VirtPage(s.0 + bytes / 4096);
            if e.0 > s.0 {
                let armed = VirtPage(rng.gen_range(s.0..e.0));
                regions.push(Region {
                    start: s,
                    end: e,
                    nr_accesses: 0,
                    armed,
                    touched: false,
                });
            }
        }
        let mut d = Damon {
            cfg,
            regions,
            rng,
            next_sample_ns: 0.0,
            next_aggregate_ns: 0.0,
            cpu_ns: 0.0,
            history: Vec::new(),
        };
        // Split up to the minimum region count before monitoring starts.
        while d.regions.len() < d.cfg.min_regions && d.split_once() {}
        d.next_sample_ns = d.cfg.sample_interval_ns;
        d.next_aggregate_ns = d.cfg.aggregate_interval_ns;
        d
    }

    /// Current regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Observes one access at simulated time `now_ns`.
    pub fn observe(&mut self, now_ns: f64, vpage: VirtPage) {
        self.advance(now_ns);
        // Binary search the region containing the page.
        if let Some(r) = self.find_region_mut(vpage) {
            if r.armed == vpage {
                r.touched = true;
            }
        }
    }

    /// Advances internal clocks to `now_ns`, running due sampling and
    /// aggregation steps.
    pub fn advance(&mut self, now_ns: f64) {
        while now_ns >= self.next_sample_ns {
            let t = self.next_sample_ns;
            self.sample_step();
            self.next_sample_ns += self.cfg.sample_interval_ns;
            if t >= self.next_aggregate_ns {
                self.aggregate_step(t);
                self.next_aggregate_ns += self.cfg.aggregate_interval_ns;
            }
        }
    }

    fn find_region_mut(&mut self, vpage: VirtPage) -> Option<&mut Region> {
        let idx = self.regions.partition_point(|r| r.end.0 <= vpage.0);
        let r = self.regions.get_mut(idx)?;
        (r.start.0 <= vpage.0 && vpage.0 < r.end.0).then_some(r)
    }

    fn sample_step(&mut self) {
        for r in &mut self.regions {
            if r.touched {
                r.nr_accesses += 1;
                r.touched = false;
            }
            r.armed = VirtPage(self.rng.gen_range(r.start.0..r.end.0));
        }
        self.cpu_ns += self.regions.len() as f64 * REGION_CHECK_NS;
    }

    fn aggregate_step(&mut self, now_ns: f64) {
        let snapshot: Vec<RegionSnapshot> = self
            .regions
            .iter()
            .map(|r| RegionSnapshot {
                start: r.start,
                end: r.end,
                nr_accesses: r.nr_accesses,
            })
            .collect();
        self.history.push((now_ns, snapshot));

        // Merge adjacent regions with similar access counts.
        let mut merged: Vec<Region> = Vec::with_capacity(self.regions.len());
        for r in self.regions.drain(..) {
            match merged.last_mut() {
                Some(last)
                    if last.end == r.start
                        && last.nr_accesses.abs_diff(r.nr_accesses) <= self.cfg.merge_threshold =>
                {
                    last.end = r.end;
                    last.nr_accesses = last.nr_accesses.max(r.nr_accesses);
                }
                _ => merged.push(r),
            }
        }
        self.regions = merged;
        while self.regions.len() > self.cfg.max_regions {
            // Too many regions: force-merge the most similar adjacent pair.
            let mut best = 0;
            let mut best_diff = u32::MAX;
            for i in 0..self.regions.len() - 1 {
                let d = self.regions[i]
                    .nr_accesses
                    .abs_diff(self.regions[i + 1].nr_accesses);
                if d < best_diff {
                    best_diff = d;
                    best = i;
                }
            }
            let nxt = self.regions.remove(best + 1);
            self.regions[best].end = nxt.end;
            self.regions[best].nr_accesses = self.regions[best].nr_accesses.max(nxt.nr_accesses);
        }
        // Split to regain resolution, up to min_regions * 2 (DAMON heuristic),
        // never exceeding max_regions.
        let target = (self.cfg.min_regions * 2).min(self.cfg.max_regions);
        while self.regions.len() < target {
            if !self.split_once() {
                break;
            }
        }
        // Reset counters for the next window.
        for r in &mut self.regions {
            r.nr_accesses = 0;
            r.armed = VirtPage(self.rng.gen_range(r.start.0..r.end.0));
            r.touched = false;
        }
    }

    /// Splits the largest region in two; returns false if nothing splittable.
    fn split_once(&mut self) -> bool {
        let Some((idx, _)) = self
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.pages() >= 2)
            .max_by_key(|(_, r)| r.pages())
        else {
            return false;
        };
        let r = self.regions[idx].clone();
        let mid = VirtPage(r.start.0 + r.pages() / 2);
        let armed_hi = VirtPage(self.rng.gen_range(mid.0..r.end.0));
        let lo = Region {
            start: r.start,
            end: mid,
            nr_accesses: r.nr_accesses,
            armed: if r.armed.0 < mid.0 {
                r.armed
            } else {
                VirtPage(self.rng.gen_range(r.start.0..mid.0))
            },
            touched: false,
        };
        let hi = Region {
            start: mid,
            end: r.end,
            nr_accesses: r.nr_accesses,
            armed: if r.armed.0 >= mid.0 {
                r.armed
            } else {
                armed_hi
            },
            touched: false,
        };
        self.regions[idx] = lo;
        self.regions.insert(idx + 1, hi);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(min: usize, max: usize) -> Damon {
        Damon::new(
            DamonConfig {
                sample_interval_ns: 1000.0,
                aggregate_interval_ns: 20_000.0,
                min_regions: min,
                max_regions: max,
                merge_threshold: 1,
            },
            &[(VirtAddr(0), 1024 * 4096)],
            42,
        )
    }

    #[test]
    fn initial_split_reaches_min_regions() {
        let d = monitor(10, 100);
        assert!(d.regions().len() >= 10);
        // Regions tile the range without gaps.
        let mut prev = VirtPage(0);
        for r in d.regions() {
            assert_eq!(r.start, prev);
            prev = r.end;
        }
        assert_eq!(prev, VirtPage(1024));
    }

    #[test]
    fn hot_region_accumulates_accesses() {
        let mut d = monitor(10, 100);
        // Hammer the first 64 pages continuously for several windows.
        let mut t = 0.0;
        for i in 0..200_000u64 {
            t += 10.0;
            d.observe(t, VirtPage(i % 64));
        }
        d.advance(t + 20_000.0);
        // Sum over all aggregation windows: the hot 64-page prefix must have
        // accumulated far more accesses than the never-touched tail.
        let mut hot = 0u64;
        let mut cold = 0u64;
        for (_, snap) in &d.history {
            for r in snap {
                if r.start.0 < 64 {
                    hot += r.nr_accesses as u64;
                } else if r.start.0 >= 512 {
                    cold += r.nr_accesses as u64;
                }
            }
        }
        assert!(hot > cold * 10 && hot > 0, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn cpu_cost_scales_with_region_count() {
        let mut small = monitor(10, 20);
        let mut big = monitor(1000, 2000);
        for d in [&mut small, &mut big] {
            d.advance(1_000_000.0);
        }
        assert!(big.cpu_ns > small.cpu_ns * 10.0);
    }

    #[test]
    fn region_count_stays_within_bounds() {
        let mut d = monitor(10, 30);
        let mut t = 0.0;
        for i in 0..100_000u64 {
            t += 25.0;
            d.observe(t, VirtPage((i * 7919) % 1024));
        }
        d.advance(t);
        assert!(d.regions().len() <= 30);
    }
}
