//! NUMA-hint-fault sampling substrate (AutoNUMA-style).
//!
//! AutoNUMA-family systems (AutoNUMA, AutoTiering, Tiering-0.8, TPP) learn
//! about accesses by periodically write-protecting a window of the address
//! space; the next touch of a protected page traps, and the fault handler
//! records — and often migrates — on the *application's critical path*.
//! The simulator's machine charges the trap cost to the faulting access; this
//! module provides the rotating-window arming logic the kernel calls
//! `task_numa_work`.

use memtis_sim::prelude::{PageSize, PolicyOps, VirtPage};
use std::collections::BTreeSet;

/// Rotating-window hint-fault armer.
///
/// Tracks the set of mapped pages (fed by the policy's alloc/free hooks) and
/// arms the hint bit on the next `pages_per_round` pages each round, wrapping
/// at the end — the same cyclic coverage as the kernel's NUMA balancing.
#[derive(Debug)]
pub struct HintFaultSampler {
    pages: BTreeSet<VirtPage>,
    cursor: Option<VirtPage>,
    /// Pages armed per round.
    pub pages_per_round: usize,
    /// When set, pages per round scale with the tracked set so one full
    /// sweep takes this many rounds (the kernel's scan-period behaviour:
    /// coverage time is roughly constant regardless of memory size).
    pub sweep_rounds: Option<u32>,
    /// Total hint bits armed.
    pub armed: u64,
}

impl HintFaultSampler {
    /// Creates a sampler arming `pages_per_round` pages per round.
    pub fn new(pages_per_round: usize) -> Self {
        HintFaultSampler {
            pages: BTreeSet::new(),
            cursor: None,
            pages_per_round,
            sweep_rounds: None,
            armed: 0,
        }
    }

    /// Creates a sampler that sweeps the whole tracked set once every
    /// `rounds` rounds, whatever its size.
    pub fn sweeping(rounds: u32) -> Self {
        HintFaultSampler {
            sweep_rounds: Some(rounds.max(1)),
            ..Self::new(1)
        }
    }

    /// Registers a newly mapped page (huge pages register their head page).
    pub fn on_alloc(&mut self, vpage: VirtPage, _size: PageSize) {
        self.pages.insert(vpage);
    }

    /// Unregisters a freed page.
    pub fn on_free(&mut self, vpage: VirtPage) {
        self.pages.remove(&vpage);
    }

    /// Re-registers a page under a new granularity after split/collapse.
    pub fn replace(&mut self, old: VirtPage, new: impl IntoIterator<Item = VirtPage>) {
        self.pages.remove(&old);
        self.pages.extend(new);
    }

    /// Number of tracked pages.
    pub fn tracked(&self) -> usize {
        self.pages.len()
    }

    /// Arms the next window of pages. Each armed page will deliver one hint
    /// fault on its next access.
    pub fn arm_round(&mut self, ops: &mut PolicyOps<'_>) {
        if self.pages.is_empty() {
            return;
        }
        let per_round = match self.sweep_rounds {
            Some(r) => (self.pages.len()).div_ceil(r as usize).max(1),
            None => self.pages_per_round,
        };
        let mut armed_now = 0;
        let mut cursor = self.cursor;
        while armed_now < per_round {
            // Advance (with wraparound) from the cursor.
            let next = match cursor {
                Some(c) => self
                    .pages
                    .range((std::ops::Bound::Excluded(c), std::ops::Bound::Unbounded))
                    .next()
                    .copied(),
                None => None,
            }
            .or_else(|| self.pages.iter().next().copied());
            let Some(p) = next else { break };
            if ops.set_hint(p) {
                self.armed += 1;
            }
            armed_now += 1;
            cursor = Some(p);
            if self.pages.len() <= armed_now {
                break;
            }
        }
        self.cursor = cursor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn arms_in_rotating_windows() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        for i in 0..6u64 {
            m.alloc_and_map(VirtPage(i), PageSize::Base, TierId::FAST)
                .unwrap();
        }
        let mut s = HintFaultSampler::new(2);
        for i in 0..6u64 {
            s.on_alloc(VirtPage(i), PageSize::Base);
        }
        let mut acct = CostAccounting::default();
        let mut armed_pages = Vec::new();
        for _ in 0..3 {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            s.arm_round(&mut ops);
            // Record which pages now fault.
            for i in 0..6u64 {
                let o = m.access(Access::load(i * 4096)).unwrap();
                if o.hint_fault {
                    armed_pages.push(i);
                }
            }
        }
        armed_pages.sort_unstable();
        assert_eq!(armed_pages, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s.armed, 6);
    }

    #[test]
    fn wraps_around_after_last_page() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        for i in 0..3u64 {
            m.alloc_and_map(VirtPage(i), PageSize::Base, TierId::FAST)
                .unwrap();
        }
        let mut s = HintFaultSampler::new(2);
        for i in 0..3u64 {
            s.on_alloc(VirtPage(i), PageSize::Base);
        }
        let mut acct = CostAccounting::default();
        for _ in 0..2 {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            s.arm_round(&mut ops);
        }
        // 4 arms over 3 pages: at least one page armed twice (wraparound).
        assert_eq!(s.armed, 4);
    }

    #[test]
    fn free_removes_from_tracking() {
        let mut s = HintFaultSampler::new(8);
        s.on_alloc(VirtPage(1), PageSize::Base);
        s.on_alloc(VirtPage(2), PageSize::Base);
        s.on_free(VirtPage(1));
        assert_eq!(s.tracked(), 1);
        s.replace(VirtPage(2), (0..4).map(VirtPage));
        assert_eq!(s.tracked(), 4);
    }
}
