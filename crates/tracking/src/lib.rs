//! # memtis-tracking — memory-access tracking substrates
//!
//! Every tracking mechanism the MEMTIS paper surveys (§2.1), rebuilt over
//! the simulated machine:
//!
//! - [`pebs`] — hardware event-based sampling (Intel PEBS): exact addresses,
//!   subpage resolution, CPU cost proportional to the sampling rate, plus
//!   the dynamic period controller MEMTIS uses to bound that cost.
//! - [`ptscan`] — page-table scanning: harvest-and-clear of accessed bits,
//!   one recency bit per scan, cost proportional to mapped entries.
//! - [`hintfault`] — AutoNUMA-style hint faults: rotating-window protection
//!   faults that hit the application's critical path.
//! - [`damon`] — DAMON region-based monitoring with region split/merge (for
//!   reproducing the paper's Figure 1 trade-off analysis).
//! - [`lru2q`] — active/inactive LRU lists (the TPP / MULTI-CLOCK substrate).

pub mod damon;
pub mod hintfault;
pub mod lru2q;
pub mod pebs;
pub mod ptscan;

pub use damon::{Damon, DamonConfig, RegionSnapshot};
pub use hintfault::HintFaultSampler;
pub use lru2q::{AccessResult, ListKind, Lru2Q};
pub use pebs::{PebsSample, PebsSampler, PebsSnapshot, PeriodAdjust, PeriodController};
pub use ptscan::{scan_and_clear, ScanRecord, ScanStats};
