//! Two-queue (active/inactive) LRU lists.
//!
//! The substrate beneath TPP and MULTI-CLOCK: a page enters the inactive
//! list on first sight and is *activated* on its second access — the static
//! "accessed twice" hotness threshold the paper criticizes. Eviction
//! (demotion) candidates come from the inactive tail; aging moves stale
//! active pages back to inactive.
//!
//! Implemented as generation-tagged queues with a hash map as the source of
//! truth, giving O(1) amortized operations with lazy removal of stale queue
//! entries.

use memtis_sim::prelude::{DetHashMap, VirtPage};
use std::collections::VecDeque;

/// Which list a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// Recently activated pages (hot candidates).
    Active,
    /// Newly seen or aged pages (eviction candidates).
    Inactive,
}

/// Result of recording an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The page is not tracked.
    NotTracked,
    /// Second access: the page moved from inactive to active.
    Activated,
    /// The page was already active (position refreshed).
    StillActive,
}

/// The two-queue structure.
#[derive(Debug, Default)]
pub struct Lru2Q {
    map: DetHashMap<VirtPage, (ListKind, u64)>,
    active: VecDeque<(VirtPage, u64)>,
    inactive: VecDeque<(VirtPage, u64)>,
    next_gen: u64,
    active_len: usize,
    inactive_len: usize,
}

impl Lru2Q {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pages on the active list.
    pub fn active_len(&self) -> usize {
        self.active_len
    }

    /// Pages on the inactive list.
    pub fn inactive_len(&self) -> usize {
        self.inactive_len
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no page is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `page` is tracked, and on which list.
    pub fn list_of(&self, page: VirtPage) -> Option<ListKind> {
        self.map.get(&page).map(|(k, _)| *k)
    }

    fn fresh_gen(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    /// Starts tracking `page` on the inactive list (first sight). Re-inserts
    /// to the inactive head if already tracked.
    pub fn insert_inactive(&mut self, page: VirtPage) {
        let gen = self.fresh_gen();
        match self.map.insert(page, (ListKind::Inactive, gen)) {
            Some((ListKind::Active, _)) => {
                self.active_len -= 1;
                self.inactive_len += 1;
            }
            Some((ListKind::Inactive, _)) => {}
            None => self.inactive_len += 1,
        }
        self.inactive.push_back((page, gen));
    }

    /// Records an access: inactive pages are activated (the "second access"
    /// promotion rule), active pages are refreshed.
    pub fn on_access(&mut self, page: VirtPage) -> AccessResult {
        let Some(&(kind, _)) = self.map.get(&page) else {
            return AccessResult::NotTracked;
        };
        let gen = self.fresh_gen();
        self.map.insert(page, (ListKind::Active, gen));
        self.active.push_back((page, gen));
        match kind {
            ListKind::Inactive => {
                self.inactive_len -= 1;
                self.active_len += 1;
                AccessResult::Activated
            }
            ListKind::Active => AccessResult::StillActive,
        }
    }

    /// Stops tracking `page`.
    pub fn remove(&mut self, page: VirtPage) {
        if let Some((kind, _)) = self.map.remove(&page) {
            match kind {
                ListKind::Active => self.active_len -= 1,
                ListKind::Inactive => self.inactive_len -= 1,
            }
        }
    }

    /// Pops the coldest inactive page (eviction/demotion victim).
    pub fn pop_inactive(&mut self) -> Option<VirtPage> {
        while let Some((page, gen)) = self.inactive.pop_front() {
            if self.map.get(&page) == Some(&(ListKind::Inactive, gen)) {
                self.map.remove(&page);
                self.inactive_len -= 1;
                return Some(page);
            }
        }
        None
    }

    /// Ages the oldest active page back to the inactive list; returns it.
    pub fn deactivate_oldest(&mut self) -> Option<VirtPage> {
        while let Some((page, gen)) = self.active.pop_front() {
            if self.map.get(&page) == Some(&(ListKind::Active, gen)) {
                let g = self.fresh_gen();
                self.map.insert(page, (ListKind::Inactive, g));
                self.inactive.push_back((page, g));
                self.active_len -= 1;
                self.inactive_len += 1;
                return Some(page);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_activates() {
        let mut q = Lru2Q::new();
        q.insert_inactive(VirtPage(1));
        assert_eq!(q.list_of(VirtPage(1)), Some(ListKind::Inactive));
        assert_eq!(q.on_access(VirtPage(1)), AccessResult::Activated);
        assert_eq!(q.list_of(VirtPage(1)), Some(ListKind::Active));
        assert_eq!(q.on_access(VirtPage(1)), AccessResult::StillActive);
        assert_eq!(q.on_access(VirtPage(9)), AccessResult::NotTracked);
        assert_eq!(q.active_len(), 1);
        assert_eq!(q.inactive_len(), 0);
    }

    #[test]
    fn pop_inactive_is_fifo_and_skips_activated() {
        let mut q = Lru2Q::new();
        for i in 0..4u64 {
            q.insert_inactive(VirtPage(i));
        }
        q.on_access(VirtPage(0)); // Activated: no longer an eviction victim.
        assert_eq!(q.pop_inactive(), Some(VirtPage(1)));
        assert_eq!(q.pop_inactive(), Some(VirtPage(2)));
        assert_eq!(q.pop_inactive(), Some(VirtPage(3)));
        assert_eq!(q.pop_inactive(), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn deactivate_ages_oldest_active() {
        let mut q = Lru2Q::new();
        for i in 0..3u64 {
            q.insert_inactive(VirtPage(i));
            q.on_access(VirtPage(i));
        }
        assert_eq!(q.deactivate_oldest(), Some(VirtPage(0)));
        assert_eq!(q.list_of(VirtPage(0)), Some(ListKind::Inactive));
        // Refreshing 1 pushes it behind 2 in age order.
        q.on_access(VirtPage(1));
        assert_eq!(q.deactivate_oldest(), Some(VirtPage(2)));
        assert_eq!(q.active_len(), 1);
        assert_eq!(q.inactive_len(), 2);
    }

    #[test]
    fn remove_untracks() {
        let mut q = Lru2Q::new();
        q.insert_inactive(VirtPage(5));
        q.remove(VirtPage(5));
        assert!(q.is_empty());
        assert_eq!(q.pop_inactive(), None);
    }

    #[test]
    fn reinsert_moves_back_to_inactive() {
        let mut q = Lru2Q::new();
        q.insert_inactive(VirtPage(7));
        q.on_access(VirtPage(7));
        assert_eq!(q.active_len(), 1);
        q.insert_inactive(VirtPage(7));
        assert_eq!(q.active_len(), 0);
        assert_eq!(q.inactive_len(), 1);
        assert_eq!(q.pop_inactive(), Some(VirtPage(7)));
    }

    #[test]
    fn counts_stay_consistent_under_churn() {
        let mut q = Lru2Q::new();
        for i in 0..100u64 {
            q.insert_inactive(VirtPage(i % 10));
            if i % 3 == 0 {
                q.on_access(VirtPage(i % 10));
            }
            if i % 7 == 0 {
                q.pop_inactive();
            }
            if i % 11 == 0 {
                q.deactivate_oldest();
            }
            assert_eq!(q.active_len() + q.inactive_len(), q.len());
        }
    }
}
