//! Processor event-based sampling (Intel PEBS) emulation.
//!
//! MEMTIS samples *retired LLC load misses* and *retired store instructions*
//! (§4.1.1). A hardware counter decrements per qualifying event; at zero a
//! sample containing the exact virtual address is written to the PEBS buffer
//! and the counter is re-armed with the configured period. The emulation
//! reproduces exactly that: deterministic, period-based, address-exact — and
//! crucially *subpage-exact*, the property none of the page-table-based
//! trackers have (Insight #1).
//!
//! Processing cost is charged per sample, so the CPU overhead of the
//! consuming daemon is proportional to the sampling rate, which is what the
//! dynamic period controller (also here) regulates against its CPU budget.

use memtis_sim::prelude::{Access, AccessKind, AccessOutcome, VirtAddr};

/// Default period for retired LLC load misses (paper: one sample per 200).
pub const DEFAULT_LOAD_PERIOD: u64 = 200;
/// Default period for retired stores (paper: one sample per 100,000).
pub const DEFAULT_STORE_PERIOD: u64 = 100_000;
/// CPU cost of processing one PEBS sample in the consuming daemon (ns):
/// buffer drain, page lookup, statistics update.
pub const SAMPLE_PROCESS_NS: f64 = 150.0;

/// One PEBS record: the exact virtual address and the event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PebsSample {
    /// Exact virtual address of the sampled access.
    pub vaddr: VirtAddr,
    /// Whether the sampled event was a store (vs an LLC load miss).
    pub kind: AccessKind,
}

/// The sampling hardware: two independently-periodic event counters.
#[derive(Debug)]
pub struct PebsSampler {
    load_period: u64,
    store_period: u64,
    load_count: u64,
    store_count: u64,
    /// Total samples emitted.
    pub samples: u64,
    /// Total qualifying events observed (sampled or not).
    pub events: u64,
}

impl Default for PebsSampler {
    fn default() -> Self {
        Self::new(DEFAULT_LOAD_PERIOD, DEFAULT_STORE_PERIOD)
    }
}

/// Point-in-time view of a sampler's counters and periods, suitable for
/// telemetry export (the `SampleBatch` trace event and the per-window
/// `load_period` gauge are derived from these numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PebsSnapshot {
    /// Current load-miss sampling period.
    pub load_period: u64,
    /// Current store sampling period.
    pub store_period: u64,
    /// Total samples emitted since creation.
    pub samples: u64,
    /// Total qualifying events observed since creation.
    pub events: u64,
}

impl PebsSampler {
    /// Creates a sampler with the given periods (events per sample).
    pub fn new(load_period: u64, store_period: u64) -> Self {
        PebsSampler {
            load_period: load_period.max(1),
            store_period: store_period.max(1),
            load_count: 0,
            store_count: 0,
            samples: 0,
            events: 0,
        }
    }

    /// Current load period.
    pub fn load_period(&self) -> u64 {
        self.load_period
    }

    /// Current store period.
    pub fn store_period(&self) -> u64 {
        self.store_period
    }

    /// Captures the current counters and periods for telemetry.
    pub fn snapshot(&self) -> PebsSnapshot {
        PebsSnapshot {
            load_period: self.load_period,
            store_period: self.store_period,
            samples: self.samples,
            events: self.events,
        }
    }

    /// Reconfigures the periods (`__perf_event_period`). Takes effect at the
    /// next counter re-arm, like the real interface.
    pub fn set_periods(&mut self, load_period: u64, store_period: u64) {
        self.load_period = load_period.max(1);
        self.store_period = store_period.max(1);
    }

    /// Qualifying load(-miss) events until the load counter fires, computed
    /// arithmetically: the event at exactly this offset from now is the one
    /// [`observe`] would sample. Always ≥ 1; when a period reconfiguration
    /// shrank the period below the in-progress count, the *next* qualifying
    /// event fires (mirroring `observe`'s `count + 1 >= period` test).
    ///
    /// Together with [`skip`], this turns the per-event counter decrement
    /// into geometric skip-ahead: a consumer scans a run of events, counts
    /// qualifying ones until one of the two distances is reached, bulk-skips
    /// the non-firing prefix in O(1), and feeds only the firing event
    /// through `observe` (which emits the sample and re-arms the counter
    /// exactly as the per-event path would).
    ///
    /// [`observe`]: PebsSampler::observe
    /// [`skip`]: PebsSampler::skip
    #[inline]
    pub fn load_events_until_sample(&self) -> u64 {
        self.load_period.saturating_sub(self.load_count).max(1)
    }

    /// Qualifying store events until the store counter fires; see
    /// [`load_events_until_sample`].
    ///
    /// [`load_events_until_sample`]: PebsSampler::load_events_until_sample
    #[inline]
    pub fn store_events_until_sample(&self) -> u64 {
        self.store_period.saturating_sub(self.store_count).max(1)
    }

    /// Advances the counters past `loads` qualifying LLC-miss loads and
    /// `stores` qualifying stores, none of which fire. Equivalent to that
    /// many [`observe`] calls returning `None`, in O(1).
    ///
    /// Callers must keep both advances strictly below the corresponding
    /// `*_events_until_sample()` distance — skipping across a firing event
    /// would silently drop its sample (debug-asserted).
    ///
    /// [`observe`]: PebsSampler::observe
    #[inline]
    pub fn skip(&mut self, loads: u64, stores: u64) {
        debug_assert!(loads < self.load_events_until_sample() || loads == 0);
        debug_assert!(stores < self.store_events_until_sample() || stores == 0);
        self.events += loads + stores;
        self.load_count += loads;
        self.store_count += stores;
    }

    /// Observes one executed access; returns a sample when a counter fires.
    ///
    /// Qualifying events are LLC-missing loads and all retired stores,
    /// mirroring the two PEBS events MEMTIS programs.
    #[inline]
    pub fn observe(&mut self, access: &Access, outcome: &AccessOutcome) -> Option<PebsSample> {
        match access.kind {
            AccessKind::Load => {
                if !outcome.llc_miss {
                    return None;
                }
                self.events += 1;
                self.load_count += 1;
                if self.load_count >= self.load_period {
                    self.load_count = 0;
                    self.samples += 1;
                    return Some(PebsSample {
                        vaddr: access.vaddr,
                        kind: AccessKind::Load,
                    });
                }
            }
            AccessKind::Store => {
                self.events += 1;
                self.store_count += 1;
                if self.store_count >= self.store_period {
                    self.store_count = 0;
                    self.samples += 1;
                    return Some(PebsSample {
                        vaddr: access.vaddr,
                        kind: AccessKind::Store,
                    });
                }
            }
        }
        None
    }
}

/// Dynamic sampling-period controller (§4.1.1).
///
/// `ksampled` periodically computes the exponential moving average of its CPU
/// usage and nudges the sampling periods to keep usage at or below the limit
/// (3% of one core by default), with a 0.5% hysteresis band to avoid
/// continual updates.
#[derive(Debug, Clone)]
pub struct PeriodController {
    /// Upper CPU-usage limit (fraction of one core), default 0.03.
    pub cpu_limit: f64,
    /// Hysteresis band half-width, default 0.005.
    pub hysteresis: f64,
    /// EMA decay for the usage estimate.
    pub ema_alpha: f64,
    /// Multiplicative period adjustment step.
    pub step: f64,
    /// Period bounds.
    pub min_period: u64,
    /// Upper period bound (paper observed up to 1400 on 654.roms).
    pub max_period: u64,
    usage_ema: f64,
    initialized: bool,
}

impl Default for PeriodController {
    fn default() -> Self {
        PeriodController {
            cpu_limit: 0.03,
            hysteresis: 0.005,
            ema_alpha: 0.3,
            step: 1.2,
            min_period: 1,
            max_period: 1_000_000,
            usage_ema: 0.0,
            initialized: false,
        }
    }
}

/// Direction of a period adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodAdjust {
    /// Usage above limit: periods increased (fewer samples).
    Increased,
    /// Usage comfortably below limit: periods decreased (more samples).
    Decreased,
    /// Within the hysteresis band: unchanged.
    Unchanged,
}

impl PeriodController {
    /// Creates a controller with the given CPU limit and period bounds.
    pub fn with_limits(cpu_limit: f64, min_period: u64, max_period: u64) -> Self {
        PeriodController {
            cpu_limit,
            min_period,
            max_period,
            ..Default::default()
        }
    }

    /// Current smoothed CPU-usage estimate.
    pub fn usage_ema(&self) -> f64 {
        self.usage_ema
    }

    /// Feeds a new instantaneous usage measurement and adjusts the sampler's
    /// periods if the smoothed usage leaves the hysteresis band.
    pub fn update(&mut self, measured_usage: f64, sampler: &mut PebsSampler) -> PeriodAdjust {
        if self.initialized {
            self.usage_ema =
                self.ema_alpha * measured_usage + (1.0 - self.ema_alpha) * self.usage_ema;
        } else {
            self.usage_ema = measured_usage;
            self.initialized = true;
        }
        let scale = |p: u64, f: f64| -> u64 {
            (((p as f64) * f).round() as u64).clamp(self.min_period, self.max_period)
        };
        if self.usage_ema > self.cpu_limit + self.hysteresis {
            let lp = scale(sampler.load_period(), self.step).max(sampler.load_period() + 1);
            let sp = scale(sampler.store_period(), self.step).max(sampler.store_period() + 1);
            sampler.set_periods(lp.min(self.max_period), sp.min(self.max_period));
            PeriodAdjust::Increased
        } else if self.usage_ema < self.cpu_limit - self.hysteresis {
            let lp = scale(sampler.load_period(), 1.0 / self.step);
            let sp = scale(sampler.store_period(), 1.0 / self.step);
            sampler.set_periods(lp, sp);
            PeriodAdjust::Decreased
        } else {
            PeriodAdjust::Unchanged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    fn outcome(llc_miss: bool) -> AccessOutcome {
        AccessOutcome {
            latency_ns: 100.0,
            vpage: VirtPage(0),
            page_size: PageSize::Base,
            tier: TierId::FAST,
            llc_miss,
            tlb_miss: false,
            hint_fault: false,
            demand_fault: false,
        }
    }

    #[test]
    fn samples_every_nth_llc_miss_load() {
        let mut s = PebsSampler::new(4, 1000);
        let mut got = 0;
        for i in 0..40u64 {
            let a = Access::load(i * 64);
            if let Some(smp) = s.observe(&a, &outcome(true)) {
                got += 1;
                assert_eq!(smp.kind, AccessKind::Load);
                // Exact address of the 4th/8th/... miss.
                assert_eq!(smp.vaddr.0 % 64, 0);
            }
        }
        assert_eq!(got, 10);
        assert_eq!(s.samples, 10);
        assert_eq!(s.events, 40);
    }

    #[test]
    fn snapshot_reflects_counters_and_periods() {
        let mut s = PebsSampler::new(2, 1000);
        for i in 0..4u64 {
            let _ = s.observe(&Access::load(i * 64), &outcome(true));
        }
        let snap = s.snapshot();
        assert_eq!(snap.load_period, 2);
        assert_eq!(snap.store_period, 1000);
        assert_eq!(snap.samples, 2);
        assert_eq!(snap.events, 4);
    }

    #[test]
    fn llc_hit_loads_do_not_qualify() {
        let mut s = PebsSampler::new(1, 1);
        assert!(s.observe(&Access::load(0), &outcome(false)).is_none());
        assert_eq!(s.events, 0);
        // Stores qualify regardless of LLC outcome.
        assert!(s.observe(&Access::store(0), &outcome(false)).is_some());
    }

    #[test]
    fn store_period_is_independent() {
        let mut s = PebsSampler::new(1, 3);
        let mut store_samples = 0;
        for _ in 0..9 {
            if s.observe(&Access::store(0), &outcome(true)).is_some() {
                store_samples += 1;
            }
        }
        assert_eq!(store_samples, 3);
    }

    #[test]
    fn controller_raises_period_over_budget() {
        let mut s = PebsSampler::new(200, 100_000);
        let mut c = PeriodController::default();
        // Sustained 10% usage: period should climb.
        let mut raised = 0;
        for _ in 0..10 {
            if c.update(0.10, &mut s) == PeriodAdjust::Increased {
                raised += 1;
            }
        }
        assert!(raised >= 9);
        assert!(s.load_period() > 200);
        assert!(s.store_period() > 100_000);
    }

    #[test]
    fn controller_lowers_period_under_budget() {
        let mut s = PebsSampler::new(1400, 700_000);
        let mut c = PeriodController::default();
        for _ in 0..10 {
            c.update(0.001, &mut s);
        }
        assert!(s.load_period() < 1400);
    }

    #[test]
    fn controller_hysteresis_holds_steady() {
        let mut s = PebsSampler::new(200, 100_000);
        let mut c = PeriodController::default();
        // 3% exactly: inside the band, no change.
        for _ in 0..10 {
            assert_eq!(c.update(0.03, &mut s), PeriodAdjust::Unchanged);
        }
        assert_eq!(s.load_period(), 200);
    }

    #[test]
    fn skip_ahead_distance_points_at_the_firing_event() {
        let mut s = PebsSampler::new(4, 1000);
        // After one non-firing miss the next sample is 3 qualifying events
        // away; skipping 2 of them and observing the 3rd fires.
        assert!(s.observe(&Access::load(0), &outcome(true)).is_none());
        assert_eq!(s.load_events_until_sample(), 3);
        s.skip(2, 0);
        assert!(s.observe(&Access::load(64), &outcome(true)).is_some());
        assert_eq!(s.load_events_until_sample(), 4);
        assert_eq!(s.events, 4);
        assert_eq!(s.samples, 1);
    }

    #[test]
    fn skip_ahead_handles_period_shrink_below_count() {
        let mut s = PebsSampler::new(100, 1000);
        for i in 0..50u64 {
            let _ = s.observe(&Access::load(i * 64), &outcome(true));
        }
        // Period now below the in-progress count: the next event fires.
        s.set_periods(10, 1000);
        assert_eq!(s.load_events_until_sample(), 1);
        assert!(s.observe(&Access::load(0), &outcome(true)).is_some());
    }

    #[test]
    fn controller_respects_bounds() {
        let mut s = PebsSampler::new(2, 2);
        let mut c = PeriodController {
            min_period: 2,
            max_period: 10,
            ..Default::default()
        };
        for _ in 0..50 {
            c.update(0.5, &mut s);
        }
        assert!(s.load_period() <= 10);
        for _ in 0..50 {
            c.update(0.0, &mut s);
        }
        assert!(s.load_period() >= 2);
    }
}

#[cfg(test)]
mod skip_ahead_proptests {
    use super::*;
    use memtis_sim::prelude::*;
    use proptest::prelude::*;

    /// One synthetic event: a store, or a load with the given LLC outcome.
    #[derive(Debug, Clone, Copy)]
    struct Ev {
        store: bool,
        llc_miss: bool,
    }

    fn outcome(llc_miss: bool) -> AccessOutcome {
        AccessOutcome {
            latency_ns: 100.0,
            vpage: VirtPage(0),
            page_size: PageSize::Base,
            tier: TierId::FAST,
            llc_miss,
            tlb_miss: false,
            hint_fault: false,
            demand_fault: false,
        }
    }

    fn access(i: usize, store: bool) -> Access {
        if store {
            Access::store(i as u64 * 64)
        } else {
            Access::load(i as u64 * 64)
        }
    }

    /// Mid-stream reconfiguration mirroring the period controller: every
    /// 5th sample, nudge both periods.
    fn maybe_reconfigure(fired: u64, s: &mut PebsSampler) {
        if fired > 0 && fired.is_multiple_of(5) {
            let lp = (s.load_period() * 3 / 4).max(1);
            let sp = (s.store_period() / 2).max(1);
            s.set_periods(lp, sp);
        }
    }

    proptest! {
        /// The skip-ahead consumer (distance scan + bulk `skip` + `observe`
        /// only on firing events) emits the bit-identical sample sequence
        /// and final counter state as the per-event decrement loop, across
        /// period reconfigurations.
        #[test]
        fn skip_ahead_matches_per_event_observe(
            evs in proptest::collection::vec(
                (proptest::bool::ANY, proptest::bool::ANY).prop_map(|(store, llc_miss)| Ev { store, llc_miss }),
                0..600,
            ),
            load_period in 1u64..40,
            store_period in 1u64..400,
        ) {
            // Reference: one observe() per event.
            let mut refr = PebsSampler::new(load_period, store_period);
            let mut ref_fired: Vec<usize> = Vec::new();
            for (i, e) in evs.iter().enumerate() {
                if refr
                    .observe(&access(i, e.store), &outcome(e.llc_miss))
                    .is_some()
                {
                    ref_fired.push(i);
                    maybe_reconfigure(refr.samples, &mut refr);
                }
            }

            // Skip-ahead consumer over the same stream.
            let mut fast = PebsSampler::new(load_period, store_period);
            let mut fast_fired: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < evs.len() {
                let until_load = fast.load_events_until_sample();
                let until_store = fast.store_events_until_sample();
                let mut loads = 0u64;
                let mut stores = 0u64;
                let mut fire: Option<usize> = None;
                for (j, e) in evs[i..].iter().enumerate() {
                    if e.store {
                        stores += 1;
                        if stores == until_store {
                            fire = Some(i + j);
                            break;
                        }
                    } else if e.llc_miss {
                        loads += 1;
                        if loads == until_load {
                            fire = Some(i + j);
                            break;
                        }
                    }
                }
                match fire {
                    Some(k) => {
                        let e = evs[k];
                        let (fl, fs) = if e.store { (0, 1) } else { (1, 0) };
                        fast.skip(loads - fl, stores - fs);
                        let got = fast.observe(&access(k, e.store), &outcome(e.llc_miss));
                        prop_assert!(got.is_some(), "scanned firing event must sample");
                        fast_fired.push(k);
                        maybe_reconfigure(fast.samples, &mut fast);
                        i = k + 1;
                    }
                    None => {
                        fast.skip(loads, stores);
                        break;
                    }
                }
            }

            prop_assert_eq!(ref_fired, fast_fired);
            prop_assert_eq!(refr.snapshot(), fast.snapshot());
        }
    }
}
