//! Page-table scanning substrate.
//!
//! The classic software tracking mechanism (Nimble, MULTI-CLOCK, kstaled):
//! periodically walk every mapped page-table entry, harvest and clear the
//! hardware accessed/dirty bits. The paper's Insight #1 criticisms are
//! reproduced by construction: the cost grows with the number of mapped
//! entries (charged per entry by [`memtis_sim::policy::PolicyOps::scan_entries`]),
//! the result is a single recency bit per scan interval, and a huge page
//! yields one bit for all 512 subpages — no subpage resolution.

use memtis_sim::page_table::EntryMut;
use memtis_sim::prelude::{PageSize, PolicyOps, VirtPage};

/// Harvested state of one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRecord {
    /// The page (2 MiB-aligned for a huge mapping).
    pub vpage: VirtPage,
    /// Mapping size.
    pub size: PageSize,
    /// Accessed since the previous scan.
    pub accessed: bool,
    /// Dirtied since the previous scan.
    pub dirty: bool,
}

/// Aggregate result of one scan pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScanStats {
    /// Entries visited.
    pub scanned: u64,
    /// Entries with the accessed bit set.
    pub accessed: u64,
}

/// Walks every mapped entry, reporting and clearing accessed/dirty bits.
///
/// The per-entry CPU cost is charged to the caller's cost sink, which is the
/// scalability wall of this mechanism for large memory.
pub fn scan_and_clear(ops: &mut PolicyOps<'_>, mut f: impl FnMut(ScanRecord)) -> ScanStats {
    let mut stats = ScanStats::default();
    ops.scan_entries(|vpage, entry| {
        let rec = match entry {
            EntryMut::Base(p) => {
                let r = ScanRecord {
                    vpage,
                    size: PageSize::Base,
                    accessed: p.accessed,
                    dirty: p.dirty,
                };
                p.accessed = false;
                p.dirty = false;
                r
            }
            EntryMut::Huge(h) => {
                let r = ScanRecord {
                    vpage,
                    size: PageSize::Huge,
                    accessed: h.accessed,
                    dirty: h.dirty,
                };
                h.accessed = false;
                h.dirty = false;
                r
            }
        };
        stats.scanned += 1;
        if rec.accessed {
            stats.accessed += 1;
        }
        f(rec);
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::*;

    #[test]
    fn scan_reports_and_clears_bits() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        m.alloc_and_map(VirtPage(0), PageSize::Base, TierId::FAST)
            .unwrap();
        m.alloc_and_map(VirtPage(512), PageSize::Huge, TierId::FAST)
            .unwrap();
        m.access(Access::store(0)).unwrap();
        m.access(Access::load(512 * 4096)).unwrap();

        let mut acct = CostAccounting::default();
        let mut recs = Vec::new();
        {
            let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
            let stats = scan_and_clear(&mut ops, |r| recs.push(r));
            assert_eq!(stats.scanned, 2);
            assert_eq!(stats.accessed, 2);
        }
        recs.sort_by_key(|r| r.vpage);
        assert!(recs[0].accessed && recs[0].dirty);
        assert!(recs[1].accessed && !recs[1].dirty);
        // Scanning again finds everything cleared.
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
        let stats = scan_and_clear(&mut ops, |_| {});
        assert_eq!(stats.accessed, 0);
        // Cost charged per entry, twice over two scans.
        assert!(acct.daemon_ns >= 4.0 * memtis_sim::policy::SCAN_ENTRY_NS);
    }

    #[test]
    fn huge_page_hides_subpage_detail() {
        let mut m = Machine::new(MachineConfig::dram_nvm(
            4 * HUGE_PAGE_SIZE,
            8 * HUGE_PAGE_SIZE,
        ));
        m.alloc_and_map(VirtPage(0), PageSize::Huge, TierId::FAST)
            .unwrap();
        // Touch a single subpage: the scan sees the whole 2 MiB as accessed.
        m.access(Access::load(137 * 4096)).unwrap();
        let mut acct = CostAccounting::default();
        let mut ops = PolicyOps::new(&mut m, &mut acct, CostSink::Daemon, 0.0);
        let mut got = None;
        scan_and_clear(&mut ops, |r| got = Some(r));
        let r = got.unwrap();
        assert_eq!(r.size, PageSize::Huge);
        assert!(r.accessed);
        // One record for 512 subpages: no way to tell which one was hot.
    }
}
