//! Btree — in-memory index random-lookup benchmark (Mitosis workload).
//!
//! Paper traits (Table 2, §6.2.5, Fig. 11): 38.3 GiB RSS with THP but only
//! 15.2 GiB without — severe THP memory bloat: ~60% of subpages are never
//! written. Huge-page utilization is 8.3–12.5% and access skew is high, so
//! MEMTIS's split both raises the fast-tier hit ratio (+19.92% in Fig. 12)
//! and *reclaims bloat* by freeing all-zero subpages (38.3 → 27.2 GiB at
//! 1:8). The lower huge-page ratio (75.2%) reflects base-page metadata.

use crate::scale::Scale;
use crate::spec::{assign_addresses, OpMix, Pattern, PhaseSpec, RegionSpec, WorkloadSpec};

/// Paper resident set size with THP (GiB).
pub const PAPER_RSS_GB: f64 = 38.3;
/// Paper resident set size without THP (GiB) — the bloat-free footprint.
pub const PAPER_RSS_NO_THP_GB: f64 = 15.2;
/// Paper ratio of huge pages allocated with THP.
pub const PAPER_RHP: f64 = 0.752;
/// Table 2 description.
pub const DESCRIPTION: &str = "In-memory index lookup benchmark";

/// Builds the workload at the given scale with a total access budget.
pub fn spec(scale: Scale, total_accesses: u64) -> WorkloadSpec {
    // Touched fraction chosen so THP RSS / no-THP RSS matches the paper.
    let touched = PAPER_RSS_NO_THP_GB / PAPER_RSS_GB * 0.95;
    let mut regions = vec![
        RegionSpec::scattered("nodes", scale.gb_frac(PAPER_RSS_GB, 0.74), true, touched),
        RegionSpec::dense("values", scale.gb_frac(PAPER_RSS_GB, 0.24), false),
    ];
    assign_addresses(&mut regions);

    let populate = total_accesses / 5;
    let lookups = total_accesses - populate;
    let phases = vec![
        PhaseSpec {
            name: "populate",
            accesses: populate,
            alloc: vec![0, 1],
            free: vec![],
            ops: vec![
                OpMix {
                    region: 0,
                    weight: 0.75,
                    pattern: Pattern::Sequential,
                    store_fraction: 1.0,
                    rank_offset: 0,
                },
                OpMix {
                    region: 1,
                    weight: 0.25,
                    pattern: Pattern::Sequential,
                    store_fraction: 1.0,
                    rank_offset: 0,
                },
            ],
        },
        PhaseSpec {
            name: "lookup",
            accesses: lookups,
            alloc: vec![],
            free: vec![],
            ops: vec![
                OpMix {
                    region: 0,
                    weight: 0.85,
                    pattern: Pattern::Zipf(0.9),
                    store_fraction: 0.0,
                    rank_offset: 0,
                },
                OpMix {
                    region: 1,
                    weight: 0.15,
                    pattern: Pattern::Zipf(0.8),
                    store_fraction: 0.0,
                    rank_offset: 0,
                },
            ],
        },
    ];
    WorkloadSpec {
        name: "Btree".into(),
        regions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid() {
        spec(Scale::DEFAULT, 100_000).validate().unwrap();
    }

    #[test]
    fn bloat_matches_paper_ratio() {
        let s = spec(Scale::DEFAULT, 100);
        let nodes = &s.regions[0];
        let touched = nodes.slots as f64 / nodes.subpages() as f64;
        // ~40% of subpages hold data; the rest is THP bloat.
        assert!((0.30..0.45).contains(&touched), "touched = {touched}");
    }

    #[test]
    fn huge_page_fraction_matches_rhp() {
        let s = spec(Scale::DEFAULT, 100);
        let thp_bytes: u64 = s.regions.iter().filter(|r| r.thp).map(|r| r.bytes).sum();
        let rhp = thp_bytes as f64 / s.total_bytes() as f64;
        assert!((rhp - PAPER_RHP).abs() < 0.05, "rhp = {rhp}");
    }
}
