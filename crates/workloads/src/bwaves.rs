//! 603.bwaves_s — explosion modeling from SPEC CPU 2017.
//!
//! Paper traits (Table 2, §6.2.6): 11.1 GiB RSS, 99.5% huge pages. The
//! distinguishing behaviour is the mix of long-lived solver arrays with
//! repeatedly allocated and freed *short-lived* data. Systems that keep free
//! headroom in the fast tier (Tiering-0.8, TPP, MEMTIS) serve the short-lived
//! allocations from fast memory; AutoTiering reserves free pages only for
//! promotion and loses here. The churn also keeps MEMTIS's measured fast-tier
//! hit ratio (rHR) low — hot pages are repeatedly demoted to keep headroom —
//! which is why the split brings no gain on this workload (Fig. 12).

use crate::scale::Scale;
use crate::spec::{assign_addresses, OpMix, Pattern, PhaseSpec, RegionSpec, WorkloadSpec};

/// Paper resident set size (GiB).
pub const PAPER_RSS_GB: f64 = 11.1;
/// Paper ratio of huge pages allocated with THP.
pub const PAPER_RHP: f64 = 0.995;
/// Table 2 description.
pub const DESCRIPTION: &str = "Explosion modeling in SPEC CPU 2017";

/// Number of allocate/compute/free cycles for the short-lived data.
pub const CYCLES: usize = 10;

/// Builds the workload at the given scale with a total access budget.
pub fn spec(scale: Scale, total_accesses: u64) -> WorkloadSpec {
    let mut regions = vec![
        RegionSpec::dense("arrays", scale.gb_frac(PAPER_RSS_GB, 0.92), true),
        RegionSpec::dense("scratch", scale.gb_frac(PAPER_RSS_GB, 0.05), true),
    ];
    assign_addresses(&mut regions);

    let init = total_accesses / 10;
    let per_cycle = (total_accesses - init) / CYCLES as u64;
    let mut phases = vec![PhaseSpec {
        name: "init",
        accesses: init,
        alloc: vec![0],
        free: vec![],
        ops: vec![OpMix {
            region: 0,
            weight: 1.0,
            pattern: Pattern::Sequential,
            store_fraction: 1.0,
            rank_offset: 0,
        }],
    }];
    for i in 0..CYCLES {
        // Allocate scratch, compute over both, then free the scratch: the
        // short-lived allocation pattern §6.2.6 highlights.
        phases.push(PhaseSpec {
            name: "timestep",
            accesses: per_cycle,
            alloc: vec![1],
            free: if i == 0 { vec![] } else { vec![1] },
            ops: vec![
                OpMix {
                    region: 0,
                    weight: 0.55,
                    pattern: Pattern::Sequential,
                    store_fraction: 0.35,
                    rank_offset: 0,
                },
                OpMix {
                    region: 1,
                    weight: 0.45,
                    pattern: Pattern::Sequential,
                    store_fraction: 0.55,
                    rank_offset: 0,
                },
            ],
        });
    }
    phases.push(PhaseSpec {
        name: "teardown",
        accesses: 0,
        alloc: vec![],
        free: vec![1],
        ops: vec![],
    });
    WorkloadSpec {
        name: "603.bwaves".into(),
        regions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtis_sim::prelude::{AccessStream, WorkloadEvent};

    #[test]
    fn spec_is_valid() {
        spec(Scale::DEFAULT, 100_000).validate().unwrap();
    }

    #[test]
    fn scratch_is_allocated_and_freed_repeatedly() {
        let s = spec(Scale::TEST, 6000);
        let mut st = crate::spec::SpecStream::new(s, 1);
        let (mut allocs, mut frees) = (0, 0);
        while let Some(ev) = st.next_event() {
            match ev {
                WorkloadEvent::Alloc { .. } => allocs += 1,
                WorkloadEvent::Free { .. } => frees += 1,
                _ => {}
            }
        }
        assert_eq!(allocs, 1 + CYCLES);
        assert_eq!(frees, CYCLES);
    }
}
