//! Access-frequency distributions.
//!
//! Page accesses in real applications are heavily non-linear — "often
//! exponential, e.g. Zipf or Pareto" (§4.1.3) — which is why MEMTIS organizes
//! its histogram bins on an exponential scale. The workload generators draw
//! from the same families.

use rand::Rng;

/// Zipf(s) sampler over ranks `0..n` (rank 0 is the hottest).
///
/// Uses a precomputed CDF with binary search: exact, deterministic given the
/// RNG, and fast enough for multi-million-access streams.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let k = k as usize;
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Samples a bounded Pareto-distributed rank in `0..n` with tail index `a`.
///
/// Like Zipf, low ranks dominate; the tail is heavier for smaller `a`.
pub fn pareto_rank<R: Rng>(rng: &mut R, n: u64, a: f64) -> u64 {
    // Inverse-CDF of a Pareto truncated to [1, n+1).
    let lo = 1.0f64;
    let hi = (n + 1) as f64;
    let u: f64 = rng.gen();
    let ha = hi.powf(-a);
    let la = lo.powf(-a);
    let x = (ha + u * (la - ha)).powf(-1.0 / a);
    ((x - 1.0) as u64).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_mass_sums_to_one() {
        let z = ZipfTable::new(100, 0.99);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = ZipfTable::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should get close to its theoretical share.
        let expect0 = z.pmf(0) * n as f64;
        assert!((counts[0] as f64 - expect0).abs() / expect0 < 0.05);
        // Monotone-ish head.
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[40]);
    }

    #[test]
    fn zipf_skew_grows_with_s() {
        let flat = ZipfTable::new(1000, 0.2);
        let steep = ZipfTable::new(1000, 1.2);
        assert!(steep.pmf(0) > flat.pmf(0) * 5.0);
    }

    #[test]
    fn pareto_ranks_in_bounds_and_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0u64;
        for _ in 0..10_000 {
            let r = pareto_rank(&mut rng, 1000, 1.0);
            assert!(r < 1000);
            if r < 100 {
                head += 1;
            }
        }
        // Far more than 10% of mass lands in the first 10% of ranks.
        assert!(head > 5_000);
    }
}
