//! Graph500 — generation and BFS search of large graphs.
//!
//! Paper traits (Table 2, §6.2.1): 66.3 GiB RSS, 99.9% huge pages. A
//! generation phase writes a large memory region; the search phase
//! frequently accesses a small hot region (frontier/visited state) plus
//! skewed lookups into the edge lists. Huge-page utilization is high, so
//! splitting offers no benefit — the MEMTIS gain here comes purely from
//! histogram-driven placement.

use crate::scale::Scale;
use crate::spec::{assign_addresses, OpMix, Pattern, PhaseSpec, RegionSpec, WorkloadSpec};

/// Paper resident set size (GiB).
pub const PAPER_RSS_GB: f64 = 66.3;
/// Paper ratio of huge pages allocated with THP.
pub const PAPER_RHP: f64 = 0.999;
/// Table 2 description.
pub const DESCRIPTION: &str = "Generation and search of large graphs";

/// Builds the workload at the given scale with a total access budget.
pub fn spec(scale: Scale, total_accesses: u64) -> WorkloadSpec {
    let mut regions = vec![
        RegionSpec::dense("edges", scale.gb_frac(PAPER_RSS_GB, 0.88), true),
        RegionSpec::dense("frontier", scale.gb_frac(PAPER_RSS_GB, 0.10), true),
    ];
    assign_addresses(&mut regions);

    let gen = total_accesses / 4;
    let search_total = total_accesses - gen;
    let mut phases = vec![PhaseSpec {
        name: "generate",
        accesses: gen,
        alloc: vec![0, 1],
        free: vec![],
        ops: vec![
            OpMix {
                region: 0,
                weight: 0.9,
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            },
            OpMix {
                region: 1,
                weight: 0.1,
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            },
        ],
    }];
    let edge_slots = regions[0].slots;
    for i in 0..4u64 {
        phases.push(PhaseSpec {
            name: "bfs",
            accesses: search_total / 4,
            alloc: vec![],
            free: vec![],
            ops: vec![
                OpMix {
                    region: 0,
                    weight: 0.55,
                    pattern: Pattern::Zipf(0.75),
                    store_fraction: 0.02,
                    // Each BFS searches different keys: the hot edge set
                    // drifts between phases.
                    rank_offset: i * edge_slots / 5,
                },
                OpMix {
                    region: 1,
                    weight: 0.45,
                    pattern: Pattern::Uniform,
                    store_fraction: 0.30,
                    rank_offset: 0,
                },
            ],
        });
    }
    WorkloadSpec {
        name: "Graph500".into(),
        regions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_sized() {
        let s = spec(Scale::DEFAULT, 1_000_000);
        s.validate().unwrap();
        let gb = s.total_bytes() as f64 / (1u64 << 30) as f64;
        // ~98% of the scaled paper RSS lives in these regions.
        assert!((gb - PAPER_RSS_GB / 64.0).abs() / (PAPER_RSS_GB / 64.0) < 0.1);
        assert_eq!(s.total_accesses(), 1_000_000);
    }

    #[test]
    fn generation_precedes_search() {
        let s = spec(Scale::TEST, 1000);
        assert_eq!(s.phases[0].name, "generate");
        assert!(s.phases[0].ops.iter().all(|o| o.store_fraction == 1.0));
        assert!(s.phases.len() >= 4);
    }
}
