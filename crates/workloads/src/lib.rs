//! # memtis-workloads — synthetic access-stream generators
//!
//! Synthetic, distribution-calibrated stand-ins for the eight benchmarks the
//! MEMTIS paper evaluates (Table 2). What a tiering policy observes is the
//! access *distribution* — hot-set size and skew, phase behaviour, subpage
//! utilization within huge pages, THP bloat, allocation churn — and each
//! generator reproduces the specific distributional traits the paper
//! documents for its benchmark (see each module's docs).
//!
//! Workloads are described declaratively ([`spec::WorkloadSpec`]) and turned
//! into deterministic event streams ([`spec::SpecStream`]); [`trace`]
//! provides record/replay.

pub mod btree;
pub mod bwaves;
pub mod dist;
pub mod graph500;
pub mod liblinear;
pub mod pagerank;
pub mod registry;
pub mod roms;
pub mod scale;
pub mod silo;
pub mod spec;
pub mod synth;
pub mod trace;
pub mod xsbench;

pub use registry::Benchmark;
pub use scale::Scale;
pub use spec::{
    assign_addresses, OpMix, Pattern, PhaseSpec, Placement, RegionSpec, SpecStream, WorkloadSpec,
};
pub use synth::SynthBuilder;
pub use trace::{TraceRecorder, TraceReplay};
