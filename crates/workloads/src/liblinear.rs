//! Liblinear — linear classification over the KDD12 dataset.
//!
//! Paper traits (Table 2, §6.2.3, Fig. 3a): 67.9 GiB RSS, 99.9% huge pages.
//! Hot huge pages exhibit *high utilization* — hotness correlates positively
//! with the number of accessed subpages — so MEMTIS keeps them as huge pages
//! (no split benefit; eHR ≤ rHR) and wins purely on placement, reaching
//! 96–99.99% fast-tier hit ratios in the paper.

use crate::scale::Scale;
use crate::spec::{assign_addresses, OpMix, Pattern, PhaseSpec, RegionSpec, WorkloadSpec};

/// Paper resident set size (GiB).
pub const PAPER_RSS_GB: f64 = 67.9;
/// Paper ratio of huge pages allocated with THP.
pub const PAPER_RHP: f64 = 0.999;
/// Table 2 description.
pub const DESCRIPTION: &str = "Linear classification of a large data set (KDD12 dataset)";

/// Builds the workload at the given scale with a total access budget.
pub fn spec(scale: Scale, total_accesses: u64) -> WorkloadSpec {
    let mut regions = vec![
        RegionSpec::dense("features", scale.gb_frac(PAPER_RSS_GB, 0.92), true),
        RegionSpec::dense("model", scale.gb_frac(PAPER_RSS_GB, 0.06), true),
    ];
    assign_addresses(&mut regions);

    let load = total_accesses / 5;
    let iters = 4u64;
    let per_iter = (total_accesses - load) / iters;
    let mut phases = vec![PhaseSpec {
        name: "load-data",
        accesses: load,
        alloc: vec![0, 1],
        free: vec![],
        ops: vec![
            OpMix {
                region: 0,
                weight: 0.94,
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            },
            OpMix {
                region: 1,
                weight: 0.06,
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            },
        ],
    }];
    for _i in 0..iters {
        phases.push(PhaseSpec {
            name: "train",
            accesses: per_iter,
            alloc: vec![],
            free: vec![],
            ops: vec![
                OpMix {
                    region: 0,
                    weight: 0.85,
                    pattern: Pattern::Zipf(1.15),
                    store_fraction: 0.05,
                    // The hot feature rows are stable across epochs (the
                    // KDD12 sparse-feature head); placement quality, not
                    // adaptation speed, dominates this benchmark.
                    rank_offset: 0,
                },
                OpMix {
                    region: 1,
                    weight: 0.15,
                    pattern: Pattern::Uniform,
                    store_fraction: 0.40,
                    rank_offset: 0,
                },
            ],
        });
    }
    WorkloadSpec {
        name: "Liblinear".into(),
        regions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Placement;

    #[test]
    fn spec_is_valid_and_dense() {
        let s = spec(Scale::DEFAULT, 100_000);
        s.validate().unwrap();
        // High huge-page utilization comes from dense placement.
        assert!(s.regions.iter().all(|r| r.placement == Placement::Dense));
        assert!(s.regions.iter().all(|r| r.slots == r.subpages()));
    }
}
