//! PageRank (GAP benchmark suite, Twitter graph).
//!
//! Paper traits (Table 2, §6.2.1, Fig. 2 left): 12.3 GiB RSS, 99.9% huge
//! pages. Iterations combine a small, very hot rank/offset working set with
//! streaming reads over the large edge array. The identified hot set is
//! *smaller* than the fast tier, which is exactly the case where HeMem's
//! static thresholds leave the rest of the fast tier filled with arbitrary
//! cold pages (Fig. 2) while MEMTIS backfills it with warm pages.

use crate::scale::Scale;
use crate::spec::{assign_addresses, OpMix, Pattern, PhaseSpec, RegionSpec, WorkloadSpec};

/// Paper resident set size (GiB).
pub const PAPER_RSS_GB: f64 = 12.3;
/// Paper ratio of huge pages allocated with THP.
pub const PAPER_RHP: f64 = 0.999;
/// Table 2 description.
pub const DESCRIPTION: &str = "Compute the PageRank score of a graph (Twitter dataset)";

/// Builds the workload at the given scale with a total access budget.
pub fn spec(scale: Scale, total_accesses: u64) -> WorkloadSpec {
    // The graph is built before the rank arrays are allocated (as in GAP),
    // so allocation order anti-correlates with hotness: first-touch fills
    // the fast tier with edges.
    let mut regions = vec![
        RegionSpec::dense("edges", scale.gb_frac(PAPER_RSS_GB, 0.88), true),
        RegionSpec::dense("ranks", scale.gb_frac(PAPER_RSS_GB, 0.10), true),
    ];
    assign_addresses(&mut regions);

    let build = total_accesses / 5;
    let iters = 5u64;
    let per_iter = (total_accesses - build) / iters;
    let mut phases = vec![PhaseSpec {
        name: "build",
        accesses: build,
        alloc: vec![0, 1],
        free: vec![],
        ops: vec![
            OpMix {
                region: 0,
                weight: 0.9,
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            },
            OpMix {
                region: 1,
                weight: 0.1,
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            },
        ],
    }];
    for _ in 0..iters {
        phases.push(PhaseSpec {
            name: "iterate",
            accesses: per_iter,
            alloc: vec![],
            free: vec![],
            ops: vec![
                OpMix {
                    region: 1,
                    weight: 0.55,
                    pattern: Pattern::Zipf(0.3),
                    store_fraction: 0.30,
                    rank_offset: 0,
                },
                OpMix {
                    region: 0,
                    weight: 0.45,
                    pattern: Pattern::Sequential,
                    store_fraction: 0.0,
                    rank_offset: 0,
                },
            ],
        });
    }
    WorkloadSpec {
        name: "PageRank".into(),
        regions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid() {
        let s = spec(Scale::DEFAULT, 500_000);
        s.validate().unwrap();
        assert_eq!(s.total_accesses(), 500_000);
    }

    #[test]
    fn hot_region_is_small_fraction_of_rss() {
        let s = spec(Scale::DEFAULT, 1000);
        let ranks = s.regions[1].bytes as f64;
        let total = s.total_bytes() as f64;
        assert!(ranks / total < 0.15, "ranks should be ~10% of RSS");
    }
}
