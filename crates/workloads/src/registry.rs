//! Benchmark registry — the paper's Table 2 as data.

use crate::scale::Scale;
use crate::spec::WorkloadSpec;

/// Identifier of one of the eight paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Graph500 generation + BFS.
    Graph500,
    /// GAP PageRank on the Twitter graph.
    PageRank,
    /// XSBench Monte Carlo cross-section lookup.
    XsBench,
    /// Liblinear on KDD12.
    Liblinear,
    /// Silo under YCSB-C.
    Silo,
    /// Mitosis Btree lookups.
    Btree,
    /// SPEC CPU 2017 603.bwaves_s.
    Bwaves,
    /// SPEC CPU 2017 654.roms_s.
    Roms,
}

impl Benchmark {
    /// All eight benchmarks, in the paper's Table 2 order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Graph500,
        Benchmark::PageRank,
        Benchmark::XsBench,
        Benchmark::Liblinear,
        Benchmark::Silo,
        Benchmark::Btree,
        Benchmark::Bwaves,
        Benchmark::Roms,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Graph500 => "Graph500",
            Benchmark::PageRank => "PageRank",
            Benchmark::XsBench => "XSBench",
            Benchmark::Liblinear => "Liblinear",
            Benchmark::Silo => "Silo",
            Benchmark::Btree => "Btree",
            Benchmark::Bwaves => "603.bwaves",
            Benchmark::Roms => "654.roms",
        }
    }

    /// Paper RSS in GiB (Table 2).
    pub fn paper_rss_gb(self) -> f64 {
        match self {
            Benchmark::Graph500 => crate::graph500::PAPER_RSS_GB,
            Benchmark::PageRank => crate::pagerank::PAPER_RSS_GB,
            Benchmark::XsBench => crate::xsbench::PAPER_RSS_GB,
            Benchmark::Liblinear => crate::liblinear::PAPER_RSS_GB,
            Benchmark::Silo => crate::silo::PAPER_RSS_GB,
            Benchmark::Btree => crate::btree::PAPER_RSS_GB,
            Benchmark::Bwaves => crate::bwaves::PAPER_RSS_GB,
            Benchmark::Roms => crate::roms::PAPER_RSS_GB,
        }
    }

    /// Paper huge-page ratio (Table 2).
    pub fn paper_rhp(self) -> f64 {
        match self {
            Benchmark::Graph500 => crate::graph500::PAPER_RHP,
            Benchmark::PageRank => crate::pagerank::PAPER_RHP,
            Benchmark::XsBench => crate::xsbench::PAPER_RHP,
            Benchmark::Liblinear => crate::liblinear::PAPER_RHP,
            Benchmark::Silo => crate::silo::PAPER_RHP,
            Benchmark::Btree => crate::btree::PAPER_RHP,
            Benchmark::Bwaves => crate::bwaves::PAPER_RHP,
            Benchmark::Roms => crate::roms::PAPER_RHP,
        }
    }

    /// Table 2 description.
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::Graph500 => crate::graph500::DESCRIPTION,
            Benchmark::PageRank => crate::pagerank::DESCRIPTION,
            Benchmark::XsBench => crate::xsbench::DESCRIPTION,
            Benchmark::Liblinear => crate::liblinear::DESCRIPTION,
            Benchmark::Silo => crate::silo::DESCRIPTION,
            Benchmark::Btree => crate::btree::DESCRIPTION,
            Benchmark::Bwaves => crate::bwaves::DESCRIPTION,
            Benchmark::Roms => crate::roms::DESCRIPTION,
        }
    }

    /// Builds the workload spec at the given scale and access budget.
    ///
    /// The per-phase budget split rounds down; any remainder is assigned to
    /// the last access-issuing phase so the stream emits exactly
    /// `total_accesses` accesses.
    pub fn spec(self, scale: Scale, total_accesses: u64) -> WorkloadSpec {
        let mut spec = self.spec_inner(scale, total_accesses);
        let emitted = spec.total_accesses();
        if emitted < total_accesses {
            if let Some(p) = spec.phases.iter_mut().rev().find(|p| !p.ops.is_empty()) {
                p.accesses += total_accesses - emitted;
            }
        }
        spec
    }

    fn spec_inner(self, scale: Scale, total_accesses: u64) -> WorkloadSpec {
        match self {
            Benchmark::Graph500 => crate::graph500::spec(scale, total_accesses),
            Benchmark::PageRank => crate::pagerank::spec(scale, total_accesses),
            Benchmark::XsBench => crate::xsbench::spec(scale, total_accesses),
            Benchmark::Liblinear => crate::liblinear::spec(scale, total_accesses),
            Benchmark::Silo => crate::silo::spec(scale, total_accesses),
            Benchmark::Btree => crate::btree::spec(scale, total_accesses),
            Benchmark::Bwaves => crate::bwaves::spec(scale, total_accesses),
            Benchmark::Roms => crate::roms::spec(scale, total_accesses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate_at_default_scale() {
        for b in Benchmark::ALL {
            let s = b.spec(Scale::DEFAULT, 100_000);
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert_eq!(s.name, b.name());
        }
    }

    #[test]
    fn scaled_rss_tracks_paper_rss() {
        for b in Benchmark::ALL {
            let s = b.spec(Scale::DEFAULT, 1000);
            let scaled = s.total_bytes() as f64;
            let expect = b.paper_rss_gb() / 64.0 * (1u64 << 30) as f64;
            let err = (scaled - expect).abs() / expect;
            assert!(err < 0.12, "{}: {:.1}% off", b.name(), err * 100.0);
        }
    }

    #[test]
    fn rhp_ordering_matches_paper() {
        // Btree has the lowest huge-page ratio, XSBench the highest.
        let rhp = |b: Benchmark| {
            let s = b.spec(Scale::DEFAULT, 100);
            let thp: u64 = s.regions.iter().filter(|r| r.thp).map(|r| r.bytes).sum();
            thp as f64 / s.total_bytes() as f64
        };
        assert!(rhp(Benchmark::Btree) < rhp(Benchmark::Silo));
        assert!(rhp(Benchmark::Silo) < rhp(Benchmark::XsBench) + 1e-9);
    }
}
