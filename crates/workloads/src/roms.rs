//! 654.roms_s — regional ocean modeling from SPEC CPU 2017.
//!
//! Paper traits (Table 2, §6.3.5, Fig. 1): 10.3 GiB RSS, 96.6% huge pages.
//! Stencil sweeps over several state arrays with clearly banded per-array
//! access frequencies — the structure visible in the paper's DAMON heat maps
//! (Fig. 1). It is also the workload where `ksampled` throttles its PEBS
//! period from 200 up to ~1400 to stay under its 3% CPU budget (§6.3.5),
//! because the sweep generates a very high LLC-miss rate.

use crate::scale::Scale;
use crate::spec::{assign_addresses, OpMix, Pattern, PhaseSpec, RegionSpec, WorkloadSpec};

/// Paper resident set size (GiB).
pub const PAPER_RSS_GB: f64 = 10.3;
/// Paper ratio of huge pages allocated with THP.
pub const PAPER_RHP: f64 = 0.966;
/// Table 2 description.
pub const DESCRIPTION: &str = "Regional ocean modeling in SPEC CPU 2017";

/// Builds the workload at the given scale with a total access budget.
pub fn spec(scale: Scale, total_accesses: u64) -> WorkloadSpec {
    // Three state-array bands with distinct access frequencies plus a small
    // base-page region (boundary/halo buffers), giving the banded heat map.
    // Arrays are allocated in model-initialization order, which does not
    // match their sweep-time access frequency: the coldest state comes
    // first, so first-touch placement is far from optimal.
    let mut regions = vec![
        RegionSpec::dense("state-cold", scale.gb_frac(PAPER_RSS_GB, 0.30), true),
        RegionSpec::dense("state-mid", scale.gb_frac(PAPER_RSS_GB, 0.32), true),
        RegionSpec::dense("state-hot", scale.gb_frac(PAPER_RSS_GB, 0.30), true),
        RegionSpec::dense("halo", scale.gb_frac(PAPER_RSS_GB, 0.04), false),
    ];
    assign_addresses(&mut regions);

    let init = total_accesses / 10;
    let sweeps = 6u64;
    let per_sweep = (total_accesses - init) / sweeps;
    let mut phases = vec![PhaseSpec {
        name: "init",
        accesses: init,
        alloc: vec![0, 1, 2, 3],
        free: vec![],
        ops: (0..4)
            .map(|r| OpMix {
                region: r,
                weight: if r == 3 { 0.04 } else { 0.32 },
                pattern: Pattern::Sequential,
                store_fraction: 1.0,
                rank_offset: 0,
            })
            .collect(),
    }];
    for _ in 0..sweeps {
        phases.push(PhaseSpec {
            name: "sweep",
            accesses: per_sweep,
            alloc: vec![],
            free: vec![],
            ops: vec![
                OpMix {
                    region: 2,
                    weight: 0.55,
                    pattern: Pattern::Sequential,
                    store_fraction: 0.35,
                    rank_offset: 0,
                },
                OpMix {
                    region: 1,
                    weight: 0.27,
                    pattern: Pattern::Sequential,
                    store_fraction: 0.30,
                    rank_offset: 0,
                },
                OpMix {
                    region: 0,
                    weight: 0.10,
                    pattern: Pattern::Sequential,
                    store_fraction: 0.25,
                    rank_offset: 0,
                },
                OpMix {
                    region: 3,
                    weight: 0.08,
                    pattern: Pattern::Uniform,
                    store_fraction: 0.50,
                    rank_offset: 0,
                },
            ],
        });
    }
    WorkloadSpec {
        name: "654.roms".into(),
        regions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid() {
        spec(Scale::DEFAULT, 100_000).validate().unwrap();
    }

    #[test]
    fn bands_have_distinct_weights() {
        let s = spec(Scale::TEST, 1000);
        let sweep = &s.phases[1];
        assert!(sweep.ops[0].weight > sweep.ops[1].weight);
        assert!(sweep.ops[1].weight > sweep.ops[2].weight);
        // The hottest op targets the last-allocated array.
        assert_eq!(sweep.ops[0].region, 2);
    }
}
